#!/usr/bin/env bash
# Sanitizer + observability gate, run before merging:
#   1. strict preset: the whole tree (tests, benches, examples) under
#      -Wall -Wextra -Wshadow -Wconversion -Wsign-conversion as errors
#      (also exports compile_commands.json for tooling);
#   2. asan preset: the full test suite under AddressSanitizer/UBSan;
#   3. tsan preset: the concurrency-sensitive suites (parallel stage
#      extraction, batched wavefront propagation, and the incremental-
#      update pipeline built on them) under ThreadSanitizer;
#   4. ubsan preset: the timing suites under standalone UBSan with
#      -fno-sanitize-recover (any report traps);
#   5. smoke checks of the machine-readable artifacts: a `sldm time
#      --trace` capture must parse as JSON, a bench run with `--json`
#      must append a parseable record, and `sldm time --stats --json`
#      must report identical propagation work counters at --threads 1
#      and --threads 4 (the wavefront determinism contract);
#   6. a compiled-design snapshot smoke under asan: `sldm compile` +
#      `sldm time --load` must match the direct path byte-for-byte at
#      1 and 4 threads, and a bit-flipped .sldc must be rejected;
#   7. a fixed-seed differential fuzzing smoke under asan (`sldm fuzz`,
#      200 iterations: must be clean and deterministic), plus a replay
#      pass over the checked-in repro corpus in testdata/fuzz/;
#   8. a telemetry smoke: `sldm time --prom` must emit well-formed
#      Prometheus text exposition (every line a TYPE comment or a
#      sample, complete _bucket/_sum/_count triads, the analyzer
#      families present), a run must land in the ledger and summarize,
#      and the `sldm bench diff` regression gate must pass on an
#      identity diff and fail on an injected 2x wall-time regression;
#   9. a serve smoke under asan: a pipe-mode load/time round-trip whose
#      report field must match the cold `sldm time` stdout byte-for-
#      byte, a malformed request line that must come back as a named
#      error envelope (not a crash), and the checked-in corrupt ledger
#      corpus (testdata/ledger/) that `sldm ledger summarize` must
#      reject with a located "bad fingerprint" error.  The serve
#      concurrency suite itself runs under tsan in stage 3;
#  10. a chaos smoke under asan: a fixed-seed failpoint schedule
#      (FORMATS.md section 15) driven through pipe-mode serve and a
#      localhost TCP connection must answer exactly one envelope per
#      request line without crashing, every surviving ledger line must
#      parse whole, and SIGTERM must drain the TCP server to exit 0.
#      (tests/chaos_test.cpp is deliberately absent from the tsan
#      stage: it raises real signals, which interact badly with
#      sanitizer signal interposition.)
# Any test failure (or sanitizer report, which fails the test) aborts
# with a nonzero exit.  Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

cmake --preset strict
cmake --build --preset strict -j "$jobs"
echo "check.sh: strict-warnings build clean"

cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs"
echo "check.sh: all tests passed under asan+ubsan"

cmake --preset tsan
cmake --build --preset tsan -j "$jobs" \
  --target parallel_timing_test eco_timing_test telemetry_test serve_test
ctest --preset tsan -j "$jobs" \
  -R 'parallel_timing_test|eco_timing_test|telemetry_test|serve_test'
echo "check.sh: threaded suites passed under tsan"

cmake --preset ubsan
cmake --build --preset ubsan -j "$jobs" \
  --target analyzer_test parallel_timing_test eco_timing_test \
           observability_test sldm_tool
ctest --preset ubsan -j "$jobs" \
  -R 'analyzer_test|parallel_timing_test|eco_timing_test|observability_test'
echo "check.sh: timing suites passed under ubsan"

# Observability smoke: the trace file must be valid JSON with spans,
# and a bench --json record must parse.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
printf 'e in gnd s1 4 8\nd s1 s1 vdd 8 4\ne s1 gnd out 4 8\nd out out vdd 8 4\n@in in\n@out out\n' \
  > "$smoke_dir/chain.sim"
out/ubsan/examples/sldm time "$smoke_dir/chain.sim" --model rc-tree \
  --threads 2 --trace "$smoke_dir/trace.json" > /dev/null
python3 - "$smoke_dir/trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
missing = {"extract", "propagate"} - names
if missing:
    sys.exit(f"trace smoke: missing spans {missing}")
EOF
echo "check.sh: trace smoke file parsed"

# Propagation-metrics sanity: the wavefront engine must do identical
# work (and reach identical arrivals) regardless of the thread count.
for t in 1 4; do
  out/ubsan/examples/sldm time "$smoke_dir/chain.sim" --model rc-tree \
    --threads "$t" --stats --json > "$smoke_dir/stats$t.json"
done
python3 - "$smoke_dir/stats1.json" "$smoke_dir/stats4.json" <<'EOF'
import json, sys
def record(path):
    with open(path) as f:
        return next(json.loads(l) for l in f if l.lstrip().startswith("{"))
a, b = record(sys.argv[1]), record(sys.argv[2])
for key in ("stage_evaluations", "worklist_pushes", "arrival_updates",
            "batches", "max_batch_size"):
    if a[key] != b[key]:
        sys.exit(f"stats smoke: {key} differs across thread counts: "
                 f"{a[key]} vs {b[key]}")
if a["metrics"]["counters"]["propagate.stage_evaluations"] != \
   b["metrics"]["counters"]["propagate.stage_evaluations"]:
    sys.exit("stats smoke: propagate.stage_evaluations differs")
if a["batches"] < 1 or a["stage_evaluations"] < 1:
    sys.exit("stats smoke: no propagation work recorded")
EOF
echo "check.sh: propagation metrics identical at 1 and 4 threads"

cmake --build --preset ubsan -j "$jobs" --target bench_ablation_flow
out/ubsan/bench/bench_ablation_flow --json "$smoke_dir/bench.json" \
  > /dev/null
python3 - "$smoke_dir/bench.json" <<'EOF'
import json, sys
records = [json.loads(line) for line in open(sys.argv[1])]
if not records or "bench" not in records[0] or \
   "wall_seconds" not in records[0]:
    sys.exit("bench smoke: malformed record")
EOF
echo "check.sh: bench --json record parsed"

# Compiled-design snapshot smoke under asan: `sldm compile` then
# `time --load` must print byte-identical timing reports to the direct
# path at 1 and 4 threads (the .sldc round-trip contract, FORMATS.md
# section 11), and a corrupted snapshot must be rejected by checksum.
out/asan/examples/sldm compile "$smoke_dir/chain.sim" \
  -o "$smoke_dir/chain.sldc" > /dev/null
for t in 1 4; do
  out/asan/examples/sldm time "$smoke_dir/chain.sim" --threads "$t" \
    > "$smoke_dir/direct$t.txt" 2> /dev/null
  out/asan/examples/sldm time --load "$smoke_dir/chain.sldc" \
    --threads "$t" > "$smoke_dir/loaded$t.txt" 2> /dev/null
  cmp "$smoke_dir/direct$t.txt" "$smoke_dir/loaded$t.txt" \
    || { echo "check.sh: --load timing differs from direct at" \
         "--threads $t" >&2; exit 1; }
done
python3 - "$smoke_dir/chain.sldc" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[40] ^= 0x5A  # inside the first section payload
open(path, "wb").write(data)
EOF
if out/asan/examples/sldm time --load "$smoke_dir/chain.sldc" \
    > /dev/null 2> "$smoke_dir/corrupt.txt"; then
  echo "check.sh: corrupted snapshot was accepted" >&2; exit 1
fi
grep -q 'checksum mismatch' "$smoke_dir/corrupt.txt" \
  || { echo "check.sh: corrupted snapshot not rejected by checksum" >&2
       exit 1; }
echo "check.sh: snapshot compile/load parity holds, corruption rejected"

# Differential fuzzing smoke under asan: a fixed-seed campaign must run
# clean twice with byte-identical reports (determinism contract), and
# every checked-in repro case must replay green.
out/asan/examples/sldm fuzz --seed 2026 --iterations 200 --threads 4 \
  > "$smoke_dir/fuzz1.txt"
out/asan/examples/sldm fuzz --seed 2026 --iterations 200 --threads 4 \
  > "$smoke_dir/fuzz2.txt"
cmp "$smoke_dir/fuzz1.txt" "$smoke_dir/fuzz2.txt" \
  || { echo "check.sh: fuzz report not deterministic" >&2; exit 1; }
grep -q '^verdict: clean$' "$smoke_dir/fuzz1.txt" \
  || { echo "check.sh: seeded fuzz run found failures" >&2; exit 1; }
out/asan/examples/sldm fuzz --replay testdata/fuzz
echo "check.sh: fuzz smoke clean, repro corpus replays"

# Telemetry smoke: the Prometheus exposition must be well-formed and
# complete, the run ledger must record and summarize the run, and the
# bench regression gate must hold on both sides.
out/ubsan/examples/sldm time "$smoke_dir/chain.sim" --model rc-tree \
  --prom "$smoke_dir/metrics.prom" --ledger "$smoke_dir/ledger.jsonl" \
  > /dev/null
python3 - "$smoke_dir/metrics.prom" <<'EOF'
import re, sys
type_re = re.compile(r"^# TYPE (sldm_[a-zA-Z0-9_:]+) (counter|gauge|histogram)$")
sample_re = re.compile(
    r"^(sldm_[a-zA-Z0-9_:]+)(\{[^{}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$")
families, seen = {}, set()
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line:
        continue
    m = type_re.match(line)
    if m:
        families[m.group(1)] = m.group(2)
        continue
    m = sample_re.match(line)
    if not m:
        sys.exit(f"prom smoke: malformed line: {line!r}")
    seen.add(m.group(1))
for name in ("sldm_propagate_stage_evaluations_total",
             "sldm_extract_seconds", "sldm_propagate_seconds"):
    if name not in seen:
        sys.exit(f"prom smoke: missing sample {name}")
for name, kind in families.items():
    if kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if name + suffix not in seen:
                sys.exit(f"prom smoke: {name} missing {suffix} series")
    elif name not in seen:
        sys.exit(f"prom smoke: TYPE {name} has no sample")
if not any(k == "histogram" for k in families.values()):
    sys.exit("prom smoke: no histogram family emitted")
EOF
out/ubsan/examples/sldm ledger summarize "$smoke_dir/ledger.jsonl" \
  | grep -q 'run:1' \
  || { echo "check.sh: ledger did not record the run" >&2; exit 1; }
echo "check.sh: prometheus exposition well-formed, ledger recorded"

# Bench regression gate, self-test: identity must pass, an injected 2x
# wall-time regression must fail.  Reuses the stage-5 bench record.
out/ubsan/examples/sldm bench diff "$smoke_dir/bench.json" \
  "$smoke_dir/bench.json" --max-regress 50 > /dev/null \
  || { echo "check.sh: bench diff failed an identity diff" >&2; exit 1; }
python3 - "$smoke_dir/bench.json" "$smoke_dir/bench_slow.json" <<'EOF'
import json, sys
with open(sys.argv[2], "w") as out:
    for line in open(sys.argv[1]):
        record = json.loads(line)
        if "wall_seconds" in record:
            record["wall_seconds"] *= 2.0
        out.write(json.dumps(record) + "\n")
EOF
if out/ubsan/examples/sldm bench diff "$smoke_dir/bench.json" \
    "$smoke_dir/bench_slow.json" --max-regress 50 > /dev/null; then
  echo "check.sh: bench diff missed a 2x regression" >&2; exit 1
fi
echo "check.sh: bench diff gate passes identity, catches regression"

# Serve smoke under asan: drive the pipe-mode service with a load/time
# pair plus one malformed line.  The service must answer the malformed
# line with a named error envelope instead of crashing, and the timing
# response's report field must be byte-identical to a cold `sldm time`
# run of the same netlist (the serve parity contract, FORMATS.md
# section 14).
out/asan/examples/sldm time "$smoke_dir/chain.sim" --model lumped \
  > "$smoke_dir/cold_time.txt" 2> /dev/null
printf '%s\n%s\n%s\n' \
  '{"id":1,"kind":"load","path":"'"$smoke_dir"'/chain.sim","model":"lumped"}' \
  '{this line is not json' \
  '{"id":2,"kind":"stats"}' \
  | out/asan/examples/sldm serve > "$smoke_dir/serve1.jsonl"
python3 - "$smoke_dir/serve1.jsonl" "$smoke_dir/serve_time.req" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
by_id = {r.get("id"): r for r in lines}
load = by_id.get(1)
if not load or not load.get("ok"):
    sys.exit(f"serve smoke: load failed: {load}")
bad = [r for r in lines if r.get("error") == "parse"]
if not bad:
    sys.exit("serve smoke: malformed line produced no parse envelope")
if not by_id.get(2, {}).get("ok"):
    sys.exit("serve smoke: stats request after the bad line failed")
fp = load["design"]
with open(sys.argv[2], "w") as out:
    out.write(json.dumps({"id": 3, "kind": "time", "design": fp,
                          "model": "lumped"}) + "\n")
    out.write(json.dumps({"id": 4, "kind": "explain", "design": fp,
                          "model": "lumped", "node": "out"}) + "\n")
    out.write(json.dumps({"id": 5, "kind": "eco", "design": fp,
                          "model": "lumped",
                          "script": "addcap out 5\n"}) + "\n")
EOF
# Full round-trip at --workers 1 (inline execution), so the eco line
# deterministically sees no in-flight readers.
{ printf '%s\n' \
    '{"id":1,"kind":"load","path":"'"$smoke_dir"'/chain.sim","model":"lumped"}'
  cat "$smoke_dir/serve_time.req"; } \
  | out/asan/examples/sldm serve --workers 1 > "$smoke_dir/serve2.jsonl"
python3 - "$smoke_dir/serve2.jsonl" "$smoke_dir/cold_time.txt" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
by_id = {r.get("id"): r for r in lines}
time_resp = by_id.get(3)
if not time_resp or not time_resp.get("ok"):
    sys.exit(f"serve smoke: time request failed: {time_resp}")
cold = open(sys.argv[2]).read()
if time_resp["report"] != cold:
    sys.exit("serve smoke: serve report differs from cold `sldm time`:\n"
             f"serve: {time_resp['report']!r}\ncold:  {cold!r}")
explain = by_id.get(4)
if not explain or not explain.get("ok") or "explain" not in explain:
    sys.exit(f"serve smoke: explain request failed: {explain}")
eco = by_id.get(5)
if not eco or not eco.get("ok") or eco.get("applied") != 1 \
   or eco.get("design") == time_resp.get("design"):
    sys.exit(f"serve smoke: eco request failed or did not re-key: {eco}")
EOF
echo "check.sh: serve pipe round-trip matches cold CLI, errors enveloped"

# Malformed-ledger corpus: the checked-in corrupt line must be rejected
# with a named, located error -- never an uncaught std::exception.
if out/asan/examples/sldm ledger summarize testdata/ledger/corrupt.jsonl \
    > /dev/null 2> "$smoke_dir/ledger_err.txt"; then
  echo "check.sh: corrupt ledger corpus was accepted" >&2; exit 1
fi
grep -q 'bad fingerprint' "$smoke_dir/ledger_err.txt" \
  || { echo "check.sh: corrupt ledger not rejected by name" >&2; exit 1; }
grep -q 'corrupt.jsonl:2' "$smoke_dir/ledger_err.txt" \
  || { echo "check.sh: corrupt ledger error lacks file:line" >&2; exit 1; }
echo "check.sh: corrupt ledger corpus rejected with located error"

# Chaos smoke under asan: arm a fixed-seed failpoint schedule
# (FORMATS.md section 15) and drive the same request mix through
# pipe-mode serve and a localhost TCP connection.  Faults fire at the
# ledger, cache, pool, and dispatch sites; the contract is exactly one
# envelope per request line (ok or a named error), a parseable ledger,
# no crash, and a clean SIGTERM drain to exit 0.
chaos_fp='ledger.append=error*1in3@7,cache.insert=error*1in5@11'
chaos_fp="$chaos_fp,cache.evict=partial*1in2@13,pool.submit=error*1in6@17"
chaos_fp="$chaos_fp,serve.request=error*1in7@19"
fp=$(printf '%s\n' \
  '{"id":1,"kind":"load","path":"'"$smoke_dir"'/chain.sim","model":"lumped"}' \
  | out/asan/examples/sldm serve \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["design"])')
python3 - "$smoke_dir/chain.sim" "$fp" "$smoke_dir/chaos.req" <<'EOF'
import json, sys
sim, fp = sys.argv[1], sys.argv[2]
with open(sys.argv[3], "w") as out:
    for rnd in range(5):
        base = rnd * 10
        out.write(json.dumps({"id": base + 1, "kind": "load", "path": sim,
                              "model": "lumped"}) + "\n")
        out.write(json.dumps({"id": base + 2, "kind": "time", "design": fp,
                              "model": "lumped"}) + "\n")
        out.write(json.dumps({"id": base + 3, "kind": "frobnicate"}) + "\n")
        out.write("{this line is not json\n")
        out.write(json.dumps({"id": base + 5, "kind": "stats"}) + "\n")
EOF
out/asan/examples/sldm serve --workers 2 --failpoints "$chaos_fp" \
  --ledger "$smoke_dir/chaos_ledger.jsonl" \
  < "$smoke_dir/chaos.req" > "$smoke_dir/chaos_pipe.jsonl" \
  2> "$smoke_dir/chaos_pipe.err" \
  || { echo "check.sh: pipe-mode serve crashed under failpoints" >&2
       exit 1; }
python3 - "$smoke_dir/chaos.req" "$smoke_dir/chaos_pipe.jsonl" \
  "$smoke_dir/chaos_ledger.jsonl" <<'EOF'
import json, os, sys
requests = [l for l in open(sys.argv[1]) if l.strip()]
responses = [l for l in open(sys.argv[2]) if l.strip()]
if len(responses) != len(requests):
    sys.exit(f"chaos smoke: {len(requests)} request lines but "
             f"{len(responses)} response lines")
for line in responses:
    r = json.loads(line)
    if not (r.get("ok") or r.get("error")):
        sys.exit(f"chaos smoke: envelope neither ok nor error: {r}")
if os.path.exists(sys.argv[3]):
    for line in open(sys.argv[3]):
        json.loads(line)  # error appends refuse before writing a byte
EOF
echo "check.sh: pipe-mode chaos answered every line, ledger intact"

out/asan/examples/sldm serve --tcp 0 --workers 2 \
  --failpoints "$chaos_fp" 2> "$smoke_dir/chaos_tcp.err" &
serve_pid=$!
port=""
for _ in $(seq 100); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$smoke_dir/chaos_tcp.err")
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || { echo "check.sh: chaos TCP server never announced" >&2
                    kill "$serve_pid" 2> /dev/null; exit 1; }
python3 - "$port" "$smoke_dir/chaos.req" <<'EOF'
import json, socket, sys
with socket.create_connection(("127.0.0.1", int(sys.argv[1])),
                              timeout=30) as s:
    f = s.makefile("rw", encoding="utf-8", newline="\n")
    requests = [l for l in open(sys.argv[2]) if l.strip()]
    for line in requests:
        f.write(line)
    f.flush()
    for _ in requests:
        r = json.loads(f.readline())
        if not (r.get("ok") or r.get("error")):
            sys.exit(f"chaos smoke: TCP envelope neither ok nor error: {r}")
EOF
kill -TERM "$serve_pid"
wait "$serve_pid" \
  || { echo "check.sh: SIGTERM did not drain the TCP server to exit 0" >&2
       exit 1; }
echo "check.sh: TCP chaos answered every line, SIGTERM drained to exit 0"
