#!/usr/bin/env bash
# Sanitizer gate, run before merging:
#   1. asan preset: the full test suite under AddressSanitizer/UBSan;
#   2. tsan preset: the concurrency-sensitive suites (parallel stage
#      extraction and the incremental-update pipeline built on it)
#      under ThreadSanitizer.
# Any test failure (or sanitizer report, which fails the test) aborts
# with a nonzero exit.  Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs"
echo "check.sh: all tests passed under asan+ubsan"

cmake --preset tsan
cmake --build --preset tsan -j "$jobs" \
  --target parallel_timing_test eco_timing_test
ctest --preset tsan -j "$jobs" -R 'parallel_timing_test|eco_timing_test'
echo "check.sh: threaded suites passed under tsan"
