#!/usr/bin/env bash
# Sanitizer gate: configure + build the asan preset and run the full
# test suite under AddressSanitizer/UBSan.  Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs"
echo "check.sh: all tests passed under asan+ubsan"
