# Empty compiler generated dependencies file for sim_file_analysis.
# This may be replaced when dependencies are built.
