file(REMOVE_RECURSE
  "CMakeFiles/sim_file_analysis.dir/sim_file_analysis.cpp.o"
  "CMakeFiles/sim_file_analysis.dir/sim_file_analysis.cpp.o.d"
  "sim_file_analysis"
  "sim_file_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_file_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
