# Empty dependencies file for shifter_timing.
# This may be replaced when dependencies are built.
