file(REMOVE_RECURSE
  "CMakeFiles/shifter_timing.dir/shifter_timing.cpp.o"
  "CMakeFiles/shifter_timing.dir/shifter_timing.cpp.o.d"
  "shifter_timing"
  "shifter_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shifter_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
