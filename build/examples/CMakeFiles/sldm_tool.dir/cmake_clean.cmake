file(REMOVE_RECURSE
  "CMakeFiles/sldm_tool.dir/sldm_cli.cpp.o"
  "CMakeFiles/sldm_tool.dir/sldm_cli.cpp.o.d"
  "sldm"
  "sldm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
