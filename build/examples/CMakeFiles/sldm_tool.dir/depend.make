# Empty dependencies file for sldm_tool.
# This may be replaced when dependencies are built.
