file(REMOVE_RECURSE
  "CMakeFiles/adder_timing.dir/adder_timing.cpp.o"
  "CMakeFiles/adder_timing.dir/adder_timing.cpp.o.d"
  "adder_timing"
  "adder_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
