# Empty dependencies file for adder_timing.
# This may be replaced when dependencies are built.
