# Empty compiler generated dependencies file for calibrate_tech.
# This may be replaced when dependencies are built.
