file(REMOVE_RECURSE
  "CMakeFiles/calibrate_tech.dir/calibrate_tech.cpp.o"
  "CMakeFiles/calibrate_tech.dir/calibrate_tech.cpp.o.d"
  "calibrate_tech"
  "calibrate_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
