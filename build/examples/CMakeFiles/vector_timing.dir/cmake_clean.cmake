file(REMOVE_RECURSE
  "CMakeFiles/vector_timing.dir/vector_timing.cpp.o"
  "CMakeFiles/vector_timing.dir/vector_timing.cpp.o.d"
  "vector_timing"
  "vector_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
