# Empty dependencies file for vector_timing.
# This may be replaced when dependencies are built.
