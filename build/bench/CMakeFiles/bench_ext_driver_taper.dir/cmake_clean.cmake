file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_driver_taper.dir/bench_ext_driver_taper.cpp.o"
  "CMakeFiles/bench_ext_driver_taper.dir/bench_ext_driver_taper.cpp.o.d"
  "bench_ext_driver_taper"
  "bench_ext_driver_taper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_driver_taper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
