
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_driver_taper.cpp" "bench/CMakeFiles/bench_ext_driver_taper.dir/bench_ext_driver_taper.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_driver_taper.dir/bench_ext_driver_taper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compare/CMakeFiles/sldm_compare.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/sldm_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/sldm_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/sldm_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/sldm_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/delay/CMakeFiles/sldm_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/rc/CMakeFiles/sldm_rc.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/sldm_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/sldm_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sldm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sldm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
