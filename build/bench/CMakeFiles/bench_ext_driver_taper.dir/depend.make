# Empty dependencies file for bench_ext_driver_taper.
# This may be replaced when dependencies are built.
