# Empty dependencies file for bench_fig4_carry_chain.
# This may be replaced when dependencies are built.
