# Empty compiler generated dependencies file for bench_ablation_pr_bounds.
# This may be replaced when dependencies are built.
