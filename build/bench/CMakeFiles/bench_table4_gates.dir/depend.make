# Empty dependencies file for bench_table4_gates.
# This may be replaced when dependencies are built.
