file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_precharged_bus.dir/bench_fig5_precharged_bus.cpp.o"
  "CMakeFiles/bench_fig5_precharged_bus.dir/bench_fig5_precharged_bus.cpp.o.d"
  "bench_fig5_precharged_bus"
  "bench_fig5_precharged_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_precharged_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
