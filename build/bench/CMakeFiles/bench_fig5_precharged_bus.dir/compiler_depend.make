# Empty compiler generated dependencies file for bench_fig5_precharged_bus.
# This may be replaced when dependencies are built.
