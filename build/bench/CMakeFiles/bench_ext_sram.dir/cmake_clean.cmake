file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sram.dir/bench_ext_sram.cpp.o"
  "CMakeFiles/bench_ext_sram.dir/bench_ext_sram.cpp.o.d"
  "bench_ext_sram"
  "bench_ext_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
