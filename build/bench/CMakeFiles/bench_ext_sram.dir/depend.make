# Empty dependencies file for bench_ext_sram.
# This may be replaced when dependencies are built.
