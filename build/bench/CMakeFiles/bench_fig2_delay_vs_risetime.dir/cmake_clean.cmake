file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_delay_vs_risetime.dir/bench_fig2_delay_vs_risetime.cpp.o"
  "CMakeFiles/bench_fig2_delay_vs_risetime.dir/bench_fig2_delay_vs_risetime.cpp.o.d"
  "bench_fig2_delay_vs_risetime"
  "bench_fig2_delay_vs_risetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_delay_vs_risetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
