# Empty dependencies file for bench_fig2_delay_vs_risetime.
# This may be replaced when dependencies are built.
