# Empty compiler generated dependencies file for bench_table2_inverter_chains.
# This may be replaced when dependencies are built.
