# Empty dependencies file for bench_fig1_slope_calibration.
# This may be replaced when dependencies are built.
