file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_slope_calibration.dir/bench_fig1_slope_calibration.cpp.o"
  "CMakeFiles/bench_fig1_slope_calibration.dir/bench_fig1_slope_calibration.cpp.o.d"
  "bench_fig1_slope_calibration"
  "bench_fig1_slope_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_slope_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
