# Empty dependencies file for bench_ext_charge_sharing.
# This may be replaced when dependencies are built.
