file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_charge_sharing.dir/bench_ext_charge_sharing.cpp.o"
  "CMakeFiles/bench_ext_charge_sharing.dir/bench_ext_charge_sharing.cpp.o.d"
  "bench_ext_charge_sharing"
  "bench_ext_charge_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_charge_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
