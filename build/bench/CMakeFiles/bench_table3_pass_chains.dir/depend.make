# Empty dependencies file for bench_table3_pass_chains.
# This may be replaced when dependencies are built.
