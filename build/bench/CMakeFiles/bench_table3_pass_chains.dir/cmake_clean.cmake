file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pass_chains.dir/bench_table3_pass_chains.cpp.o"
  "CMakeFiles/bench_table3_pass_chains.dir/bench_table3_pass_chains.cpp.o.d"
  "bench_table3_pass_chains"
  "bench_table3_pass_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pass_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
