file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_decoder.dir/bench_fig6_decoder.cpp.o"
  "CMakeFiles/bench_fig6_decoder.dir/bench_fig6_decoder.cpp.o.d"
  "bench_fig6_decoder"
  "bench_fig6_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
