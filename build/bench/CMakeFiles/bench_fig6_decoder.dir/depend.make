# Empty dependencies file for bench_fig6_decoder.
# This may be replaced when dependencies are built.
