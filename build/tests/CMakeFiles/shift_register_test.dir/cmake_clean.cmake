file(REMOVE_RECURSE
  "CMakeFiles/shift_register_test.dir/shift_register_test.cpp.o"
  "CMakeFiles/shift_register_test.dir/shift_register_test.cpp.o.d"
  "shift_register_test"
  "shift_register_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_register_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
