# Empty dependencies file for shift_register_test.
# This may be replaced when dependencies are built.
