# Empty dependencies file for decoder_pla_test.
# This may be replaced when dependencies are built.
