file(REMOVE_RECURSE
  "CMakeFiles/decoder_pla_test.dir/decoder_pla_test.cpp.o"
  "CMakeFiles/decoder_pla_test.dir/decoder_pla_test.cpp.o.d"
  "decoder_pla_test"
  "decoder_pla_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_pla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
