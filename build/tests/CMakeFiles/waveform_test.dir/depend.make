# Empty dependencies file for waveform_test.
# This may be replaced when dependencies are built.
