# Empty dependencies file for stage_extract_test.
# This may be replaced when dependencies are built.
