file(REMOVE_RECURSE
  "CMakeFiles/stage_extract_test.dir/stage_extract_test.cpp.o"
  "CMakeFiles/stage_extract_test.dir/stage_extract_test.cpp.o.d"
  "stage_extract_test"
  "stage_extract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
