# Empty dependencies file for calib_test.
# This may be replaced when dependencies are built.
