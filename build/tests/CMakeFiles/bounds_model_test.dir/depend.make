# Empty dependencies file for bounds_model_test.
# This may be replaced when dependencies are built.
