file(REMOVE_RECURSE
  "CMakeFiles/bounds_model_test.dir/bounds_model_test.cpp.o"
  "CMakeFiles/bounds_model_test.dir/bounds_model_test.cpp.o.d"
  "bounds_model_test"
  "bounds_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
