# Empty dependencies file for charge_sharing_test.
# This may be replaced when dependencies are built.
