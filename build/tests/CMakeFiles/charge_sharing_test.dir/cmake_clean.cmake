file(REMOVE_RECURSE
  "CMakeFiles/charge_sharing_test.dir/charge_sharing_test.cpp.o"
  "CMakeFiles/charge_sharing_test.dir/charge_sharing_test.cpp.o.d"
  "charge_sharing_test"
  "charge_sharing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charge_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
