file(REMOVE_RECURSE
  "CMakeFiles/flow_fixed_test.dir/flow_fixed_test.cpp.o"
  "CMakeFiles/flow_fixed_test.dir/flow_fixed_test.cpp.o.d"
  "flow_fixed_test"
  "flow_fixed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_fixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
