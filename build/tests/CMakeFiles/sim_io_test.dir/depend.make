# Empty dependencies file for sim_io_test.
# This may be replaced when dependencies are built.
