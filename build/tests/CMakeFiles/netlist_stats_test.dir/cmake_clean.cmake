file(REMOVE_RECURSE
  "CMakeFiles/netlist_stats_test.dir/netlist_stats_test.cpp.o"
  "CMakeFiles/netlist_stats_test.dir/netlist_stats_test.cpp.o.d"
  "netlist_stats_test"
  "netlist_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
