file(REMOVE_RECURSE
  "libsldm_timing.a"
)
