
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/analyzer.cpp" "src/timing/CMakeFiles/sldm_timing.dir/analyzer.cpp.o" "gcc" "src/timing/CMakeFiles/sldm_timing.dir/analyzer.cpp.o.d"
  "/root/repo/src/timing/charge_sharing.cpp" "src/timing/CMakeFiles/sldm_timing.dir/charge_sharing.cpp.o" "gcc" "src/timing/CMakeFiles/sldm_timing.dir/charge_sharing.cpp.o.d"
  "/root/repo/src/timing/constraints.cpp" "src/timing/CMakeFiles/sldm_timing.dir/constraints.cpp.o" "gcc" "src/timing/CMakeFiles/sldm_timing.dir/constraints.cpp.o.d"
  "/root/repo/src/timing/paths.cpp" "src/timing/CMakeFiles/sldm_timing.dir/paths.cpp.o" "gcc" "src/timing/CMakeFiles/sldm_timing.dir/paths.cpp.o.d"
  "/root/repo/src/timing/report.cpp" "src/timing/CMakeFiles/sldm_timing.dir/report.cpp.o" "gcc" "src/timing/CMakeFiles/sldm_timing.dir/report.cpp.o.d"
  "/root/repo/src/timing/slack.cpp" "src/timing/CMakeFiles/sldm_timing.dir/slack.cpp.o" "gcc" "src/timing/CMakeFiles/sldm_timing.dir/slack.cpp.o.d"
  "/root/repo/src/timing/stage_extract.cpp" "src/timing/CMakeFiles/sldm_timing.dir/stage_extract.cpp.o" "gcc" "src/timing/CMakeFiles/sldm_timing.dir/stage_extract.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/delay/CMakeFiles/sldm_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/sldm_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sldm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sldm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rc/CMakeFiles/sldm_rc.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/sldm_analog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
