file(REMOVE_RECURSE
  "CMakeFiles/sldm_timing.dir/analyzer.cpp.o"
  "CMakeFiles/sldm_timing.dir/analyzer.cpp.o.d"
  "CMakeFiles/sldm_timing.dir/charge_sharing.cpp.o"
  "CMakeFiles/sldm_timing.dir/charge_sharing.cpp.o.d"
  "CMakeFiles/sldm_timing.dir/constraints.cpp.o"
  "CMakeFiles/sldm_timing.dir/constraints.cpp.o.d"
  "CMakeFiles/sldm_timing.dir/paths.cpp.o"
  "CMakeFiles/sldm_timing.dir/paths.cpp.o.d"
  "CMakeFiles/sldm_timing.dir/report.cpp.o"
  "CMakeFiles/sldm_timing.dir/report.cpp.o.d"
  "CMakeFiles/sldm_timing.dir/slack.cpp.o"
  "CMakeFiles/sldm_timing.dir/slack.cpp.o.d"
  "CMakeFiles/sldm_timing.dir/stage_extract.cpp.o"
  "CMakeFiles/sldm_timing.dir/stage_extract.cpp.o.d"
  "libsldm_timing.a"
  "libsldm_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
