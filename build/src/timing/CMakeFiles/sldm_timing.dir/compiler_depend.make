# Empty compiler generated dependencies file for sldm_timing.
# This may be replaced when dependencies are built.
