# Empty dependencies file for sldm_util.
# This may be replaced when dependencies are built.
