file(REMOVE_RECURSE
  "CMakeFiles/sldm_util.dir/contracts.cpp.o"
  "CMakeFiles/sldm_util.dir/contracts.cpp.o.d"
  "CMakeFiles/sldm_util.dir/interp.cpp.o"
  "CMakeFiles/sldm_util.dir/interp.cpp.o.d"
  "CMakeFiles/sldm_util.dir/stats.cpp.o"
  "CMakeFiles/sldm_util.dir/stats.cpp.o.d"
  "CMakeFiles/sldm_util.dir/strings.cpp.o"
  "CMakeFiles/sldm_util.dir/strings.cpp.o.d"
  "CMakeFiles/sldm_util.dir/text_table.cpp.o"
  "CMakeFiles/sldm_util.dir/text_table.cpp.o.d"
  "libsldm_util.a"
  "libsldm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
