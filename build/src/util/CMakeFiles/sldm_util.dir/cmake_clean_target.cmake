file(REMOVE_RECURSE
  "libsldm_util.a"
)
