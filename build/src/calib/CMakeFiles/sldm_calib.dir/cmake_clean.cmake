file(REMOVE_RECURSE
  "CMakeFiles/sldm_calib.dir/calibrate.cpp.o"
  "CMakeFiles/sldm_calib.dir/calibrate.cpp.o.d"
  "libsldm_calib.a"
  "libsldm_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
