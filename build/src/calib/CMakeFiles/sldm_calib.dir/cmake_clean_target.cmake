file(REMOVE_RECURSE
  "libsldm_calib.a"
)
