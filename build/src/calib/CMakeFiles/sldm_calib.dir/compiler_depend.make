# Empty compiler generated dependencies file for sldm_calib.
# This may be replaced when dependencies are built.
