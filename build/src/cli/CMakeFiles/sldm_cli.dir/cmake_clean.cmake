file(REMOVE_RECURSE
  "CMakeFiles/sldm_cli.dir/cli.cpp.o"
  "CMakeFiles/sldm_cli.dir/cli.cpp.o.d"
  "libsldm_cli.a"
  "libsldm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
