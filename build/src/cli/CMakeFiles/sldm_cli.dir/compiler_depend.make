# Empty compiler generated dependencies file for sldm_cli.
# This may be replaced when dependencies are built.
