file(REMOVE_RECURSE
  "libsldm_cli.a"
)
