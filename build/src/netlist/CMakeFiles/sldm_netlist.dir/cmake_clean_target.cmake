file(REMOVE_RECURSE
  "libsldm_netlist.a"
)
