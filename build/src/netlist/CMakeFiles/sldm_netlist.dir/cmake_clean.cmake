file(REMOVE_RECURSE
  "CMakeFiles/sldm_netlist.dir/checks.cpp.o"
  "CMakeFiles/sldm_netlist.dir/checks.cpp.o.d"
  "CMakeFiles/sldm_netlist.dir/netlist.cpp.o"
  "CMakeFiles/sldm_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/sldm_netlist.dir/sim_io.cpp.o"
  "CMakeFiles/sldm_netlist.dir/sim_io.cpp.o.d"
  "CMakeFiles/sldm_netlist.dir/stats.cpp.o"
  "CMakeFiles/sldm_netlist.dir/stats.cpp.o.d"
  "libsldm_netlist.a"
  "libsldm_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
