# Empty dependencies file for sldm_netlist.
# This may be replaced when dependencies are built.
