# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netlist")
subdirs("tech")
subdirs("analog")
subdirs("rc")
subdirs("delay")
subdirs("switchsim")
subdirs("timing")
subdirs("calib")
subdirs("gen")
subdirs("compare")
subdirs("cli")
