# Empty dependencies file for sldm_tech.
# This may be replaced when dependencies are built.
