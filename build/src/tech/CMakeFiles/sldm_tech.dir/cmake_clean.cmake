file(REMOVE_RECURSE
  "CMakeFiles/sldm_tech.dir/tech.cpp.o"
  "CMakeFiles/sldm_tech.dir/tech.cpp.o.d"
  "CMakeFiles/sldm_tech.dir/tech_io.cpp.o"
  "CMakeFiles/sldm_tech.dir/tech_io.cpp.o.d"
  "libsldm_tech.a"
  "libsldm_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
