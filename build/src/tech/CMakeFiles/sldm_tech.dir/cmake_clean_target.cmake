file(REMOVE_RECURSE
  "libsldm_tech.a"
)
