
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delay/bounds.cpp" "src/delay/CMakeFiles/sldm_delay.dir/bounds.cpp.o" "gcc" "src/delay/CMakeFiles/sldm_delay.dir/bounds.cpp.o.d"
  "/root/repo/src/delay/lumped.cpp" "src/delay/CMakeFiles/sldm_delay.dir/lumped.cpp.o" "gcc" "src/delay/CMakeFiles/sldm_delay.dir/lumped.cpp.o.d"
  "/root/repo/src/delay/rctree.cpp" "src/delay/CMakeFiles/sldm_delay.dir/rctree.cpp.o" "gcc" "src/delay/CMakeFiles/sldm_delay.dir/rctree.cpp.o.d"
  "/root/repo/src/delay/slope.cpp" "src/delay/CMakeFiles/sldm_delay.dir/slope.cpp.o" "gcc" "src/delay/CMakeFiles/sldm_delay.dir/slope.cpp.o.d"
  "/root/repo/src/delay/slope_table.cpp" "src/delay/CMakeFiles/sldm_delay.dir/slope_table.cpp.o" "gcc" "src/delay/CMakeFiles/sldm_delay.dir/slope_table.cpp.o.d"
  "/root/repo/src/delay/stage.cpp" "src/delay/CMakeFiles/sldm_delay.dir/stage.cpp.o" "gcc" "src/delay/CMakeFiles/sldm_delay.dir/stage.cpp.o.d"
  "/root/repo/src/delay/unit.cpp" "src/delay/CMakeFiles/sldm_delay.dir/unit.cpp.o" "gcc" "src/delay/CMakeFiles/sldm_delay.dir/unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rc/CMakeFiles/sldm_rc.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sldm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sldm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/sldm_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/sldm_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
