# Empty dependencies file for sldm_delay.
# This may be replaced when dependencies are built.
