file(REMOVE_RECURSE
  "CMakeFiles/sldm_delay.dir/bounds.cpp.o"
  "CMakeFiles/sldm_delay.dir/bounds.cpp.o.d"
  "CMakeFiles/sldm_delay.dir/lumped.cpp.o"
  "CMakeFiles/sldm_delay.dir/lumped.cpp.o.d"
  "CMakeFiles/sldm_delay.dir/rctree.cpp.o"
  "CMakeFiles/sldm_delay.dir/rctree.cpp.o.d"
  "CMakeFiles/sldm_delay.dir/slope.cpp.o"
  "CMakeFiles/sldm_delay.dir/slope.cpp.o.d"
  "CMakeFiles/sldm_delay.dir/slope_table.cpp.o"
  "CMakeFiles/sldm_delay.dir/slope_table.cpp.o.d"
  "CMakeFiles/sldm_delay.dir/stage.cpp.o"
  "CMakeFiles/sldm_delay.dir/stage.cpp.o.d"
  "CMakeFiles/sldm_delay.dir/unit.cpp.o"
  "CMakeFiles/sldm_delay.dir/unit.cpp.o.d"
  "libsldm_delay.a"
  "libsldm_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
