file(REMOVE_RECURSE
  "libsldm_delay.a"
)
