# Empty compiler generated dependencies file for sldm_compare.
# This may be replaced when dependencies are built.
