file(REMOVE_RECURSE
  "libsldm_compare.a"
)
