file(REMOVE_RECURSE
  "CMakeFiles/sldm_compare.dir/harness.cpp.o"
  "CMakeFiles/sldm_compare.dir/harness.cpp.o.d"
  "libsldm_compare.a"
  "libsldm_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
