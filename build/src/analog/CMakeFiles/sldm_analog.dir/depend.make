# Empty dependencies file for sldm_analog.
# This may be replaced when dependencies are built.
