
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/circuit.cpp" "src/analog/CMakeFiles/sldm_analog.dir/circuit.cpp.o" "gcc" "src/analog/CMakeFiles/sldm_analog.dir/circuit.cpp.o.d"
  "/root/repo/src/analog/elaborate.cpp" "src/analog/CMakeFiles/sldm_analog.dir/elaborate.cpp.o" "gcc" "src/analog/CMakeFiles/sldm_analog.dir/elaborate.cpp.o.d"
  "/root/repo/src/analog/export.cpp" "src/analog/CMakeFiles/sldm_analog.dir/export.cpp.o" "gcc" "src/analog/CMakeFiles/sldm_analog.dir/export.cpp.o.d"
  "/root/repo/src/analog/matrix.cpp" "src/analog/CMakeFiles/sldm_analog.dir/matrix.cpp.o" "gcc" "src/analog/CMakeFiles/sldm_analog.dir/matrix.cpp.o.d"
  "/root/repo/src/analog/sparse.cpp" "src/analog/CMakeFiles/sldm_analog.dir/sparse.cpp.o" "gcc" "src/analog/CMakeFiles/sldm_analog.dir/sparse.cpp.o.d"
  "/root/repo/src/analog/transient.cpp" "src/analog/CMakeFiles/sldm_analog.dir/transient.cpp.o" "gcc" "src/analog/CMakeFiles/sldm_analog.dir/transient.cpp.o.d"
  "/root/repo/src/analog/waveform.cpp" "src/analog/CMakeFiles/sldm_analog.dir/waveform.cpp.o" "gcc" "src/analog/CMakeFiles/sldm_analog.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/sldm_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sldm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sldm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
