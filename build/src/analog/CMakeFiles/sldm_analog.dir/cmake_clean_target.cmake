file(REMOVE_RECURSE
  "libsldm_analog.a"
)
