file(REMOVE_RECURSE
  "CMakeFiles/sldm_analog.dir/circuit.cpp.o"
  "CMakeFiles/sldm_analog.dir/circuit.cpp.o.d"
  "CMakeFiles/sldm_analog.dir/elaborate.cpp.o"
  "CMakeFiles/sldm_analog.dir/elaborate.cpp.o.d"
  "CMakeFiles/sldm_analog.dir/export.cpp.o"
  "CMakeFiles/sldm_analog.dir/export.cpp.o.d"
  "CMakeFiles/sldm_analog.dir/matrix.cpp.o"
  "CMakeFiles/sldm_analog.dir/matrix.cpp.o.d"
  "CMakeFiles/sldm_analog.dir/sparse.cpp.o"
  "CMakeFiles/sldm_analog.dir/sparse.cpp.o.d"
  "CMakeFiles/sldm_analog.dir/transient.cpp.o"
  "CMakeFiles/sldm_analog.dir/transient.cpp.o.d"
  "CMakeFiles/sldm_analog.dir/waveform.cpp.o"
  "CMakeFiles/sldm_analog.dir/waveform.cpp.o.d"
  "libsldm_analog.a"
  "libsldm_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
