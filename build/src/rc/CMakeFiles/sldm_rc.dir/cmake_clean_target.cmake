file(REMOVE_RECURSE
  "libsldm_rc.a"
)
