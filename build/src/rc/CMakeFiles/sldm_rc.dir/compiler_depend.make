# Empty compiler generated dependencies file for sldm_rc.
# This may be replaced when dependencies are built.
