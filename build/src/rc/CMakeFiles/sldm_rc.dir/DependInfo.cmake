
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rc/rc_tree.cpp" "src/rc/CMakeFiles/sldm_rc.dir/rc_tree.cpp.o" "gcc" "src/rc/CMakeFiles/sldm_rc.dir/rc_tree.cpp.o.d"
  "/root/repo/src/rc/resistive_network.cpp" "src/rc/CMakeFiles/sldm_rc.dir/resistive_network.cpp.o" "gcc" "src/rc/CMakeFiles/sldm_rc.dir/resistive_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sldm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/sldm_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/sldm_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sldm_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
