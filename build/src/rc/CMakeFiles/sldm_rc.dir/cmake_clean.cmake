file(REMOVE_RECURSE
  "CMakeFiles/sldm_rc.dir/rc_tree.cpp.o"
  "CMakeFiles/sldm_rc.dir/rc_tree.cpp.o.d"
  "CMakeFiles/sldm_rc.dir/resistive_network.cpp.o"
  "CMakeFiles/sldm_rc.dir/resistive_network.cpp.o.d"
  "libsldm_rc.a"
  "libsldm_rc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_rc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
