file(REMOVE_RECURSE
  "CMakeFiles/sldm_switchsim.dir/simulator.cpp.o"
  "CMakeFiles/sldm_switchsim.dir/simulator.cpp.o.d"
  "libsldm_switchsim.a"
  "libsldm_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
