file(REMOVE_RECURSE
  "libsldm_switchsim.a"
)
