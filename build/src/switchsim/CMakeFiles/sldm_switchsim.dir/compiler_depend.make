# Empty compiler generated dependencies file for sldm_switchsim.
# This may be replaced when dependencies are built.
