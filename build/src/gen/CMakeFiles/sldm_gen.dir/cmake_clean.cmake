file(REMOVE_RECURSE
  "CMakeFiles/sldm_gen.dir/builder.cpp.o"
  "CMakeFiles/sldm_gen.dir/builder.cpp.o.d"
  "CMakeFiles/sldm_gen.dir/generators.cpp.o"
  "CMakeFiles/sldm_gen.dir/generators.cpp.o.d"
  "libsldm_gen.a"
  "libsldm_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sldm_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
