file(REMOVE_RECURSE
  "libsldm_gen.a"
)
