# Empty compiler generated dependencies file for sldm_gen.
# This may be replaced when dependencies are built.
