// Ablation B: Rubinstein-Penfield-Horowitz bounds vs the Elmore point
// estimate on pass-transistor chains.
//
// For each chain length, the stage's RC tree yields a [lower, upper]
// bracket on the 50% crossing; the table reports the bracket, the Elmore
// point estimate, and where the simulator actually lands.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "rc/rc_tree.h"
#include "timing/stage_extract.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  benchio::BenchMain bench("bench_ablation_pr_bounds", argc, argv);
  std::cout << "Ablation B: RPH bounds tightness on pass chains (nMOS)\n\n";
  const CompareContext& ctx = CompareContext::get(Style::kNmos);

  TextTable table({"chain", "lower (ns)", "elmore ln2*Td (ns)",
                   "upper (ns)", "upper/lower", "sim stage (ns)"});
  for (int n : {1, 2, 4, 6, 8}) {
    const GeneratedCircuit g = pass_chain(Style::kNmos, n);

    // The full discharge stage: driver + n passes, ending at p<n>.
    const NodeId dest = *g.netlist.find_node("p" + std::to_string(n));
    const auto stages = stages_to(g.netlist, dest, Transition::kFall);
    if (stages.empty()) continue;
    std::size_t longest = 0;
    for (std::size_t i = 1; i < stages.size(); ++i) {
      if (stages[i].path.size() > stages[longest].path.size()) longest = i;
    }
    const Stage stage =
        make_stage(g.netlist, ctx.tech(), stages[longest], 0.0);
    const RcTree tree = to_rc_tree(stage);
    const std::size_t leaf = stage.elements.size();
    const auto bounds = tree.rph_bounds(leaf, 0.5);
    const Seconds elmore50 = tree.delay_50(leaf);

    // Simulator reference for the same internal node (not the output
    // inverter): measure the p<n> 50% fall directly.
    GeneratedCircuit probe = g;
    probe.netlist.mark_output(g.netlist.node(dest).name);
    probe.output = dest;
    const SimulateOnlyResult sim =
        run_simulation(probe, ctx.tech(), 0.2e-9);
    benchio::note_circuit(g.name, g.netlist.device_count());
    benchio::note_error_pct(100.0 * (elmore50 - sim.delay) / sim.delay);

    table.add_row({std::to_string(n), format("%.3f", to_ns(bounds.lower)),
                   format("%.3f", to_ns(elmore50)),
                   format("%.3f", to_ns(bounds.upper)),
                   format("%.2f", bounds.upper / std::max(1e-15,
                                                          bounds.lower)),
                   format("%.3f", to_ns(sim.delay))});
  }
  std::cout << table.to_string();
  std::cout << "\n(sim stage delay includes the driver's own response to "
               "the 0.2 ns input edge)\n";
  return 0;
}
