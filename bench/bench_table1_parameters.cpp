// Table 1 (reconstruction): calibrated model parameters per technology.
//
// The paper's models are parameterized by per-device-type effective
// resistances (fit from SPICE).  This bench prints the analytic seeds,
// the calibrated values, and the slope-table breakpoints for both
// built-in processes -- the reproduction of the paper's parameter table.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

void print_style(sldm::Style style) {
  using namespace sldm;
  const CompareContext& ctx = CompareContext::get(style);
  const Tech base = style == Style::kNmos ? nmos4() : cmos3();
  const Tech& cal = ctx.tech();

  std::cout << "== " << cal.name() << " (" << to_string(style)
            << ", vdd = " << cal.vdd() << " V) ==\n\n";

  TextTable table({"device", "transition", "R/sq analytic (kOhm)",
                   "R/sq calibrated (kOhm)", "change"});
  for (const CalibrationCurve& curve : ctx.calibration().curves) {
    const Ohms seed = base.resistance_sq(curve.type, curve.dir);
    const Ohms fit = cal.resistance_sq(curve.type, curve.dir);
    table.add_row({to_string(curve.type), to_string(curve.dir),
                   format("%.2f", to_kohm(seed)),
                   format("%.2f", to_kohm(fit)),
                   format("%+.1f%%", 100.0 * (fit - seed) / seed)});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "slope-model tables (delay multiplier m(rho)):\n";
  TextTable tt({"device", "transition", "rho", "m(rho)", "s(rho)"});
  for (const CalibrationCurve& curve : ctx.calibration().curves) {
    for (const auto& p : curve.points) {
      tt.add_row({to_string(curve.type), to_string(curve.dir),
                  format("%.2f", p.rho), format("%.3f", p.delay_mult),
                  format("%.3f", p.slope_mult)});
    }
  }
  std::cout << tt.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_table1_parameters", argc, argv);
  std::cout << "Table 1 (reconstructed): technology parameters for the "
               "switch-level delay models\n\n";
  print_style(sldm::Style::kNmos);
  print_style(sldm::Style::kCmos);
  return 0;
}
