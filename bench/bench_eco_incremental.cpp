// Incremental ECO timing vs full re-analysis.
//
// The use case behind TimingAnalyzer::update(): a designer nudges one
// transistor and asks for new arrival times.  Crystal rebuilt its whole
// analysis; the incremental path re-extracts only the dirty
// channel-connected components and re-propagates from the damage
// frontier.  This bench measures both on the random-logic scaling
// family and checks that the answers stay bit-identical.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_io.h"
#include "delay/rctree.h"
#include "design/compiled_design.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sldm;
  benchio::BenchMain bench("bench_eco_incremental", argc, argv);
  std::cout << "Extension: incremental ECO update vs full rebuild "
               "(single-device width edits, rc-tree model, 1 ns edge)\n\n";
  const Tech tech = cmos3();
  const RcTreeModel model;

  struct Config {
    int layers;
    int width;
  };
  const std::vector<Config> configs = {{6, 10}, {9, 16}, {12, 24}};
  constexpr int kEdits = 40;

  TextTable table({"circuit", "devices", "rebuild (us)", "update (us)",
                   "speedup", "dirty CCCs", "reused stages"});
  bool all_identical = true;
  for (const Config& c : configs) {
    const GeneratedCircuit g =
        random_logic(Style::kCmos, c.layers, c.width, 0xEC0);
    Netlist nl = g.netlist;
    benchio::note_circuit(g.name, nl.device_count(),
                          design_fingerprint(nl, tech));

    TimingAnalyzer inc(nl, tech, model);
    inc.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    inc.run();

    double update_total = 0.0;
    double rebuild_total = 0.0;
    std::size_t dirty_total = 0;
    std::size_t reused_total = 0;
    for (int i = 0; i < kEdits; ++i) {
      // Walk the device list so successive edits hit different CCCs.
      const DeviceId d(static_cast<std::uint32_t>(
          (static_cast<std::size_t>(i) * 7919u) % nl.device_count()));
      nl.set_width(d, nl.device(d).width * (i % 2 == 0 ? 1.25 : 0.8));

      double t0 = now_seconds();
      inc.update();
      update_total += now_seconds() - t0;
      dirty_total += inc.stats().dirty_cccs;
      reused_total += inc.stats().reused_stages;

      t0 = now_seconds();
      TimingAnalyzer fresh(nl, tech, model);
      fresh.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
      fresh.run();
      rebuild_total += now_seconds() - t0;

      for (NodeId n : nl.all_nodes()) {
        for (Transition dir : {Transition::kRise, Transition::kFall}) {
          const auto a = inc.arrival(n, dir);
          const auto b = fresh.arrival(n, dir);
          if (a.has_value() != b.has_value() ||
              (a && (a->time != b->time || a->slope != b->slope))) {
            all_identical = false;
          }
        }
      }
    }
    const double update_us = update_total / kEdits * 1e6;
    const double rebuild_us = rebuild_total / kEdits * 1e6;
    table.add_row({g.name, std::to_string(nl.device_count()),
                   format("%.1f", rebuild_us), format("%.1f", update_us),
                   format("%.1fx", rebuild_us / update_us),
                   format("%.1f", static_cast<double>(dirty_total) / kEdits),
                   format("%.0f",
                          static_cast<double>(reused_total) / kEdits)});
  }
  std::cout << table.to_string();
  std::cout << "\narrivals bit-identical to rebuild after every edit: "
            << (all_identical ? "yes" : "NO (BUG)") << '\n';
  return all_identical ? 0 : 1;
}
