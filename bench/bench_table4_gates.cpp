// Table 4 (reconstruction): logic-gate delay accuracy.
//
// NAND2/3/4 and NOR2/3/4 in both processes.  The stimulated input is the
// worst-case one; the output is observed through an inverter so both a
// gate edge and a restoring edge are exercised.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

void run_style(sldm::Style style) {
  using namespace sldm;
  const CompareContext& ctx = CompareContext::get(style);
  const Seconds input_slope = 2e-9;

  std::cout << "== " << to_string(style) << " ==\n";
  TextTable table({"gate", "devices", "sim (ns)", "lumped (ns)", "err%",
                   "rc-tree (ns)", "err%", "slope (ns)", "err%"});
  auto add = [&](const GeneratedCircuit& g) {
    const ComparisonResult r = run_comparison(g, ctx, input_slope);
    const ModelResult& lumped = r.model("lumped-rc");
    const ModelResult& rctree = r.model("rc-tree");
    const ModelResult& slope = r.model("slope");
    benchio::note_circuit(r.circuit, r.devices);
    benchio::note_error_pct(slope.error_pct);
    table.add_row({g.name, std::to_string(r.devices),
                   format("%.2f", to_ns(r.reference_delay)),
                   format("%.2f", to_ns(lumped.delay)),
                   format("%+.0f", lumped.error_pct),
                   format("%.2f", to_ns(rctree.delay)),
                   format("%+.0f", rctree.error_pct),
                   format("%.2f", to_ns(slope.delay)),
                   format("%+.0f", slope.error_pct)});
  };
  for (int k : {2, 3, 4}) add(nand_chain(style, k));
  for (int k : {2, 3, 4}) add(nor_chain(style, k));
  std::cout << table.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_table4_gates", argc, argv);
  std::cout << "Table 4 (reconstructed): logic gates, models vs analog "
               "simulation (2 ns input edge)\n\n";
  run_style(sldm::Style::kNmos);
  run_style(sldm::Style::kCmos);
  return 0;
}
