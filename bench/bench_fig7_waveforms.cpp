// Fig. 7 (reconstruction): waveforms along a chain, simulator vs model
// event times.
//
// The paper illustrates its models with node waveforms; this bench
// simulates a 4-stage nMOS inverter chain, writes the waveforms as CSV
// and digitized VCD next to the binary, and prints each stage's 50%
// crossing from the simulator alongside the slope model's predicted
// arrival -- the data behind the figure.
#include <iostream>

#include "analog/elaborate.h"
#include "bench_io.h"
#include "analog/export.h"
#include "analog/transient.h"
#include "compare/harness.h"
#include "delay/slope.h"
#include "timing/analyzer.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  benchio::BenchMain bench("bench_fig7_waveforms", argc, argv);
  std::cout << "Fig. 7 (reconstructed): chain waveforms, simulator "
               "crossings vs slope-model arrivals\n\n";
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 4, 2);
  const Seconds edge = 2e-9;
  const Seconds t0 = 2e-9;  // harness edge launch time

  // Analog run.
  std::vector<Stimulus> stimuli;
  stimuli.push_back(
      {g.input, PwlSource::edge(0.0, ctx.tech().vdd(), t0, edge)});
  const Elaboration elab = elaborate(g.netlist, ctx.tech(), stimuli);
  TransientOptions topt;
  topt.t_stop = 40e-9;
  const TransientResult sim = simulate(elab.circuit(), topt);

  // Timing run.
  SlopeModel model(ctx.calibration().tables);
  TimingAnalyzer an(g.netlist, ctx.tech(), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, edge);
  an.run();

  // Collect the chain nodes.
  std::vector<NodeId> chain = {g.input};
  for (int i = 1; i <= 4; ++i) {
    chain.push_back(*g.netlist.find_node("s" + std::to_string(i)));
  }

  std::vector<WaveformColumn> columns;
  for (NodeId n : chain) {
    columns.push_back(
        {g.netlist.node(n).name.str(), &sim.at(elab.analog(n))});
  }
  write_waveforms_csv_file(columns, "fig7_waveforms.csv");
  write_waveforms_vcd_file(columns, ctx.tech().vdd(), "fig7_waveforms.vcd");
  std::cout << "wrote fig7_waveforms.csv and fig7_waveforms.vcd\n\n";

  TextTable table({"node", "transition", "sim 50% (ns)",
                   "slope model (ns)", "diff (ns)"});
  const Volts v_mid = ctx.tech().v_switch();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Transition dir =
        (i % 2 == 1) ? Transition::kFall : Transition::kRise;
    const auto cross = sim.at(elab.analog(chain[i]))
                           .cross(v_mid, dir, t0);
    const auto arrival = an.arrival(chain[i], dir);
    if (!cross || !arrival) continue;
    // The analyzer's t=0 is the input's 50% point: t0 + edge/2.
    const Seconds sim_rel = *cross - (t0 + edge / 2.0);
    benchio::note_circuit(g.name, g.netlist.device_count());
    benchio::note_error_pct(100.0 * (arrival->time - sim_rel) / sim_rel);
    table.add_row({g.netlist.node(chain[i]).name.str(), to_string(dir),
                   format("%.3f", to_ns(sim_rel)),
                   format("%.3f", to_ns(arrival->time)),
                   format("%+.3f", to_ns(arrival->time - sim_rel))});
  }
  std::cout << table.to_string();
  return 0;
}
