// Ablation C: the effect of flow attributes on pass-transistor arrays.
//
// Without annotations the analyzer must assume signals can move both
// ways through every pass device, so an N x N barrel shifter yields a
// combinatorial pile of backward paths; annotating data->output flow
// (Crystal's fix for exactly this structure) collapses the stage count
// and the analysis time while leaving the reported arrival intact.
#include <chrono>
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "delay/rctree.h"
#include "timing/analyzer.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

using namespace sldm;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Annotates every select-gated pass device with data->output flow.
void annotate(GeneratedCircuit& g) {
  for (DeviceId d : g.netlist.device_ids()) {
    const Transistor& t = g.netlist.device(d);
    if (t.type != TransistorType::kNEnhancement) continue;
    const std::string_view gate = g.netlist.node(t.gate).name;
    if (gate.starts_with("sh")) {
      g.netlist.set_flow(d, Flow::kSourceToDrain);
    }
  }
}

struct Row {
  std::size_t stages = 0;
  Seconds arrival = 0.0;
  double seconds = 0.0;
};

Row analyze(const GeneratedCircuit& g, const Tech& tech) {
  const RcTreeModel model;
  const double t0 = now_s();
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  Row row;
  row.seconds = now_s() - t0;
  row.stages = an.stages().size();
  const auto worst = an.worst_arrival(true);
  row.arrival = worst ? worst->time : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_ablation_flow", argc, argv);
  std::cout << "Ablation C: flow attributes on barrel shifters (nMOS, "
               "rc-tree model)\n\n";
  const Tech tech = nmos4();
  TextTable table({"bits", "stages (plain)", "stages (flow)",
                   "time plain (s)", "time flow (s)", "arrival plain (ns)",
                   "arrival flow (ns)"});
  for (int bits : {2, 3, 4, 5, 6}) {
    GeneratedCircuit plain = barrel_shifter(Style::kNmos, bits);
    GeneratedCircuit flow = barrel_shifter(Style::kNmos, bits);
    annotate(flow);
    sldm::benchio::note_circuit(plain.name,
                                plain.netlist.device_count());
    const Row a = analyze(plain, tech);
    const Row b = analyze(flow, tech);
    table.add_row({std::to_string(bits), std::to_string(a.stages),
                   std::to_string(b.stages), format("%.4f", a.seconds),
                   format("%.4f", b.seconds),
                   format("%.3f", to_ns(a.arrival)),
                   format("%.3f", to_ns(b.arrival))});
  }
  std::cout << table.to_string();
  std::cout << "\n(the analyzed worst path is forward in both cases; the "
               "annotation removes only false backward stages)\n";
  return 0;
}
