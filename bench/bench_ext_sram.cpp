// Extension: RAM read-path timing vs column height.
//
// The historically motivating Crystal workload: a precharged bit line
// loaded by N access transistors, read through one selected cell.  The
// bit-line load grows linearly with N; the discharge path stays two
// transistors long.  Models vs simulator across column heights.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  benchio::BenchMain bench("bench_ext_sram", argc, argv);
  std::cout << "Extension: SRAM read column, bit-line discharge vs rows "
               "(nMOS, 1 ns wordline edge)\n\n";
  const CompareContext& ctx = CompareContext::get(Style::kNmos);

  TextTable table({"rows", "devices", "sim (ns)", "lumped (ns)", "err%",
                   "rc-tree (ns)", "err%", "slope (ns)", "err%"});
  for (int rows : {4, 8, 16, 32, 64}) {
    const ComparisonResult r =
        run_comparison(sram_read_column(Style::kNmos, rows), ctx, 1e-9);
    const ModelResult& lumped = r.model("lumped-rc");
    const ModelResult& rctree = r.model("rc-tree");
    const ModelResult& slope = r.model("slope");
    benchio::note_circuit(r.circuit, r.devices);
    benchio::note_error_pct(slope.error_pct);
    table.add_row({std::to_string(rows), std::to_string(r.devices),
                   format("%.2f", to_ns(r.reference_delay)),
                   format("%.2f", to_ns(lumped.delay)),
                   format("%+.0f", lumped.error_pct),
                   format("%.2f", to_ns(rctree.delay)),
                   format("%+.0f", rctree.error_pct),
                   format("%.2f", to_ns(slope.delay)),
                   format("%+.0f", slope.error_pct)});
  }
  std::cout << table.to_string();
  return 0;
}
