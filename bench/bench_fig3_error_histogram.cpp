// Fig. 3 (reconstruction): error distribution across the benchmark suite.
//
// Every circuit family of the evaluation (inverter chains, gates, pass
// chains, driver chains, shifter, carry chain, precharged bus) is run
// through all three models; per-model signed-error statistics and ASCII
// histograms reproduce the paper's accuracy survey.
#include <iostream>
#include <map>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

void run_style(sldm::Style style) {
  using namespace sldm;
  const CompareContext& ctx = CompareContext::get(style);
  std::map<std::string, std::vector<double>> errors;

  std::cout << "== " << to_string(style) << " ==\n";
  TextTable rows({"circuit", "sim (ns)", "lumped err%", "rc-tree err%",
                  "slope err%"});
  for (const GeneratedCircuit& g : accuracy_suite(style)) {
    const ComparisonResult r = run_comparison(g, ctx, 2e-9);
    benchio::note_circuit(r.circuit, r.devices);
    benchio::note_error_pct(r.model("slope").error_pct);
    rows.add_row({g.name, format("%.2f", to_ns(r.reference_delay)),
                  format("%+.0f", r.model("lumped-rc").error_pct),
                  format("%+.0f", r.model("rc-tree").error_pct),
                  format("%+.0f", r.model("slope").error_pct)});
    for (const ModelResult& m : r.models) {
      errors[m.model].push_back(m.error_pct);
    }
  }
  std::cout << rows.to_string() << '\n';

  TextTable summary({"model", "mean err%", "|err| mean", "stddev", "min",
                     "max"});
  for (const auto& [model, errs] : errors) {
    std::vector<double> abs_errs;
    for (double e : errs) abs_errs.push_back(std::abs(e));
    const Summary s = summarize(errs);
    const Summary sa = summarize(abs_errs);
    summary.add_row({model, format("%+.1f", s.mean),
                     format("%.1f", sa.mean), format("%.1f", s.stddev),
                     format("%+.1f", s.min), format("%+.1f", s.max)});
  }
  std::cout << summary.to_string() << '\n';

  for (const auto& [model, errs] : errors) {
    Histogram h(-100.0, 100.0, 10);
    for (double e : errs) h.add(e);
    std::cout << model << " signed error histogram (%):\n"
              << h.to_ascii(40) << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_fig3_error_histogram", argc, argv);
  std::cout << "Fig. 3 (reconstructed): model error distribution across the "
               "benchmark suite (2 ns edges)\n\n";
  run_style(sldm::Style::kNmos);
  run_style(sldm::Style::kCmos);
  return 0;
}
