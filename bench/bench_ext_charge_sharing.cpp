// Extension: charge-sharing prediction vs analog redistribution.
//
// For precharged buses with growing driver counts (and pass chains of
// growing depth hanging off a dynamic node), compare the static
// charge-sharing analysis against the simulator's settled level with
// all selects enabled and all pull-downs off.
#include <iostream>

#include "analog/elaborate.h"
#include "bench_io.h"
#include "analog/transient.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/charge_sharing.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

using namespace sldm;

/// Simulated settled bus level with all selects on, all data off.
Volts settled_bus_level(const GeneratedCircuit& g, const Tech& tech) {
  std::vector<Stimulus> stimuli;
  for (NodeId n : g.netlist.node_ids()) {
    const Node& info = g.netlist.node(n);
    if (!info.is_input) continue;
    const bool is_select = info.name.view().starts_with("sel");
    stimuli.push_back({n, PwlSource::dc(is_select ? tech.vdd() : 0.0)});
  }
  const Elaboration e = elaborate(g.netlist, tech, stimuli);
  TransientOptions opt;
  opt.t_stop = 60e-9;
  e.apply_precharge(g.netlist, tech.vdd(), opt);
  const TransientResult r = simulate(e.circuit(), opt);
  const NodeId bus = *g.netlist.find_node("bus");
  const Waveform& w = r.at(e.analog(bus));
  return w.value(w.size() - 1);
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_ext_charge_sharing", argc, argv);
  std::cout << "Extension: charge sharing on precharged buses, static "
               "analysis vs simulator\n\n";
  const Tech tech = nmos4();

  TextTable table({"drivers", "hold cap (fF)", "share cap (fF)",
                   "predicted V", "simulated V", "flag at 2.5 V"});
  for (int drivers : {1, 2, 4, 8, 16}) {
    const GeneratedCircuit g = precharged_bus(Style::kNmos, drivers);
    const NodeId bus = *g.netlist.find_node("bus");
    const ChargeSharingResult pred =
        analyze_charge_sharing(g.netlist, tech, bus);
    const Volts sim = settled_bus_level(g, tech);
    sldm::benchio::note_circuit(g.name, g.netlist.device_count());
    sldm::benchio::note_error_pct(100.0 * (pred.v_after - sim) / sim);
    table.add_row({std::to_string(drivers), format("%.1f", to_fF(pred.node_cap)),
                   format("%.1f", to_fF(pred.shared_cap)),
                   format("%.2f", pred.v_after), format("%.2f", sim),
                   pred.fails(2.5) ? "FAILS" : "ok"});
  }
  std::cout << table.to_string();
  std::cout << "\n(prediction is a lower bound: it ignores the pass "
               "devices' threshold cutoff)\n";
  return 0;
}
