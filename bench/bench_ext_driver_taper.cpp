// Extension: tapered driver ("superbuffer") optimization, driven
// incrementally.
//
// Driving a large capacitance through a chain of geometrically widened
// inverters is the classic sizing problem (optimal taper near e).  This
// bench sweeps the taper at a fixed stage count and load and asks
// whether the models reproduce the simulator's optimum -- a design
// decision a 1984 user would have made with Crystal.
//
// The sweep is exactly the ECO workload: every taper is the same chain
// with different device widths.  So instead of rebuilding the analysis
// per point, one persistent netlist is morphed with set_width /
// set_length and re-timed via TimingAnalyzer::update(); a full rebuild
// runs alongside to confirm the incremental answer (bit-identical) and
// to show the cost difference.
#include <iostream>
#include <vector>

#include "bench_io.h"
#include "compare/harness.h"
#include "timing/analyzer.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  benchio::BenchMain bench("bench_ext_driver_taper", argc, argv);
  std::cout << "Extension: driver-chain taper sweep (CMOS, 4 stages, 500 fF "
               "load, 1 ns edge), incremental re-timing per point\n\n";
  const CompareContext& ctx = CompareContext::get(Style::kCmos);
  const std::vector<double> tapers = {1.5, 2.0, 2.7, 3.5, 5.0, 7.0};

  // Persistent circuit, morphed from taper to taper.  driver_chain
  // emits devices in a taper-independent order, so copying dimensions
  // device-by-device reproduces each sweep point exactly.
  GeneratedCircuit work = driver_chain(Style::kCmos, 4, tapers[0], 500.0);
  Netlist& nl = work.netlist;

  const DelayModel* rctree = nullptr;
  const DelayModel* slope = nullptr;
  for (const DelayModel* m : ctx.models()) {
    if (m->name() == "rc-tree") rctree = m;
    if (m->name() == "slope") slope = m;
  }

  TimingAnalyzer an_rc(nl, ctx.tech(), *rctree);
  TimingAnalyzer an_slope(nl, ctx.tech(), *slope);
  an_rc.add_input_event(work.input, Transition::kRise, 0.0, 1e-9);
  an_slope.add_input_event(work.input, Transition::kRise, 0.0, 1e-9);
  an_rc.run();
  an_slope.run();

  TextTable table({"taper", "sim (ns)", "rc-tree (ns)", "slope (ns)",
                   "slope err%", "upd (us)", "rebuild (us)"});
  double best_sim = 1e9;
  double best_sim_taper = 0.0;
  double best_slope = 1e9;
  double best_slope_taper = 0.0;
  bool all_identical = true;
  for (double taper : tapers) {
    const GeneratedCircuit target =
        driver_chain(Style::kCmos, 4, taper, 500.0);
    for (DeviceId d : nl.all_devices()) {
      const Transistor& want = target.netlist.device(d);
      if (nl.device(d).width != want.width) nl.set_width(d, want.width);
      if (nl.device(d).length != want.length) nl.set_length(d, want.length);
    }
    an_rc.update();
    an_slope.update();

    // The analog reference and a from-scratch analysis of the same
    // sweep point, for the accuracy columns and the cost comparison.
    const SimulateOnlyResult sim =
        run_simulation(target, ctx.tech(), 1e-9);
    const AnalyzeOnlyResult full =
        run_analyzer(target, ctx.tech(), *slope, 1e-9);

    const auto d_rc = an_rc.arrival(work.output, sim.output_dir);
    const auto d_slope = an_slope.arrival(work.output, sim.output_dir);
    const auto worst = an_slope.worst_arrival(/*outputs_only=*/true);
    if (!d_rc || !d_slope || !worst || worst->time != full.delay) {
      all_identical = false;
    }
    const double slope_ns = d_slope ? to_ns(d_slope->time) : 0.0;
    benchio::note_circuit(work.name, nl.device_count());
    benchio::note_error_pct(100.0 * (slope_ns * 1e-9 - sim.delay) /
                            sim.delay);
    const double upd_us = (an_rc.stats().update_seconds +
                           an_slope.stats().update_seconds) /
                          2.0 * 1e6;
    table.add_row({format("%.1f", taper),
                   format("%.3f", to_ns(sim.delay)),
                   d_rc ? format("%.3f", to_ns(d_rc->time)) : "-",
                   format("%.3f", slope_ns),
                   format("%+.0f", 100.0 * (slope_ns * 1e-9 - sim.delay) /
                                       sim.delay),
                   format("%.1f", upd_us),
                   format("%.1f", full.analyze_time * 1e6)});
    if (sim.delay < best_sim) {
      best_sim = sim.delay;
      best_sim_taper = taper;
    }
    if (d_slope && d_slope->time < best_slope) {
      best_slope = d_slope->time;
      best_slope_taper = taper;
    }
  }
  std::cout << table.to_string();
  std::cout << format(
      "\noptimal taper: simulator %.1f, slope model %.1f  (same design "
      "choice: %s)\n",
      best_sim_taper, best_slope_taper,
      best_sim_taper == best_slope_taper ? "yes" : "no");
  std::cout << "incremental sweep matches from-scratch analysis: "
            << (all_identical ? "yes" : "NO (BUG)") << '\n';
  return all_identical ? 0 : 1;
}
