// Extension: tapered driver ("superbuffer") optimization.
//
// Driving a large capacitance through a chain of geometrically widened
// inverters is the classic sizing problem (optimal taper near e).  This
// bench sweeps the taper at a fixed stage count and load and asks
// whether the models reproduce the simulator's optimum -- a design
// decision a 1984 user would have made with Crystal.
#include <iostream>

#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

int main() {
  using namespace sldm;
  std::cout << "Extension: driver-chain taper sweep (CMOS, 4 stages, 500 fF "
               "load, 1 ns edge)\n\n";
  const CompareContext& ctx = CompareContext::get(Style::kCmos);

  TextTable table({"taper", "sim (ns)", "rc-tree (ns)", "slope (ns)",
                   "slope err%"});
  double best_sim = 1e9;
  double best_sim_taper = 0.0;
  double best_slope = 1e9;
  double best_slope_taper = 0.0;
  for (double taper : {1.5, 2.0, 2.7, 3.5, 5.0, 7.0}) {
    const ComparisonResult r = run_comparison(
        driver_chain(Style::kCmos, 4, taper, 500.0), ctx, 1e-9);
    table.add_row({format("%.1f", taper),
                   format("%.3f", to_ns(r.reference_delay)),
                   format("%.3f", to_ns(r.model("rc-tree").delay)),
                   format("%.3f", to_ns(r.model("slope").delay)),
                   format("%+.0f", r.model("slope").error_pct)});
    if (r.reference_delay < best_sim) {
      best_sim = r.reference_delay;
      best_sim_taper = taper;
    }
    if (r.model("slope").delay < best_slope) {
      best_slope = r.model("slope").delay;
      best_slope_taper = taper;
    }
  }
  std::cout << table.to_string();
  std::cout << format(
      "\noptimal taper: simulator %.1f, slope model %.1f  (same design "
      "choice: %s)\n",
      best_sim_taper, best_slope_taper,
      best_sim_taper == best_slope_taper ? "yes" : "no");
  return 0;
}
