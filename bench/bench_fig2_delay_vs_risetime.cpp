// Fig. 2 (reconstruction): gate delay vs input transition time.
//
// The motivating observation of the paper: a real gate's delay depends
// strongly on how fast its input moves, which pure-RC models cannot
// express.  One inverter, input rise time swept over two decades; the
// simulator's delay climbs while lumped/rc-tree stay flat and only the
// slope model follows.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/interp.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

void run_style(sldm::Style style) {
  using namespace sldm;
  const CompareContext& ctx = CompareContext::get(style);

  std::cout << "== " << to_string(style) << " (single inverter) ==\n";
  TextTable table({"input edge (ns)", "sim (ns)", "lumped (ns)",
                   "rc-tree (ns)", "slope (ns)", "slope err%"});
  for (double edge_ns : log_spaced(0.2, 20.0, 9)) {
    const ComparisonResult r = run_comparison(
        inverter_chain(style, 1, 1), ctx, edge_ns * 1e-9);
    benchio::note_circuit(r.circuit, r.devices);
    benchio::note_error_pct(r.model("slope").error_pct);
    table.add_row({format("%.2f", edge_ns),
                   format("%.3f", to_ns(r.reference_delay)),
                   format("%.3f", to_ns(r.model("lumped-rc").delay)),
                   format("%.3f", to_ns(r.model("rc-tree").delay)),
                   format("%.3f", to_ns(r.model("slope").delay)),
                   format("%+.0f", r.model("slope").error_pct)});
  }
  std::cout << table.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_fig2_delay_vs_risetime", argc, argv);
  std::cout << "Fig. 2 (reconstructed): delay vs input transition time\n\n";
  run_style(sldm::Style::kNmos);
  run_style(sldm::Style::kCmos);
  return 0;
}
