// Machine-readable bench records.
//
// Every bench_* binary accepts `--json <file>`; when given, one JSON
// object is appended to the file (JSONL) describing the run: bench
// name, engine version, wall seconds, the largest circuit exercised
// (with its design fingerprint when noted), the extraction thread
// count, and the worst absolute model error observed.  The flag
// is stripped from argv before google-benchmark sees it (it rejects
// unknown flags), so benches that call benchmark::Initialize construct
// the BenchMain guard first.  Schema: FORMATS.md, "Bench records".
//
// Usage:
//   int main(int argc, char** argv) {
//     sldm::benchio::BenchMain bench("bench_fig4_carry_chain", argc, argv);
//     ...
//     sldm::benchio::note_circuit(r.circuit, r.devices);
//     sldm::benchio::note_error_pct(slope.error_pct);
//   }
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "util/json.h"
#include "util/strings.h"
#include "util/version.h"

namespace sldm {
namespace benchio {

/// Collects the record for the current process; one bench == one record.
class Reporter {
 public:
  static Reporter& instance() {
    static Reporter reporter;
    return reporter;
  }

  void start(const std::string& bench, const std::string& path) {
    bench_ = bench;
    path_ = path;
    t0_ = std::chrono::steady_clock::now();
  }

  /// Remembers the largest circuit (by device count) seen so far,
  /// along with its design fingerprint when the bench computes one
  /// (design_fingerprint(); joins bench records to ledger records).
  void note_circuit(const std::string& name, std::size_t devices,
                    std::uint64_t fingerprint = 0) {
    if (devices >= devices_) {
      circuit_ = name;
      devices_ = devices;
      fingerprint_ = fingerprint;
    }
  }

  /// Remembers the worst (largest-magnitude) signed model error.
  void note_error_pct(double pct) {
    if (!has_error_ || std::abs(pct) > std::abs(error_pct_)) {
      error_pct_ = pct;
    }
    has_error_ = true;
  }

  /// Remembers the highest thread count exercised.
  void note_threads(int threads) {
    if (threads > threads_) threads_ = threads;
  }

  /// Appends the record; no-op without `--json`.  Idempotent.
  void finish() {
    if (path_.empty()) return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    std::ofstream out(path_, std::ios::app);
    if (!out) {
      std::cerr << "bench_io: cannot open '" << path_ << "'\n";
      path_.clear();
      return;
    }
    out << "{\"bench\":\"" << json_escape(bench_) << '"';
    out << ",\"version\":\"" << json_escape(sldm_version()) << '"';
    out << ",\"wall_seconds\":" << json_number(wall);
    out << ",\"threads\":" << threads_;
    if (!circuit_.empty()) {
      out << ",\"circuit\":\"" << json_escape(circuit_) << '"'
          << ",\"devices\":" << devices_;
    }
    if (fingerprint_ != 0) {
      out << ",\"fingerprint\":\""
          << format("%016llx",
                    static_cast<unsigned long long>(fingerprint_))
          << '"';
    }
    if (has_error_) {
      out << ",\"model_error_pct\":" << json_number(error_pct_);
    }
    out << "}\n";
    std::cout << "appended bench record to " << path_ << '\n';
    path_.clear();
  }

 private:
  std::string bench_;
  std::string path_;
  std::string circuit_;
  std::size_t devices_ = 0;
  std::uint64_t fingerprint_ = 0;
  int threads_ = 1;
  double error_pct_ = 0.0;
  bool has_error_ = false;
  std::chrono::steady_clock::time_point t0_;
};

/// Removes `--json <file>` (or `--json=<file>`) from argv, returning
/// the path ("" if absent).  Must run before benchmark::Initialize.
inline std::string extract_json_path(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--json" && r + 1 < argc) {
      path = argv[++r];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

/// RAII guard for main(): parses/strips `--json`, times the whole
/// payload, appends the record on destruction.
class BenchMain {
 public:
  BenchMain(const char* bench, int& argc, char** argv) {
    Reporter::instance().start(bench, extract_json_path(argc, argv));
  }
  ~BenchMain() { Reporter::instance().finish(); }

  BenchMain(const BenchMain&) = delete;
  BenchMain& operator=(const BenchMain&) = delete;
};

inline void note_circuit(const std::string& name, std::size_t devices,
                         std::uint64_t fingerprint = 0) {
  Reporter::instance().note_circuit(name, devices, fingerprint);
}
inline void note_error_pct(double pct) {
  Reporter::instance().note_error_pct(pct);
}
inline void note_threads(int threads) {
  Reporter::instance().note_threads(threads);
}

}  // namespace benchio
}  // namespace sldm
