// Ablation A: slope-table granularity.
//
// How many calibration points does the slope model actually need?  The
// tables are refit with 3/5/9/17-point ratio grids and compared against
// a dense 33-point reference, both as max table deviation and as
// end-to-end accuracy on an inverter chain with a slow input.
#include <iostream>

#include "bench_io.h"
#include "calib/calibrate.h"
#include "compare/harness.h"
#include "delay/slope.h"
#include "timing/analyzer.h"
#include "util/interp.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  benchio::BenchMain bench("bench_ablation_table_size", argc, argv);
  std::cout << "Ablation A: slope-table granularity (nMOS)\n\n";

  const Tech base = nmos4();
  CalibrationOptions dense_opts;
  dense_opts.ratios = log_spaced(0.05, 20.0, 33);
  const CalibrationResult dense = calibrate(base, Style::kNmos, dense_opts);

  // Reference circuit and its simulated delay.
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 4, 2);
  const SimulateOnlyResult sim = run_simulation(g, dense.tech, 6e-9);

  TextTable table({"table points", "max |m - m_dense|", "chain delay (ns)",
                   "err vs sim%"});
  for (std::size_t n : {3u, 5u, 9u, 17u, 33u}) {
    CalibrationOptions o;
    o.ratios = log_spaced(0.05, 20.0, n);
    const CalibrationResult r = calibrate(base, Style::kNmos, o);

    double worst = 0.0;
    for (const CalibrationCurve& c : dense.curves) {
      const SlopeEntry& coarse = r.tables.entry(c.type, c.dir);
      const SlopeEntry& ref = dense.tables.entry(c.type, c.dir);
      worst = std::max(worst,
                       coarse.delay_mult.max_abs_difference(ref.delay_mult));
    }

    const SlopeModel model(r.tables);
    TimingAnalyzer an(g.netlist, r.tech, model);
    an.add_input_event(g.input, Transition::kRise, 0.0, 6e-9);
    an.run();
    const auto worst_arrival = an.worst_arrival(true);
    const Seconds delay = worst_arrival ? worst_arrival->time : 0.0;
    benchio::note_circuit(g.name, g.netlist.device_count());
    benchio::note_error_pct(100.0 * (delay - sim.delay) / sim.delay);
    table.add_row({std::to_string(n), format("%.4f", worst),
                   format("%.3f", to_ns(delay)),
                   format("%+.1f", 100.0 * (delay - sim.delay) / sim.delay)});
  }
  std::cout << table.to_string();
  std::cout << "\n(simulated chain delay: " << format("%.3f", to_ns(sim.delay))
            << " ns)\n";
  return 0;
}
