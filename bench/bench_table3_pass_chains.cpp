// Table 3 (reconstruction): series pass-transistor chain accuracy.
//
// The structure where the lumped RC model's quadratic pessimism shows:
// with N series transistors, lumped predicts (NR)(NC) while the
// distributed models predict ~ RC N(N+1)/2.  Rows report the growing
// lumped/rc-tree divergence and both models' accuracy vs the simulator.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

void run_style(sldm::Style style) {
  using namespace sldm;
  const CompareContext& ctx = CompareContext::get(style);
  const Seconds input_slope = 1e-9;

  std::cout << "== " << to_string(style) << " ==\n";
  TextTable table({"chain length", "sim (ns)", "lumped (ns)", "err%",
                   "rc-tree (ns)", "err%", "slope (ns)", "err%",
                   "lumped/rc-tree"});
  for (int n : {1, 2, 3, 4, 5, 6, 8}) {
    const ComparisonResult r =
        run_comparison(pass_chain(style, n), ctx, input_slope);
    const ModelResult& lumped = r.model("lumped-rc");
    const ModelResult& rctree = r.model("rc-tree");
    const ModelResult& slope = r.model("slope");
    benchio::note_circuit(r.circuit, r.devices);
    benchio::note_error_pct(slope.error_pct);
    table.add_row({std::to_string(n),
                   format("%.2f", to_ns(r.reference_delay)),
                   format("%.2f", to_ns(lumped.delay)),
                   format("%+.0f", lumped.error_pct),
                   format("%.2f", to_ns(rctree.delay)),
                   format("%+.0f", rctree.error_pct),
                   format("%.2f", to_ns(slope.delay)),
                   format("%+.0f", slope.error_pct),
                   format("%.2f", lumped.delay / rctree.delay)});
  }
  std::cout << table.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_table3_pass_chains", argc, argv);
  std::cout << "Table 3 (reconstructed): pass-transistor chains, models vs "
               "analog simulation (1 ns input edge)\n\n";
  run_style(sldm::Style::kNmos);
  run_style(sldm::Style::kCmos);
  return 0;
}
