// Fig. 1 (reconstruction): the slope-model calibration curves.
//
// Effective-resistance (delay) multiplier and output-slope multiplier as
// functions of the slope ratio rho = input_slope / stage Elmore
// constant, per device type and transition -- the curves at the heart of
// the paper's model, regenerated with a dense ratio grid and rendered as
// ASCII series suitable for replotting.
#include <iostream>

#include "bench_io.h"
#include "calib/calibrate.h"
#include "tech/tech.h"
#include "util/interp.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

void run_style(sldm::Style style) {
  using namespace sldm;
  const Tech base = style == Style::kNmos ? nmos4() : cmos3();
  CalibrationOptions options;
  options.ratios = log_spaced(0.05, 20.0, 13);
  const CalibrationResult result = calibrate(base, style, options);

  std::cout << "== " << base.name() << " ==\n";
  for (const CalibrationCurve& curve : result.curves) {
    std::cout << "\ndevice " << to_string(curve.type) << ", output "
              << to_string(curve.dir) << ":\n";
    TextTable table({"rho", "delay mult m(rho)", "slope mult s(rho)",
                     "m bar"});
    for (const auto& p : curve.points) {
      std::string bar(static_cast<std::size_t>(p.delay_mult * 10.0), '#');
      table.add_row({format("%.3f", p.rho), format("%.3f", p.delay_mult),
                     format("%.3f", p.slope_mult), bar});
    }
    std::cout << table.to_string();
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_fig1_slope_calibration", argc, argv);
  std::cout << "Fig. 1 (reconstructed): slope-model calibration curves, "
               "multiplier vs slope ratio\n\n";
  run_style(sldm::Style::kNmos);
  run_style(sldm::Style::kCmos);
  return 0;
}
