// Fig. 4 (reconstruction): Manchester carry-chain scaling.
//
// Critical path (generate[0] to the final carry's observer) as the chain
// grows 1-12 bits.  The distributed models should track the simulator's
// near-quadratic growth; the lumped model should diverge upward.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  benchio::BenchMain bench("bench_fig4_carry_chain", argc, argv);
  std::cout << "Fig. 4 (reconstructed): Manchester carry chain critical "
               "path vs width (nMOS, 1 ns edge)\n\n";
  const CompareContext& ctx = CompareContext::get(Style::kNmos);

  TextTable table({"bits", "devices", "sim (ns)", "lumped (ns)", "err%",
                   "rc-tree (ns)", "err%", "slope (ns)", "err%"});
  for (int bits : {1, 2, 4, 6, 8, 12}) {
    const ComparisonResult r =
        run_comparison(manchester_carry(Style::kNmos, bits), ctx, 1e-9);
    const ModelResult& lumped = r.model("lumped-rc");
    const ModelResult& rctree = r.model("rc-tree");
    const ModelResult& slope = r.model("slope");
    benchio::note_circuit(r.circuit, r.devices);
    benchio::note_error_pct(slope.error_pct);
    table.add_row({std::to_string(bits), std::to_string(r.devices),
                   format("%.2f", to_ns(r.reference_delay)),
                   format("%.2f", to_ns(lumped.delay)),
                   format("%+.0f", lumped.error_pct),
                   format("%.2f", to_ns(rctree.delay)),
                   format("%+.0f", rctree.error_pct),
                   format("%.2f", to_ns(slope.delay)),
                   format("%+.0f", slope.error_pct)});
  }
  std::cout << table.to_string();
  return 0;
}
