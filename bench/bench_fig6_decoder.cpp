// Fig. 6 (extension): address-decoder delay vs decoder size.
//
// RAM/ROM periphery was a standard Crystal workload: the true/complement
// address lines fan out to 2^(bits-1) NOR rows, so the driving stage's
// load grows exponentially with decoder width.  Models vs simulator
// across 2-5 address bits (4-32 rows).
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

void run_style(sldm::Style style) {
  using namespace sldm;
  const CompareContext& ctx = CompareContext::get(style);
  std::cout << "== " << to_string(style) << " ==\n";
  TextTable table({"addr bits", "rows", "devices", "sim (ns)",
                   "lumped (ns)", "err%", "rc-tree (ns)", "err%",
                   "slope (ns)", "err%"});
  for (int bits : {2, 3, 4, 5}) {
    const ComparisonResult r =
        run_comparison(address_decoder(style, bits), ctx, 1e-9);
    const ModelResult& lumped = r.model("lumped-rc");
    const ModelResult& rctree = r.model("rc-tree");
    const ModelResult& slope = r.model("slope");
    benchio::note_circuit(r.circuit, r.devices);
    benchio::note_error_pct(slope.error_pct);
    table.add_row({std::to_string(bits), std::to_string(1 << bits),
                   std::to_string(r.devices),
                   format("%.2f", to_ns(r.reference_delay)),
                   format("%.2f", to_ns(lumped.delay)),
                   format("%+.0f", lumped.error_pct),
                   format("%.2f", to_ns(rctree.delay)),
                   format("%+.0f", rctree.error_pct),
                   format("%.2f", to_ns(slope.delay)),
                   format("%+.0f", slope.error_pct)});
  }
  std::cout << table.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_fig6_decoder", argc, argv);
  std::cout << "Fig. 6 (extension): NOR address decoder, delay vs width "
               "(1 ns edge)\n\n";
  run_style(sldm::Style::kNmos);
  run_style(sldm::Style::kCmos);
  return 0;
}
