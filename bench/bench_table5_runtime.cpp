// Table 5 (reconstruction): analyzer speed vs circuit-level simulation.
//
// The paper's speed claim: switch-level timing analysis runs orders of
// magnitude faster than circuit simulation, with the gap widening with
// circuit size.  google-benchmark measures the analyzer per model (and
// per extraction thread count) on growing random-logic networks; the
// simulator is timed directly (it is far too slow to iterate) and a
// speedup table is printed at the end, followed by a cold-vs-warm table
// (full .sim parse + extraction against a .sldc snapshot load) and a
// thread-scaling table that splits analyzer runtime into stage
// extraction vs arrival propagation using AnalyzerStats.
#include <benchmark/benchmark.h>

#include "bench_io.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "calib/calibrate.h"
#include "compare/harness.h"
#include "delay/slope.h"
#include "design/compiled_design.h"
#include "design/session.h"
#include "design/snapshot.h"
#include "netlist/sim_io.h"
#include "util/strings.h"
#include "util/text_table.h"
#include "util/thread_pool.h"

namespace {

using namespace sldm;

const GeneratedCircuit& circuit_for(int layers, int width) {
  static std::map<std::pair<int, int>, GeneratedCircuit> cache;
  auto& slot = cache[{layers, width}];
  if (slot.netlist.node_count() == 0) {
    slot = random_logic(Style::kCmos, layers, width,
                        /*seed=*/0x5DCu + static_cast<unsigned>(layers));
  }
  return slot;
}

void BM_Analyzer(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  const auto width = static_cast<int>(state.range(1));
  const auto model_index = static_cast<std::size_t>(state.range(2));
  const auto threads = static_cast<int>(state.range(3));
  const CompareContext& ctx = CompareContext::get(Style::kCmos);
  const GeneratedCircuit& g = circuit_for(layers, width);
  const DelayModel* model = ctx.models()[model_index];
  AnalyzerOptions opts;
  opts.threads = threads;

  for (auto _ : state) {
    const AnalyzeOnlyResult r =
        run_analyzer(g, ctx.tech(), *model, 1e-9, opts);
    benchmark::DoNotOptimize(r.delay);
  }
  state.counters["devices"] =
      static_cast<double>(g.netlist.device_count());
  state.counters["threads"] = static_cast<double>(threads);
  state.SetLabel(model->name());
}

BENCHMARK(BM_Analyzer)
    ->ArgsProduct({{2, 4, 8}, {4, 8, 16}, {0, 1, 2}, {1, 4}})
    ->Unit(benchmark::kMillisecond);

/// Best-of-n analyzer run (the analyzer is fast enough to repeat).
AnalyzeOnlyResult best_analyzer_run(const GeneratedCircuit& g,
                                    const CompareContext& ctx,
                                    const AnalyzerOptions& opts, int n) {
  AnalyzeOnlyResult best;
  best.analyze_time = 1e9;
  for (int i = 0; i < n; ++i) {
    const AnalyzeOnlyResult r =
        run_analyzer(g, ctx.tech(), *ctx.models()[2], 1e-9, opts);
    if (r.analyze_time < best.analyze_time) best = r;
  }
  return best;
}

void print_speedup_table() {
  const CompareContext& ctx = CompareContext::get(Style::kCmos);
  std::cout << "\nTable 5 (reconstructed): wall-clock, timing analyzer vs "
               "analog simulator\n\n";
  TextTable table({"circuit", "devices", "sim (s)", "analyze slope (s)",
                   "speedup"});
  // Circuits whose observed output reliably switches (the simulator leg
  // needs a real transition to time).
  std::vector<GeneratedCircuit> circuits;
  circuits.push_back(inverter_chain(Style::kCmos, 6, 1));
  circuits.push_back(inverter_chain(Style::kCmos, 12, 2));
  circuits.push_back(barrel_shifter(Style::kCmos, 6));
  circuits.push_back(inverter_chain(Style::kCmos, 24, 4));
  for (const GeneratedCircuit& g : circuits) {
    benchio::note_circuit(g.name, g.netlist.device_count(),
                          design_fingerprint(g.netlist, ctx.tech()));
    const SimulateOnlyResult sim = run_simulation(g, ctx.tech(), 1e-9);
    const AnalyzeOnlyResult ar =
        best_analyzer_run(g, ctx, AnalyzerOptions{}, 3);
    table.add_row({g.name, std::to_string(g.netlist.device_count()),
                   format("%.4f", sim.simulate_time),
                   format("%.6f", ar.analyze_time),
                   format("%.0fx", sim.simulate_time / ar.analyze_time)});
  }
  std::cout << table.to_string();
}

void print_thread_scaling_table() {
  const CompareContext& ctx = CompareContext::get(Style::kCmos);
  const int hw = ThreadPool::hardware_threads();
  std::cout << "\nAnalyzer thread scaling (slope model): stage extraction "
               "is per-CCC parallel,\narrival propagation evaluates each "
               "wavefront batch across the pool;\nhardware_concurrency = "
            << hw << "\n\n";
  std::vector<int> thread_counts = {1, 2, 4, hw};
  benchio::note_threads(hw);
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::vector<std::string> header = {"circuit", "devices", "stages",
                                     "cccs"};
  for (int t : thread_counts) {
    header.push_back(format("prop t=%d (ms)", t));
  }
  for (int t : thread_counts) {
    header.push_back(format("extract t=%d (ms)", t));
  }
  header.push_back("speedup");
  TextTable table(header);

  std::vector<GeneratedCircuit> circuits;
  circuits.push_back(inverter_chain(Style::kCmos, 24, 4));
  circuits.push_back(barrel_shifter(Style::kCmos, 6));
  circuits.push_back(random_logic(Style::kCmos, 8, 16, 0x5DC + 8u));
  circuits.push_back(random_logic(Style::kCmos, 12, 24, 0x5DC + 12u));
  for (const GeneratedCircuit& g : circuits) {
    std::vector<std::string> row = {
        g.name, std::to_string(g.netlist.device_count())};
    Seconds base_extract = 0.0;
    Seconds last_extract = 0.0;
    std::vector<std::string> prop_cells;
    std::vector<std::string> extract_cells;
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      AnalyzerOptions opts;
      opts.threads = thread_counts[i];
      const AnalyzeOnlyResult r = best_analyzer_run(g, ctx, opts, 5);
      if (i == 0) {
        base_extract = r.extract_time;
        row.push_back(std::to_string(r.stage_count));
        row.push_back(std::to_string(r.ccc_count));
      }
      last_extract = r.extract_time;
      prop_cells.push_back(format("%.3f", r.propagate_time * 1e3));
      extract_cells.push_back(format("%.3f", r.extract_time * 1e3));
    }
    row.insert(row.end(), prop_cells.begin(), prop_cells.end());
    row.insert(row.end(), extract_cells.begin(), extract_cells.end());
    row.push_back(format("%.2fx", base_extract / last_extract));
    table.add_row(row);
  }
  std::cout << table.to_string();
}

/// Cold start vs warm start, measured as the CLI pays them.  Cold is
/// `sldm time circuit.sim` with the default (slope) model: calibrate
/// against the analog simulator, parse the .sim text, partition into
/// CCCs, extract stages, propagate.  Warm is `sldm time --load`:
/// deserialize a .sldc snapshot (StageStore restored verbatim, slope
/// tables embedded -- no recalibration), open a Session, propagate.
/// Both legs run from memory (string stream vs byte buffer) so the
/// table compares pipelines, not disk caches.
void print_cold_warm_table() {
  const CompareContext& ctx = CompareContext::get(Style::kCmos);
  std::cout << "\nCold start (calibrate + .sim parse + extract + analyze) "
               "vs warm start\n(.sldc load + Session; calibration tables "
               "embedded in the snapshot):\nbest of 5, slope model, "
               "single thread\n\n";
  TextTable table({"circuit", "devices", "cold (ms)", "warm (ms)",
                   "speedup"});

  std::vector<GeneratedCircuit> circuits;
  circuits.push_back(inverter_chain(Style::kCmos, 6, 1));
  circuits.push_back(inverter_chain(Style::kCmos, 12, 2));
  circuits.push_back(barrel_shifter(Style::kCmos, 6));
  circuits.push_back(inverter_chain(Style::kCmos, 24, 4));
  circuits.push_back(random_logic(Style::kCmos, 8, 16, 0x5DC + 8u));
  for (const GeneratedCircuit& g : circuits) {
    std::ostringstream sim_text;
    write_sim(g.netlist, sim_text);
    const std::string sim = sim_text.str();
    // Compile with the calibrated tech -- exactly what `sldm compile`
    // bakes -- so both legs analyze the same electrical quantities.
    const auto design = CompiledDesign::compile(g.netlist, ctx.tech());
    const std::vector<std::uint8_t> snapshot =
        serialize_design(*design, &ctx.calibration().tables);

    using clock = std::chrono::steady_clock;
    Seconds cold = 1e9;
    Seconds warm = 1e9;
    for (int i = 0; i < 5; ++i) {
      {
        const auto t0 = clock::now();
        const CalibrationResult cal = calibrate(cmos3(), Style::kCmos);
        const SlopeModel model(cal.tables);
        std::istringstream in(sim);
        const Netlist nl = read_sim(in, g.name);
        TimingAnalyzer analyzer(nl, cal.tech, model);
        analyzer.add_all_input_events(1e-9);
        analyzer.run();
        benchmark::DoNotOptimize(analyzer.worst_arrival(false));
        cold = std::min(
            cold, std::chrono::duration<double>(clock::now() - t0).count());
      }
      {
        const auto t0 = clock::now();
        const LoadedDesign loaded = deserialize_design(snapshot, g.name);
        const SlopeModel model(*loaded.slope_tables);
        Session session(loaded.design, model);
        session.add_all_input_events(1e-9);
        session.run();
        benchmark::DoNotOptimize(session.worst_arrival(false));
        warm = std::min(
            warm, std::chrono::duration<double>(clock::now() - t0).count());
      }
    }
    table.add_row({g.name, std::to_string(g.netlist.device_count()),
                   format("%.4f", cold * 1e3), format("%.4f", warm * 1e3),
                   format("%.0fx", cold / warm)});
  }
  std::cout << table.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  benchio::BenchMain bench("bench_table5_runtime", argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_speedup_table();
  print_cold_warm_table();
  print_thread_scaling_table();
  return 0;
}
