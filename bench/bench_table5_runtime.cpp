// Table 5 (reconstruction): analyzer speed vs circuit-level simulation.
//
// The paper's speed claim: switch-level timing analysis runs orders of
// magnitude faster than circuit simulation, with the gap widening with
// circuit size.  google-benchmark measures the analyzer per model on
// growing random-logic networks; the simulator is timed directly (it is
// far too slow to iterate) and a speedup table is printed at the end.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

using namespace sldm;

const GeneratedCircuit& circuit_for(int layers, int width) {
  static std::map<std::pair<int, int>, GeneratedCircuit> cache;
  auto& slot = cache[{layers, width}];
  if (slot.netlist.node_count() == 0) {
    slot = random_logic(Style::kCmos, layers, width,
                        /*seed=*/0x5DCu + static_cast<unsigned>(layers));
  }
  return slot;
}

void BM_Analyzer(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  const auto width = static_cast<int>(state.range(1));
  const auto model_index = static_cast<std::size_t>(state.range(2));
  const CompareContext& ctx = CompareContext::get(Style::kCmos);
  const GeneratedCircuit& g = circuit_for(layers, width);
  const DelayModel* model = ctx.models()[model_index];

  for (auto _ : state) {
    const AnalyzeOnlyResult r = run_analyzer(g, ctx.tech(), *model, 1e-9);
    benchmark::DoNotOptimize(r.delay);
  }
  state.counters["devices"] =
      static_cast<double>(g.netlist.device_count());
  state.SetLabel(model->name());
}

BENCHMARK(BM_Analyzer)
    ->ArgsProduct({{2, 4, 8}, {4, 8, 16}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

void print_speedup_table() {
  const CompareContext& ctx = CompareContext::get(Style::kCmos);
  std::cout << "\nTable 5 (reconstructed): wall-clock, timing analyzer vs "
               "analog simulator\n\n";
  TextTable table({"circuit", "devices", "sim (s)", "analyze slope (s)",
                   "speedup"});
  // Circuits whose observed output reliably switches (the simulator leg
  // needs a real transition to time).
  std::vector<GeneratedCircuit> circuits;
  circuits.push_back(inverter_chain(Style::kCmos, 6, 1));
  circuits.push_back(inverter_chain(Style::kCmos, 12, 2));
  circuits.push_back(barrel_shifter(Style::kCmos, 6));
  circuits.push_back(inverter_chain(Style::kCmos, 24, 4));
  for (const GeneratedCircuit& g : circuits) {
    const SimulateOnlyResult sim = run_simulation(g, ctx.tech(), 1e-9);
    // Median-of-3 analyzer timing (it is fast enough to repeat).
    Seconds best = 1e9;
    AnalyzeOnlyResult ar;
    for (int i = 0; i < 3; ++i) {
      ar = run_analyzer(g, ctx.tech(), *ctx.models()[2], 1e-9);
      best = std::min(best, ar.analyze_time);
    }
    table.add_row({g.name, std::to_string(g.netlist.device_count()),
                   format("%.4f", sim.simulate_time),
                   format("%.6f", best),
                   format("%.0fx", sim.simulate_time / best)});
  }
  std::cout << table.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_speedup_table();
  return 0;
}
