// Table 2 (reconstruction): inverter-chain delay accuracy.
//
// Chains of 2-8 inverters at fanouts 1/2/4/8, both processes.  Each row
// compares the three models' predicted input-to-output delay against
// the analog simulator, exactly the comparison methodology of the
// paper's evaluation section.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace {

void run_style(sldm::Style style) {
  using namespace sldm;
  const CompareContext& ctx = CompareContext::get(style);
  const Seconds input_slope = 2e-9;

  std::cout << "== " << to_string(style) << " ==\n";
  TextTable table({"stages", "fanout", "sim (ns)", "lumped (ns)", "err%",
                   "rc-tree (ns)", "err%", "slope (ns)", "err%"});
  for (int stages : {2, 4, 6, 8}) {
    for (int fanout : {1, 2, 4, 8}) {
      const ComparisonResult r = run_comparison(
          inverter_chain(style, stages, fanout), ctx, input_slope);
      const ModelResult& lumped = r.model("lumped-rc");
      const ModelResult& rctree = r.model("rc-tree");
      const ModelResult& slope = r.model("slope");
      benchio::note_circuit(r.circuit, r.devices);
      benchio::note_error_pct(slope.error_pct);
      table.add_row({std::to_string(stages), std::to_string(fanout),
                     format("%.2f", to_ns(r.reference_delay)),
                     format("%.2f", to_ns(lumped.delay)),
                     format("%+.0f", lumped.error_pct),
                     format("%.2f", to_ns(rctree.delay)),
                     format("%+.0f", rctree.error_pct),
                     format("%.2f", to_ns(slope.delay)),
                     format("%+.0f", slope.error_pct)});
    }
  }
  std::cout << table.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  sldm::benchio::BenchMain bench("bench_table2_inverter_chains", argc, argv);
  std::cout << "Table 2 (reconstructed): inverter-chain delays, models vs "
               "analog simulation (2 ns input edge)\n\n";
  run_style(sldm::Style::kNmos);
  run_style(sldm::Style::kCmos);
  return 0;
}
