// Fig. 5 (reconstruction): precharged-bus discharge vs fanout.
//
// A shared dynamic bus with 2-16 attached pull-down stacks: every extra
// driver adds diffusion and wiring load, stretching the worst-case
// discharge.  Models vs simulator across the sweep.
#include <iostream>

#include "bench_io.h"
#include "compare/harness.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  benchio::BenchMain bench("bench_fig5_precharged_bus", argc, argv);
  std::cout << "Fig. 5 (reconstructed): precharged bus discharge vs number "
               "of drivers (nMOS, 1 ns edge)\n\n";
  const CompareContext& ctx = CompareContext::get(Style::kNmos);

  TextTable table({"drivers", "devices", "sim (ns)", "lumped (ns)", "err%",
                   "rc-tree (ns)", "err%", "slope (ns)", "err%"});
  for (int drivers : {2, 4, 8, 12, 16}) {
    const ComparisonResult r =
        run_comparison(precharged_bus(Style::kNmos, drivers), ctx, 1e-9);
    const ModelResult& lumped = r.model("lumped-rc");
    const ModelResult& rctree = r.model("rc-tree");
    const ModelResult& slope = r.model("slope");
    benchio::note_circuit(r.circuit, r.devices);
    benchio::note_error_pct(slope.error_pct);
    table.add_row({std::to_string(drivers), std::to_string(r.devices),
                   format("%.2f", to_ns(r.reference_delay)),
                   format("%.2f", to_ns(lumped.delay)),
                   format("%+.0f", lumped.error_pct),
                   format("%.2f", to_ns(rctree.delay)),
                   format("%+.0f", rctree.error_pct),
                   format("%.2f", to_ns(slope.delay)),
                   format("%+.0f", slope.error_pct)});
  }
  std::cout << table.to_string();
  return 0;
}
