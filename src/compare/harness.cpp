#include "compare/harness.h"

#include <chrono>
#include <map>
#include <mutex>

#include "analog/elaborate.h"
#include "analog/transient.h"
#include "delay/lumped.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "timing/analyzer.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

Seconds now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr Seconds kEdgeTime = 2e-9;  ///< input edge start (settling margin)

std::vector<Stimulus> build_stimuli(const GeneratedCircuit& g,
                                    const Tech& tech, Seconds input_slope) {
  std::vector<Stimulus> stimuli;
  const Seconds ramp = std::max(input_slope, 1e-12);
  stimuli.push_back(
      {g.input, PwlSource::edge(0.0, tech.vdd(), kEdgeTime, ramp)});
  for (NodeId n : g.high_inputs) {
    stimuli.push_back({n, PwlSource::dc(tech.vdd())});
  }
  for (NodeId n : g.low_inputs) {
    stimuli.push_back({n, PwlSource::dc(0.0)});
  }
  return stimuli;
}

}  // namespace

CompareContext::CompareContext(Style style, CalibrationResult calibration)
    : style_(style), calibration_(std::move(calibration)) {
  lumped_ = std::make_unique<LumpedRcModel>();
  rctree_ = std::make_unique<RcTreeModel>();
  slope_ = std::make_unique<SlopeModel>(calibration_.tables);
}

const CompareContext& CompareContext::get(Style style) {
  static std::mutex mutex;
  static std::map<Style, std::unique_ptr<CompareContext>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[style];
  if (!slot) {
    const Tech base = style == Style::kNmos ? nmos4() : cmos3();
    slot = std::make_unique<CompareContext>(style, calibrate(base, style));
  }
  return *slot;
}

std::vector<const DelayModel*> CompareContext::models() const {
  return {lumped_.get(), rctree_.get(), slope_.get()};
}

const ModelResult& ComparisonResult::model(const std::string& name) const {
  for (const ModelResult& m : models) {
    if (m.model == name) return m;
  }
  SLDM_EXPECTS(false && "model not present in comparison result");
  return models.front();  // unreachable
}

AnalyzeOnlyResult run_analyzer(const GeneratedCircuit& g, const Tech& tech,
                               const DelayModel& model, Seconds input_slope,
                               const AnalyzerOptions& options) {
  const Seconds t0 = now_seconds();
  TimingAnalyzer analyzer(g.netlist, tech, model, options);
  analyzer.add_input_event(g.input, Transition::kRise, 0.0, input_slope);
  analyzer.run();
  AnalyzeOnlyResult out;
  const auto worst = analyzer.worst_arrival(/*outputs_only=*/true);
  out.delay = worst ? worst->time : 0.0;
  out.analyze_time = now_seconds() - t0;
  const AnalyzerStats& st = analyzer.stats();
  out.extract_time = st.extract_seconds;
  out.propagate_time = st.propagate_seconds;
  out.stage_evaluations = st.stage_evaluations;
  out.stage_count = st.stage_count;
  out.ccc_count = st.ccc_count;
  out.stats = st;
  return out;
}

AnalyzeOnlyResult run_analyzer(const GeneratedCircuit& g, const Tech& tech,
                               const DelayModel& model, Seconds input_slope) {
  return run_analyzer(g, tech, model, input_slope, AnalyzerOptions{});
}

SimulateOnlyResult run_simulation(const GeneratedCircuit& g, const Tech& tech,
                                  Seconds input_slope) {
  const Seconds t_start = now_seconds();
  const auto stimuli = build_stimuli(g, tech, input_slope);
  const Elaboration elab = elaborate(g.netlist, tech, stimuli);

  TransientOptions topt;
  elab.apply_precharge(g.netlist, tech.vdd(), topt);
  Seconds t_stop = kEdgeTime + input_slope + 40e-9;
  const Volts v_mid = tech.vdd() / 2.0;

  for (int attempt = 0; attempt < 4; ++attempt) {
    topt.t_stop = t_stop;
    const TransientResult result = simulate(elab.circuit(), topt);
    const Waveform& w_in = result.at(elab.analog(g.input));
    const Waveform& w_out = result.at(elab.analog(g.output));

    // Output direction: where does the output settle relative to where
    // it started when the edge launched?
    const Volts v_start = w_out.at(kEdgeTime);
    const Volts v_end = w_out.value(w_out.size() - 1);
    if (std::abs(v_end - v_start) > 0.5) {
      const Transition dir =
          v_end > v_start ? Transition::kRise : Transition::kFall;
      // Signed measurement: with a slow input edge, the output's 50%
      // crossing can legitimately precede the input's.
      const auto delay = measure_delay_signed(w_in, Transition::kRise, w_out,
                                              dir, v_mid, kEdgeTime / 2.0);
      if (delay) {
        SimulateOnlyResult out;
        out.delay = *delay;
        out.output_dir = dir;
        out.simulate_time = now_seconds() - t_start;
        return out;
      }
    }
    t_stop *= 3.0;
  }
  throw Error("simulation of '" + g.name + "': output never switched");
}

ComparisonResult run_comparison(const GeneratedCircuit& g,
                                const CompareContext& ctx,
                                Seconds input_slope) {
  ComparisonResult out;
  out.circuit = g.name;
  out.devices = g.netlist.device_count();

  const SimulateOnlyResult sim =
      run_simulation(g, ctx.tech(), input_slope);
  out.reference_delay = sim.delay;
  out.output_dir = sim.output_dir;
  out.simulate_time = sim.simulate_time;

  for (const DelayModel* model : ctx.models()) {
    const Seconds t0 = now_seconds();
    TimingAnalyzer analyzer(g.netlist, ctx.tech(), *model);
    analyzer.add_input_event(g.input, Transition::kRise, 0.0, input_slope);
    analyzer.run();
    const auto arrival = analyzer.arrival(g.output, sim.output_dir);
    if (!arrival) {
      throw Error("analyzer found no arrival at output of '" + g.name +
                  "' (" + model->name() + ")");
    }
    ModelResult mr;
    mr.model = model->name();
    mr.delay = arrival->time;
    mr.error_pct =
        100.0 * (arrival->time - sim.delay) / sim.delay;
    mr.analyze_time = now_seconds() - t0;
    mr.metrics = analyzer.metrics();
    out.models.push_back(std::move(mr));
  }
  return out;
}

}  // namespace sldm
