// The experiment harness: runs a generated benchmark through every delay
// model (inside the timing analyzer) and through the analog simulator,
// and reports paper-style accuracy/runtime rows.
//
// Protocol: the circuit's main input gets a rising edge with a given
// transition time; secondary inputs are held at their declared values;
// precharged nodes start at Vdd.  The analog 50%-crossing delay from the
// input edge to the observed output is the reference; each model's
// analyzer arrival time at the same (output, transition) is the
// prediction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "calib/calibrate.h"
#include "delay/model.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/metrics.h"

namespace sldm {

/// A calibrated technology + the three models, shared across experiments.
class CompareContext {
 public:
  /// Calibrates the standard process for `style` (nmos4 / cmos3).
  /// Calibration runs a handful of analog simulations, so benches cache
  /// one context per style.
  static const CompareContext& get(Style style);

  /// Builds a context from an explicit calibration (tests).
  explicit CompareContext(Style style, CalibrationResult calibration);

  Style style() const { return style_; }
  const Tech& tech() const { return calibration_.tech; }
  const CalibrationResult& calibration() const { return calibration_; }

  /// The paper's three models, in presentation order.
  std::vector<const DelayModel*> models() const;

 private:
  Style style_;
  CalibrationResult calibration_;
  std::unique_ptr<DelayModel> lumped_;
  std::unique_ptr<DelayModel> rctree_;
  std::unique_ptr<DelayModel> slope_;
};

/// One model's prediction for a circuit.
struct ModelResult {
  std::string model;
  Seconds delay = 0.0;      ///< predicted input-to-output delay
  double error_pct = 0.0;   ///< signed % error vs the analog reference
  Seconds analyze_time = 0.0;  ///< analyzer wall time
  MetricsRegistry metrics;  ///< snapshot of this run's analyzer registry
};

/// Reference + predictions for one circuit.
struct ComparisonResult {
  std::string circuit;
  std::size_t devices = 0;
  Transition output_dir = Transition::kRise;  ///< observed at the output
  Seconds reference_delay = 0.0;              ///< analog simulator
  Seconds simulate_time = 0.0;                ///< simulator wall time
  std::vector<ModelResult> models;

  /// The entry for a model name.  Precondition: present.
  const ModelResult& model(const std::string& name) const;
};

/// Runs the full comparison.  `input_slope` is the transition time of
/// the stimulated input edge (also handed to the models).
/// Throws Error if the output never switches in simulation.
ComparisonResult run_comparison(const GeneratedCircuit& g,
                                const CompareContext& ctx,
                                Seconds input_slope);

/// Analyzer-only run (used by the runtime scaling bench where the
/// analog reference is measured separately or skipped).  Deliberately
/// carries no MetricsRegistry snapshot: this call sits inside timed
/// benchmark loops, so it must not pay for the registry's name table
/// (run_comparison captures per-model registries instead).
struct AnalyzeOnlyResult {
  Seconds delay = 0.0;
  Seconds analyze_time = 0.0;     ///< total wall time (extract + run)
  Seconds extract_time = 0.0;     ///< stage-extraction phase
  Seconds propagate_time = 0.0;   ///< arrival-propagation phase
  std::size_t stage_evaluations = 0;
  std::size_t stage_count = 0;
  std::size_t ccc_count = 0;
  AnalyzerStats stats;            ///< full counter set (analyzer_stats_json)
};
AnalyzeOnlyResult run_analyzer(const GeneratedCircuit& g, const Tech& tech,
                               const DelayModel& model, Seconds input_slope,
                               const AnalyzerOptions& options);
AnalyzeOnlyResult run_analyzer(const GeneratedCircuit& g, const Tech& tech,
                               const DelayModel& model, Seconds input_slope);

/// Analog-only run; returns the reference delay and wall time.
struct SimulateOnlyResult {
  Seconds delay = 0.0;
  Transition output_dir = Transition::kRise;
  Seconds simulate_time = 0.0;
};
SimulateOnlyResult run_simulation(const GeneratedCircuit& g, const Tech& tech,
                                  Seconds input_slope);

}  // namespace sldm
