// The `sldm` command-line tool, as a library so tests can drive it
// in-process.  Subcommands:
//
//   sldm check <file.sim>                    structural diagnostics
//   sldm stats <file.sim>                    netlist census
//   sldm stats [--json|--prom <file|->]      with no file: render the
//                                            process-wide telemetry hub
//                                            (human-readable, JSON
//                                            aggregate, or Prometheus
//                                            exposition; in-process
//                                            embedding surface)
//   sldm time <file.sim> [options]           timing analysis
//        --load <design.sldc>                analyze a compiled design
//                                            instead of a .sim file
//                                            (skips parse + extraction
//                                            + recalibration; FORMATS.md
//                                            section 11); also accepted
//                                            by explain/eco/sim
//        --tech nmos|cmos|<file.tech>        process (default nmos;
//                                            with --load, must match the
//                                            compiled fingerprint)
//        --tables <file.slopes>              slope tables (default:
//                                            calibrate in-process)
//        --model slope|rc-tree|lumped|rph-upper|unit
//        --constraints <file.ct>             input events + budget
//        --slope-ns <x>                      default input slope
//        --paths <k>                         report k worst paths
//        --threads <n>                       stage-extraction workers
//                                            (results identical for any n)
//        --stats                             per-phase timing + per-CCC
//                                            stage census
//        --json                              with --stats: emit the
//                                            counters + metrics registry
//                                            as one JSON object
//        --trace <out.json>                  capture engine spans as
//                                            Chrome trace-event JSON
//                                            (load in chrome://tracing
//                                            or Perfetto; see FORMATS.md)
//        --prom <file|->                     after the analysis, write
//                                            the telemetry hub in
//                                            Prometheus text exposition
//                                            v0.0.4 ("-": stdout;
//                                            FORMATS.md section 13);
//                                            also accepted by eco,
//                                            compile, and stats
//        --ledger <file>                     append one JSONL run
//                                            record (design
//                                            fingerprint, version,
//                                            model, phase timings,
//                                            critical path, outcome;
//                                            FORMATS.md section 12);
//                                            SLDM_LEDGER env var is the
//                                            ambient default; also
//                                            accepted by eco, compile,
//                                            and fuzz
//   sldm explain <file.sim> <node> [options] critical-path explain trace
//        (tech/model/event options above,    re-evaluates each stage of
//        plus:)                              the critical path into the
//        --dir rise|fall                     node through the delay
//        --json                              model's audit hook; default
//                                            direction is the later
//                                            arrival; --json emits the
//                                            breakdown as one JSON object
//   sldm eco <file.sim> <file.eco> [options] incremental what-if timing
//        (time options above incl. --trace,  analyzes the circuit, applies
//        plus:)                              the edit script (FORMATS.md),
//        --verify                            and re-times via the
//        --write <out.sim>                   incremental update() path;
//                                            --verify cross-checks against
//                                            a full rebuild (exit 1 on
//                                            mismatch), --write saves the
//                                            edited netlist
//   sldm chargeshare <file.sim> [--tech ...] dynamic-node audit
//   sldm sim <file.sim> [--tech ...]         transient simulation
//        --tstop-ns <x> --csv <out.csv> --vcd <out.vcd>
//        (inputs rise at t=2ns unless --constraints is given)
//   sldm calibrate nmos|cmos --out <prefix>  fit + write tech/tables
//   sldm compile <file.sim> -o <out.sldc>    bake a CompiledDesign
//        (tech/model/threads options above)  snapshot: parse, partition,
//                                            extract stages, cache the
//                                            StageStore; with the slope
//                                            model (the default) also
//                                            calibrate and embed the
//                                            tables so later --load runs
//                                            never recalibrate
//   sldm fuzz [options]                      differential fuzzing
//        --seed <n> --iterations <n>         campaigns + repro replay
//        --threads <n> --out <dir>           (see src/fuzz/)
//        --replay <path>
//   sldm ledger summarize <file.jsonl>       per-design-fingerprint
//                                            latency table over a run
//                                            ledger (--ledger /
//                                            SLDM_LEDGER output)
//   sldm bench diff <old.jsonl> <new.jsonl>  regression gate over bench
//        [--max-regress <pct>]               records (--json output of
//                                            the bench binaries): joins
//                                            by bench name on the best
//                                            wall time per side, exits
//                                            1 when any bench regressed
//                                            beyond the bound (default
//                                            10%) or nothing joined
//   sldm serve [options]                     long-lived concurrent timing
//        --max-inflight <n>                  service speaking line-
//        --workers <n>                       delimited JSON (FORMATS.md
//        --cache <n>                         section 14) on stdin/stdout,
//        --tcp <port>                        or on localhost TCP with
//        --tech nmos|cmos|<file.tech>        --tcp (port 0 picks an
//        --ledger <file>                     ephemeral port, announced on
//        --deadline-ms <n>                   stderr); designs load once
//        --max-line-bytes <n>                into an LRU cache (--cache,
//                                            default 8) and concurrent
//                                            time/explain/eco requests
//                                            share them; beyond
//                                            --max-inflight dispatched
//                                            requests new lines are
//                                            answered with a structured
//                                            "overloaded" error instead
//                                            of queueing; --tech sets the
//                                            default for loads that name
//                                            none; per-request ledger
//                                            records via --ledger /
//                                            SLDM_LEDGER; --deadline-ms
//                                            sets a server-wide default
//                                            request deadline (requests
//                                            override via "deadline_ms";
//                                            expiry answers the named
//                                            "deadline" envelope); lines
//                                            over --max-line-bytes
//                                            (default 1 MiB) are refused
//                                            with "too-large"; SIGINT /
//                                            SIGTERM drain: stop
//                                            admission, answer in-flight
//                                            requests, exit 0 (second
//                                            signal force-exits 130)
//   sldm version                             engine + snapshot-format
//                                            version
//
// Every command also honors --failpoints <spec> / SLDM_FAILPOINTS for
// deterministic fault injection at I/O boundaries (grammar and site
// inventory in FORMATS.md section 15).
//
// The command table in cli.cpp (kCommands) is the single source of
// truth for dispatch and the usage() synopsis list.
// Returns 0 on success, 1 on analysis errors, 2 on usage errors.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sldm {

/// Runs one CLI invocation.  `args` excludes the program name.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace sldm
