#include "cli/cli.h"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <set>

#include "analog/elaborate.h"
#include "analog/export.h"
#include "analog/transient.h"
#include "calib/calibrate.h"
#include "delay/bounds.h"
#include "delay/lumped.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "delay/unit.h"
#include "design/compiled_design.h"
#include "design/snapshot.h"
#include "fuzz/fuzz.h"
#include "netlist/checks.h"
#include "netlist/eco_io.h"
#include "netlist/sim_io.h"
#include "netlist/stats.h"
#include "serve/server.h"
#include "serve/service.h"
#include "tech/tech_io.h"
#include "timing/charge_sharing.h"
#include "timing/constraints.h"
#include "timing/explain.h"
#include "timing/report.h"
#include "timing/slack.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/json.h"
#include "util/ledger.h"
#include "util/strings.h"
#include "util/telemetry.h"
#include "util/text_table.h"
#include "util/trace.h"
#include "util/version.h"

namespace sldm {
namespace {

/// Bad invocation (wrong arguments), as opposed to analysis failures.
class UsageError : public Error {
 public:
  using Error::Error;
};

/// Boolean options (present/absent, no value token follows).
const std::set<std::string> kFlagOptions = {"stats", "json", "verify"};

/// Parsed --key value options, --flag switches, and positional
/// arguments.
struct Options {
  std::vector<std::string> positional;
  std::map<std::string, std::string> values;
  std::set<std::string> flags;

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values.find(key);
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
  bool flag(const std::string& key) const { return flags.count(key) > 0; }
};

Options parse_options(const std::vector<std::string>& args,
                      std::size_t first) {
  Options out;
  for (std::size_t i = first; i < args.size(); ++i) {
    if (args[i] == "-o") {  // short form of --out
      if (i + 1 >= args.size()) throw UsageError("option -o needs a value");
      out.values["out"] = args[++i];
      continue;
    }
    if (starts_with(args[i], "--")) {
      const std::string key = args[i].substr(2);
      if (kFlagOptions.count(key) > 0) {
        out.flags.insert(key);
        continue;
      }
      if (i + 1 >= args.size()) {
        throw UsageError("option --" + key + " needs a value");
      }
      out.values[key] = args[++i];
    } else {
      out.positional.push_back(args[i]);
    }
  }
  return out;
}

/// Loads a technology: a preset name or a .tech file path.
Tech load_tech(const Options& opts) {
  const std::string spec = opts.get("tech").value_or("nmos");
  if (spec == "nmos") return nmos4();
  if (spec == "cmos") return cmos3();
  return read_tech_file(spec);
}

Style style_for(const Tech& tech) {
  return tech.has(TransistorType::kPEnhancement) ? Style::kCmos
                                                 : Style::kNmos;
}

/// Builds the requested delay model; calibrates if the slope model is
/// requested without a tables file.  `tech` may be updated by
/// calibration.
std::unique_ptr<DelayModel> make_model(const Options& opts, Tech& tech,
                                       std::ostream& err) {
  const std::string name = opts.get("model").value_or("slope");
  if (name == "lumped") return std::make_unique<LumpedRcModel>();
  if (name == "rc-tree") return std::make_unique<RcTreeModel>();
  if (name == "rph-upper") {
    return std::make_unique<RphBoundsModel>(RphBoundsModel::Mode::kUpper);
  }
  if (name == "unit") return std::make_unique<UnitDelayModel>(1e-9);
  if (name != "slope") throw Error("unknown model '" + name + "'");
  if (const auto tables = opts.get("tables")) {
    return std::make_unique<SlopeModel>(SlopeTables::read_file(*tables));
  }
  err << "(no --tables given; calibrating " << tech.name()
      << " in-process)\n";
  CalibrationResult cal = calibrate(tech, style_for(tech));
  tech = cal.tech;
  return std::make_unique<SlopeModel>(std::move(cal.tables));
}

/// `--prom <file|->`: renders the whole telemetry hub in Prometheus
/// text exposition (FORMATS.md section 13) to the file, or to stdout
/// for "-".
void write_prometheus(const Options& opts, std::ostream& out) {
  const auto dest = opts.get("prom");
  if (!dest) return;
  const std::string text = TelemetryHub::instance().to_prometheus();
  if (*dest == "-") {
    out << text;
    return;
  }
  std::ofstream file(*dest);
  if (!file) throw Error("cannot open " + *dest + " for writing");
  file << text;
  if (!file) throw Error("short write to " + *dest);
  out << "wrote " << *dest << '\n';
}

int cmd_check(const Options& opts, std::ostream& out, std::ostream&) {
  if (opts.positional.size() != 1) throw UsageError("usage: check <file.sim>");
  const Netlist nl = read_sim_file(opts.positional[0]);
  const auto ds = check(nl);
  out << to_string(nl, ds);
  out << (all_ok(ds) ? "ok" : "errors found") << '\n';
  return all_ok(ds) ? 0 : 1;
}

int cmd_stats(const Options& opts, std::ostream& out, std::ostream&) {
  if (opts.positional.empty()) {
    // No netlist: render the process-wide telemetry hub instead (the
    // in-process embedding surface -- a host that ran analyses through
    // run_cli or the library reads them all back here).
    const TelemetryHub& hub = TelemetryHub::instance();
    if (opts.get("prom")) {
      write_prometheus(opts, out);
    } else if (opts.flag("json")) {
      out << hub.aggregate().to_json() << '\n';
    } else {
      out << hub.to_string();
    }
    return 0;
  }
  if (opts.positional.size() != 1) {
    throw UsageError(
        "usage: stats <file.sim>  (netlist census)\n"
        "       stats [--json | --prom <file|->]  (telemetry hub)");
  }
  const Netlist nl = read_sim_file(opts.positional[0]);
  out << to_string(compute_stats(nl));
  return 0;
}

AnalyzerOptions analyzer_options(const Options& opts) {
  AnalyzerOptions aopts;
  if (const auto threads = opts.get("threads")) {
    const auto v = parse_long(*threads);
    if (!v || *v < 1) throw Error("bad --threads value");
    aopts.threads = static_cast<int>(*v);
  }
  return aopts;
}

/// Scoped span capture for --trace <out.json>: enables the process
/// tracer for the command's lifetime and writes the Chrome trace-event
/// file on write() (the destructor only disables, so a command that
/// throws leaves no half-written file behind).
class TraceCapture {
 public:
  explicit TraceCapture(std::optional<std::string> path)
      : path_(std::move(path)) {
    if (path_) {
      Tracer::instance().clear();
      Tracer::instance().enable();
    }
  }
  ~TraceCapture() {
    if (path_) Tracer::instance().disable();
  }

  /// Stops collecting, writes the file, and reports it.
  void write(std::ostream& out) {
    if (!path_) return;
    Tracer::instance().disable();
    Tracer::instance().write_file(*path_);
    out << "wrote trace " << *path_ << " ("
        << Tracer::instance().event_count() << " spans)\n";
    path_.reset();
  }

 private:
  std::optional<std::string> path_;
};

/// Scoped run-ledger append (`--ledger <file>` or SLDM_LEDGER,
/// FORMATS.md section 12): the command fills record() as results become
/// known and the destructor appends exactly one line -- with the
/// default outcome "error" unless complete() ran, so aborted analyses
/// still leave a trace.  Inactive (and free) when neither source names
/// a path.
class LedgerScope {
 public:
  LedgerScope(const Options& opts, const char* kind) {
    std::optional<std::string> path = opts.get("ledger");
    if (!path) {
      if (const char* env = std::getenv("SLDM_LEDGER");
          env != nullptr && *env != '\0') {
        path = std::string(env);
      }
    }
    if (!path) return;
    path_ = std::move(path);
    record_.kind = kind;
    record_.version = sldm_version();
    record_.outcome = "error";
  }
  ~LedgerScope() {
    if (!path_) return;
    // Best-effort by design: a failing ledger append must not turn a
    // finished analysis into an error exit -- but it is surfaced
    // (ledger.append_failures counter, one stderr warning) instead of
    // silently losing history.
    try_append_ledger_record(*path_, record_);
  }
  LedgerScope(const LedgerScope&) = delete;
  LedgerScope& operator=(const LedgerScope&) = delete;

  bool active() const { return path_.has_value(); }
  LedgerRecord& record() { return record_; }
  void complete(const char* outcome) { record_.outcome = outcome; }

 private:
  std::optional<std::string> path_;
  LedgerRecord record_;
};

/// Seeds input events from --constraints or --slope-ns (both commands
/// share the convention).  Returns the constraints for slack reporting.
Constraints seed_events(const Options& opts, const Netlist& nl,
                        TimingAnalyzer& analyzer) {
  Constraints constraints;
  if (const auto ct = opts.get("constraints")) {
    constraints = read_constraints_file(*ct);
    constraints.apply(nl, analyzer);
  } else {
    const auto slope_opt = opts.get("slope-ns");
    double slope_ns = 1.0;
    if (slope_opt) {
      const auto v = parse_finite_double(*slope_opt);
      if (!v || *v < 0.0) throw Error("bad --slope-ns value");
      slope_ns = *v;
    }
    analyzer.add_all_input_events(slope_ns * 1e-9);
  }
  return constraints;
}

/// With --load, an explicit --tech must agree with the technology the
/// snapshot was compiled against; anything else would silently analyze
/// under parameters the baked caches don't reflect.
void check_tech_override(const Options& opts, const CompiledDesign& design,
                         const std::string& load_path) {
  if (!opts.get("tech")) return;
  const Tech requested = load_tech(opts);
  if (tech_fingerprint(requested) != design.fingerprint()) {
    throw Error("--tech '" + *opts.get("tech") +
                "' does not match the technology compiled into " +
                load_path + "; drop the option or recompile the snapshot");
  }
}

/// Everything a timing command runs over, built from either a .sim
/// positional (compile in-process, analyzer borrows the locals here)
/// or a --load snapshot (analyzer adopts the restored design; an
/// embedded calibration is reused instead of recalibrating).
struct AnalysisSetup {
  std::unique_ptr<Netlist> nl;    // direct path only
  std::unique_ptr<Tech> tech;     // direct path only
  std::unique_ptr<DelayModel> model;
  std::unique_ptr<TimingAnalyzer> analyzer;

  const Netlist& netlist() const { return analyzer->netlist(); }
};

AnalysisSetup open_analysis(const Options& opts, const char* usage_msg,
                            std::size_t extra_positionals,
                            std::ostream& err) {
  AnalysisSetup s;
  const auto load = opts.get("load");
  if (opts.positional.size() != extra_positionals + (load ? 0u : 1u)) {
    throw UsageError(usage_msg);
  }
  if (load) {
    LoadedDesign loaded = load_design_file(*load);
    check_tech_override(opts, *loaded.design, *load);
    const std::string model_name = opts.get("model").value_or("slope");
    if (model_name == "slope" && !opts.get("tables")) {
      if (!loaded.slope_tables) {
        throw Error("snapshot " + *load +
                    " carries no calibration tables; pass --tables or "
                    "recompile it with `sldm compile`");
      }
      s.model =
          std::make_unique<SlopeModel>(std::move(*loaded.slope_tables));
    } else {
      // Every remaining model choice leaves the tech untouched, so the
      // scratch copy never diverges from the design's baked one.
      Tech scratch = loaded.design->tech();
      s.model = make_model(opts, scratch, err);
    }
    s.analyzer = std::make_unique<TimingAnalyzer>(
        std::move(loaded.design), *s.model, analyzer_options(opts));
  } else {
    s.nl = std::make_unique<Netlist>(read_sim_file(opts.positional[0]));
    s.tech = std::make_unique<Tech>(load_tech(opts));
    s.model = make_model(opts, *s.tech, err);
    s.analyzer = std::make_unique<TimingAnalyzer>(
        *s.nl, *s.tech, *s.model, analyzer_options(opts));
  }
  return s;
}

/// Fills a ledger record from a finished analysis: input identity
/// (path + design fingerprint), model, phase timings, and the worst
/// output arrival.
void note_analysis(LedgerScope& ledger, const Options& opts,
                   const AnalysisSetup& s) {
  if (!ledger.active()) return;
  LedgerRecord& r = ledger.record();
  r.source = opts.get("load").value_or(
      opts.positional.empty() ? std::string() : opts.positional[0]);
  r.model = s.model->name();
  const TimingAnalyzer& analyzer = *s.analyzer;
  r.fingerprint = design_fingerprint(analyzer.netlist(), analyzer.tech());
  const AnalyzerStats& stats = analyzer.stats();
  r.threads = stats.threads;
  r.extract_seconds = stats.extract_seconds;
  r.propagate_seconds = stats.propagate_seconds;
  r.update_seconds = stats.update_seconds;
  r.stage_evaluations = stats.stage_evaluations;
  if (const auto worst = analyzer.worst_arrival(true)) {
    r.has_critical = true;
    r.critical_node = analyzer.netlist().node(worst->node).name.str();
    r.critical_dir = to_string(worst->dir);
    r.critical_arrival_s = worst->time;
  }
}

void emit_stats(const Options& opts, const Netlist& nl,
                const TimingAnalyzer& analyzer, std::ostream& out) {
  if (!opts.flag("stats") && !opts.flag("json")) return;
  if (opts.flag("json")) {
    out << analyzer_stats_json(analyzer) << '\n';
  } else {
    out << format_analyzer_stats(nl, analyzer) << '\n';
  }
}

int cmd_time(const Options& opts, std::ostream& out, std::ostream& err) {
  TelemetryHub::instance().enable();
  LedgerScope ledger(opts, "run");
  TraceCapture trace(opts.get("trace"));
  const AnalysisSetup s = open_analysis(
      opts, "usage: time <file.sim> | time --load <design.sldc> [options]",
      0, err);
  const Netlist& nl = s.netlist();
  TimingAnalyzer& analyzer = *s.analyzer;
  const DelayModel& model = *s.model;
  const Constraints constraints = seed_events(opts, nl, analyzer);
  analyzer.run();
  trace.write(out);

  out << "model: " << model.name() << "\n\n"
      << format_output_arrivals(nl, analyzer) << '\n';
  emit_stats(opts, nl, analyzer, out);
  note_analysis(ledger, opts, s);
  ledger.complete("ok");
  write_prometheus(opts, out);
  if (constraints.required) {
    const SlackReport slack =
        compute_slack(nl, analyzer, *constraints.required);
    out << format_slack(nl, analyzer, slack) << '\n';
    if (!slack.violations().empty()) {
      ledger.complete("violations");
      return 1;
    }
  }
  if (const auto k_opt = opts.get("paths")) {
    const auto k = parse_long(*k_opt);
    if (!k || *k < 1) throw Error("bad --paths value");
    if (const auto worst = analyzer.worst_arrival(true)) {
      const auto paths = analyzer.k_worst_paths(
          worst->node, worst->dir, static_cast<std::size_t>(*k));
      out << paths.size() << " worst path(s):\n";
      for (const auto& p : paths) {
        out << format("arrival %.3f ns:\n", to_ns(p.arrival))
            << format_path(nl, p.steps) << '\n';
      }
    }
  }
  return 0;
}

int cmd_explain(const Options& opts, std::ostream& out, std::ostream& err) {
  const AnalysisSetup s = open_analysis(
      opts,
      "usage: explain <file.sim>|--load <design.sldc> <node> "
      "[--dir rise|fall] [--json]",
      1, err);
  const Netlist& nl = s.netlist();
  TimingAnalyzer& analyzer = *s.analyzer;
  seed_events(opts, nl, analyzer);
  analyzer.run();

  const std::string& node_name = opts.positional.back();
  const auto node = nl.find_node(node_name);
  if (!node) throw Error("unknown node '" + node_name + "'");
  std::optional<Transition> dir;
  if (const auto d = opts.get("dir")) {
    if (*d == "rise") {
      dir = Transition::kRise;
    } else if (*d == "fall") {
      dir = Transition::kFall;
    } else {
      throw UsageError("bad --dir value '" + *d + "' (want rise|fall)");
    }
  } else {
    // Default to the later (worst) of the node's two arrivals.
    const auto rise = analyzer.arrival(*node, Transition::kRise);
    const auto fall = analyzer.arrival(*node, Transition::kFall);
    if (!rise && !fall) {
      throw Error("no arrival at node '" + node_name +
                  "'; it never switches under the declared events");
    }
    dir = (!fall || (rise && rise->time >= fall->time)) ? Transition::kRise
                                                        : Transition::kFall;
  }

  const ExplainReport report = explain_arrival(analyzer, *node, *dir);
  if (opts.flag("json")) {
    out << explain_json(nl, report) << '\n';
  } else {
    out << format_explain(nl, report);
  }
  return 0;
}

int cmd_eco(const Options& opts, std::ostream& out, std::ostream& err) {
  TelemetryHub::instance().enable();
  LedgerScope ledger(opts, "eco");
  TraceCapture trace(opts.get("trace"));
  const AnalysisSetup s = open_analysis(
      opts,
      "usage: eco <file.sim>|--load <design.sldc> <file.eco> [options]",
      1, err);
  TimingAnalyzer& analyzer = *s.analyzer;
  const DelayModel& model = *s.model;
  // The ECO edit surface: the caller-owned netlist on the direct path,
  // the design-owned one after --load.
  Netlist& nl = s.nl ? *s.nl : analyzer.mutable_netlist();
  const Tech& tech = s.tech ? *s.tech : analyzer.tech();
  seed_events(opts, nl, analyzer);
  analyzer.run();
  out << "model: " << model.name() << "\n\nbaseline:\n"
      << format_output_arrivals(nl, analyzer) << '\n';

  const std::size_t applied = apply_eco_file(opts.positional.back(), nl);
  analyzer.update();
  trace.write(out);
  out << "applied " << applied << " edit(s); incremental re-timing:\n"
      << format_output_arrivals(nl, analyzer) << '\n';
  emit_stats(opts, nl, analyzer, out);
  note_analysis(ledger, opts, s);
  ledger.complete("ok");
  write_prometheus(opts, out);

  if (opts.flag("verify")) {
    TimingAnalyzer fresh(nl, tech, model, analyzer_options(opts));
    seed_events(opts, nl, fresh);
    fresh.run();
    std::size_t mismatches = 0;
    for (NodeId n : nl.all_nodes()) {
      for (Transition dir : {Transition::kRise, Transition::kFall}) {
        const auto a = analyzer.arrival(n, dir);
        const auto b = fresh.arrival(n, dir);
        const bool same =
            a.has_value() == b.has_value() &&
            (!a || (a->time == b->time && a->slope == b->slope &&
                    a->from_node == b->from_node &&
                    a->from_dir == b->from_dir &&
                    a->via_stage == b->via_stage));
        if (!same) {
          ++mismatches;
          err << "verify mismatch at " << nl.node(n).name << ' '
              << to_string(dir) << '\n';
        }
      }
    }
    if (mismatches > 0) {
      err << "verify FAILED: " << mismatches
          << " arrival(s) differ from a full rebuild\n";
      ledger.complete("mismatch");
      return 1;
    }
    out << "verify: incremental update is bit-identical to a full "
           "rebuild\n";
  }
  if (const auto path = opts.get("write")) {
    write_sim_file(nl, *path);
    out << "wrote " << *path << '\n';
  }
  return 0;
}

int cmd_chargeshare(const Options& opts, std::ostream& out, std::ostream&) {
  if (opts.positional.size() != 1) {
    throw UsageError("usage: chargeshare <file.sim> [--tech ...]");
  }
  const Netlist nl = read_sim_file(opts.positional[0]);
  const Tech tech = load_tech(opts);
  const auto results = analyze_all_charge_sharing(nl, tech);
  if (results.empty()) {
    out << "no precharged nodes\n";
    return 0;
  }
  out << format_charge_sharing(nl, results, tech.v_switch());
  for (const auto& r : results) {
    if (r.fails(tech.v_switch())) return 1;
  }
  return 0;
}

int cmd_sim(const Options& opts, std::ostream& out, std::ostream&) {
  const auto load = opts.get("load");
  if (opts.positional.size() != (load ? 0u : 1u)) {
    throw UsageError(
        "usage: sim <file.sim> | sim --load <design.sldc> [options]");
  }
  std::optional<LoadedDesign> loaded;
  std::optional<Netlist> parsed;
  if (load) {
    loaded = load_design_file(*load);
    check_tech_override(opts, *loaded->design, *load);
  } else {
    parsed = read_sim_file(opts.positional[0]);
  }
  const Netlist& nl = load ? loaded->design->netlist() : *parsed;
  const Tech tech = load ? loaded->design->tech() : load_tech(opts);

  // Stimuli: constraints file if given, otherwise every input rises at
  // 2 ns with a 1 ns edge.
  std::vector<Stimulus> stimuli;
  if (const auto ct = opts.get("constraints")) {
    const Constraints constraints = read_constraints_file(*ct);
    for (const InputConstraint& c : constraints.inputs) {
      const auto node = nl.find_node(c.node);
      if (!node) throw Error("constraint names unknown node " + c.node);
      const bool rising = !c.dir || *c.dir == Transition::kRise;
      stimuli.push_back(
          {*node, PwlSource::edge(rising ? 0.0 : tech.vdd(),
                                  rising ? tech.vdd() : 0.0,
                                  2e-9 + c.time,
                                  std::max(c.slope, 1e-12))});
    }
  } else {
    for (NodeId n : nl.all_nodes()) {
      if (nl.node(n).is_input) {
        stimuli.push_back(
            {n, PwlSource::edge(0.0, tech.vdd(), 2e-9, 1e-9)});
      }
    }
  }

  const Elaboration elab = elaborate(nl, tech, stimuli);
  TransientOptions topt;
  double tstop_ns = 40.0;
  if (const auto t = opts.get("tstop-ns")) {
    const auto v = parse_finite_double(*t);
    if (!v || *v <= 0.0) throw Error("bad --tstop-ns value");
    tstop_ns = *v;
  }
  topt.t_stop = tstop_ns * 1e-9;
  elab.apply_precharge(nl, tech.vdd(), topt);
  const TransientResult result = simulate(elab.circuit(), topt);

  // Export watched nodes: inputs + outputs + precharged.
  std::vector<WaveformColumn> columns;
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.is_input || info.is_output || info.is_precharged) {
      columns.push_back({info.name.str(), &result.at(elab.analog(n))});
    }
  }
  if (const auto csv = opts.get("csv")) {
    write_waveforms_csv_file(columns, *csv);
    out << "wrote " << *csv << '\n';
  }
  if (const auto vcd = opts.get("vcd")) {
    write_waveforms_vcd_file(columns, tech.vdd(), *vcd);
    out << "wrote " << *vcd << '\n';
  }
  out << format("simulated %.1f ns: %zu steps, %zu newton iterations\n",
                tstop_ns, result.accepted_steps, result.newton_iterations);
  // Final levels of the outputs.
  for (NodeId n : nl.all_nodes()) {
    if (!nl.node(n).is_output) continue;
    const Waveform& w = result.at(elab.analog(n));
    out << format("%s settles at %.2f V\n", nl.node(n).name.c_str(),
                  w.value(w.size() - 1));
  }
  return 0;
}

int cmd_calibrate(const Options& opts, std::ostream& out, std::ostream&) {
  if (opts.positional.size() != 1 ||
      (opts.positional[0] != "nmos" && opts.positional[0] != "cmos")) {
    throw UsageError("usage: calibrate nmos|cmos --out <prefix>");
  }
  const auto prefix = opts.get("out");
  if (!prefix) throw UsageError("calibrate needs --out <prefix>");
  const bool is_nmos = opts.positional[0] == "nmos";
  const Tech base = is_nmos ? nmos4() : cmos3();
  const CalibrationResult result =
      calibrate(base, is_nmos ? Style::kNmos : Style::kCmos);
  const std::string tech_path = *prefix + ".tech";
  const std::string table_path = *prefix + ".slopes";
  write_tech_file(result.tech, tech_path);
  result.tables.write_file(table_path);
  out << "wrote " << tech_path << " and " << table_path << '\n';
  return 0;
}

int cmd_fuzz(const Options& opts, std::ostream& out, std::ostream& err) {
  if (!opts.positional.empty()) {
    throw UsageError(
        "usage: fuzz [--seed N] [--iterations N] [--threads N] "
        "[--out DIR] [--analog-every K] [--slope-ns X] | fuzz --replay "
        "<case.repro|dir>");
  }
  if (const auto path = opts.get("replay")) {
    return replay_path(*path, out) == 0 ? 0 : 1;
  }
  FuzzOptions fopts;
  if (const auto seed = opts.get("seed")) {
    const auto v = parse_long(*seed);
    if (!v || *v < 0) throw Error("bad --seed value");
    fopts.seed = static_cast<std::uint64_t>(*v);
  }
  if (const auto iters = opts.get("iterations")) {
    const auto v = parse_long(*iters);
    if (!v || *v < 1) throw Error("bad --iterations value");
    fopts.iterations = static_cast<int>(*v);
  }
  if (const auto threads = opts.get("threads")) {
    const auto v = parse_long(*threads);
    if (!v || *v < 1) throw Error("bad --threads value");
    fopts.threads = static_cast<int>(*v);
  }
  if (const auto every = opts.get("analog-every")) {
    const auto v = parse_long(*every);
    if (!v || *v < 0) throw Error("bad --analog-every value");
    fopts.analog_every = static_cast<int>(*v);
  }
  if (const auto slope = opts.get("slope-ns")) {
    const auto v = parse_finite_double(*slope);
    if (!v || *v < 0.0) throw Error("bad --slope-ns value");
    fopts.input_slope = *v * 1e-9;
  }
  if (const auto dir = opts.get("out")) fopts.out_dir = *dir;

  LedgerScope ledger(opts, "fuzz");
  const FuzzReport report = run_fuzz(fopts, err);
  out << report.to_string();
  if (ledger.active()) {
    LedgerRecord& r = ledger.record();
    r.threads = fopts.threads;
    r.detail = format("%d iteration(s), %zu failure(s)", report.iterations,
                      report.failures.size());
  }
  ledger.complete(report.clean() ? "clean" : "failures");
  return report.clean() ? 0 : 1;
}

int cmd_compile(const Options& opts, std::ostream& out, std::ostream& err) {
  TelemetryHub::instance().enable();
  LedgerScope ledger(opts, "compile");
  if (opts.positional.size() != 1) {
    throw UsageError(
        "usage: compile <file.sim> -o <design.sldc> [--tech ...] "
        "[--tables <file.slopes>] [--threads N]");
  }
  const auto out_path = opts.get("out");
  if (!out_path) throw UsageError("compile needs -o <design.sldc>");
  Netlist nl = read_sim_file(opts.positional[0]);
  Tech tech = load_tech(opts);

  // Mirror make_model's tech semantics exactly, or loaded analyses
  // would diverge from direct ones: only the slope model calibrates,
  // and calibration rewrites the tech's effective resistances.  The
  // fitted tables are baked into the snapshot so a load never re-runs
  // the calibration (which would both cost the compile's main saving
  // and drift the tech away from the fingerprint recorded here).
  std::optional<SlopeTables> tables;
  if (opts.get("model").value_or("slope") == "slope") {
    if (const auto path = opts.get("tables")) {
      tables = SlopeTables::read_file(*path);
    } else {
      err << "(no --tables given; calibrating " << tech.name()
          << " in-process)\n";
      CalibrationResult cal = calibrate(tech, style_for(tech));
      tech = cal.tech;
      tables = std::move(cal.tables);
    }
  }

  const AnalyzerOptions aopts = analyzer_options(opts);
  const std::shared_ptr<const CompiledDesign> design =
      CompiledDesign::compile(std::move(nl), std::move(tech),
                              CompileOptions{aopts.extract, aopts.threads});
  save_design_file(*design, *out_path, tables ? &*tables : nullptr);
  out << format(
      "compiled %zu node(s), %zu device(s) -> %zu ccc(s), %zu stage(s)\n",
      design->netlist().node_count(), design->netlist().device_count(),
      design->components().count(), design->stages().size());
  out << "wrote " << *out_path << '\n';

  // Telemetry for the build phase: compiles have no Session, so the
  // snapshot is assembled here (same names the session registry uses
  // where the meaning coincides).
  TelemetryHub& hub = TelemetryHub::instance();
  if (hub.enabled()) {
    MetricsRegistry reg;
    reg.gauge("extract.seconds").set(design->extract_seconds());
    reg.counter("compile.stages").set(design->stages().size());
    reg.counter("compile.cccs").set(design->components().count());
    TelemetryLabels labels;
    labels.session = "compile";
    labels.model = opts.get("model").value_or("slope");
    labels.threads = aopts.threads;
    hub.publish(labels, reg);
  }
  if (ledger.active()) {
    LedgerRecord& r = ledger.record();
    r.source = opts.positional[0];
    r.model = opts.get("model").value_or("slope");
    r.threads = aopts.threads;
    r.fingerprint = design_fingerprint(design->netlist(), design->tech());
    r.extract_seconds = design->extract_seconds();
    r.detail = format("%zu stage(s) -> %s", design->stages().size(),
                      out_path->c_str());
  }
  ledger.complete("ok");
  write_prometheus(opts, out);
  return 0;
}

int cmd_ledger(const Options& opts, std::ostream& out, std::ostream&) {
  if (opts.positional.size() != 2 || opts.positional[0] != "summarize") {
    throw UsageError("usage: ledger summarize <ledger.jsonl>");
  }
  out << summarize_ledger(read_ledger_file(opts.positional[1]));
  return 0;
}

/// The best (minimum) wall time per bench name in a bench-record JSONL
/// file (FORMATS.md, "Bench records").  Minimum, not mean: wall-clock
/// noise is one-sided, so the fastest observation is the stable one.
std::map<std::string, double> read_bench_best(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open bench records file '" + path + "'");
  std::map<std::string, double> best;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (trim(line).empty()) continue;
    JsonValue obj;
    try {
      obj = parse_json(line);
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
    const JsonValue* bench = obj.is_object() ? obj.find("bench") : nullptr;
    const JsonValue* seconds =
        obj.is_object() ? obj.find("wall_seconds") : nullptr;
    if (!bench || bench->kind() != JsonValue::Kind::kString || !seconds ||
        seconds->kind() != JsonValue::Kind::kNumber) {
      throw Error(path + ":" + std::to_string(lineno) +
                  ": bench record needs a string \"bench\" and a numeric "
                  "\"wall_seconds\" member");
    }
    const std::string name = bench->as_string();
    const double wall = seconds->as_number();
    const auto it = best.find(name);
    if (it == best.end() || wall < it->second) best[name] = wall;
  }
  return best;
}

int cmd_bench(const Options& opts, std::ostream& out, std::ostream& err) {
  if (opts.positional.size() != 3 || opts.positional[0] != "diff") {
    throw UsageError(
        "usage: bench diff <old.jsonl> <new.jsonl> [--max-regress <pct>]");
  }
  double max_regress = 10.0;
  if (const auto pct = opts.get("max-regress")) {
    const auto v = parse_finite_double(*pct);
    if (!v || *v < 0.0) throw Error("bad --max-regress value");
    max_regress = *v;
  }
  const std::map<std::string, double> old_best =
      read_bench_best(opts.positional[1]);
  const std::map<std::string, double> new_best =
      read_bench_best(opts.positional[2]);

  TextTable table({"bench", "old (s)", "new (s)", "delta"});
  std::size_t joined = 0;
  std::size_t regressions = 0;
  for (const auto& [name, new_wall] : new_best) {
    const auto it = old_best.find(name);
    if (it == old_best.end()) continue;
    ++joined;
    const double old_wall = it->second;
    const double pct =
        old_wall > 0.0 ? (new_wall - old_wall) / old_wall * 100.0 : 0.0;
    const bool regressed = pct > max_regress;
    if (regressed) ++regressions;
    table.add_row({name, format("%.4f", old_wall),
                   format("%.4f", new_wall),
                   format("%+.1f%%%s", pct,
                          regressed ? "  REGRESSED" : "")});
  }
  if (joined == 0) {
    err << "bench diff: no bench name appears in both files -- nothing "
           "was compared, which a gate must treat as failure\n";
    return 1;
  }
  out << table.to_string();
  for (const auto& [name, wall] : old_best) {
    if (new_best.find(name) == new_best.end()) {
      out << "only in " << opts.positional[1] << ": " << name << '\n';
    }
  }
  for (const auto& [name, wall] : new_best) {
    if (old_best.find(name) == old_best.end()) {
      out << "only in " << opts.positional[2] << ": " << name << '\n';
    }
  }
  out << format("%zu bench(es) compared, %zu regression(s) beyond +%.1f%%\n",
                joined, regressions, max_regress);
  return regressions > 0 ? 1 : 0;
}

int cmd_serve(const Options& opts, std::ostream& out, std::ostream& err) {
  if (!opts.positional.empty()) {
    throw UsageError(
        "usage: serve [--max-inflight N] [--workers N] [--cache N] "
        "[--tcp <port>] [--tech <spec>] [--ledger <file>] "
        "[--deadline-ms N] [--max-line-bytes N] [--failpoints <spec>]");
  }
  ServeOptions sopts;
  if (const auto cache = opts.get("cache")) {
    const auto v = parse_long(*cache);
    if (!v || *v < 1) throw Error("bad --cache value");
    sopts.cache_capacity = static_cast<int>(*v);
  }
  if (const auto tech = opts.get("tech")) sopts.default_tech = *tech;
  if (const auto ledger = opts.get("ledger")) {
    sopts.ledger_path = *ledger;
  } else if (const char* env = std::getenv("SLDM_LEDGER");
             env != nullptr && *env != '\0') {
    sopts.ledger_path = env;
  }
  if (const auto v = opts.get("deadline-ms")) {
    const auto d = parse_finite_double(*v);
    if (!d || *d < 0.0) throw Error("bad --deadline-ms value");
    sopts.default_deadline_ms = *d;
  }
  ServeLoopOptions lopts;
  if (const auto v = opts.get("max-inflight")) {
    const auto n = parse_long(*v);
    if (!n || *n < 1) throw Error("bad --max-inflight value");
    lopts.max_inflight = static_cast<int>(*n);
  }
  if (const auto v = opts.get("workers")) {
    const auto n = parse_long(*v);
    if (!n || *n < 1) throw Error("bad --workers value");
    lopts.workers = static_cast<int>(*n);
  }
  if (const auto v = opts.get("max-line-bytes")) {
    const auto n = parse_long(*v);
    if (!n || *n < 64) throw Error("bad --max-line-bytes value (need >= 64)");
    lopts.max_line_bytes = static_cast<std::size_t>(*n);
  }

  TimingService service(sopts);
  if (const auto port = opts.get("tcp")) {
    const auto p = parse_long(*port);
    if (!p || *p < 0 || *p > 65535) throw Error("bad --tcp port");
    TcpServer server(service, lopts, static_cast<int>(*p));
    err << "sldm serve listening on 127.0.0.1:" << server.port() << '\n';
    return server.run();
  }
  return serve_pipe(service, std::cin, out, lopts);
}

int cmd_version(const Options&, std::ostream& out, std::ostream&) {
  out << "sldm " << sldm_version()
      << " (switch-level delay models, Ousterhout DAC 1984)\n"
      << "snapshot format: .sldc version " << kSnapshotFormatVersion
      << '\n';
  return 0;
}

/// One row of the command registry: dispatch and usage() are both
/// generated from this table, so a new command cannot ship without its
/// help line.
struct CommandSpec {
  const char* name;
  const char* synopsis;
  const char* summary;
  int (*run)(const Options&, std::ostream& out, std::ostream& err);
};

const CommandSpec kCommands[] = {
    {"check", "check <file.sim>", "structural diagnostics", cmd_check},
    {"stats", "stats [<file.sim>] [--json|--prom <file|->]",
     "netlist census, or the telemetry hub without a file", cmd_stats},
    {"time", "time <file.sim>|--load <design.sldc> [options]",
     "static timing analysis", cmd_time},
    {"explain", "explain <file.sim>|--load <design.sldc> <node> [options]",
     "critical-path explain trace", cmd_explain},
    {"eco", "eco <file.sim>|--load <design.sldc> <file.eco> [options]",
     "incremental what-if timing", cmd_eco},
    {"chargeshare", "chargeshare <file.sim> [--tech ...]",
     "worst-case charge-sharing report", cmd_chargeshare},
    {"sim", "sim <file.sim>|--load <design.sldc> [options]",
     "analog reference simulation", cmd_sim},
    {"calibrate", "calibrate nmos|cmos --out <prefix>",
     "fit slope tables for a technology", cmd_calibrate},
    {"compile", "compile <file.sim> -o <design.sldc> [options]",
     "bake a reusable compiled-design snapshot", cmd_compile},
    {"fuzz", "fuzz [options] | fuzz --replay <case.repro|dir>",
     "differential fuzzing campaign", cmd_fuzz},
    {"ledger", "ledger summarize <ledger.jsonl>",
     "per-design summary of a run-ledger file", cmd_ledger},
    {"bench", "bench diff <old.jsonl> <new.jsonl> [--max-regress <pct>]",
     "bench-record regression gate", cmd_bench},
    {"serve", "serve [--max-inflight N] [--workers N] [--cache N] "
     "[--tcp <port>] [--deadline-ms N] [--max-line-bytes N]",
     "long-lived concurrent timing service (JSON lines)", cmd_serve},
    {"version", "version", "engine and snapshot format versions",
     cmd_version},
};

void usage(std::ostream& err) {
  err << "usage: sldm <command> [options]\n\ncommands:\n";
  for (const CommandSpec& c : kCommands) {
    err << format("  %-12s %s\n", c.name, c.summary)
        << format("  %-12s   sldm %s\n", "", c.synopsis);
  }
  err << "\nsee src/cli/cli.h for per-command options\n";
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    usage(err);
    return 2;
  }
  try {
    const Options opts = parse_options(args, 1);
    // Fault injection is armed before dispatch so every command --
    // not just serve -- runs its I/O boundaries under the configured
    // schedule.  The flag wins over the environment; the banner goes
    // to stderr so piped stdout protocols stay clean.
    std::optional<std::string> failpoints = opts.get("failpoints");
    if (!failpoints) {
      if (const char* env = std::getenv("SLDM_FAILPOINTS");
          env != nullptr && *env != '\0') {
        failpoints = std::string(env);
      }
    }
    if (failpoints) {
      FailpointRegistry::instance().configure(*failpoints);
      if (failpoints_armed()) {
        err << "sldm: failpoints armed: " << *failpoints << '\n';
      }
    }
    for (const CommandSpec& c : kCommands) {
      if (args[0] == c.name) return c.run(opts, out, err);
    }
    usage(err);
    return 2;
  } catch (const UsageError& e) {
    err << "error: " << e.what() << '\n';
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  } catch (const ContractViolation& e) {
    err << "internal error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace sldm
