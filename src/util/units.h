// Unit conventions and literal-style helpers.
//
// All physical quantities in sldm are SI doubles: seconds, volts, ohms,
// farads, amperes, meters.  The aliases below document intent at interfaces
// (Core Guidelines P.1) without the cost of full strong types in the hot
// numerical kernels; strong identifiers are reserved for graph handles
// (see netlist/types.h).
#pragma once

namespace sldm {

using Seconds = double;
using Volts = double;
using Ohms = double;
using Farads = double;
using Amperes = double;
using Meters = double;

namespace units {

// Scale factors: multiply a number expressed in the named unit to get SI.
inline constexpr double ns = 1e-9;   ///< nanoseconds -> seconds
inline constexpr double ps = 1e-12;  ///< picoseconds -> seconds
inline constexpr double us = 1e-6;   ///< microseconds -> seconds
inline constexpr double fF = 1e-15;  ///< femtofarads -> farads
inline constexpr double pF = 1e-12;  ///< picofarads -> farads
inline constexpr double um = 1e-6;   ///< micrometers -> meters
inline constexpr double nm = 1e-9;   ///< nanometers -> meters
inline constexpr double kOhm = 1e3;  ///< kiloohms -> ohms
inline constexpr double mA = 1e-3;   ///< milliamperes -> amperes
inline constexpr double uA = 1e-6;   ///< microamperes -> amperes

}  // namespace units

/// Converts seconds to nanoseconds for reporting.
inline constexpr double to_ns(Seconds s) { return s / units::ns; }
/// Converts farads to femtofarads for reporting.
inline constexpr double to_fF(Farads f) { return f / units::fF; }
/// Converts ohms to kiloohms for reporting.
inline constexpr double to_kohm(Ohms r) { return r / units::kOhm; }

}  // namespace sldm
