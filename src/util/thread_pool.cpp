#include "util/thread_pool.h"

#include <utility>

#include "util/contracts.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/trace.h"

#if defined(__linux__)
#include <pthread.h>
#elif defined(__APPLE__)
#include <pthread.h>
#endif

namespace sldm {

void set_current_thread_name(const std::string& name) {
#if defined(__linux__)
  // The kernel limit is 16 bytes including the terminator.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#elif defined(__APPLE__)
  pthread_setname_np(name.substr(0, 15).c_str());
#endif
  Tracer::instance().set_thread_name(name);
}

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  SLDM_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      set_current_thread_name("sldm-w" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_one(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!first_error_) {
      first_error_ = std::current_exception();
    } else {
      ++suppressed_errors_;
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  // Failpoint "pool.submit" (error only): the task is refused *before*
  // it is enqueued or counted, modeling resource exhaustion at
  // dispatch.  Callers own the recovery -- the serve loops answer the
  // request inline, batched propagation drains its in-flight chunks
  // before rethrowing.
  failpoint("pool.submit");
  if (threads_ == 1) {
    // Inline path: execution order is submission order; the only shared
    // state touched is the error slot.
    ++in_flight_;
    run_one(task);
    --in_flight_;
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
  // A task submitted from inside a task must also wake a coordinator
  // blocked in wait() so it can help drain the queue.
  all_done_.notify_all();
}

void ThreadPool::wait() {
  if (threads_ > 1) {
    // Drain the queue from the coordinating thread too, so a pool of k
    // threads applies k-way parallelism, not k-1.
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      if (!queue_.empty()) {
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        run_one(task);
        lock.lock();
        if (--in_flight_ == 0) all_done_.notify_all();
        continue;
      }
      if (in_flight_ == 0) break;
      all_done_.wait(lock, [this] {
        return in_flight_ == 0 || !queue_.empty();
      });
    }
  }
  std::exception_ptr err;
  std::size_t suppressed = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    err = std::exchange(first_error_, nullptr);
    suppressed = std::exchange(suppressed_errors_, std::size_t{0});
  }
  if (!err) return;
  if (suppressed > 0) {
    bump_process_counter("thread_pool.suppressed_exceptions",
                         static_cast<std::uint64_t>(suppressed));
    // Only sldm::Error carries a mutable message; other exception types
    // (contract aborts never reach here; std exceptions are rare) are
    // rethrown unchanged -- the metric still records the loss.
    try {
      std::rethrow_exception(err);
    } catch (const Error& e) {
      throw Error(format("%s [and %zu more task failure%s suppressed]",
                         e.what(), suppressed,
                         suppressed == 1 ? "" : "s"));
    } catch (...) {
      throw;
    }
  }
  std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] {
      return shutting_down_ || !queue_.empty();
    });
    if (queue_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    run_one(task);
    lock.lock();
    if (--in_flight_ == 0) all_done_.notify_all();
  }
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  try {
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&fn, i] { fn(i); });
    }
  } catch (...) {
    // A refused submit must not unwind past tasks already in flight:
    // they still reference `fn` in this frame.  Drain them (their own
    // failures stay suppressed; the submit error is the diagnosis).
    try {
      pool.wait();
    } catch (...) {
    }
    throw;
  }
  pool.wait();
}

}  // namespace sldm
