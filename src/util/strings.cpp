#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sldm {

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split(std::string_view line, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == delim) {
      out.emplace_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view token) {
  if (token.empty()) return std::nullopt;
  std::string buf(token);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<long> parse_long(std::string_view token) {
  if (token.empty()) return std::nullopt;
  std::string buf(token);
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace sldm
