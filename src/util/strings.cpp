#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sldm {

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split(std::string_view line, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == delim) {
      out.emplace_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {

// True for "0x.."/"0X.." after an optional sign: strtod would parse it
// as a hex float, which no sldm input format speaks.
bool looks_hex(std::string_view token) {
  std::size_t i = 0;
  if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
  return i + 1 < token.size() && token[i] == '0' &&
         (token[i + 1] == 'x' || token[i + 1] == 'X');
}

}  // namespace

std::optional<double> parse_double(std::string_view token) {
  if (token.empty()) return std::nullopt;
  if (looks_hex(token)) return std::nullopt;
  std::string buf(token);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  // ERANGE overflow saturates to +/-HUGE_VAL: an out-of-range literal,
  // not a representable value.  ERANGE underflow (tiny denormals) is
  // fine — the nearest representable value was returned.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> parse_finite_double(std::string_view token) {
  const auto v = parse_double(token);
  if (!v || !std::isfinite(*v)) return std::nullopt;
  return v;
}

std::optional<long> parse_long(std::string_view token) {
  if (token.empty()) return std::nullopt;
  std::string buf(token);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_hex_u64(std::string_view token) {
  if (token.empty() || token.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace sldm
