#include "util/interp.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace sldm {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  SLDM_EXPECTS(!xs_.empty());
  SLDM_EXPECTS(xs_.size() == ys_.size());
  SLDM_EXPECTS(std::is_sorted(xs_.begin(), xs_.end()));
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    SLDM_EXPECTS(xs_[i] > xs_[i - 1]);
  }
}

double PiecewiseLinear::operator()(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

double PiecewiseLinear::derivative(double x) const {
  if (x < xs_.front() || x > xs_.back() || xs_.size() < 2) return 0.0;
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  if (it == xs_.end()) --it;  // x == back(): use the last segment
  auto hi = static_cast<std::size_t>(it - xs_.begin());
  if (hi == 0) hi = 1;
  const std::size_t lo = hi - 1;
  return (ys_[hi] - ys_[lo]) / (xs_[hi] - xs_[lo]);
}

double PiecewiseLinear::max_abs_difference(const PiecewiseLinear& other,
                                           std::size_t samples) const {
  SLDM_EXPECTS(samples >= 2);
  const double lo = std::min(x_min(), other.x_min());
  const double hi = std::max(x_max(), other.x_max());
  double worst = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(samples - 1);
    const double x = lo + t * (hi - lo);
    worst = std::max(worst, std::abs((*this)(x) - other(x)));
  }
  return worst;
}

std::vector<double> log_spaced(double lo, double hi, std::size_t n) {
  SLDM_EXPECTS(n >= 2);
  SLDM_EXPECTS(lo > 0.0 && hi > lo);
  std::vector<double> out(n);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = std::exp(llo + t * (lhi - llo));
  }
  // Pin the endpoints exactly despite rounding in exp/log.
  out.front() = lo;
  out.back() = hi;
  return out;
}

std::vector<double> lin_spaced(double lo, double hi, std::size_t n) {
  SLDM_EXPECTS(n >= 2);
  SLDM_EXPECTS(hi > lo);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = lo + t * (hi - lo);
  }
  return out;
}

}  // namespace sldm
