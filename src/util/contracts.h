// Contract checking for the sldm library.
//
// Following the C++ Core Guidelines (I.5/I.7), preconditions and
// postconditions are stated explicitly at interfaces.  Violations indicate
// programmer error and throw sldm::ContractViolation so that tests can
// observe them; they are never used for recoverable, data-dependent errors
// (those use sldm::Error from util/error.h).
#pragma once

#include <stdexcept>
#include <string>

namespace sldm {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_failed(const char* kind, const char* expr,
                                  const char* file, int line);
}  // namespace detail

}  // namespace sldm

/// Precondition: the caller must establish `cond` before the call.
#define SLDM_EXPECTS(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sldm::detail::contract_failed("precondition", #cond, __FILE__,     \
                                      __LINE__);                           \
  } while (false)

/// Postcondition: the callee guarantees `cond` on normal return.
#define SLDM_ENSURES(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sldm::detail::contract_failed("postcondition", #cond, __FILE__,    \
                                      __LINE__);                           \
  } while (false)

/// Internal invariant that must hold at this point in the implementation.
#define SLDM_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sldm::detail::contract_failed("invariant", #cond, __FILE__,        \
                                      __LINE__);                           \
  } while (false)
