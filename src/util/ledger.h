// The append-only run ledger: one JSONL record per analysis the
// process performed (timing run, incremental ECO, design compile, fuzz
// campaign), durable where per-session metrics are not.
//
// The hub (util/telemetry.h) answers "what is this process doing right
// now"; the ledger answers "what has been analyzed, ever": each record
// carries the design fingerprint, engine version, model, thread count,
// phase timings, a critical-path summary, and the outcome, so latency
// trajectories stay attributable across processes, versions, and
// machines.  Enabled per CLI command via `--ledger <file>` or the
// SLDM_LEDGER environment variable; `sldm ledger summarize <file>`
// renders a per-fingerprint latency table.  Schema: FORMATS.md
// section 12.
//
// Appends are line-atomic at the POSIX level (one write of one line in
// append mode); readers tolerate and skip blank lines but reject
// malformed JSON with a line-numbered Error, like every other reader
// in the project.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sldm {

/// One ledger line.  String fields left empty and numeric fields left
/// zero are omitted from the JSON (`threads` excepted, it is always
/// meaningful).
struct LedgerRecord {
  std::string kind;     ///< "run" | "eco" | "compile" | "fuzz"
  std::string version;  ///< sldm_version()
  /// design_fingerprint() of the analyzed netlist + technology
  /// (0 = not applicable, e.g. a fuzz campaign).
  std::uint64_t fingerprint = 0;
  std::string source;  ///< input path (.sim / .sldc) as given
  std::string model;   ///< DelayModel::name()
  int threads = 1;

  // Phase timings (seconds) and the headline work counter.
  double extract_seconds = 0.0;
  double propagate_seconds = 0.0;
  double update_seconds = 0.0;
  std::uint64_t stage_evaluations = 0;

  // Critical-path summary: the worst arrival the analysis found.
  bool has_critical = false;
  std::string critical_node;
  std::string critical_dir;  ///< "rise" | "fall"
  double critical_arrival_s = 0.0;

  std::string outcome;  ///< "ok" | "violations" | "clean" | "failures" |
                        ///< "mismatch" | "error"
  std::string detail;   ///< free text (error message, campaign summary)

  /// Wall-clock stamp, milliseconds since the Unix epoch; filled by
  /// append_ledger_record() when zero.
  std::int64_t unix_ms = 0;

  /// One JSON object (single line, no trailing newline).
  std::string to_json() const;
};

/// Appends one record (stamping unix_ms if unset) to the JSONL file at
/// `path`, creating it if needed.  Throws Error when the file cannot
/// be opened for append or the write comes up short.  Fault-injection
/// site "ledger.append" (FORMATS.md section 15): `error` throws before
/// touching the file, `partial` writes a torn line (half the record,
/// no newline) and then throws -- the torn-line shape a crash mid-
/// append leaves behind.
void append_ledger_record(const std::string& path, LedgerRecord record);

/// Best-effort append for callers whose primary work must not fail on
/// a ledger fault (the CLI's destructor-append, the serve per-request
/// records).  A failure is *surfaced*, not swallowed: it bumps the
/// process metric "ledger.append_failures" and warns to stderr once
/// per process.  Returns true when the record landed.
bool try_append_ledger_record(const std::string& path,
                              const LedgerRecord& record);

/// Parses every record in the JSONL file at `path` (blank lines
/// skipped).  Throws Error on I/O failure or, with `path:line:`
/// context, on malformed records.
std::vector<LedgerRecord> read_ledger_file(const std::string& path);

/// A per-fingerprint summary table: record counts by kind, the models
/// seen, and min/mean/max propagation latency (`sldm ledger
/// summarize`).  Records without a fingerprint group under "-".
std::string summarize_ledger(const std::vector<LedgerRecord>& records);

}  // namespace sldm
