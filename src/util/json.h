// A minimal JSON reader, plus the writer-side escaping helpers every
// JSON emitter in the project shares (json_escape / json_number).
//
// Exists so the tests can *round-trip* every JSON artifact the engine
// emits (trace files, metrics dumps, explain reports, bench records)
// instead of grepping for substrings, without an external dependency.
// It is a strict parser for the JSON the project writes: objects,
// arrays, strings (with standard escapes), finite numbers, booleans,
// null.  Not a streaming parser; inputs are whole documents of the
// sizes our reports produce.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sldm {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Precondition: matching kind.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws Error when absent.
  const JsonValue& at(const std::string& key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else).  Throws Error with an offset-annotated message on malformed
/// input.
JsonValue parse_json(std::string_view text);

// --- Writer helpers -------------------------------------------------------
//
// Every JSON writer in the project (stats dumps, traces, explain
// reports, bench records) goes through these two functions so that the
// emitted documents always reparse:
//  * json_escape covers the full mandatory escape set -- quote,
//    backslash, and every control character below 0x20 (named escapes
//    for \b \f \n \r \t, \u00XX for the rest);
//  * json_number emits `null` for NaN and +/-Inf (JSON has no
//    representation for them) and shortest-round-trip decimal text for
//    finite doubles.

/// The body of a JSON string literal for `s` (no surrounding quotes).
std::string json_escape(std::string_view s);

/// A JSON number token for `v`, or `null` when `v` is NaN or infinite.
std::string json_number(double v);

/// Parses the JSON document in the file at `path` (whole contents must
/// be one document).  Throws Error on I/O failure or malformed input.
JsonValue parse_json_file(const std::string& path);

}  // namespace sldm
