#include "util/version.h"

#ifndef SLDM_VERSION
#define SLDM_VERSION "0.0.0-unversioned"
#endif

namespace sldm {

const char* sldm_version() { return SLDM_VERSION; }

}  // namespace sldm
