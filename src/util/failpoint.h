// Deterministic fault injection: a process-wide registry of named
// *failpoints* compiled into every I/O and lifecycle boundary the
// service layer depends on (ledger append, snapshot read/write, socket
// send/recv, design-cache insert/evict, thread-pool submit, the serve
// request path -- site inventory in FORMATS.md section 15).
//
// A disarmed process pays exactly one relaxed atomic load per site
// visit -- no lock, no lookup, no allocation -- so the hooks stay
// compiled into release builds and the chaos suite exercises the very
// binary that ships.  Arming happens once, at startup, from a spec
// string (`--failpoints` / `SLDM_FAILPOINTS`):
//
//   spec   := term (',' term)*
//   term   := site '=' action [ '*' modifier ]
//   action := 'error' | 'delay:<ms>' | 'partial'
//   modifier := <count>              fire on the first <count> visits
//             | '1in<K>@<seed>'      fire ~1-in-K visits, drawn from a
//                                    private xorshift64 stream seeded
//                                    with <seed> (deterministic: equal
//                                    specs fire on equal visit indices)
//
// Actions at a firing site: `error` throws FailpointError (an
// sldm::Error, so every boundary's existing failure handling engages);
// `delay:<ms>` sleeps the calling thread (overload and deadline
// rehearsal); `partial` asks the site to perform its operation
// truncated (a torn ledger line, a half-written snapshot, a short
// socket write) -- each site documents its partial behavior next to
// its failpoint() call.  Without a modifier the point fires on every
// visit.
//
// tests/chaos_test.cpp drives randomized fixed-seed schedules through
// the registry and asserts the service invariants; FORMATS.md section
// 15 is the user-facing contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"

namespace sldm {

/// The injected failure an armed `error` failpoint throws.  Derives
/// from Error so call-site failure paths treat it like any real fault.
class FailpointError : public Error {
 public:
  explicit FailpointError(const std::string& site)
      : Error("failpoint '" + site + "' injected a fault") {}
};

enum class FailpointAction { kNone, kError, kDelay, kPartial };

/// One parsed spec term (exposed for tests and the summary renderer).
struct FailpointConfig {
  std::string site;
  FailpointAction action = FailpointAction::kError;
  int delay_ms = 0;  ///< kDelay only
  /// `*<count>` modifier: fire on the first max_hits visits.  The
  /// default (no modifier) fires on every visit.
  std::uint64_t max_hits = UINT64_MAX;
  /// `*1in<K>@<seed>` modifier: fire when the next xorshift64 draw is
  /// divisible by K.  0 = not probabilistic (use max_hits).
  std::uint32_t one_in = 0;
  std::uint64_t seed = 0;
};

/// Per-site visit/fire counters (chaos-test introspection).
struct FailpointCounts {
  std::uint64_t visits = 0;  ///< evaluations while armed
  std::uint64_t fires = 0;   ///< visits on which the action fired
};

class FailpointRegistry {
 public:
  static FailpointRegistry& instance();

  /// Parses `spec` (grammar above) and replaces the active
  /// configuration.  Throws Error naming the offending term on any
  /// grammar violation; an empty spec disarms.  Not thread-safe
  /// against concurrent evaluate() -- configure at startup or between
  /// requests, like the CLI and the tests do.
  void configure(const std::string& spec);

  /// Disarms every failpoint and discards the counters.
  void clear();

  /// Parses without installing (grammar unit tests).
  static std::vector<FailpointConfig> parse_spec(const std::string& spec);

  /// Counters for one site (zeroes when the site is not configured).
  FailpointCounts counts(const std::string& site) const;

  /// "site=action[*modifier] (fires/visits)" per armed point, one per
  /// line, in configuration order -- for startup banners and logs.
  std::string summary() const;

  /// Slow path behind failpoint(); call only when armed.  Performs the
  /// kDelay sleep itself (outside the registry lock) and reports what
  /// the caller still has to do: kError (throw) or kPartial (truncate).
  FailpointAction evaluate(const char* site);

 private:
  struct Point {
    FailpointConfig config;
    std::uint64_t rng = 0;
    FailpointCounts counts;
  };

  FailpointRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::string> order_;       ///< configuration order
  std::map<std::string, Point> points_;  ///< keyed by site name
};

namespace failpoint_detail {
/// The one-load fast path: true while any failpoint is configured.
extern std::atomic<bool> g_armed;
}  // namespace failpoint_detail

/// Applies the armed action for `site`, if any: sleeps on delay,
/// throws FailpointError on error, returns true on partial (the caller
/// performs its operation truncated).  Returns false -- after one
/// relaxed atomic load -- when the process is disarmed or the site is
/// not configured or does not fire this visit.
bool failpoint(const char* site);

/// True when any failpoint is configured (banner/telemetry checks).
inline bool failpoints_armed() {
  return failpoint_detail::g_armed.load(std::memory_order_relaxed);
}

}  // namespace sldm
