#include "util/failpoint.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "util/strings.h"

namespace sldm {

namespace failpoint_detail {
std::atomic<bool> g_armed{false};
}  // namespace failpoint_detail

namespace {

/// splitmix-style seeding so small user seeds still give well-mixed
/// streams, then xorshift64 per draw.  Fixed algorithm: the firing
/// pattern for a given spec is part of the format contract
/// (FORMATS.md section 15), because chaos runs must be replayable.
std::uint64_t seed_state(std::uint64_t seed) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return (z ^ (z >> 31)) | 1ull;  // xorshift state must be nonzero
}

std::uint64_t xorshift64(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 19) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

FailpointConfig parse_term(const std::string& term) {
  const auto eq = term.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw Error("failpoint term '" + term +
                "' is not of the form <site>=<action>");
  }
  FailpointConfig cfg;
  cfg.site = trim(term.substr(0, eq));
  std::string rest = trim(term.substr(eq + 1));
  if (cfg.site.empty() || rest.empty()) {
    throw Error("failpoint term '" + term +
                "' is not of the form <site>=<action>");
  }

  // Split off the optional '*' modifier first; '*' never appears in an
  // action token.
  std::string modifier;
  if (const auto star = rest.find('*'); star != std::string::npos) {
    modifier = rest.substr(star + 1);
    rest = rest.substr(0, star);
    if (modifier.empty()) {
      throw Error("failpoint term '" + term + "' has an empty modifier");
    }
  }

  if (rest == "error") {
    cfg.action = FailpointAction::kError;
  } else if (rest == "partial") {
    cfg.action = FailpointAction::kPartial;
  } else if (rest.rfind("delay:", 0) == 0) {
    cfg.action = FailpointAction::kDelay;
    std::uint64_t ms = 0;
    if (!parse_u64(rest.substr(6), ms) || ms > 60000) {
      throw Error("failpoint term '" + term +
                  "' needs delay:<ms> with ms in [0, 60000]");
    }
    cfg.delay_ms = static_cast<int>(ms);
  } else {
    throw Error("failpoint term '" + term +
                "' has unknown action '" + rest +
                "' (want error, delay:<ms>, or partial)");
  }

  if (!modifier.empty()) {
    if (modifier.rfind("1in", 0) == 0) {
      const auto at = modifier.find('@');
      if (at == std::string::npos) {
        throw Error("failpoint term '" + term +
                    "' probabilistic modifier needs 1in<K>@<seed>");
      }
      std::uint64_t k = 0, seed = 0;
      if (!parse_u64(modifier.substr(3, at - 3), k) || k < 1 ||
          k > 1000000 || !parse_u64(modifier.substr(at + 1), seed)) {
        throw Error("failpoint term '" + term +
                    "' probabilistic modifier needs 1in<K>@<seed> with "
                    "K in [1, 1000000]");
      }
      cfg.one_in = static_cast<std::uint32_t>(k);
      cfg.seed = seed;
    } else {
      std::uint64_t count = 0;
      if (!parse_u64(modifier, count) || count < 1) {
        throw Error("failpoint term '" + term +
                    "' hit-count modifier must be a positive integer "
                    "or 1in<K>@<seed>");
      }
      cfg.max_hits = count;
    }
  }
  return cfg;
}

std::string describe(const FailpointConfig& cfg) {
  std::string action;
  switch (cfg.action) {
    case FailpointAction::kError:
      action = "error";
      break;
    case FailpointAction::kDelay:
      action = format("delay:%d", cfg.delay_ms);
      break;
    case FailpointAction::kPartial:
      action = "partial";
      break;
    case FailpointAction::kNone:
      action = "none";
      break;
  }
  if (cfg.one_in > 0) {
    action += format("*1in%u@%llu", cfg.one_in,
                     static_cast<unsigned long long>(cfg.seed));
  } else if (cfg.max_hits != UINT64_MAX) {
    action += format("*%llu", static_cast<unsigned long long>(cfg.max_hits));
  }
  return cfg.site + "=" + action;
}

}  // namespace

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry registry;
  return registry;
}

std::vector<FailpointConfig> FailpointRegistry::parse_spec(
    const std::string& spec) {
  std::vector<FailpointConfig> configs;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const auto comma = spec.find(',', begin);
    const std::string term =
        trim(spec.substr(begin, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - begin));
    if (!term.empty()) configs.push_back(parse_term(term));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return configs;
}

void FailpointRegistry::configure(const std::string& spec) {
  std::vector<FailpointConfig> configs = parse_spec(spec);  // may throw
  std::lock_guard<std::mutex> lock(mutex_);
  order_.clear();
  points_.clear();
  for (FailpointConfig& cfg : configs) {
    if (points_.count(cfg.site) == 0) order_.push_back(cfg.site);
    Point& p = points_[cfg.site];  // last term for a site wins
    p.rng = seed_state(cfg.seed);
    p.config = std::move(cfg);
  }
  failpoint_detail::g_armed.store(!points_.empty(),
                                  std::memory_order_relaxed);
}

void FailpointRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  order_.clear();
  points_.clear();
  failpoint_detail::g_armed.store(false, std::memory_order_relaxed);
}

FailpointCounts FailpointRegistry::counts(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(site);
  return it == points_.end() ? FailpointCounts{} : it->second.counts;
}

std::string FailpointRegistry::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const std::string& site : order_) {
    const Point& p = points_.at(site);
    os << describe(p.config)
       << format(" (%llu/%llu)\n",
                 static_cast<unsigned long long>(p.counts.fires),
                 static_cast<unsigned long long>(p.counts.visits));
  }
  return os.str();
}

FailpointAction FailpointRegistry::evaluate(const char* site) {
  int delay_ms = 0;
  FailpointAction action = FailpointAction::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(site);
    if (it == points_.end()) return FailpointAction::kNone;
    Point& p = it->second;
    ++p.counts.visits;
    const bool fire = p.config.one_in > 0
                          ? xorshift64(p.rng) % p.config.one_in == 0
                          : p.counts.fires < p.config.max_hits;
    if (!fire) return FailpointAction::kNone;
    ++p.counts.fires;
    action = p.config.action;
    delay_ms = p.config.delay_ms;
  }
  if (action == FailpointAction::kDelay) {
    // Sleep outside the registry lock so a delay on one site never
    // serializes unrelated sites.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return FailpointAction::kNone;
  }
  return action;
}

bool failpoint(const char* site) {
  if (!failpoint_detail::g_armed.load(std::memory_order_relaxed)) {
    return false;
  }
  switch (FailpointRegistry::instance().evaluate(site)) {
    case FailpointAction::kError:
      throw FailpointError(site);
    case FailpointAction::kPartial:
      return true;
    default:
      return false;
  }
}

}  // namespace sldm
