// Process-wide telemetry: labeled metric snapshots and Prometheus
// text exposition.
//
// Per-session metrics (design/session.h) die with their session, which
// is the wrong lifetime for a process serving many analyses: fleet
// questions ("how much propagation work has this process done, across
// which models and thread counts?") need an aggregation point that
// outlives any one session.  The TelemetryHub is that point: Sessions
// publish a labeled snapshot of their registry at run()/update()
// completion, the ECO and compile paths do the same, and observers
// (`sldm stats`, the Prometheus renderer) read the hub instead of
// chasing individual sessions.
//
// Design constraints, in order:
//   * Zero hot-path cost when disabled.  The hub is off by default;
//     publish() is gated on one relaxed atomic load, so instrumented
//     code (Session::run) pays nothing measurable when nobody is
//     listening (bench_table5_runtime overhead within noise,
//     EXPERIMENTS.md).  The CLI enables the hub for its analysis
//     commands.
//   * Thread-safe.  publish()/snapshots()/aggregate()/clear() take an
//     internal mutex; N concurrent sessions may publish while another
//     thread renders (tsan-covered in tests/telemetry_test.cpp and
//     scripts/check.sh).
//   * Snapshots replace, aggregation merges.  A session's registry is
//     cumulative over its lifetime, so re-publishing under the same
//     labels *replaces* the stored snapshot (summing would double
//     count); aggregate() then merges *across* label sets with
//     MetricsRegistry::merge semantics (sum counters, sum histogram
//     buckets, last-write gauges).
//
// The Prometheus renderer (text exposition format v0.0.4) serializes
// any MetricsRegistry -- or the whole hub, labels included -- as
// `# TYPE`-annotated families: counters (`sldm_<name>_total`), gauges,
// and cumulative `_bucket/_sum/_count` histogram series.  Metric names
// are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]*; schema in FORMATS.md
// section 13.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace sldm {

/// The identity of one published snapshot.  Equal labels replace each
/// other in the hub; distinct labels aggregate.
struct TelemetryLabels {
  TelemetryLabels() = default;
  TelemetryLabels(std::string session_, std::string model_, int threads_,
                  std::string request_ = std::string())
      : session(std::move(session_)),
        model(std::move(model_)),
        threads(threads_),
        request(std::move(request_)) {}

  std::string session;  ///< publisher id, e.g. "s12", "compile-4f2a"
  std::string model;    ///< DelayModel::name(), "-" when not applicable
  int threads = 1;      ///< worker threads the publisher ran with
  /// Serve-traffic request kind ("time", "eco", ...); empty outside the
  /// service, in which case the label is omitted from renderings.
  std::string request;

  bool operator==(const TelemetryLabels& o) const {
    return session == o.session && model == o.model &&
           threads == o.threads && request == o.request;
  }
};

/// `name` sanitized for Prometheus and prefixed "sldm_": every
/// character outside [a-zA-Z0-9_:] becomes '_'
/// ("propagate.batch_size" -> "sldm_propagate_batch_size").
std::string prometheus_name(const std::string& name);

/// Renders one registry in Prometheus text-exposition v0.0.4.
/// `label_text` is the pre-rendered label body (e.g.
/// `session="s1",model="slope",threads="4"`), empty for no labels.
/// Counters gain the conventional `_total` suffix; histograms emit
/// cumulative `_bucket{le=...}` series (the layout clamps out-of-range
/// samples into the edge buckets, so the last finite `le` already
/// equals `_count`) plus `_sum`/`_count`.
std::string to_prometheus(const MetricsRegistry& registry,
                          const std::string& label_text = std::string());

/// The label body for `labels` (values backslash-escaped per the
/// exposition format).
std::string prometheus_labels(const TelemetryLabels& labels);

class TelemetryHub {
 public:
  /// The process-wide hub.
  static TelemetryHub& instance();

  /// Off by default; when disabled, publish() is a no-op after one
  /// relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Stores a copy of `registry` under `labels`, replacing any earlier
  /// snapshot with equal labels (publishers re-publish cumulative
  /// registries).  No-op when disabled.  Thread-safe.
  void publish(const TelemetryLabels& labels, const MetricsRegistry& registry);

  /// Copies of every stored (labels, registry) pair, in first-publish
  /// order.  Thread-safe.
  std::vector<std::pair<TelemetryLabels, MetricsRegistry>> snapshots() const;
  std::size_t snapshot_count() const;

  /// All snapshots folded into one registry with MetricsRegistry::merge
  /// semantics.  The fold visits snapshots in sorted label order
  /// (session, model, threads, request) -- NOT publish order -- so the
  /// merge is a pure function of the stored snapshots: last-write gauge
  /// resolution cannot depend on which publisher raced in first, and
  /// repeated `sldm stats` renders of the same hub state agree.
  /// Thread-safe; throws Error if two publishers registered the same
  /// histogram name with different bucket layouts.
  MetricsRegistry aggregate() const;

  /// Drops every snapshot (the enabled flag is untouched).
  void clear();

  /// Human-readable rendering: one section per snapshot, then the
  /// aggregate (`sldm stats`).
  std::string to_string() const;

  /// The whole hub in Prometheus text exposition: each family's
  /// `# TYPE` line once, then one labeled sample (set) per snapshot
  /// that carries the metric.
  std::string to_prometheus() const;

 private:
  TelemetryHub() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<std::pair<TelemetryLabels, MetricsRegistry>> snapshots_;
};

}  // namespace sldm
