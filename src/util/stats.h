// Small descriptive-statistics helpers used by the experiment harness to
// summarize model-vs-simulator errors (Fig. 3 reconstruction).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sldm {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;  ///< 90th percentile (linear interpolation)
};

/// Computes summary statistics.  Precondition: !xs.empty().
Summary summarize(std::vector<double> xs);

/// Quantile with linear interpolation between order statistics.
/// Preconditions: xs non-empty and sorted ascending; 0 <= q <= 1.
double quantile_sorted(const std::vector<double>& xs, double q);

/// A fixed-width histogram over [lo, hi]; values outside are clamped into
/// the end bins so every sample is counted.
class Histogram {
 public:
  /// Precondition: bins >= 1, hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  /// Zeroes all counts and the sum; the bucket layout is kept.
  void reset();

  /// Adds `other`'s per-bucket counts, total, and sum into this
  /// histogram.  Throws Error unless both share the same [lo, hi] x
  /// bins layout -- summing buckets with different edges would silently
  /// misattribute samples.
  void merge(const Histogram& other);

  /// True iff `other` has the same [lo, hi] x bins layout.
  bool same_layout(const Histogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  /// Sum of all added values (unclamped), for mean reporting.
  double sum() const { return sum_; }
  /// sum() / total(); 0 when empty.
  double mean() const;
  /// Inclusive lower edge of `bin`.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of `bin`.
  double bin_hi(std::size_t bin) const;

  /// Renders an ASCII bar chart, one line per bin.
  std::string to_ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace sldm
