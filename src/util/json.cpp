#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace sldm {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw Error("JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw Error("JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw Error("JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw Error("JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) throw Error("JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw Error("JSON object has no member '" + key + "'");
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error(format("JSON parse error at offset %zu: ", pos_) + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(format("expected '%c'", c));
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_literal_bool();
      case 'n': parse_literal("null"); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    // UTF-8 encode the code point (surrogates are passed through as-is;
    // the project never emits them).
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_literal_bool() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    if (peek() == 't') {
      parse_literal("true");
      v.bool_ = true;
    } else {
      parse_literal("false");
      v.bool_ = false;
    }
    return v;
  }

  void parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("bad literal (expected " + std::string(lit) + ")");
    }
    pos_ += lit.size();
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number: digits must follow '.'");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number: digits must follow exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = std::strtod(token.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // %.17g round-trips every finite double exactly.
  return format("%.17g", v);
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open JSON file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_json(ss.str());
}

}  // namespace sldm
