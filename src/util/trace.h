// Span tracing for the timing engine.
//
// A process-wide Tracer collects scoped spans (name, category, wall-clock
// interval, thread) and exports them as Chrome trace-event JSON -- the
// format chrome://tracing and Perfetto load directly (see FORMATS.md).
// The engine's phases (elaboration, CCC partitioning, per-chunk stage
// extraction inside the thread pool, propagation batches, incremental
// update phases) are instrumented with TraceSpan; `sldm time --trace
// out.json` turns collection on for one analysis.
//
// Cost model: tracing is OFF by default and spans are placed at phase /
// work-chunk granularity, never per delay-model evaluation.  A disabled
// TraceSpan costs one relaxed atomic load and a branch; nothing is
// allocated and no clock is read.  An enabled span reads the steady
// clock twice and takes one short mutex section at scope exit.  Span
// names and categories must be string literals (they are stored as
// pointers).
//
// Thread attribution: every thread that opens a span is assigned a
// small stable id (registration order).  ThreadPool workers register
// themselves with their worker name (see Tracer::set_thread_name), so
// extraction chunks are attributable to the worker that ran them.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sldm {

/// One completed span ("X" phase in the Chrome trace-event format).
struct TraceEvent {
  const char* name = "";      ///< literal span name
  const char* category = "";  ///< literal category ("timing", "analog", ...)
  double ts_us = 0.0;         ///< start, microseconds since tracer epoch
  double dur_us = 0.0;        ///< duration, microseconds
  int tid = 0;                ///< Tracer thread id
  /// Numeric span arguments (literal keys), rendered into "args".
  std::vector<std::pair<const char*, double>> args;
};

class Tracer {
 public:
  /// The process-wide tracer.
  static Tracer& instance();

  /// Collection switch.  enable() does not clear previously collected
  /// events (call clear() for a fresh capture).
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all collected events.  Thread registrations (ids and names)
  /// survive, so ids stay stable across captures in one process.
  void clear();

  /// The calling thread's tracer id (registered on first use).
  int thread_id();

  /// Names the calling thread in trace output (also registers it).
  void set_thread_name(const std::string& name);

  /// Records one completed span on the calling thread.  No-op when
  /// disabled.  `name`/`category` and arg keys must be string literals.
  void record(const char* name, const char* category, double ts_us,
              double dur_us,
              std::vector<std::pair<const char*, double>> args = {});

  /// Microseconds since the tracer epoch (process start of tracing use).
  double now_us() const;

  std::size_t event_count() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} with thread-name
  /// metadata records first, then one "X" (complete) event per span.
  std::string to_json() const;

  /// Writes to_json() to `path`.  Throws Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  double epoch_ = 0.0;  ///< steady-clock seconds at construction
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> thread_names_;  ///< indexed by thread id
  int next_tid_ = 0;
};

/// RAII span: captures the start time at construction (when tracing is
/// enabled) and records itself at scope exit.  Numeric arguments may be
/// attached while the span is open.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (key must be a string literal).
  /// No-op when the span is disarmed (tracing was off at construction).
  void arg(const char* key, double value);

  bool armed() const { return armed_; }

 private:
  bool armed_;
  const char* name_;
  const char* category_;
  double t0_us_ = 0.0;
  std::vector<std::pair<const char*, double>> args_;
};

}  // namespace sldm
