#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contracts.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {

double quantile_sorted(const std::vector<double>& xs, double q) {
  SLDM_EXPECTS(!xs.empty());
  SLDM_EXPECTS(q >= 0.0 && q <= 1.0);
  SLDM_EXPECTS(std::is_sorted(xs.begin(), xs.end()));
  if (xs.size() == 1) return xs.front();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

Summary summarize(std::vector<double> xs) {
  SLDM_EXPECTS(!xs.empty());
  Summary s;
  s.count = xs.size();
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.median = quantile_sorted(xs, 0.5);
  s.p90 = quantile_sorted(xs, 0.9);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SLDM_EXPECTS(bins >= 1);
  SLDM_EXPECTS(hi > lo);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
  sum_ += x;
}

double Histogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), std::size_t{0});
  total_ = 0;
  sum_ = 0.0;
}

void Histogram::merge(const Histogram& other) {
  if (!same_layout(other)) {
    throw Error(format(
        "histogram merge: mismatched bucket layout "
        "([%g, %g] x %zu vs [%g, %g] x %zu)",
        lo_, hi_, counts_.size(), other.lo_, other.hi_,
        other.counts_.size()));
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

std::size_t Histogram::count(std::size_t bin) const {
  SLDM_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  SLDM_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  SLDM_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::to_ascii(std::size_t max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os.setf(std::ios::fixed);
    os.precision(1);
    os.width(8);
    os << bin_lo(b) << " .. ";
    os.width(8);
    os << bin_hi(b) << " | ";
    const std::size_t w = counts_[b] * max_width / peak;
    for (std::size_t i = 0; i < w; ++i) os << '#';
    os << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace sldm
