// Recoverable, data-dependent errors for the sldm library.
//
// Per Core Guidelines I.10/E.14, failures to perform a requested task are
// reported by throwing; sldm::Error is the library-wide base so callers can
// catch everything from this library with one handler.
#pragma once

#include <stdexcept>
#include <string>

namespace sldm {

/// Base class for all recoverable sldm errors (bad input files, singular
/// matrices, non-convergence, malformed netlists, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A syntactic or semantic problem in an input file (.sim netlist,
/// technology file, calibration table).  Carries file/line context.
class ParseError : public Error {
 public:
  ParseError(const std::string& file, int line, const std::string& message)
      : Error(file + ":" + std::to_string(line) + ": " + message),
        file_(file),
        line_(line) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

/// Numerical failure in the analog simulator (singular system,
/// Newton divergence, step-size underflow).
class NumericalError : public Error {
 public:
  using Error::Error;
};

}  // namespace sldm
