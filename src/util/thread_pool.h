// A small fixed-size worker pool for fanning independent tasks out over
// threads.
//
// Design constraints (shared by every parallel pass in sldm):
//  * determinism is the caller's problem -- the pool only promises that
//    every submitted task runs exactly once and that wait() establishes a
//    happens-before edge from all task bodies to the caller;
//  * exceptions thrown by a task are captured and rethrown from wait():
//    the first one wins, and when later tasks also fail their count is
//    recorded (process metric "thread_pool.suppressed_exceptions") and
//    appended to the rethrown sldm::Error's message ("... [and N more
//    task failure(s) suppressed]"), so contract violations and
//    sldm::Error diagnostics surface on the coordinating thread without
//    silently hiding a multi-task failure;
//  * a pool of size 1 runs tasks inline on the calling thread at submit
//    time: no worker is spawned, no synchronization happens, and the
//    execution order is exactly the submission order.  Thread count 1 is
//    therefore bit-identical (and cost-identical) to not having a pool.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sldm {

/// Names the calling thread for debuggers, sanitizer reports, and trace
/// output (pthread_setname_np where available, silently a no-op
/// elsewhere; also registers the name with the span tracer).  Kernel
/// thread names are truncated to 15 characters.
void set_current_thread_name(const std::string& name);

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates via
  /// inline execution when threads == 1).  Workers are named
  /// "sldm-w<i>" (see set_current_thread_name) so profiler and tsan
  /// output is attributable.  Precondition: threads >= 1.
  explicit ThreadPool(int threads);

  /// Joins all workers.  Pending tasks are finished first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.  With a single-thread pool the task runs inline
  /// before submit() returns (exceptions still surface from wait()).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception, if any.  When more than one task
  /// failed in the batch, the extras are counted in the process metrics
  /// registry ("thread_pool.suppressed_exceptions") and, if the first
  /// exception is an sldm::Error, an "[and N more task failure(s)
  /// suppressed]" note is appended to its message.  The pool is
  /// reusable after wait() returns.
  void wait();

  int thread_count() const { return threads_; }

  /// The parallelism the host offers (>= 1 even when unknown).
  static int hardware_threads();

 private:
  void worker_loop();
  void run_one(std::function<void()>& task);

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::exception_ptr first_error_;
  std::size_t suppressed_errors_ = 0;  ///< failures after the first
  bool shutting_down_ = false;
};

/// Runs `fn(i)` for i in [0, count) across `pool`, one task per index,
/// and waits for completion.  Rethrows the first task exception.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sldm
