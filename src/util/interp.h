// Piecewise-linear interpolation tables.
//
// The slope model (delay/slope_table.h) stores calibrated effective
// resistance multipliers as piecewise-linear functions of slope ratio;
// this is the underlying table type.  Values outside the abscissa range
// are clamped to the end values, matching Crystal's table behavior.
#pragma once

#include <cstddef>
#include <vector>

namespace sldm {

/// A piecewise-linear function y(x) defined by sorted breakpoints.
///
/// Invariants: at least one point; x strictly increasing.
class PiecewiseLinear {
 public:
  /// Builds a table from parallel breakpoint vectors.
  /// Precondition: xs.size() == ys.size(), xs non-empty and strictly
  /// increasing.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  /// Evaluates the function at `x`, clamping outside [front, back].
  double operator()(double x) const;

  /// First derivative at `x` (0 outside the abscissa range, and the
  /// right-segment slope at interior breakpoints).
  double derivative(double x) const;

  std::size_t size() const { return xs_.size(); }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  double x_min() const { return xs_.front(); }
  double x_max() const { return xs_.back(); }

  /// Maximum absolute difference from `other`, sampled at `samples`
  /// uniformly spaced points over the union of the two domains.  Used by
  /// the table-granularity ablation.
  double max_abs_difference(const PiecewiseLinear& other,
                            std::size_t samples = 257) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Returns `n` points logarithmically spaced over [lo, hi].
/// Precondition: n >= 2, 0 < lo < hi.
std::vector<double> log_spaced(double lo, double hi, std::size_t n);

/// Returns `n` points linearly spaced over [lo, hi].
/// Precondition: n >= 2, lo < hi.
std::vector<double> lin_spaced(double lo, double hi, std::size_t n);

}  // namespace sldm
