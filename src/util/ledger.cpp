#include "util/ledger.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "util/error.h"
#include "util/failpoint.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace sldm {
namespace {

std::string fingerprint_hex(std::uint64_t fp) {
  return format("%016llx", static_cast<unsigned long long>(fp));
}

/// Lenient member readers: summarize() must not crash on a ledger
/// written by a different version, so absent members default.
std::string string_or(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v && v->kind() == JsonValue::Kind::kString ? v->as_string() : "";
}

double number_or(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v && v->kind() == JsonValue::Kind::kNumber ? v->as_number() : 0.0;
}

}  // namespace

std::string LedgerRecord::to_json() const {
  std::ostringstream os;
  os << "{\"kind\":\"" << json_escape(kind) << '"';
  os << ",\"version\":\"" << json_escape(version) << '"';
  if (unix_ms != 0) os << ",\"unix_ms\":" << unix_ms;
  if (fingerprint != 0) {
    os << ",\"fingerprint\":\"" << fingerprint_hex(fingerprint) << '"';
  }
  if (!source.empty()) os << ",\"source\":\"" << json_escape(source) << '"';
  if (!model.empty()) os << ",\"model\":\"" << json_escape(model) << '"';
  os << ",\"threads\":" << threads;
  if (extract_seconds != 0.0) {
    os << ",\"extract_seconds\":" << json_number(extract_seconds);
  }
  if (propagate_seconds != 0.0) {
    os << ",\"propagate_seconds\":" << json_number(propagate_seconds);
  }
  if (update_seconds != 0.0) {
    os << ",\"update_seconds\":" << json_number(update_seconds);
  }
  if (stage_evaluations != 0) {
    os << ",\"stage_evaluations\":" << stage_evaluations;
  }
  if (has_critical) {
    os << ",\"critical\":{\"node\":\"" << json_escape(critical_node)
       << "\",\"dir\":\"" << json_escape(critical_dir)
       << "\",\"arrival_s\":" << json_number(critical_arrival_s) << '}';
  }
  os << ",\"outcome\":\"" << json_escape(outcome) << '"';
  if (!detail.empty()) os << ",\"detail\":\"" << json_escape(detail) << '"';
  os << '}';
  return os.str();
}

void append_ledger_record(const std::string& path, LedgerRecord record) {
  // Injected `error` refuses the append outright; `partial` leaves the
  // torn line a mid-append crash would -- both must surface to the
  // caller as the same Error a real I/O fault raises.
  const bool partial = failpoint("ledger.append");
  if (record.unix_ms == 0) {
    record.unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  }
  std::ofstream out(path, std::ios::app);
  if (!out) throw Error("cannot open ledger file '" + path + "' for append");
  const std::string line = record.to_json();
  if (partial) {
    out << line.substr(0, line.size() / 2) << std::flush;
    throw Error("short write to ledger file '" + path + "'");
  }
  out << line << '\n';
  if (!out) throw Error("short write to ledger file '" + path + "'");
}

bool try_append_ledger_record(const std::string& path,
                              const LedgerRecord& record) {
  try {
    append_ledger_record(path, record);
    return true;
  } catch (const Error& e) {
    bump_process_counter("ledger.append_failures");
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::cerr << "sldm: warning: ledger append failed (" << e.what()
                << "); further failures are counted in "
                   "ledger.append_failures without this warning\n";
    }
    return false;
  }
}

std::vector<LedgerRecord> read_ledger_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open ledger file '" + path + "'");
  std::vector<LedgerRecord> records;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (trim(line).empty()) continue;
    JsonValue obj;
    try {
      obj = parse_json(line);
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
    if (!obj.is_object()) {
      throw Error(path + ":" + std::to_string(lineno) +
                  ": ledger record is not a JSON object");
    }
    LedgerRecord r;
    r.kind = string_or(obj, "kind");
    if (r.kind.empty()) {
      throw Error(path + ":" + std::to_string(lineno) +
                  ": ledger record has no \"kind\"");
    }
    r.version = string_or(obj, "version");
    r.unix_ms = static_cast<std::int64_t>(number_or(obj, "unix_ms"));
    const std::string fp = string_or(obj, "fingerprint");
    if (!fp.empty()) {
      // Untrusted field: a hand-edited or corrupt ledger must produce a
      // diagnostic, not std::invalid_argument out of std::stoull.
      const auto parsed = parse_hex_u64(fp);
      if (!parsed) {
        throw Error(path + ":" + std::to_string(lineno) +
                    ": bad fingerprint '" + fp +
                    "' (want 1-16 hex digits)");
      }
      r.fingerprint = *parsed;
    }
    r.source = string_or(obj, "source");
    r.model = string_or(obj, "model");
    r.threads = static_cast<int>(number_or(obj, "threads"));
    r.extract_seconds = number_or(obj, "extract_seconds");
    r.propagate_seconds = number_or(obj, "propagate_seconds");
    r.update_seconds = number_or(obj, "update_seconds");
    r.stage_evaluations =
        static_cast<std::uint64_t>(number_or(obj, "stage_evaluations"));
    if (const JsonValue* crit = obj.find("critical")) {
      r.has_critical = true;
      r.critical_node = string_or(*crit, "node");
      r.critical_dir = string_or(*crit, "dir");
      r.critical_arrival_s = number_or(*crit, "arrival_s");
    }
    r.outcome = string_or(obj, "outcome");
    r.detail = string_or(obj, "detail");
    records.push_back(std::move(r));
  }
  return records;
}

std::string summarize_ledger(const std::vector<LedgerRecord>& records) {
  // Group by fingerprint, preserving first-seen order.
  std::vector<std::uint64_t> order;
  std::map<std::uint64_t, std::vector<const LedgerRecord*>> groups;
  for (const LedgerRecord& r : records) {
    if (groups[r.fingerprint].empty()) order.push_back(r.fingerprint);
    groups[r.fingerprint].push_back(&r);
  }
  TextTable table({"fingerprint", "records", "kinds", "models",
                   "prop min (ms)", "prop mean (ms)", "prop max (ms)",
                   "last version"});
  for (const std::uint64_t fp : order) {
    const auto& group = groups[fp];
    std::map<std::string, std::size_t> kinds;
    std::set<std::string> models;
    double prop_min = 0.0, prop_max = 0.0, prop_sum = 0.0;
    std::size_t prop_n = 0;
    std::string last_version;
    for (const LedgerRecord* r : group) {
      ++kinds[r->kind];
      if (!r->model.empty()) models.insert(r->model);
      if (r->propagate_seconds > 0.0) {
        if (prop_n == 0 || r->propagate_seconds < prop_min) {
          prop_min = r->propagate_seconds;
        }
        if (prop_n == 0 || r->propagate_seconds > prop_max) {
          prop_max = r->propagate_seconds;
        }
        prop_sum += r->propagate_seconds;
        ++prop_n;
      }
      if (!r->version.empty()) last_version = r->version;
    }
    std::string kind_list, model_list;
    for (const auto& [kind, count] : kinds) {
      if (!kind_list.empty()) kind_list += ',';
      kind_list += format("%s:%zu", kind.c_str(), count);
    }
    for (const std::string& m : models) {
      if (!model_list.empty()) model_list += ',';
      model_list += m;
    }
    const auto ms = [](double s) { return format("%.3f", s * 1e3); };
    table.add_row({fp == 0 ? "-" : fingerprint_hex(fp),
                   std::to_string(group.size()), kind_list,
                   model_list.empty() ? "-" : model_list,
                   prop_n ? ms(prop_min) : "-",
                   prop_n ? ms(prop_sum / static_cast<double>(prop_n)) : "-",
                   prop_n ? ms(prop_max) : "-",
                   last_version.empty() ? "-" : last_version});
  }
  std::ostringstream os;
  os << records.size() << " ledger record(s), " << order.size()
     << " distinct fingerprint(s)\n\n"
     << table.to_string();
  return os.str();
}

}  // namespace sldm
