#include "util/metrics.h"

#include <mutex>
#include <sstream>

#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace sldm {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (!it->second.same_layout(Histogram(lo, hi, bins))) {
      throw Error(format(
          "histogram '%s' re-registered with mismatched bucket layout: "
          "have [%g, %g] x %zu, requested [%g, %g] x %zu",
          name.c_str(), it->second.lo(), it->second.hi(),
          it->second.bins(), lo, hi, bins));
    }
    return it->second;
  }
  return histograms_.emplace(name, Histogram(lo, hi, bins)).first->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      try {
        it->second.merge(h);
      } catch (const Error& e) {
        throw Error("merging histogram '" + name + "': " + e.what());
      }
    }
  }
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << format("\"%s\":%llu", json_escape(name).c_str(),
                 static_cast<unsigned long long>(c.value()));
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << format("\"%s\":", json_escape(name).c_str())
       << json_number(g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << format("\"%s\":{\"lo\":", json_escape(name).c_str())
       << json_number(h.bin_lo(0)) << ",\"hi\":"
       << json_number(h.bin_hi(h.bins() - 1))
       << format(",\"total\":%zu,\"mean\":", h.total())
       << json_number(h.mean()) << ",\"counts\":[";
    for (std::size_t b = 0; b < h.bins(); ++b) {
      if (b > 0) os << ',';
      os << h.count(b);
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

namespace {
std::mutex& process_metrics_mutex() {
  static std::mutex mutex;
  return mutex;
}
}  // namespace

MetricsRegistry& process_metrics() {
  static MetricsRegistry registry;
  return registry;
}

void bump_process_counter(const std::string& name, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(process_metrics_mutex());
  process_metrics().counter(name).add(n);
}

MetricsRegistry snapshot_process_metrics() {
  std::lock_guard<std::mutex> lock(process_metrics_mutex());
  return process_metrics();
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << format("  %-32s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    os << format("  %-32s %.6g\n", name.c_str(), g.value());
  }
  for (const auto& [name, h] : histograms_) {
    os << format("  %-32s total %zu, mean %.4g\n", name.c_str(), h.total(),
                 h.mean());
    if (h.total() > 0) os << h.to_ascii(40);
  }
  return os.str();
}

}  // namespace sldm
