#include "util/text_table.h"

#include <algorithm>
#include <sstream>

#include "util/contracts.h"
#include "util/strings.h"

namespace sldm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SLDM_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  SLDM_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(format("%.*f", precision, v));
  }
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c != 0 ? 2 : 0);
  }
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace sldm
