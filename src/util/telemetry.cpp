#include "util/telemetry.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace sldm {
namespace {

/// A Prometheus sample value: finite doubles in shortest round-trip
/// form, non-finite as the exposition-format spellings (unlike JSON,
/// the format has them).
std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return format("%.17g", v);
}

/// A label-value literal: backslash, quote, and newline escaped per the
/// exposition format.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `{labels}` / `{labels,extra}` / `{extra}` / `` as applicable.
std::string braced(const std::string& label_text, const std::string& extra) {
  if (label_text.empty() && extra.empty()) return "";
  std::string body = label_text;
  if (!extra.empty()) {
    if (!body.empty()) body += ',';
    body += extra;
  }
  return "{" + body + "}";
}

void render_counter(std::ostream& os, const std::string& name,
                    const std::string& label_text, const Counter& c) {
  os << name << braced(label_text, "") << ' ' << c.value() << '\n';
}

void render_gauge(std::ostream& os, const std::string& name,
                  const std::string& label_text, const Gauge& g) {
  os << name << braced(label_text, "") << ' ' << prom_number(g.value())
     << '\n';
}

void render_histogram(std::ostream& os, const std::string& name,
                      const std::string& label_text, const Histogram& h) {
  std::size_t cumulative = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    cumulative += h.count(b);
    os << name << "_bucket"
       << braced(label_text,
                 "le=\"" + prom_number(h.bin_hi(b)) + "\"")
       << ' ' << cumulative << '\n';
  }
  os << name << "_bucket" << braced(label_text, "le=\"+Inf\"") << ' '
     << h.total() << '\n';
  os << name << "_sum" << braced(label_text, "") << ' '
     << prom_number(h.sum()) << '\n';
  os << name << "_count" << braced(label_text, "") << ' ' << h.total()
     << '\n';
}

/// Strict weak order over label identities, the deterministic merge
/// order for aggregate(): vectors of snapshots sorted with this are a
/// pure function of the stored set, independent of publish order.
bool labels_before(const TelemetryLabels& a, const TelemetryLabels& b) {
  if (a.session != b.session) return a.session < b.session;
  if (a.model != b.model) return a.model < b.model;
  if (a.threads != b.threads) return a.threads < b.threads;
  return a.request < b.request;
}

void sort_by_labels(
    std::vector<std::pair<TelemetryLabels, MetricsRegistry>>& snaps) {
  std::stable_sort(snaps.begin(), snaps.end(),
                   [](const auto& a, const auto& b) {
                     return labels_before(a.first, b.first);
                   });
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "sldm_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_labels(const TelemetryLabels& labels) {
  std::string out =
      format("session=\"%s\",model=\"%s\",threads=\"%d\"",
             escape_label_value(labels.session).c_str(),
             escape_label_value(labels.model).c_str(), labels.threads);
  if (!labels.request.empty()) {
    out += format(",request=\"%s\"",
                  escape_label_value(labels.request).c_str());
  }
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry,
                          const std::string& label_text) {
  std::ostringstream os;
  for (const auto& [name, c] : registry.counters()) {
    const std::string prom = prometheus_name(name) + "_total";
    os << "# TYPE " << prom << " counter\n";
    render_counter(os, prom, label_text, c);
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " gauge\n";
    render_gauge(os, prom, label_text, g);
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " histogram\n";
    render_histogram(os, prom, label_text, h);
  }
  return os.str();
}

TelemetryHub& TelemetryHub::instance() {
  static TelemetryHub hub;
  return hub;
}

void TelemetryHub::publish(const TelemetryLabels& labels,
                           const MetricsRegistry& registry) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [stored_labels, stored] : snapshots_) {
    if (stored_labels == labels) {
      stored = registry;
      return;
    }
  }
  snapshots_.emplace_back(labels, registry);
}

std::vector<std::pair<TelemetryLabels, MetricsRegistry>>
TelemetryHub::snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_;
}

std::size_t TelemetryHub::snapshot_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_.size();
}

MetricsRegistry TelemetryHub::aggregate() const {
  auto snaps = snapshots();
  sort_by_labels(snaps);
  MetricsRegistry merged;
  for (const auto& [labels, registry] : snaps) {
    merged.merge(registry);
  }
  return merged;
}

void TelemetryHub::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshots_.clear();
}

std::string TelemetryHub::to_string() const {
  auto snaps = snapshots();
  std::ostringstream os;
  os << "telemetry hub: " << snaps.size() << " snapshot(s)\n";
  for (const auto& [labels, registry] : snaps) {
    os << format("\n[session=\"%s\" model=\"%s\" threads=%d",
                 labels.session.c_str(), labels.model.c_str(),
                 labels.threads);
    if (!labels.request.empty()) {
      os << format(" request=\"%s\"", labels.request.c_str());
    }
    os << "]\n" << registry.to_string();
  }
  if (snaps.size() > 1) {
    // Fold in sorted label order (same as aggregate()) so the rendered
    // aggregate never depends on which publisher raced in first.
    sort_by_labels(snaps);
    MetricsRegistry merged;
    for (const auto& [labels, registry] : snaps) merged.merge(registry);
    os << "\naggregate over all snapshots:\n" << merged.to_string();
  }
  return os.str();
}

std::string TelemetryHub::to_prometheus() const {
  const auto snaps = snapshots();
  // The exposition format wants each family's `# TYPE` line exactly
  // once, with every labeled sample grouped under it -- so pivot from
  // per-snapshot registries to per-name sample lists first.
  std::map<std::string, std::vector<std::pair<std::string, Counter>>>
      counters;
  std::map<std::string, std::vector<std::pair<std::string, Gauge>>> gauges;
  std::map<std::string, std::vector<std::pair<std::string, Histogram>>>
      histograms;
  for (const auto& [labels, registry] : snaps) {
    const std::string label_text = prometheus_labels(labels);
    for (const auto& [name, c] : registry.counters()) {
      counters[name].emplace_back(label_text, c);
    }
    for (const auto& [name, g] : registry.gauges()) {
      gauges[name].emplace_back(label_text, g);
    }
    for (const auto& [name, h] : registry.histograms()) {
      histograms[name].emplace_back(label_text, h);
    }
  }
  std::ostringstream os;
  for (const auto& [name, samples] : counters) {
    const std::string prom = prometheus_name(name) + "_total";
    os << "# TYPE " << prom << " counter\n";
    for (const auto& [label_text, c] : samples) {
      render_counter(os, prom, label_text, c);
    }
  }
  for (const auto& [name, samples] : gauges) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " gauge\n";
    for (const auto& [label_text, g] : samples) {
      render_gauge(os, prom, label_text, g);
    }
  }
  for (const auto& [name, samples] : histograms) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " histogram\n";
    for (const auto& [label_text, h] : samples) {
      render_histogram(os, prom, label_text, h);
    }
  }
  return os.str();
}

}  // namespace sldm
