// The engine version string, compiled into sldm_util from the CMake
// project version so every emitter (CLI `sldm version`, bench records,
// the run ledger) reports the same value without each target carrying
// its own compile definition.
#pragma once

namespace sldm {

/// The engine version, e.g. "1.0.0".
const char* sldm_version();

}  // namespace sldm
