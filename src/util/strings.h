// String utilities for the .sim / technology-file parsers and the report
// writers.  Kept deliberately small; everything is std::string based.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sldm {

/// Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> split_ws(std::string_view line);

/// Splits on a single character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view line, char delim);

/// Removes leading and trailing whitespace.
std::string trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; returns nullopt unless the whole token is consumed.
std::optional<double> parse_double(std::string_view token);

/// Parses a non-negative integer; returns nullopt on any deviation.
std::optional<long> parse_long(std::string_view token);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sldm
