// String utilities for the .sim / technology-file parsers and the report
// writers.  Kept deliberately small; everything is std::string based.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sldm {

/// Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> split_ws(std::string_view line);

/// Splits on a single character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view line, char delim);

/// Removes leading and trailing whitespace.
std::string trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; returns nullopt unless the whole token is consumed.
/// Hex-float spellings ("0x1p3") and values that overflow the double
/// range (errno ERANGE at +/-HUGE_VAL) are rejected; the textual
/// "nan"/"inf" spellings still parse — use parse_finite_double() when
/// only finite values are acceptable (every input-file parser should).
std::optional<double> parse_double(std::string_view token);

/// parse_double() restricted to finite values: the shared guard for
/// untrusted numeric fields (a "nan" width or "inf" capacitance must
/// become a diagnostic, not a poisoned analysis).
std::optional<double> parse_finite_double(std::string_view token);

/// Parses a base-10 long; returns nullopt on any deviation, including
/// out-of-range values (errno ERANGE — no silent LONG_MAX saturation).
std::optional<long> parse_long(std::string_view token);

/// Parses 1..16 lowercase/uppercase hex digits (no "0x" prefix, no
/// sign) into a uint64; nullopt on empty, overlong, or non-hex input.
/// Used for ledger design fingerprints, which arrive untrusted.
std::optional<std::uint64_t> parse_hex_u64(std::string_view token);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sldm
