// A named-metrics registry: monotonic counters, point-in-time gauges,
// and fixed-bucket histograms, addressable by string name.
//
// The timing analyzer's instrumentation stores plain Counter / Gauge /
// Histogram members (one field update per increment -- no map lookup,
// no allocation on the hot path) and materializes them into a named
// registry on demand via TimingAnalyzer::metrics(); the legacy
// AnalyzerStats struct is likewise refreshed from those members -- both
// the registry and the struct are *views* of the same counters.  `sldm
// time --stats --json` and the compare harness (per-ModelResult
// snapshots) dump the whole registry (schema in FORMATS.md).
//
// Registration is not thread-safe; register every metric up front, then
// mutate through the returned references.  Mutation itself is as cheap
// as the underlying field update -- there is no internal locking, so a
// metric must only be written from one thread at a time (the analyzer's
// parallel phases aggregate into per-task locals and flush on the
// coordinating thread).
//
// Maps are node-based (std::map), so references returned by counter() /
// gauge() / histogram() stay valid for the registry's lifetime, and the
// registry is copyable (snapshots for benches and harness results).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/stats.h"

namespace sldm {

/// A monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time measurement (seconds, sizes, ratios).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// The counter named `name`, created zeroed on first use.
  Counter& counter(const std::string& name);

  /// The gauge named `name`, created zeroed on first use.
  Gauge& gauge(const std::string& name);

  /// The histogram named `name`; created with the given bucket layout
  /// on first use.  Subsequent calls must repeat the same layout: a
  /// lo/hi/bins mismatch throws Error instead of silently returning a
  /// histogram whose buckets mean something else.  Precondition (first
  /// call): bins >= 1, hi > lo.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  /// Folds `other` into this registry with per-type semantics: counters
  /// sum, gauges take `other`'s value (last write wins), histograms sum
  /// per-bucket counts -- throwing Error when a shared name carries a
  /// different bucket layout.  Metrics absent on either side are kept
  /// as-is / copied in, so empty ⊕ x == x.
  void merge(const MetricsRegistry& other);

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// One JSON object: {"counters":{name:int,...},"gauges":{name:num,...},
  /// "histograms":{name:{"lo":..,"hi":..,"total":..,"mean":..,
  /// "counts":[...]},...}} with names in sorted order (std::map).
  std::string to_json() const;

  /// Human-readable rendering (counters and gauges one per line,
  /// histograms as total/mean plus an ASCII bar chart).
  std::string to_string() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide registry for components that have no analyzer (or
/// other owner) to hang their metrics on — e.g. the thread pool's
/// suppressed-exception count.  Unlike MetricsRegistry itself, the
/// helpers below are thread-safe.  Direct access through this reference
/// is unsynchronized — readers racing a bump_process_counter() call
/// must go through snapshot_process_metrics() instead.
MetricsRegistry& process_metrics();

/// Thread-safe increment of `process_metrics().counter(name)`.
void bump_process_counter(const std::string& name, std::uint64_t n = 1);

/// A copy of process_metrics() taken under the same mutex
/// bump_process_counter() holds, so it is safe against concurrent
/// bumps.  All readers (stats dumpers, the telemetry hub, tests) use
/// this rather than the live reference.
MetricsRegistry snapshot_process_metrics();

}  // namespace sldm
