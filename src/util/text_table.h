// ASCII table rendering for paper-style result tables.
//
// Every bench binary prints the rows of the table/figure it reconstructs;
// TextTable keeps the formatting in one place so the output of all
// experiments lines up the same way.
#pragma once

#include <string>
#include <vector>

namespace sldm {

/// A simple column-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` digits.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Renders the table with a separator under the header.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sldm
