#include "util/contracts.h"

#include <sstream>

namespace sldm::detail {

void contract_failed(const char* kind, const char* expr, const char* file,
                     int line) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  throw ContractViolation(os.str());
}

}  // namespace sldm::detail
