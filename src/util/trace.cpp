#include "util/trace.h"

#include <chrono>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace sldm {
namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer() : epoch_(steady_seconds()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

double Tracer::now_us() const { return (steady_seconds() - epoch_) * 1e6; }

int Tracer::thread_id() {
  thread_local int tid = -1;
  if (tid < 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    tid = next_tid_++;
    thread_names_.resize(static_cast<std::size_t>(next_tid_));
  }
  return tid;
}

void Tracer::set_thread_name(const std::string& name) {
  const int tid = thread_id();
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[static_cast<std::size_t>(tid)] = name;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void Tracer::record(const char* name, const char* category, double ts_us,
                    double dur_us,
                    std::vector<std::pair<const char*, double>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = thread_id();
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string Tracer::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Thread-name metadata records ("M" phase) come first so viewers can
  // label the lanes before any span references them.
  for (std::size_t t = 0; t < thread_names_.size(); ++t) {
    sep();
    const std::string& name =
        thread_names_[t].empty()
            ? (t == 0 ? std::string("main") : format("thread-%zu", t))
            : thread_names_[t];
    os << format(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
        "\"args\":{\"name\":\"%s\"}}",
        t, json_escape(name).c_str());
  }
  for (const TraceEvent& ev : events_) {
    sep();
    os << format(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
        ev.name, ev.category, ev.tid, ev.ts_us, ev.dur_us);
    if (!ev.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i > 0) os << ',';
        os << format("\"%s\":", json_escape(ev.args[i].first).c_str())
           << json_number(ev.args[i].second);
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open trace output file '" + path + "'");
  out << to_json() << '\n';
  if (!out) throw Error("failed writing trace output file '" + path + "'");
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : armed_(Tracer::instance().enabled()), name_(name), category_(category) {
  if (armed_) t0_us_ = Tracer::instance().now_us();
}

void TraceSpan::arg(const char* key, double value) {
  if (armed_) args_.emplace_back(key, value);
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  Tracer& tracer = Tracer::instance();
  tracer.record(name_, category_, t0_us_, tracer.now_us() - t0_us_,
                std::move(args_));
}

}  // namespace sldm
