// Arena-backed string interning for identifier-heavy structures.
//
// An Interner copies every string it is handed into a chunked character
// arena and returns a Symbol: a NUL-terminated, non-owning view whose
// storage lives exactly as long as the arena.  Structures that hold
// many small identifiers (the Netlist's node-name table, the snapshot
// loader) intern once and store 16-byte Symbols instead of per-entry
// std::string allocations; lookups key hash maps directly by
// string_view into the arena.
//
// Stability contract: arena chunks are heap blocks owned through
// unique_ptr, so moving an Interner (or a structure embedding one)
// never relocates interned bytes — every Symbol stays valid.  Copying
// is deliberately deleted: a copied structure must re-intern into its
// own arena (see Netlist's copy constructor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sldm {

/// A non-owning, NUL-terminated interned string.  Cheap to copy and
/// compare; converts implicitly to string_view for lookups.  The
/// default Symbol is the empty string (valid c_str()).
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr Symbol(const char* data, std::size_t size)
      : data_(data), size_(static_cast<std::uint32_t>(size)) {}

  constexpr std::string_view view() const {
    return std::string_view(data_, size_);
  }
  constexpr operator std::string_view() const { return view(); }

  /// Valid C string: the interner stores a trailing NUL.
  constexpr const char* c_str() const { return data_; }
  std::string str() const { return std::string(view()); }

  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  friend constexpr bool operator==(Symbol a, Symbol b) {
    return a.view() == b.view();
  }
  friend constexpr bool operator==(Symbol a, std::string_view b) {
    return a.view() == b;
  }
  friend constexpr auto operator<=>(Symbol a, Symbol b) {
    return a.view() <=> b.view();
  }

 private:
  const char* data_ = "";
  std::uint32_t size_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Symbol s) {
  return os << s.view();
}
inline std::string operator+(const char* lhs, Symbol rhs) {
  return std::string(lhs) + rhs.str();
}
inline std::string operator+(Symbol lhs, const char* rhs) {
  return lhs.str() + rhs;
}
inline std::string operator+(const std::string& lhs, Symbol rhs) {
  return lhs + rhs.str();
}
inline std::string operator+(Symbol lhs, const std::string& rhs) {
  return lhs.str() + rhs;
}

/// The arena.  intern() is O(length); no deduplication is performed
/// (callers that need uniqueness, like Netlist::add_node, already key a
/// map by the returned view).
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Copies `s` (plus a NUL) into the arena and returns its Symbol.
  Symbol intern(std::string_view s) {
    const std::size_t need = s.size() + 1;  // trailing NUL
    if (need > kChunkSize - used_ || chunks_.empty()) {
      const std::size_t cap = need > kChunkSize ? need : kChunkSize;
      chunks_.push_back(std::make_unique<char[]>(cap));
      used_ = 0;
    }
    char* dst = chunks_.back().get() + used_;
    if (!s.empty()) std::memcpy(dst, s.data(), s.size());
    dst[s.size()] = '\0';
    used_ += need;
    return Symbol(dst, s.size());
  }

 private:
  static constexpr std::size_t kChunkSize = 1 << 14;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t used_ = kChunkSize;  ///< bytes used in chunks_.back()
};

}  // namespace sldm

template <>
struct std::hash<sldm::Symbol> {
  std::size_t operator()(sldm::Symbol s) const noexcept {
    return std::hash<std::string_view>{}(s.view());
  }
};
