// Cooperative cancellation for long-running analyses.
//
// A CancelToken carries an optional monotonic-clock deadline; code on a
// cancellable path calls check() at its own safe points and the token
// throws CancelledError once the deadline has passed.  The checkpoints
// are deliberately coarse -- Session::propagate consults the token once
// per wavefront batch, never inside the delay kernels -- so a run that
// completes is bit-identical to the same run with no token attached:
// cancellation can only abort work, never reorder or reprice it.
//
// The serve layer builds one token per request from `deadline_ms` /
// `--deadline-ms` (FORMATS.md section 14) and maps CancelledError to
// the named "deadline" envelope, discarding the partial session and
// releasing the design lease on the way out.
#pragma once

#include <chrono>
#include <string>

#include "util/error.h"

namespace sldm {

/// Thrown by CancelToken::check() once the deadline has passed.  The
/// message is deterministic ("deadline expired during <what>") so
/// envelope tests can pin it.
class CancelledError : public Error {
 public:
  explicit CancelledError(const char* what_phase)
      : Error(std::string("deadline expired during ") + what_phase) {}
};

class CancelToken {
 public:
  /// An inert token: never expires, check() is a comparison.
  CancelToken() = default;

  /// A token expiring `seconds` from now (steady clock; seconds may be
  /// zero or negative for an already-expired token).
  static CancelToken deadline_after(double seconds) {
    CancelToken token;
    token.armed_ = true;
    token.deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    return token;
  }

  bool armed() const { return armed_; }

  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Throws CancelledError naming `what_phase` when expired; otherwise
  /// returns immediately.
  void check(const char* what_phase) const {
    if (expired()) throw CancelledError(what_phase);
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace sldm
