// A switch-level logic simulator in the MOSSIM/esim tradition: ternary
// node values, a strength lattice (driven > weak load > stored charge),
// and relaxation to a fixpoint.
//
// This is the functional companion of the timing analyzer: it answers
// "what value does each node settle to for this input vector", including
// ratioed nMOS fights (strong pull-down beats weak load), dynamic charge
// retention, charge-sharing conflicts (X), and unknown propagation.
// Its settled state can seed value-aware timing analysis via
// fixed_values() -> ExtractOptions.
//
// Unknown gate handling is the classic two-pass approximation: each
// relaxation evaluates once with all X-gated switches open and once with
// them closed; nodes that differ between the passes become X.
#pragma once

#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"
#include "switchsim/logic.h"

namespace sldm {

/// Simulation limits.
struct SwitchSimOptions {
  /// Relaxation sweeps before the simulator declares oscillation.
  int max_iterations = 256;
};

class SwitchSimulator {
 public:
  /// Captures the netlist by reference (must outlive the simulator).
  /// All nodes start at X with no charge; rails are pinned.
  explicit SwitchSimulator(const Netlist& nl,
                           SwitchSimOptions options = {});

  /// Drives a chip input.  Precondition: the node is marked is_input.
  /// Takes effect at the next settle().
  void set_input(NodeId n, Logic v);

  /// Convenience for boolean vectors.
  void set_input(NodeId n, bool v) { set_input(n, logic_from_bool(v)); }

  /// Runs a precharge clock phase: every precharged node is pinned to a
  /// driven 1, the circuit settles (so charge spreads through whatever
  /// pass devices currently conduct), and the pins are then released,
  /// leaving the charge stored.  Inputs should be set to their
  /// precharge-phase values first.
  void precharge();

  /// Relaxes to a fixpoint.  Throws Error if the circuit oscillates
  /// beyond the iteration budget (e.g. a ring oscillator).
  void settle();

  /// The settled value / strength of a node.
  Logic value(NodeId n) const;
  Strength strength(NodeId n) const;

  /// All nodes with definite (0/1) settled values, for value-aware
  /// stage extraction.  Inputs and rails are included.
  std::unordered_map<NodeId, bool> fixed_values() const;

  /// One-line state dump ("a=1 b=x ..."), for diagnostics and tests.
  std::string dump() const;

 private:
  struct NodeState {
    Logic value = Logic::kX;
    Strength strength = Strength::kNone;
  };

  /// Whether a device conducts under current gate values: definite
  /// on/off, or maybe (X gate).
  enum class Conduction { kOff, kOn, kMaybe };
  Conduction conduction(DeviceId d) const;

  /// One global evaluation with maybes treated as `maybes_closed`.
  /// Returns the per-node result of propagating all sources through the
  /// conducting network.
  std::vector<NodeState> evaluate(bool maybes_closed) const;

  const Netlist& nl_;
  SwitchSimOptions options_;
  std::vector<NodeState> state_;
  std::unordered_map<NodeId, Logic> input_values_;
  bool precharge_phase_ = false;  ///< precharged nodes pinned driven-1
};

}  // namespace sldm
