#include "switchsim/simulator.h"

#include <sstream>

#include "util/contracts.h"
#include "util/error.h"

namespace sldm {

char to_char(Logic v) {
  switch (v) {
    case Logic::k0:
      return '0';
    case Logic::k1:
      return '1';
    case Logic::kX:
      return 'x';
  }
  SLDM_ASSERT(false);
  return '?';
}

std::string to_string(Logic v) { return std::string(1, to_char(v)); }

std::string to_string(Strength s) {
  switch (s) {
    case Strength::kNone:
      return "none";
    case Strength::kCharged:
      return "charged";
    case Strength::kWeak:
      return "weak";
    case Strength::kDriven:
      return "driven";
  }
  SLDM_ASSERT(false);
  return {};
}

SwitchSimulator::SwitchSimulator(const Netlist& nl, SwitchSimOptions options)
    : nl_(nl), options_(options), state_(nl.node_count()) {
  SLDM_EXPECTS(options.max_iterations > 0);
  for (NodeId n : nl_.all_nodes()) {
    const Node& info = nl_.node(n);
    if (info.is_power) {
      state_[n.index()] = {Logic::k1, Strength::kDriven};
    } else if (info.is_ground) {
      state_[n.index()] = {Logic::k0, Strength::kDriven};
    }
  }
}

void SwitchSimulator::set_input(NodeId n, Logic v) {
  SLDM_EXPECTS(nl_.node(n).is_input);
  input_values_[n] = v;
}

void SwitchSimulator::precharge() {
  precharge_phase_ = true;
  for (NodeId n : nl_.all_nodes()) {
    if (nl_.node(n).is_precharged) {
      state_[n.index()] = {Logic::k1, Strength::kDriven};
    }
  }
  settle();
  precharge_phase_ = false;
  // The clock releases: driven precharge levels become stored charge.
  for (NodeId n : nl_.all_nodes()) {
    if (nl_.node(n).is_precharged) {
      state_[n.index()].strength = Strength::kCharged;
    }
  }
}

SwitchSimulator::Conduction SwitchSimulator::conduction(DeviceId d) const {
  const Transistor& t = nl_.device(d);
  if (t.type == TransistorType::kNDepletion) return Conduction::kOn;
  const Logic gate = state_[t.gate.index()].value;
  if (gate == Logic::kX) return Conduction::kMaybe;
  const bool on_when_high = t.type == TransistorType::kNEnhancement;
  const bool gate_high = gate == Logic::k1;
  return gate_high == on_when_high ? Conduction::kOn : Conduction::kOff;
}

std::vector<SwitchSimulator::NodeState> SwitchSimulator::evaluate(
    bool maybes_closed) const {
  const std::size_t n_nodes = nl_.node_count();

  // Pinned nodes never take contributions: rails and driven inputs.
  std::vector<bool> pinned(n_nodes, false);
  std::vector<NodeState> best(n_nodes);
  for (NodeId n : nl_.all_nodes()) {
    const Node& info = nl_.node(n);
    if (info.is_power) {
      best[n.index()] = {Logic::k1, Strength::kDriven};
      pinned[n.index()] = true;
    } else if (info.is_ground) {
      best[n.index()] = {Logic::k0, Strength::kDriven};
      pinned[n.index()] = true;
    } else if (info.is_input) {
      const auto it = input_values_.find(n);
      const Logic v = it != input_values_.end() ? it->second : Logic::kX;
      best[n.index()] = {v, Strength::kDriven};
      pinned[n.index()] = true;
    } else if (precharge_phase_ && info.is_precharged) {
      best[n.index()] = {Logic::k1, Strength::kDriven};
      pinned[n.index()] = true;
    } else {
      // Stored charge: the node's previous value at charged strength.
      best[n.index()] = {state_[n.index()].value, Strength::kCharged};
    }
  }

  // Bottleneck-strength relaxation over the conducting network.
  // Strengths only rise and values only decay toward X, so this
  // terminates; the sweep bound is generous for the circuit sizes here.
  auto merge = [](NodeState& into, Logic v, Strength s) -> bool {
    if (stronger(s, into.strength)) {
      into = {v, s};
      return true;
    }
    if (s == into.strength && into.value != v && into.value != Logic::kX) {
      into.value = Logic::kX;
      return true;
    }
    return false;
  };

  bool changed = true;
  int sweeps = 0;
  const int max_sweeps = static_cast<int>(n_nodes) * 4 + 8;
  while (changed) {
    if (++sweeps > max_sweeps) {
      throw Error("switch-level relaxation failed to converge");
    }
    changed = false;
    for (DeviceId d : nl_.all_devices()) {
      const Conduction c = conduction(d);
      if (c == Conduction::kOff) continue;
      if (c == Conduction::kMaybe && !maybes_closed) continue;
      const Transistor& t = nl_.device(d);
      const Strength cap = t.type == TransistorType::kNDepletion
                               ? Strength::kWeak
                               : Strength::kDriven;
      const NodeState& a = best[t.source.index()];
      const NodeState& b = best[t.drain.index()];
      if (!pinned[t.drain.index()] && t.flow_allows_from(t.source)) {
        changed |= merge(best[t.drain.index()], a.value,
                         weaker_of(a.strength, cap));
      }
      if (!pinned[t.source.index()] && t.flow_allows_from(t.drain)) {
        changed |= merge(best[t.source.index()], b.value,
                         weaker_of(b.strength, cap));
      }
    }
  }
  return best;
}

void SwitchSimulator::settle() {
  // Refresh pinned input values into the visible state so conduction()
  // sees them from the first iteration.
  for (NodeId n : nl_.all_nodes()) {
    if (!nl_.node(n).is_input) continue;
    const auto it = input_values_.find(n);
    state_[n.index()] = {it != input_values_.end() ? it->second : Logic::kX,
                         Strength::kDriven};
  }

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<NodeState> open = evaluate(/*maybes_closed=*/false);
    const std::vector<NodeState> closed = evaluate(/*maybes_closed=*/true);
    std::vector<NodeState> next(state_.size());
    bool changed = false;
    for (std::size_t i = 0; i < state_.size(); ++i) {
      const Logic v = open[i].value == closed[i].value ? open[i].value
                                                       : Logic::kX;
      next[i] = {v, weaker_of(open[i].strength, closed[i].strength)};
      if (next[i].value != state_[i].value ||
          next[i].strength != state_[i].strength) {
        changed = true;
      }
    }
    state_ = std::move(next);
    if (!changed) return;
  }
  throw Error("switch-level simulation did not settle (oscillation?)");
}

Logic SwitchSimulator::value(NodeId n) const {
  SLDM_EXPECTS(n.valid() && n.index() < state_.size());
  return state_[n.index()].value;
}

Strength SwitchSimulator::strength(NodeId n) const {
  SLDM_EXPECTS(n.valid() && n.index() < state_.size());
  return state_[n.index()].strength;
}

std::unordered_map<NodeId, bool> SwitchSimulator::fixed_values() const {
  std::unordered_map<NodeId, bool> out;
  for (NodeId n : nl_.all_nodes()) {
    const Logic v = state_[n.index()].value;
    if (v != Logic::kX) out[n] = v == Logic::k1;
  }
  return out;
}

std::string SwitchSimulator::dump() const {
  std::ostringstream os;
  bool first = true;
  for (NodeId n : nl_.all_nodes()) {
    if (!first) os << ' ';
    first = false;
    os << nl_.node(n).name << '=' << to_char(state_[n.index()].value);
  }
  return os.str();
}

}  // namespace sldm
