// Ternary logic values and signal strengths for switch-level simulation
// (the MOSSIM/esim model the paper's analyzer lived alongside).
#pragma once

#include <cstdint>
#include <string>

namespace sldm {

/// Ternary logic value.
enum class Logic : std::uint8_t { k0, k1, kX };

/// Wired resolution of two values of equal strength.
constexpr Logic resolve(Logic a, Logic b) {
  return a == b ? a : Logic::kX;
}

constexpr Logic logic_from_bool(bool b) { return b ? Logic::k1 : Logic::k0; }

/// '0', '1', or 'x'.
char to_char(Logic v);
std::string to_string(Logic v);

/// Signal strength lattice, weakest first:
///  kNone    - no information;
///  kCharged - stored charge on a node capacitance;
///  kWeak    - driven through an always-on load (depletion / pseudo-nMOS);
///  kDriven  - driven from a rail or chip input through switching
///             transistors.
enum class Strength : std::uint8_t { kNone = 0, kCharged, kWeak, kDriven };

constexpr bool stronger(Strength a, Strength b) {
  return static_cast<std::uint8_t>(a) > static_cast<std::uint8_t>(b);
}

constexpr Strength weaker_of(Strength a, Strength b) {
  return stronger(a, b) ? b : a;
}

std::string to_string(Strength s);

}  // namespace sldm
