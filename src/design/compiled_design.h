// The immutable compiled-design artifact: everything about a circuit
// that is independent of input slopes, delay-model choice, and query
// state, baked once and shared by any number of analysis sessions.
//
// Ousterhout's flow has a natural one-time structural phase -- netlist
// -> channel-connected components -> per-CCC stage extraction -- whose
// output the cheap per-query delay evaluation then consumes thousands
// of times.  CompiledDesign is that phase reified as a value:
//
//   * the netlist (interned node-name table included) and technology,
//     either owned (compile(), snapshot load) or borrowed (the
//     TimingAnalyzer facade over caller-owned references);
//   * the CccPartition and the extracted TimingStages in canonical
//     global order;
//   * the StageStore with every slope-independent electrical cache
//     (delay/stage_store.h), so loaded designs evaluate bit-identically
//     to freshly extracted ones;
//   * the trigger index (stages grouped by firing (node, direction))
//     and per-CCC stage counts;
//   * a technology fingerprint for snapshot compatibility checks.
//
// A CompiledDesign is shared as shared_ptr<const CompiledDesign>:
// Sessions (design/session.h) borrow it concurrently and never write
// it.  The single sanctioned mutation path is TimingAnalyzer::update()
// (ECO re-extraction), which requires exclusive ownership -- see the
// friendship note below.  Snapshots (.sldc, design/snapshot.h) persist
// exactly the state held here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "delay/stage_store.h"
#include "tech/tech.h"
#include "timing/ccc.h"
#include "timing/stage_extract.h"

namespace sldm {

class TimingAnalyzer;
struct SnapshotAccess;

/// Compilation parameters (the structural half of AnalyzerOptions).
struct CompileOptions {
  ExtractOptions extract;
  /// Worker threads for component-parallel stage extraction.  Purely a
  /// build-time knob: the artifact is bit-identical for any value.
  int threads = 1;
};

/// FNV-1a hash over the technology's name and every electrical
/// parameter (exact double bit patterns).  Two techs fingerprint equal
/// iff analysis over them is bit-identical, so snapshots carry this to
/// reject loads against a different process.
std::uint64_t tech_fingerprint(const Tech& tech);

/// FNV-1a hash over the whole analysis input: tech_fingerprint(tech)
/// plus every node (name, capacitance, role flags, pinned value) and
/// every device (type, terminals, dimensions, flow) in id order.  Two
/// (netlist, tech) pairs fingerprint equal iff analysis over them is
/// bit-identical, so ledger records and bench results keyed by this
/// value stay comparable across processes and versions.
std::uint64_t design_fingerprint(const Netlist& nl, const Tech& tech);

/// Packed arrival/trigger key: (node, dir) -> node * 2 + (rise ? 0 : 1).
/// The index space of stages_by_trigger() and of every per-(node, dir)
/// session array.
inline std::size_t arrival_key(NodeId node, Transition dir) {
  return node.index() * 2 + (dir == Transition::kRise ? 0 : 1);
}

class CompiledDesign {
 public:
  /// Compiles an owned copy of the netlist and technology.  The
  /// returned design is self-contained: it outlives every caller-side
  /// object and is safe to share across threads.
  static std::shared_ptr<const CompiledDesign> compile(
      Netlist nl, Tech tech, const CompileOptions& options = {});

  /// compile() keeping the mutable handle: for owners (the serve-layer
  /// design cache) that hold a self-contained design yet must run
  /// single-writer ECO updates through TimingAnalyzer.  Readers still
  /// receive it as shared_ptr<const CompiledDesign>.
  static std::shared_ptr<CompiledDesign> compile_owned(
      Netlist nl, Tech tech, const CompileOptions& options = {});

  /// Compiles over borrowed references (the TimingAnalyzer facade
  /// path).  `nl` and `tech` must outlive the design.  Returned
  /// non-const so the single owner may run ECO updates through
  /// TimingAnalyzer; share it onward as shared_ptr<const ...>.
  static std::shared_ptr<CompiledDesign> build_over(
      const Netlist& nl, const Tech& tech, const CompileOptions& options = {});

  CompiledDesign(const CompiledDesign&) = delete;
  CompiledDesign& operator=(const CompiledDesign&) = delete;

  const Netlist& netlist() const { return *nl_; }
  const Tech& tech() const { return *tech_; }
  /// True when the design owns its netlist/tech storage (compile() and
  /// snapshot loads; false for build_over()).
  bool owns_netlist() const { return owned_nl_ != nullptr; }

  /// The channel-connected component partition extraction ran over.
  const CccPartition& components() const { return *ccc_; }
  /// All extracted stages in canonical global order (ascending
  /// destination node id, rise before fall).
  const std::vector<TimingStage>& stages() const { return stages_; }
  /// Electrical SoA mirror of stages() (same index space).
  const StageStore& stage_store() const { return store_; }
  /// Stage indices grouped by firing event, indexed by
  /// arrival_key(node, dir).
  const std::vector<std::vector<std::size_t>>& stages_by_trigger() const {
    return stages_by_trigger_;
  }
  /// Stage count per CCC (indexed by component id).
  const std::vector<std::size_t>& stages_per_ccc() const { return per_ccc_; }

  /// The extraction options the stages were produced under (an ECO
  /// update re-extracts with the same options).
  const ExtractOptions& extract_options() const { return extract_; }
  /// Fingerprint of tech() -- see tech_fingerprint().
  std::uint64_t fingerprint() const { return fingerprint_; }
  /// Netlist revision the structure reflects; a session is in sync iff
  /// netlist().revision() == built_revision().
  std::uint64_t built_revision() const { return built_revision_; }
  /// Wall clock of the structural build (stage extraction + store
  /// bake); 0 for snapshot loads, which skip it entirely.
  Seconds extract_seconds() const { return extract_seconds_; }
  /// Worker threads the build fanned extraction over.
  int build_threads() const { return build_threads_; }

 private:
  CompiledDesign() = default;

  /// Runs partition + extraction + store bake over nl_/tech_.
  void build(int threads);
  /// Rebuilds stages_by_trigger_ from stages_ (load and ECO splice).
  void index_stages_by_trigger();
  /// Rebuilds store_ from stages_ via make_stage (ECO splice only; the
  /// snapshot loader restores the store verbatim instead).
  void rebuild_store();
  /// Recomputes per_ccc_ from stages_ and ccc_.
  void recount_stages_per_ccc();

  /// ECO single-writer: TimingAnalyzer::update() mutates stages_,
  /// ccc_, store_, and the indexes in place, and is required to verify
  /// exclusive ownership (no outstanding share_design() copies) first.
  friend class TimingAnalyzer;
  /// Snapshot reader/writer (design/snapshot.cpp).
  friend struct SnapshotAccess;

  /// Maybe-owned storage: compile()/load own, build_over() borrows.
  std::unique_ptr<Netlist> owned_nl_;
  std::unique_ptr<Tech> owned_tech_;
  const Netlist* nl_ = nullptr;
  const Tech* tech_ = nullptr;

  ExtractOptions extract_;
  std::optional<CccPartition> ccc_;
  std::vector<TimingStage> stages_;
  StageStore store_;
  std::vector<std::vector<std::size_t>> stages_by_trigger_;
  std::vector<std::size_t> per_ccc_;

  std::uint64_t fingerprint_ = 0;
  std::uint64_t built_revision_ = 0;
  Seconds extract_seconds_ = 0.0;
  int build_threads_ = 1;
};

}  // namespace sldm
