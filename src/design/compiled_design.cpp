#include "design/compiled_design.h"

#include <chrono>
#include <cstring>

#include "util/contracts.h"
#include "util/trace.h"

namespace sldm {
namespace {

Seconds now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t fnv1a_double(std::uint64_t hash, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(hash, &bits, sizeof bits);
}

}  // namespace

std::uint64_t tech_fingerprint(const Tech& tech) {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  hash = fnv1a(hash, tech.name().data(), tech.name().size());
  hash = fnv1a_double(hash, tech.vdd());
  for (const TransistorType t :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    const DeviceParams& p = tech.params(t);
    hash = fnv1a_double(hash, p.vt);
    hash = fnv1a_double(hash, p.kp);
    hash = fnv1a_double(hash, p.lambda);
    hash = fnv1a_double(hash, p.cox);
    hash = fnv1a_double(hash, p.cov_w);
    hash = fnv1a_double(hash, p.cj_w);
    hash = fnv1a_double(hash, p.r_up_sq);
    hash = fnv1a_double(hash, p.r_down_sq);
  }
  return hash;
}

std::uint64_t design_fingerprint(const Netlist& nl, const Tech& tech) {
  std::uint64_t hash = tech_fingerprint(tech);
  const std::uint64_t node_count = nl.node_count();
  const std::uint64_t device_count = nl.device_count();
  hash = fnv1a(hash, &node_count, sizeof node_count);
  hash = fnv1a(hash, &device_count, sizeof device_count);
  for (const NodeId id : nl.all_nodes()) {
    const Node& n = nl.node(id);
    hash = fnv1a(hash, n.name.c_str(), n.name.size());
    hash = fnv1a_double(hash, n.cap);
    const unsigned char flags =
        static_cast<unsigned char>((n.is_power ? 1u : 0u) |
                                   (n.is_ground ? 2u : 0u) |
                                   (n.is_input ? 4u : 0u) |
                                   (n.is_output ? 8u : 0u) |
                                   (n.is_precharged ? 16u : 0u));
    hash = fnv1a(hash, &flags, sizeof flags);
    hash = fnv1a(hash, &n.fixed, sizeof n.fixed);
  }
  for (const DeviceId id : nl.all_devices()) {
    const Transistor& t = nl.device(id);
    const std::uint64_t terms[4] = {
        static_cast<std::uint64_t>(t.type), t.gate.index(), t.source.index(),
        t.drain.index()};
    hash = fnv1a(hash, terms, sizeof terms);
    hash = fnv1a_double(hash, t.width);
    hash = fnv1a_double(hash, t.length);
    const unsigned char flow = static_cast<unsigned char>(t.flow);
    hash = fnv1a(hash, &flow, sizeof flow);
  }
  return hash;
}

std::shared_ptr<const CompiledDesign> CompiledDesign::compile(
    Netlist nl, Tech tech, const CompileOptions& options) {
  return compile_owned(std::move(nl), std::move(tech), options);
}

std::shared_ptr<CompiledDesign> CompiledDesign::compile_owned(
    Netlist nl, Tech tech, const CompileOptions& options) {
  auto design = std::shared_ptr<CompiledDesign>(new CompiledDesign());
  design->owned_nl_ = std::make_unique<Netlist>(std::move(nl));
  design->owned_tech_ = std::make_unique<Tech>(std::move(tech));
  design->nl_ = design->owned_nl_.get();
  design->tech_ = design->owned_tech_.get();
  design->extract_ = options.extract;
  design->build(options.threads);
  return design;
}

std::shared_ptr<CompiledDesign> CompiledDesign::build_over(
    const Netlist& nl, const Tech& tech, const CompileOptions& options) {
  auto design = std::shared_ptr<CompiledDesign>(new CompiledDesign());
  design->nl_ = &nl;
  design->tech_ = &tech;
  design->extract_ = options.extract;
  design->build(options.threads);
  return design;
}

void CompiledDesign::build(int threads) {
  SLDM_EXPECTS(threads >= 1);
  TraceSpan span("extract", "timing");
  const Seconds t0 = now_seconds();
  ccc_.emplace(*nl_);
  PartitionedStages extracted =
      extract_stages_partitioned(*nl_, extract_, *ccc_, threads);
  stages_ = std::move(extracted.stages);
  per_ccc_ = std::move(extracted.per_ccc);
  span.arg("cccs", static_cast<double>(ccc_->count()));
  span.arg("stages", static_cast<double>(stages_.size()));
  span.arg("threads", static_cast<double>(threads));
  index_stages_by_trigger();
  rebuild_store();
  fingerprint_ = tech_fingerprint(*tech_);
  built_revision_ = nl_->revision();
  build_threads_ = threads;
  extract_seconds_ = now_seconds() - t0;
}

void CompiledDesign::index_stages_by_trigger() {
  stages_by_trigger_.assign(nl_->node_count() * 2,
                            std::vector<std::size_t>());
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const TimingStage& ts = stages_[s];
    const NodeId fire_node =
        ts.source_triggered ? ts.source : nl_->device(ts.trigger).gate;
    stages_by_trigger_[arrival_key(fire_node, ts.trigger_gate_dir)]
        .push_back(s);
  }
}

void CompiledDesign::rebuild_store() {
  TraceSpan span("build-store", "timing");
  store_.clear();
  std::size_t elements = 0;
  for (const TimingStage& ts : stages_) elements += ts.path.size();
  store_.reserve(stages_.size(), elements);
  Stage scratch;  // element storage reused across stages
  for (const TimingStage& ts : stages_) {
    // The slope argument is per-evaluation state, not store state: any
    // non-negative value yields the same stored elements.
    make_stage(*nl_, *tech_, ts, /*input_slope=*/0.0, scratch);
    store_.add(scratch);
  }
  span.arg("stages", static_cast<double>(store_.size()));
  span.arg("elements", static_cast<double>(store_.element_count()));
}

void CompiledDesign::recount_stages_per_ccc() {
  per_ccc_.assign(ccc_->count(), 0);
  for (const TimingStage& ts : stages_) {
    ++per_ccc_[ccc_->component_of(ts.destination)];
  }
}

}  // namespace sldm
