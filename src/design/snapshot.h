// The .sldc compiled-design snapshot: a versioned binary serialization
// of a CompiledDesign, so warm starts skip parse + partition +
// extraction entirely (FORMATS.md section 11 documents the layout and
// the versioning policy).
//
// Layout: a fixed header (magic, format version, technology
// fingerprint) followed by tagged flat sections, each integrity-checked
// independently:
//
//   [tag u32][payload length u64][FNV-1a-64 checksum u64][payload]
//
// All integers are little-endian; doubles travel as their exact IEEE-754
// bit patterns, which is what makes a loaded design's analysis
// bit-identical to the direct path: the StageStore's cached electrical
// quantities are restored verbatim, never re-derived.  Structures that
// are cheap and deterministic to rebuild (the CccPartition, the trigger
// index) are *not* serialized -- the loader reconstructs them from the
// netlist, trading a linear pass for a smaller, harder-to-corrupt file.
//
// Loads are defensive: a wrong magic, a format version from the future,
// a short read, a checksum mismatch, or an internally inconsistent
// payload each produce an Error naming the file and the failing
// section.  Snapshots additionally embed the slope-model calibration
// tables when compiled with them, so `sldm time --load` never re-runs
// the analog calibration the compile already paid for.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "delay/slope_table.h"
#include "design/compiled_design.h"

namespace sldm {

/// "SLDC", read as a little-endian u32.
constexpr std::uint32_t kSnapshotMagic = 0x43444C53u;
/// Current .sldc format version.  Bump on any layout change; loaders
/// reject snapshots from the future and (for now) from every older
/// version -- the compile step is cheap enough that migration shims
/// are not worth their risk.
constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// A deserialized snapshot: the design (owning its netlist and tech)
/// plus the optional calibration payload baked at compile time.
struct LoadedDesign {
  std::shared_ptr<CompiledDesign> design;
  std::optional<SlopeTables> slope_tables;
};

/// Serializes `design` (and, when given, the slope tables) to the
/// .sldc byte layout.
std::vector<std::uint8_t> serialize_design(const CompiledDesign& design,
                                           const SlopeTables* tables =
                                               nullptr);

/// Parses a .sldc byte buffer.  `origin` names the source in error
/// messages.  Throws Error on any integrity failure (see file
/// comment).
LoadedDesign deserialize_design(const std::vector<std::uint8_t>& bytes,
                                const std::string& origin = "<memory>");

/// File conveniences.  Throws Error if the file cannot be written /
/// read.
void save_design_file(const CompiledDesign& design, const std::string& path,
                      const SlopeTables* tables = nullptr);
LoadedDesign load_design_file(const std::string& path);

}  // namespace sldm
