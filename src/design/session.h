// A timing-analysis session: the mutable half of the split analyzer.
//
// A Session borrows an immutable CompiledDesign and owns everything a
// single analysis needs that the design does not: the declared input
// events, the structure-of-arrays arrival store, the propagation
// worklist scratch, the thread pool for batched evaluation, and the
// per-session metrics/stats.  N sessions -- different delay models,
// input slopes, or thread counts -- run concurrently over one shared
// design with no cloning, and each produces results bit-identical to a
// standalone analyzer over the same inputs (tests/design_test.cpp).
//
// Propagation drains an explicit FIFO worklist with in-queue
// deduplication in *wavefronts*: each round snapshots the ready
// frontier, gathers every (stage, firing event) candidate it triggers
// into one batch, prices the whole batch through
// DelayModel::estimate_batch (fanned over the thread pool in contiguous
// chunks when threads > 1), and commits the results sequentially in
// canonical order (FIFO event order, ascending stage index per event).
// Estimates are pure per (stage, slope) and the commit order is
// thread-independent, so arrivals, predecessors, and every work counter
// are bit-identical for any SessionOptions::threads.
//
// The legacy TimingAnalyzer (timing/analyzer.h) is now a facade over
// {CompiledDesign, Session}; ECO updates go through it because they
// mutate the design (single-writer discipline).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "delay/model.h"
#include "design/compiled_design.h"
#include "util/cancel.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace sldm {

/// Session configuration (the query half of AnalyzerOptions).
struct SessionOptions {
  /// Safety valve: maximum times a (node, direction) arrival may be
  /// improved before the session reports a structural loop.
  int max_updates_per_arrival = 64;
  /// Worker threads for batched wavefront evaluation (1 = fully
  /// sequential; results are bit-identical for any value).  Must be
  /// >= 1.
  int threads = 1;
};

/// Observability counters for one session lifetime: where did the time
/// go (extraction vs propagation), and how much work did each phase do.
/// Counter fields accumulate across run()/reset() cycles; wall-clock
/// fields hold the most recent phase execution.  Structural fields
/// (component and stage counts, extract_seconds) mirror the borrowed
/// CompiledDesign.
///
/// This struct is a *view*: the session stores its work counters and
/// phase timings in plain Counter/Gauge/Histogram members (also
/// exported by name through Session::metrics(), which additionally
/// carries distribution histograms), and stats() refreshes these fields
/// from those members on each call.
struct AnalyzerStats {
  std::size_t ccc_count = 0;        ///< channel-connected components
  std::size_t widest_ccc = 0;       ///< member nodes in the largest CCC
  std::vector<std::size_t> stages_per_ccc;  ///< indexed by CCC id
  std::size_t stage_count = 0;      ///< total extracted stages
  std::size_t stage_evaluations = 0;  ///< delay-model calls during run()
  std::size_t worklist_pushes = 0;  ///< events enqueued (incl. seeds)
  std::size_t arrival_updates = 0;  ///< arrival improvements committed
  Seconds extract_seconds = 0.0;    ///< design build wall clock (0: loaded)
  Seconds propagate_seconds = 0.0;  ///< run() wall clock
  int threads = 1;                  ///< session worker count

  // Batch shape of wavefront propagation.  `batches` accumulates like
  // stage_evaluations; mean/max describe the whole session lifetime.
  std::size_t batches = 0;          ///< wavefront batches evaluated
  double mean_batch_size = 0.0;     ///< stage_evaluations / batches
  std::size_t max_batch_size = 0;   ///< largest single batch

  // Incremental (ECO) counters.  `incremental_updates` accumulates;
  // the rest describe the most recent update() call.
  std::size_t incremental_updates = 0;  ///< update() calls absorbed
  std::size_t dirty_cccs = 0;           ///< components re-extracted
  std::size_t reextracted_stages = 0;   ///< stages rebuilt by update()
  std::size_t reused_stages = 0;        ///< stages carried over untouched
  std::size_t frontier_keys = 0;        ///< (node, dir) arrivals invalidated
  Seconds update_seconds = 0.0;         ///< update() wall clock
};

/// Final arrival data at one (node, transition).
struct ArrivalInfo {
  Seconds time = 0.0;
  Seconds slope = 0.0;
  /// Predecessor event (invalid node for primary-input events).
  NodeId from_node = NodeId::invalid();
  Transition from_dir = Transition::kRise;
  /// Index into CompiledDesign::stages() of the stage that set this
  /// arrival; SIZE_MAX for primary-input events.
  std::size_t via_stage = SIZE_MAX;
};

/// One step of a reported critical path.
struct PathStep {
  NodeId node;
  Transition dir;
  Seconds time;
  Seconds slope;
  std::string description;  ///< stage description ("<- input" for seeds)
};

class Session {
 public:
  /// Attaches to a design.  `model` must outlive the session.
  /// Precondition: design is non-null; options.threads >= 1.
  Session(std::shared_ptr<const CompiledDesign> design,
          const DelayModel& model, SessionOptions options = {});

  /// Declares a primary-input event.  Precondition: `input` is marked
  /// is_input; slope >= 0.  May be called repeatedly before run().
  /// Throws Error if run() already completed (reset() first).
  void add_input_event(NodeId input, Transition dir, Seconds time,
                       Seconds slope);

  /// Convenience: both transitions on every input at t=0 with `slope`
  /// (full worst-case analysis).  Same post-run() Error as
  /// add_input_event.
  void add_all_input_events(Seconds slope);

  /// Propagates to fixpoint.  Throws Error if a structural loop exceeds
  /// the update bound, or if run() already completed (reset() first),
  /// or if the design's netlist was mutated since the design was built
  /// (TimingAnalyzer::update() first).
  void run();

  /// Discards arrivals and seeds so a new set of input events can be
  /// analyzed without re-extracting stages.  Propagation counters keep
  /// accumulating.
  void reset();

  /// Arrival at (node, dir), if the node can switch that way at all.
  std::optional<ArrivalInfo> arrival(NodeId node, Transition dir) const;

  /// The latest arrival over all nodes (or only output-marked nodes).
  struct Worst {
    NodeId node;
    Transition dir;
    Seconds time;
  };
  std::optional<Worst> worst_arrival(bool outputs_only) const;

  /// The chain of events ending at (node, dir), input first.
  /// Precondition: arrival(node, dir) has a value.
  std::vector<PathStep> critical_path(NodeId node, Transition dir) const;

  /// Limits for k_worst_paths().
  struct PathQueryOptions {
    std::size_t max_explored = 200000;  ///< DFS work bound
    int max_length = 64;                ///< events per path
  };

  /// One enumerated event path (input seed first).
  struct EnumeratedPath {
    std::vector<PathStep> steps;
    Seconds arrival = 0.0;  ///< arrival of the final event
  };

  /// The k latest-arriving distinct event paths ending at (node, dir),
  /// sorted latest first -- Crystal's "show me the N worst paths".
  /// Slopes are propagated along each candidate path independently, so
  /// alternative paths get their own slope history (unlike the arrival
  /// fixpoint, which keeps only the worst predecessor).
  /// Precondition: run() has completed; k >= 1.
  std::vector<EnumeratedPath> k_worst_paths(
      NodeId node, Transition dir, std::size_t k,
      const PathQueryOptions& options) const;
  std::vector<EnumeratedPath> k_worst_paths(NodeId node, Transition dir,
                                            std::size_t k) const {
    return k_worst_paths(node, dir, k, PathQueryOptions());
  }

  /// The borrowed design and per-session model.
  const CompiledDesign& design() const { return *design_; }
  std::shared_ptr<const CompiledDesign> share_design() const {
    return design_;
  }
  const DelayModel& delay_model() const { return model_; }
  /// Conveniences forwarding to the design.
  const Netlist& netlist() const { return design_->netlist(); }
  const Tech& tech() const { return design_->tech(); }
  const std::vector<TimingStage>& stages() const {
    return design_->stages();
  }
  const StageStore& stage_store() const { return design_->stage_store(); }
  const CccPartition& components() const { return design_->components(); }

  /// Phase timings and work counters (see AnalyzerStats); refreshed
  /// from the metric members on each call.
  const AnalyzerStats& stats() const;

  /// The named metric registry: counters, phase-timing gauges, and
  /// distribution histograms (stage fan-in, RC path depth, sampled
  /// delay-model evaluation time, worklist queue depth, ECO frontier
  /// size).  Names are listed in FORMATS.md.  Materialized from the
  /// plain metric members on each call, so observers pay for the name
  /// table and the hot paths do not; the reference stays valid (and is
  /// re-refreshed by later calls) for the session's lifetime.
  const MetricsRegistry& metrics() const;

  /// Work counter for the Table 5 runtime comparison.
  std::size_t stage_evaluations() const {
    return static_cast<std::size_t>(ctr_stage_evaluations_.value());
  }

  /// Process-unique session id (dense, assigned at construction) --
  /// the `session` telemetry label is "s<id>".
  std::uint64_t session_id() const { return session_id_; }

  /// Publishes a labeled snapshot of metrics() into the process-wide
  /// TelemetryHub (labels: "s<id>", delay-model name, thread count,
  /// plus the request label when set).  Re-publishing replaces this
  /// session's earlier snapshot, so the hub always holds the registry's
  /// latest cumulative state.  No-op (one relaxed atomic load) while
  /// the hub is disabled; run() and TimingAnalyzer::update() call this
  /// at completion.
  void publish_telemetry() const;

  /// Tags this session's telemetry snapshots with a serve-traffic
  /// request kind ("time", "explain", "eco"); empty (the default)
  /// omits the label, keeping CLI-published snapshots unchanged.
  void set_telemetry_request(std::string request) {
    telemetry_request_ = std::move(request);
  }

  /// Attaches a cooperative cancellation token (deadline-aware serve).
  /// Propagation consults it once per wavefront batch and aborts with
  /// CancelledError once expired -- coarse enough that a run which
  /// *completes* is bit-identical to the same run with no token, since
  /// the token can only abort work, never reorder or reprice it.  The
  /// token is borrowed: it must outlive run()/update(), and nullptr
  /// (the default) detaches.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

 private:
  /// ECO repair (TimingAnalyzer::update()) grows the key arrays,
  /// invalidates damaged arrivals, and re-propagates in place.
  friend class TimingAnalyzer;

  /// Flat arrival key: (node, dir) -> node * 2 + dir.
  std::size_t key(NodeId node, Transition dir) const {
    return arrival_key(node, dir);
  }

  /// Requires that run() has not completed yet (Error otherwise).
  void require_not_ran(const char* what) const;

  /// Requires that the design is in sync with its netlist (Error
  /// pointing at TimingAnalyzer::update() otherwise).
  void require_synced(const char* what) const;

  /// Re-censuses the trigger fan-in histogram from the design
  /// structure (construction and after ECO updates).
  void refresh_fan_in();

  /// Prices one wavefront batch through the model's batch kernel,
  /// fanning contiguous chunks over the thread pool when
  /// options_.threads > 1 and the batch is large enough to pay for the
  /// handoff.  Estimates are pure per item, so the result is identical
  /// for any thread count or chunking.
  void evaluate_batch(std::span<const StageStore::StageId> ids,
                      std::span<const Seconds> input_slopes,
                      std::span<DelayEstimate> out);

  /// Drains the worklist to fixpoint in wavefront batches.  `queued` is
  /// the in-queue deduplication mark, sized like the arrival arrays.
  void propagate(std::deque<std::uint32_t>& work, std::vector<char>& queued);

  std::shared_ptr<const CompiledDesign> design_;
  const DelayModel& model_;
  SessionOptions options_;
  /// Dense process-unique id (see session_id()).
  std::uint64_t session_id_ = 0;
  /// Lazily created pool for batched wavefront evaluation (only when
  /// options_.threads > 1).
  std::unique_ptr<ThreadPool> pool_;

  // Arrival store: structure-of-arrays keyed by key(node, dir).  The
  // hot propagation loop touches time_/slope_/valid_ only; predecessor
  // bookkeeping lives in parallel arrays instead of an optional-of-
  // struct so the inner loop stays on dense doubles.
  std::vector<Seconds> arrival_time_;
  std::vector<Seconds> arrival_slope_;
  std::vector<std::uint32_t> arrival_from_;  ///< packed key; UINT32_MAX none
  std::vector<std::size_t> arrival_via_;     ///< stage idx; SIZE_MAX seeds
  std::vector<char> arrival_valid_;

  std::vector<int> update_counts_;
  std::vector<std::uint32_t> seeds_;  ///< packed keys, insertion order
  bool ran_ = false;
  /// Telemetry `request` label; empty outside the serve layer.
  std::string telemetry_request_;
  /// Borrowed cooperative deadline; null outside deadline-aware serve.
  const CancelToken* cancel_ = nullptr;

  // Metric storage: plain members, so constructing a session and the
  // hot loops pay a field update and never a map lookup or a string
  // allocation.  metrics() materializes these into the named registry
  // below on demand.
  Counter ctr_stage_evaluations_;
  Counter ctr_worklist_pushes_;
  Counter ctr_arrival_updates_;
  Counter ctr_batches_;
  Counter ctr_incremental_updates_;
  Gauge g_propagate_seconds_;
  Gauge g_update_seconds_;
  Gauge g_dirty_cccs_;
  Gauge g_reextracted_stages_;
  Gauge g_reused_stages_;
  Gauge g_frontier_keys_;
  Gauge g_max_batch_size_;
  Histogram h_fan_in_{0.0, 64.0, 16};
  Histogram h_batch_size_{0.0, 4096.0, 16};
  Histogram h_rc_depth_{0.0, 16.0, 16};
  Histogram h_eval_us_{0.0, 50.0, 20};
  Histogram h_queue_depth_{0.0, 4096.0, 16};
  Histogram h_frontier_{0.0, 2048.0, 16};

  /// Named export refreshed from the members above by metrics().
  mutable MetricsRegistry metrics_;

  /// View refreshed from the metric members by stats().
  mutable AnalyzerStats stats_;
};

}  // namespace sldm
