#include "design/session.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "util/contracts.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace sldm {
namespace {

Seconds now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Below this many candidates a wavefront batch is evaluated inline:
/// the pool handoff costs more than the evaluations save.
constexpr std::size_t kMinParallelChunk = 128;

/// Dense process-unique session ids for the telemetry `session` label.
std::uint64_t next_session_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Session::Session(std::shared_ptr<const CompiledDesign> design,
                 const DelayModel& model, SessionOptions options)
    : design_(std::move(design)),
      model_(model),
      options_(options),
      session_id_(next_session_id()) {
  SLDM_EXPECTS(design_ != nullptr);
  SLDM_EXPECTS(options.threads >= 1);
  const std::size_t nkeys = design_->netlist().node_count() * 2;
  arrival_time_.assign(nkeys, 0.0);
  arrival_slope_.assign(nkeys, 0.0);
  arrival_from_.assign(nkeys, UINT32_MAX);
  arrival_via_.assign(nkeys, SIZE_MAX);
  arrival_valid_.assign(nkeys, 0);
  update_counts_.assign(nkeys, 0);
  refresh_fan_in();
}

void Session::refresh_fan_in() {
  // Fan-in census of the *current* structure: one sample per trigger
  // key that fires at least one stage (rebuilt, not accumulated, so
  // the distribution tracks the latest stage set after an ECO update).
  h_fan_in_.reset();
  for (const std::vector<std::size_t>& list :
       design_->stages_by_trigger()) {
    if (!list.empty()) h_fan_in_.add(static_cast<double>(list.size()));
  }
}

const MetricsRegistry& Session::metrics() const {
  metrics_.counter("propagate.stage_evaluations")
      .set(ctr_stage_evaluations_.value());
  metrics_.counter("propagate.worklist_pushes")
      .set(ctr_worklist_pushes_.value());
  metrics_.counter("propagate.arrival_updates")
      .set(ctr_arrival_updates_.value());
  metrics_.counter("propagate.batches").set(ctr_batches_.value());
  metrics_.counter("eco.updates").set(ctr_incremental_updates_.value());
  metrics_.gauge("extract.seconds").set(design_->extract_seconds());
  metrics_.gauge("propagate.seconds").set(g_propagate_seconds_.value());
  metrics_.gauge("eco.update_seconds").set(g_update_seconds_.value());
  metrics_.gauge("eco.dirty_cccs").set(g_dirty_cccs_.value());
  metrics_.gauge("eco.reextracted_stages").set(g_reextracted_stages_.value());
  metrics_.gauge("eco.reused_stages").set(g_reused_stages_.value());
  metrics_.gauge("eco.frontier_keys").set(g_frontier_keys_.value());
  metrics_.gauge("propagate.max_batch_size").set(g_max_batch_size_.value());
  metrics_.histogram("propagate.batch_size", 0.0, 4096.0, 16) =
      h_batch_size_;
  metrics_.histogram("extract.stage_fan_in", 0.0, 64.0, 16) = h_fan_in_;
  metrics_.histogram("propagate.rc_path_depth", 0.0, 16.0, 16) = h_rc_depth_;
  metrics_.histogram("propagate.eval_us", 0.0, 50.0, 20) = h_eval_us_;
  metrics_.histogram("propagate.queue_depth", 0.0, 4096.0, 16) =
      h_queue_depth_;
  metrics_.histogram("eco.frontier_size", 0.0, 2048.0, 16) = h_frontier_;
  return metrics_;
}

const AnalyzerStats& Session::stats() const {
  stats_.ccc_count = design_->components().count();
  stats_.widest_ccc = design_->components().widest();
  stats_.stages_per_ccc = design_->stages_per_ccc();
  stats_.stage_count = design_->stages().size();
  stats_.threads = options_.threads;
  stats_.stage_evaluations =
      static_cast<std::size_t>(ctr_stage_evaluations_.value());
  stats_.worklist_pushes =
      static_cast<std::size_t>(ctr_worklist_pushes_.value());
  stats_.arrival_updates =
      static_cast<std::size_t>(ctr_arrival_updates_.value());
  stats_.batches = static_cast<std::size_t>(ctr_batches_.value());
  stats_.mean_batch_size =
      stats_.batches == 0
          ? 0.0
          : static_cast<double>(ctr_stage_evaluations_.value()) /
                static_cast<double>(stats_.batches);
  stats_.max_batch_size =
      static_cast<std::size_t>(g_max_batch_size_.value());
  stats_.incremental_updates =
      static_cast<std::size_t>(ctr_incremental_updates_.value());
  stats_.extract_seconds = design_->extract_seconds();
  stats_.propagate_seconds = g_propagate_seconds_.value();
  stats_.update_seconds = g_update_seconds_.value();
  stats_.dirty_cccs = static_cast<std::size_t>(g_dirty_cccs_.value());
  stats_.reextracted_stages =
      static_cast<std::size_t>(g_reextracted_stages_.value());
  stats_.reused_stages = static_cast<std::size_t>(g_reused_stages_.value());
  stats_.frontier_keys = static_cast<std::size_t>(g_frontier_keys_.value());
  return stats_;
}

void Session::require_not_ran(const char* what) const {
  if (ran_) {
    throw Error(std::string(what) +
                " called after run(); call reset() to start a new "
                "analysis or attach a fresh Session");
  }
}

void Session::require_synced(const char* what) const {
  if (design_->netlist().revision() != design_->built_revision()) {
    throw Error(std::string(what) +
                " called on a stale session: the netlist was mutated "
                "since the design was built; call update() first");
  }
}

void Session::add_input_event(NodeId input, Transition dir, Seconds time,
                              Seconds slope) {
  require_not_ran("add_input_event");
  require_synced("add_input_event");
  SLDM_EXPECTS(design_->netlist().node(input).is_input);
  SLDM_EXPECTS(slope >= 0.0);
  const std::size_t k = key(input, dir);
  arrival_time_[k] = time;
  arrival_slope_[k] = slope;
  arrival_from_[k] = UINT32_MAX;
  arrival_via_[k] = SIZE_MAX;
  arrival_valid_[k] = 1;
  seeds_.push_back(static_cast<std::uint32_t>(k));
}

void Session::add_all_input_events(Seconds slope) {
  require_not_ran("add_all_input_events");
  require_synced("add_all_input_events");
  const Netlist& nl = design_->netlist();
  for (NodeId n : nl.all_nodes()) {
    if (!nl.node(n).is_input) continue;
    add_input_event(n, Transition::kRise, 0.0, slope);
    add_input_event(n, Transition::kFall, 0.0, slope);
  }
}

void Session::run() {
  require_not_ran("run");
  require_synced("run");
  ran_ = true;
  TraceSpan span("propagate", "timing");
  const Seconds t0 = now_seconds();
  const std::uint64_t evals_before = ctr_stage_evaluations_.value();

  // Explicit FIFO worklist of packed (node, dir) keys with in-queue
  // deduplication: an event already awaiting processing is not enqueued
  // again, it simply gets processed with its latest arrival.
  std::deque<std::uint32_t> work(seeds_.begin(), seeds_.end());
  std::vector<char> queued(arrival_valid_.size(), 0);
  for (const std::uint32_t k : seeds_) queued[k] = 1;
  ctr_worklist_pushes_.add(seeds_.size());
  propagate(work, queued);
  g_propagate_seconds_.set(now_seconds() - t0);
  span.arg("seeds", static_cast<double>(seeds_.size()));
  span.arg("stage_evaluations",
           static_cast<double>(ctr_stage_evaluations_.value() -
                               evals_before));
  publish_telemetry();
}

void Session::publish_telemetry() const {
  TelemetryHub& hub = TelemetryHub::instance();
  if (!hub.enabled()) return;
  TelemetryLabels labels;
  labels.session =
      format("s%llu", static_cast<unsigned long long>(session_id_));
  labels.model = model_.name();
  labels.threads = options_.threads;
  labels.request = telemetry_request_;
  hub.publish(labels, metrics());
}

void Session::evaluate_batch(std::span<const StageStore::StageId> ids,
                             std::span<const Seconds> input_slopes,
                             std::span<DelayEstimate> out) {
  const StageStore& store = design_->stage_store();
  const std::size_t n = ids.size();
  if (options_.threads <= 1 || n < 2 * kMinParallelChunk) {
    model_.estimate_batch(store, ids, input_slopes, out);
    return;
  }
  // Contiguous chunks, workers write disjoint out[] windows; chunk 0
  // runs on the calling thread so all `threads` threads participate.
  const std::size_t nchunks = std::min<std::size_t>(
      static_cast<std::size_t>(options_.threads), n / kMinParallelChunk);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.threads);
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * n / nchunks;
    const std::size_t end = (c + 1) * n / nchunks;
    TraceSpan span("propagate-chunk", "timing");
    span.arg("evaluations", static_cast<double>(end - begin));
    model_.estimate_batch(store, ids.subspan(begin, end - begin),
                          input_slopes.subspan(begin, end - begin),
                          out.subspan(begin, end - begin));
  };
  try {
    for (std::size_t c = 1; c < nchunks; ++c) {
      pool_->submit([&run_chunk, c] { run_chunk(c); });
    }
    run_chunk(0);
  } catch (...) {
    // Both a refused submit and a failing inline chunk land here.  The
    // workers still hold references into this frame; drain them before
    // unwinding (their failures, if any, stay suppressed -- the first
    // exception already carries the diagnosis).
    try {
      pool_->wait();
    } catch (...) {
    }
    throw;
  }
  pool_->wait();
}

void Session::propagate(std::deque<std::uint32_t>& work,
                        std::vector<char>& queued) {
  Tracer& tracer = Tracer::instance();
  const bool tracing = tracer.enabled();
  const std::vector<TimingStage>& stages = design_->stages();
  const StageStore& store = design_->stage_store();
  const std::vector<std::vector<std::size_t>>& by_trigger =
      design_->stages_by_trigger();

  // Wavefront buffers, reused across rounds of the drain loop.
  std::vector<StageStore::StageId> ids;
  std::vector<Seconds> slopes;
  std::vector<std::uint32_t> fire_keys;
  std::vector<Seconds> fire_times;
  std::vector<DelayEstimate> ests;

  while (!work.empty()) {
    // Cooperative deadline: checked once per wavefront (not per stage),
    // so the token never perturbs pricing or commit order -- a run that
    // completes under a deadline is bit-identical to one without.
    if (cancel_) cancel_->check("propagate");
    const double wave_t0_us = tracing ? tracer.now_us() : 0.0;

    // --- Gather: snapshot the ready frontier.  Every event currently
    // in the worklist fires all its stages this round; candidates are
    // priced against the arrivals as of this snapshot, and any arrival
    // the commit phase changes re-enqueues its key into the *next*
    // wavefront, so the drain still reaches the same canonical
    // fixpoint as one-event-at-a-time processing.
    const std::size_t wave_events = work.size();
    h_queue_depth_.add(static_cast<double>(wave_events));
    ids.clear();
    slopes.clear();
    fire_keys.clear();
    fire_times.clear();
    for (std::size_t e = 0; e < wave_events; ++e) {
      const std::uint32_t fire_key = work.front();
      work.pop_front();
      queued[fire_key] = 0;
      SLDM_ASSERT(arrival_valid_[fire_key]);
      for (std::size_t s : by_trigger[fire_key]) {
        ids.push_back(static_cast<StageStore::StageId>(s));
        slopes.push_back(arrival_slope_[fire_key]);
        fire_keys.push_back(fire_key);
        fire_times.push_back(arrival_time_[fire_key]);
      }
    }
    if (ids.empty()) continue;  // frontier of sink events

    // --- Evaluate the whole wavefront through the batch kernel.
    const std::size_t n = ids.size();
    ests.resize(n);
    const double eval_t0_us = tracer.now_us();
    evaluate_batch(ids, slopes, ests);
    h_eval_us_.add((tracer.now_us() - eval_t0_us) /
                   static_cast<double>(n));
    ctr_stage_evaluations_.add(n);
    ctr_batches_.add();
    h_batch_size_.add(static_cast<double>(n));
    if (static_cast<double>(n) > g_max_batch_size_.value()) {
      g_max_batch_size_.set(static_cast<double>(n));
    }
    for (std::size_t i = 0; i < n; ++i) {
      h_rc_depth_.add(static_cast<double>(store.length(ids[i])));
    }

    // --- Commit sequentially in gather order (FIFO event order, then
    // ascending stage index per event): thread-independent, so the
    // accepted arrivals -- and the next wavefront's contents -- are
    // bit-identical for any chunking of the evaluation above.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t s = ids[i];
      const TimingStage& ts = stages[s];
      const std::uint32_t fire_key = fire_keys[i];
      const std::size_t dest_key = key(ts.destination, ts.output_dir);
      const Seconds t_new = fire_times[i] + ests[i].delay;
      bool tie = false;
      if (arrival_valid_[dest_key]) {
        if (t_new < arrival_time_[dest_key]) continue;
        if (t_new == arrival_time_[dest_key]) {
          // Canonical tie-break: among equal-time candidates the one
          // with the smallest (stage index, predecessor key) wins, so
          // the fixpoint winner is independent of processing order --
          // the property that keeps incremental update() bit-identical
          // to a from-scratch rebuild.
          if (arrival_via_[dest_key] < s ||
              (arrival_via_[dest_key] == s &&
               arrival_from_[dest_key] <= fire_key)) {
            continue;
          }
          tie = true;
        }
      }
      // Tie rewrites strictly decrease the stored (stage, predecessor)
      // pair, so they terminate on their own and don't count toward
      // the loop bound.
      if (!tie &&
          ++update_counts_[dest_key] > options_.max_updates_per_arrival) {
        throw Error("timing loop detected at node '" +
                    design_->netlist().node(ts.destination).name +
                    "': arrival keeps increasing");
      }
      arrival_time_[dest_key] = t_new;
      arrival_slope_[dest_key] = ests[i].output_slope;
      arrival_from_[dest_key] = fire_key;
      arrival_via_[dest_key] = s;
      arrival_valid_[dest_key] = 1;
      ctr_arrival_updates_.add();
      if (!queued[dest_key]) {
        queued[dest_key] = 1;
        work.push_back(static_cast<std::uint32_t>(dest_key));
        ctr_worklist_pushes_.add();
      }
    }

    if (tracing) {
      tracer.record("propagate-wave", "timing", wave_t0_us,
                    tracer.now_us() - wave_t0_us,
                    {{"events", static_cast<double>(wave_events)},
                     {"evaluations", static_cast<double>(n)},
                     {"queue_depth", static_cast<double>(work.size())}});
    }
  }
}

void Session::reset() {
  std::fill(arrival_valid_.begin(), arrival_valid_.end(), 0);
  std::fill(update_counts_.begin(), update_counts_.end(), 0);
  seeds_.clear();
  ran_ = false;
}

std::optional<ArrivalInfo> Session::arrival(NodeId node,
                                            Transition dir) const {
  const std::size_t k = key(node, dir);
  if (!arrival_valid_[k]) return std::nullopt;
  ArrivalInfo info;
  info.time = arrival_time_[k];
  info.slope = arrival_slope_[k];
  if (arrival_from_[k] != UINT32_MAX) {
    info.from_node = NodeId(arrival_from_[k] / 2);
    info.from_dir =
        arrival_from_[k] % 2 == 0 ? Transition::kRise : Transition::kFall;
  }
  info.via_stage = arrival_via_[k];
  return info;
}

std::optional<Session::Worst> Session::worst_arrival(
    bool outputs_only) const {
  const Netlist& nl = design_->netlist();
  std::optional<Worst> worst;
  for (NodeId n : nl.all_nodes()) {
    if (outputs_only && !nl.node(n).is_output) continue;
    if (nl.node(n).is_input) continue;  // input events are seeds
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const std::size_t k = key(n, dir);
      if (!arrival_valid_[k]) continue;
      if (!worst || arrival_time_[k] > worst->time) {
        worst = Worst{n, dir, arrival_time_[k]};
      }
    }
  }
  return worst;
}

std::vector<PathStep> Session::critical_path(NodeId node,
                                             Transition dir) const {
  const Netlist& nl = design_->netlist();
  const std::vector<TimingStage>& stages = design_->stages();
  std::vector<PathStep> steps;
  NodeId cur = node;
  Transition cdir = dir;
  // Bounded walk: each step strictly decreases arrival time, so the
  // node-count bound can only be exceeded by corrupted predecessors.
  for (std::size_t guard = 0; guard <= arrival_valid_.size(); ++guard) {
    const auto info = arrival(cur, cdir);
    SLDM_EXPECTS(info.has_value());
    PathStep step;
    step.node = cur;
    step.dir = cdir;
    step.time = info->time;
    step.slope = info->slope;
    step.description = info->via_stage == SIZE_MAX
                           ? "<- input"
                           : describe(nl, stages[info->via_stage]);
    steps.push_back(std::move(step));
    if (!info->from_node.valid()) break;
    cur = info->from_node;
    cdir = info->from_dir;
  }
  std::reverse(steps.begin(), steps.end());
  return steps;
}

}  // namespace sldm
