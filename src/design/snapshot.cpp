#include "design/snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/failpoint.h"

namespace sldm {
namespace {

// --- Byte-level primitives (explicit little-endian packing) -------------

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

using Bytes = std::vector<std::uint8_t>;

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_string(Bytes& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked reader over one section payload (or the header).
/// Every primitive read throws a truncation Error instead of walking
/// off the end, so short files fail loudly wherever the cut lands.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size,
         const std::string& origin, const char* what)
      : data_(data), size_(size), origin_(origin), what_(what) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  [[noreturn]] void fail(const std::string& why) const {
    throw Error("snapshot " + origin_ + ": " + what_ + ": " + why);
  }

 private:
  void need(std::size_t n) {
    if (size_ - pos_ < n) {
      fail("truncated (wanted " + std::to_string(n) + " more byte(s), " +
           std::to_string(size_ - pos_) + " left)");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const std::string& origin_;
  const char* what_;
};

// --- Section tags --------------------------------------------------------

constexpr std::uint32_t tag4(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

constexpr std::uint32_t kTagTech = tag4("TECH");
constexpr std::uint32_t kTagNode = tag4("NODE");
constexpr std::uint32_t kTagDevs = tag4("DEVS");
constexpr std::uint32_t kTagOpts = tag4("OPTS");
constexpr std::uint32_t kTagStgs = tag4("STGS");
constexpr std::uint32_t kTagStor = tag4("STOR");
constexpr std::uint32_t kTagTbls = tag4("TBLS");

std::string tag_name(std::uint32_t tag) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>(tag >> (8 * i));
    s[static_cast<std::size_t>(i)] = (c >= 32 && c < 127) ? c : '?';
  }
  return s;
}

void put_section(Bytes& out, std::uint32_t tag, const Bytes& payload) {
  put_u32(out, tag);
  put_u64(out, payload.size());
  put_u64(out, fnv1a(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

// --- Section writers -----------------------------------------------------

Bytes write_tech(const Tech& tech) {
  Bytes b;
  put_string(b, tech.name());
  put_f64(b, tech.vdd());
  for (const TransistorType t :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    const DeviceParams& p = tech.params(t);
    put_f64(b, p.vt);
    put_f64(b, p.kp);
    put_f64(b, p.lambda);
    put_f64(b, p.cox);
    put_f64(b, p.cov_w);
    put_f64(b, p.cj_w);
    put_f64(b, p.r_up_sq);
    put_f64(b, p.r_down_sq);
  }
  return b;
}

Bytes write_nodes(const Netlist& nl) {
  Bytes b;
  put_u64(b, nl.node_count());
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    put_string(b, info.name.view());
    put_f64(b, info.cap);
    std::uint8_t flags = 0;
    if (info.is_power) flags |= 1u << 0;
    if (info.is_ground) flags |= 1u << 1;
    if (info.is_input) flags |= 1u << 2;
    if (info.is_output) flags |= 1u << 3;
    if (info.is_precharged) flags |= 1u << 4;
    put_u8(b, flags);
    put_u8(b, static_cast<std::uint8_t>(info.fixed));
  }
  return b;
}

Bytes write_devices(const Netlist& nl) {
  Bytes b;
  put_u64(b, nl.device_count());
  for (DeviceId d : nl.all_devices()) {
    const Transistor& t = nl.device(d);
    put_u8(b, static_cast<std::uint8_t>(t.type));
    put_u32(b, t.gate.value());
    put_u32(b, t.source.value());
    put_u32(b, t.drain.value());
    put_f64(b, t.width);
    put_f64(b, t.length);
    put_u8(b, static_cast<std::uint8_t>(t.flow));
  }
  return b;
}

Bytes write_options(const ExtractOptions& opts) {
  Bytes b;
  put_u32(b, static_cast<std::uint32_t>(opts.max_depth));
  put_u8(b, opts.inputs_as_sources ? 1 : 0);
  // fixed_values in ascending node order: the map iterates in hash
  // order, which must not leak into the byte stream (equal designs
  // must serialize to equal bytes).
  std::vector<std::pair<std::uint32_t, bool>> fixed;
  fixed.reserve(opts.fixed_values.size());
  for (const auto& [node, value] : opts.fixed_values) {
    fixed.emplace_back(node.value(), value);
  }
  std::sort(fixed.begin(), fixed.end());
  put_u64(b, fixed.size());
  for (const auto& [node, value] : fixed) {
    put_u32(b, node);
    put_u8(b, value ? 1 : 0);
  }
  return b;
}

Bytes write_stages(const std::vector<TimingStage>& stages) {
  Bytes b;
  put_u64(b, stages.size());
  for (const TimingStage& ts : stages) {
    put_u32(b, ts.source.value());
    put_u32(b, ts.destination.value());
    put_u8(b, ts.output_dir == Transition::kRise ? 0 : 1);
    put_u32(b, ts.trigger.value());
    put_u8(b, ts.trigger_gate_dir == Transition::kRise ? 0 : 1);
    std::uint8_t flags = 0;
    if (ts.trigger_is_release) flags |= 1u << 0;
    if (ts.source_triggered) flags |= 1u << 1;
    put_u8(b, flags);
    put_u32(b, static_cast<std::uint32_t>(ts.path.size()));
    for (const DeviceId d : ts.path) put_u32(b, d.value());
  }
  return b;
}

Bytes write_store(const StageStore& store) {
  const StageStore::RawArrays a = store.export_arrays();
  Bytes b;
  const auto put_u8_vec = [&b](const auto& v) {
    put_u64(b, v.size());
    for (const auto e : v) put_u8(b, static_cast<std::uint8_t>(e));
  };
  const auto put_u32_vec = [&b](const std::vector<std::uint32_t>& v) {
    put_u64(b, v.size());
    for (const std::uint32_t e : v) put_u32(b, e);
  };
  const auto put_f64_vec = [&b](const std::vector<double>& v) {
    put_u64(b, v.size());
    for (const double e : v) put_f64(b, e);
  };
  put_u8_vec(a.elem_type);
  put_f64_vec(a.elem_r);
  put_f64_vec(a.elem_c);
  put_u32_vec(a.offset);
  put_u8_vec(a.output_dir);
  put_u32_vec(a.trigger_index);
  put_u8_vec(a.trigger_type);
  put_f64_vec(a.total_r);
  put_f64_vec(a.total_c);
  put_f64_vec(a.dest_c);
  put_f64_vec(a.elmore);
  put_f64_vec(a.tp);
  return b;
}

// --- Section readers -----------------------------------------------------

TransistorType read_transistor_type(Reader& r) {
  const std::uint8_t v = r.u8();
  switch (v) {
    case static_cast<std::uint8_t>(TransistorType::kNEnhancement):
      return TransistorType::kNEnhancement;
    case static_cast<std::uint8_t>(TransistorType::kNDepletion):
      return TransistorType::kNDepletion;
    case static_cast<std::uint8_t>(TransistorType::kPEnhancement):
      return TransistorType::kPEnhancement;
    default:
      r.fail("bad transistor type " + std::to_string(v));
  }
}

Transition read_transition(Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) r.fail("bad transition " + std::to_string(v));
  return v == 0 ? Transition::kRise : Transition::kFall;
}

Flow read_flow(Reader& r) {
  const std::uint8_t v = r.u8();
  switch (v) {
    case static_cast<std::uint8_t>(Flow::kBidirectional):
      return Flow::kBidirectional;
    case static_cast<std::uint8_t>(Flow::kSourceToDrain):
      return Flow::kSourceToDrain;
    case static_cast<std::uint8_t>(Flow::kDrainToSource):
      return Flow::kDrainToSource;
    default:
      r.fail("bad flow annotation " + std::to_string(v));
  }
}

Tech read_tech_section(Reader& r) {
  const std::string name = r.str();
  const double vdd = r.f64();
  Tech tech(name, vdd);
  for (const TransistorType t :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    DeviceParams& p = tech.params(t);
    p.vt = r.f64();
    p.kp = r.f64();
    p.lambda = r.f64();
    p.cox = r.f64();
    p.cov_w = r.f64();
    p.cj_w = r.f64();
    p.r_up_sq = r.f64();
    p.r_down_sq = r.f64();
  }
  return tech;
}

Netlist read_netlist_sections(Reader& nodes, Reader& devs) {
  Netlist nl;
  const std::uint64_t node_count = nodes.u64();
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const std::string name = nodes.str();
    if (name.empty()) nodes.fail("empty node name");
    const double cap = nodes.f64();
    const std::uint8_t flags = nodes.u8();
    const auto fixed = static_cast<std::int8_t>(nodes.u8());
    if (flags > 31) nodes.fail("bad node flags");
    if (fixed < -1 || fixed > 1) nodes.fail("bad pinned value");
    const NodeId id = nl.add_node(name);
    if (id.index() != i) nodes.fail("duplicate node name '" + name + "'");
    Node& info = nl.node(id);
    info.cap = cap;
    info.is_power = (flags & (1u << 0)) != 0;
    info.is_ground = (flags & (1u << 1)) != 0;
    info.is_input = (flags & (1u << 2)) != 0;
    info.is_output = (flags & (1u << 3)) != 0;
    info.is_precharged = (flags & (1u << 4)) != 0;
    info.fixed = fixed;
  }

  const std::uint64_t device_count = devs.u64();
  for (std::uint64_t i = 0; i < device_count; ++i) {
    const TransistorType type = read_transistor_type(devs);
    const NodeId gate(devs.u32());
    const NodeId source(devs.u32());
    const NodeId drain(devs.u32());
    const double width = devs.f64();
    const double length = devs.f64();
    const Flow flow = read_flow(devs);
    if (gate.index() >= nl.node_count() ||
        source.index() >= nl.node_count() ||
        drain.index() >= nl.node_count()) {
      devs.fail("device terminal out of range");
    }
    if (source == drain || width <= 0.0 || length <= 0.0) {
      devs.fail("bad device geometry");
    }
    nl.add_transistor(type, gate, source, drain, width, length, flow);
  }
  return nl;
}

ExtractOptions read_options_section(Reader& r, const Netlist& nl) {
  ExtractOptions opts;
  opts.max_depth = static_cast<int>(r.u32());
  opts.inputs_as_sources = r.u8() != 0;
  const std::uint64_t fixed = r.u64();
  for (std::uint64_t i = 0; i < fixed; ++i) {
    const NodeId node(r.u32());
    const std::uint8_t value = r.u8();
    if (node.index() >= nl.node_count()) r.fail("pinned node out of range");
    if (value > 1) r.fail("bad pinned value");
    opts.fixed_values[node] = value != 0;
  }
  return opts;
}

std::vector<TimingStage> read_stages_section(Reader& r, const Netlist& nl) {
  std::vector<TimingStage> stages;
  const std::uint64_t count = r.u64();
  stages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TimingStage ts;
    ts.source = NodeId(r.u32());
    ts.destination = NodeId(r.u32());
    ts.output_dir = read_transition(r);
    ts.trigger = DeviceId(r.u32());
    ts.trigger_gate_dir = read_transition(r);
    const std::uint8_t flags = r.u8();
    if (flags > 3) r.fail("bad stage flags");
    ts.trigger_is_release = (flags & (1u << 0)) != 0;
    ts.source_triggered = (flags & (1u << 1)) != 0;
    const std::uint32_t path_len = r.u32();
    ts.path.reserve(path_len);
    for (std::uint32_t p = 0; p < path_len; ++p) {
      const DeviceId d(r.u32());
      if (d.index() >= nl.device_count()) {
        r.fail("stage path device out of range");
      }
      ts.path.push_back(d);
    }
    if (ts.source.index() >= nl.node_count() ||
        ts.destination.index() >= nl.node_count() ||
        ts.trigger.index() >= nl.device_count()) {
      r.fail("stage endpoint out of range");
    }
    stages.push_back(std::move(ts));
  }
  return stages;
}

StageStore read_store_section(Reader& r) {
  StageStore::RawArrays a;
  const auto get_type_vec = [&r](std::vector<TransistorType>& v) {
    const std::uint64_t n = r.u64();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_transistor_type(r));
  };
  const auto get_dir_vec = [&r](std::vector<Transition>& v) {
    const std::uint64_t n = r.u64();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_transition(r));
  };
  const auto get_u32_vec = [&r](std::vector<std::uint32_t>& v) {
    const std::uint64_t n = r.u64();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u32());
  };
  const auto get_f64_vec = [&r](std::vector<double>& v) {
    const std::uint64_t n = r.u64();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.f64());
  };
  get_type_vec(a.elem_type);
  get_f64_vec(a.elem_r);
  get_f64_vec(a.elem_c);
  get_u32_vec(a.offset);
  get_dir_vec(a.output_dir);
  get_u32_vec(a.trigger_index);
  get_type_vec(a.trigger_type);
  get_f64_vec(a.total_r);
  get_f64_vec(a.total_c);
  get_f64_vec(a.dest_c);
  get_f64_vec(a.elmore);
  get_f64_vec(a.tp);
  return StageStore::from_arrays(std::move(a));
}

struct Section {
  const std::uint8_t* data;
  std::size_t size;
};

}  // namespace

/// Loader-side assembly: the one place allowed to construct a
/// CompiledDesign from parts (friend of the class).
struct SnapshotAccess {
  static std::shared_ptr<CompiledDesign> assemble(
      Netlist nl, Tech tech, ExtractOptions extract,
      std::vector<TimingStage> stages, StageStore store) {
    auto design = std::shared_ptr<CompiledDesign>(new CompiledDesign());
    design->owned_nl_ = std::make_unique<Netlist>(std::move(nl));
    design->owned_tech_ = std::make_unique<Tech>(std::move(tech));
    design->nl_ = design->owned_nl_.get();
    design->tech_ = design->owned_tech_.get();
    design->extract_ = std::move(extract);
    design->ccc_.emplace(*design->nl_);
    design->stages_ = std::move(stages);
    design->store_ = std::move(store);
    design->index_stages_by_trigger();
    design->recount_stages_per_ccc();
    design->fingerprint_ = tech_fingerprint(*design->tech_);
    design->built_revision_ = design->nl_->revision();
    design->extract_seconds_ = 0.0;  // the whole point of loading
    design->build_threads_ = 1;
    return design;
  }
};

std::vector<std::uint8_t> serialize_design(const CompiledDesign& design,
                                           const SlopeTables* tables) {
  Bytes out;
  put_u32(out, kSnapshotMagic);
  put_u32(out, kSnapshotFormatVersion);
  put_u64(out, design.fingerprint());
  put_section(out, kTagTech, write_tech(design.tech()));
  put_section(out, kTagNode, write_nodes(design.netlist()));
  put_section(out, kTagDevs, write_devices(design.netlist()));
  put_section(out, kTagOpts, write_options(design.extract_options()));
  put_section(out, kTagStgs, write_stages(design.stages()));
  put_section(out, kTagStor, write_store(design.stage_store()));
  if (tables != nullptr) {
    std::ostringstream os;
    tables->write(os);
    const std::string text = os.str();
    Bytes payload(text.begin(), text.end());
    put_section(out, kTagTbls, payload);
  }
  return out;
}

LoadedDesign deserialize_design(const std::vector<std::uint8_t>& bytes,
                                const std::string& origin) {
  Reader header(bytes.data(), bytes.size(), origin, "header");
  const std::uint32_t magic = header.u32();
  if (magic != kSnapshotMagic) {
    throw Error("snapshot " + origin +
                ": not a .sldc compiled design (bad magic); run `sldm "
                "compile` to produce one");
  }
  const std::uint32_t version = header.u32();
  if (version != kSnapshotFormatVersion) {
    throw Error("snapshot " + origin + ": format version " +
                std::to_string(version) + " is not supported (this build "
                "reads version " +
                std::to_string(kSnapshotFormatVersion) +
                "); recompile the design with `sldm compile`");
  }
  const std::uint64_t claimed_fingerprint = header.u64();

  // Walk the section table: verify each checksum, remember each
  // payload window.
  std::size_t pos = bytes.size() - header.remaining();
  std::unordered_map<std::uint32_t, Section> sections;
  while (pos < bytes.size()) {
    Reader sec(bytes.data() + pos, bytes.size() - pos, origin,
               "section table");
    const std::uint32_t tag = sec.u32();
    const std::uint64_t length = sec.u64();
    const std::uint64_t checksum = sec.u64();
    const std::size_t header_size = (bytes.size() - pos) - sec.remaining();
    if (length > sec.remaining()) {
      throw Error("snapshot " + origin + ": section '" + tag_name(tag) +
                  "' truncated (declares " + std::to_string(length) +
                  " byte(s), " + std::to_string(sec.remaining()) +
                  " left in file)");
    }
    const std::uint8_t* payload = bytes.data() + pos + header_size;
    if (fnv1a(payload, length) != checksum) {
      throw Error("snapshot " + origin + ": section '" + tag_name(tag) +
                  "' checksum mismatch (corrupted file?)");
    }
    sections[tag] = Section{payload, static_cast<std::size_t>(length)};
    pos += header_size + length;
  }

  const auto section = [&](std::uint32_t tag, const char* what) {
    const auto it = sections.find(tag);
    if (it == sections.end()) {
      throw Error("snapshot " + origin + ": missing section '" +
                  tag_name(tag) + "'");
    }
    return Reader(it->second.data, it->second.size, origin, what);
  };

  Reader tech_r = section(kTagTech, "TECH section");
  Tech tech = read_tech_section(tech_r);
  if (tech_fingerprint(tech) != claimed_fingerprint) {
    throw Error("snapshot " + origin +
                ": technology fingerprint does not match the embedded "
                "parameters (corrupted file?)");
  }

  Reader node_r = section(kTagNode, "NODE section");
  Reader devs_r = section(kTagDevs, "DEVS section");
  Netlist nl = read_netlist_sections(node_r, devs_r);

  Reader opts_r = section(kTagOpts, "OPTS section");
  ExtractOptions extract = read_options_section(opts_r, nl);

  Reader stgs_r = section(kTagStgs, "STGS section");
  std::vector<TimingStage> stages = read_stages_section(stgs_r, nl);

  Reader stor_r = section(kTagStor, "STOR section");
  StageStore store = read_store_section(stor_r);
  if (store.size() != stages.size()) {
    throw Error("snapshot " + origin + ": stage store holds " +
                std::to_string(store.size()) + " stage(s) but " +
                std::to_string(stages.size()) + " were declared");
  }

  LoadedDesign loaded;
  loaded.design = SnapshotAccess::assemble(std::move(nl), std::move(tech),
                                           std::move(extract),
                                           std::move(stages),
                                           std::move(store));
  if (const auto it = sections.find(kTagTbls); it != sections.end()) {
    std::istringstream is(std::string(
        reinterpret_cast<const char*>(it->second.data), it->second.size));
    loaded.slope_tables = SlopeTables::read(is, origin + " (TBLS)");
  }
  return loaded;
}

void save_design_file(const CompiledDesign& design, const std::string& path,
                      const SlopeTables* tables) {
  // Failpoint "snapshot.write": `error` refuses before the file is
  // touched; `partial` truncates to half the payload and throws --
  // leaving exactly the torn file a crash mid-write would, which the
  // loader must reject by section checksum, never accept.
  const bool partial = failpoint("snapshot.write");
  const Bytes bytes = serialize_design(design, tables);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot create snapshot file " + path);
  const std::size_t n = partial ? bytes.size() / 2 : bytes.size();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(n));
  if (partial) {
    out.flush();
    throw Error("short write to snapshot file " + path);
  }
  if (!out) throw Error("short write to snapshot file " + path);
}

LoadedDesign load_design_file(const std::string& path) {
  // Failpoint "snapshot.read": `error` models an unreadable file;
  // `partial` models a truncated read -- deserialize_design must turn
  // either into a named rejection, never a crash or a wrong design.
  const bool partial = failpoint("snapshot.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open snapshot file " + path);
  Bytes bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  if (partial) bytes.resize(bytes.size() / 2);
  return deserialize_design(bytes, path);
}

}  // namespace sldm
