// A bounds-based delay model built on the Rubinstein-Penfield-Horowitz
// inequalities: instead of a point estimate, each stage is priced at the
// provable upper (pessimistic verification) or lower (optimistic
// filtering) bound of its 50% crossing.
//
// Crystal offered a pessimistic mode for sign-off; this model is that
// mode, and Ablation B measures how loose the bounds are relative to
// the Elmore point estimate.
#pragma once

#include "delay/model.h"

namespace sldm {

class RphBoundsModel final : public DelayModel {
 public:
  enum class Mode { kUpper, kLower };

  explicit RphBoundsModel(Mode mode) : mode_(mode) {}

  std::string name() const override {
    return mode_ == Mode::kUpper ? "rph-upper" : "rph-lower";
  }

  /// delay = the RPH bound at 50% of the swing; output slope = the
  /// bound-consistent transition estimate (bound at 90% minus bound at
  /// 10%, scaled to a full swing).
  DelayEstimate estimate(const Stage& stage) const override;
  /// Batch kernel over the store's cached T_D / T_P (the RPH bound
  /// formulas need nothing else; input slopes are ignored like in
  /// estimate()).
  void estimate_batch(const StageStore& store,
                      std::span<const StageStore::StageId> ids,
                      std::span<const Seconds> input_slopes,
                      std::span<DelayEstimate> out) const override;

  Mode mode() const { return mode_; }

 private:
  Mode mode_;
};

}  // namespace sldm
