#include "delay/unit.h"

#include "util/contracts.h"

namespace sldm {

UnitDelayModel::UnitDelayModel(Seconds unit) : unit_(unit) {
  SLDM_EXPECTS(unit > 0.0);
}

DelayEstimate UnitDelayModel::estimate(const Stage& stage) const {
  validate(stage);
  return {.delay = unit_, .output_slope = unit_};
}

void UnitDelayModel::estimate_batch(const StageStore& store,
                                    std::span<const StageStore::StageId> ids,
                                    std::span<const Seconds> input_slopes,
                                    std::span<DelayEstimate> out) const {
  SLDM_EXPECTS(ids.size() == input_slopes.size());
  SLDM_EXPECTS(ids.size() == out.size());
  (void)store;  // stages were validated when the store was built
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out[i] = {.delay = unit_, .output_slope = unit_};
  }
}

}  // namespace sldm
