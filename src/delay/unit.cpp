#include "delay/unit.h"

#include "util/contracts.h"

namespace sldm {

UnitDelayModel::UnitDelayModel(Seconds unit) : unit_(unit) {
  SLDM_EXPECTS(unit > 0.0);
}

DelayEstimate UnitDelayModel::estimate(const Stage& stage) const {
  validate(stage);
  return {.delay = unit_, .output_slope = unit_};
}

}  // namespace sldm
