// Model 1 of the paper: lumped RC.
//
// Every resistance in the stage is summed into one R, every capacitance
// into one C, and the stage is treated as a single RC section:
// delay = ln(2) R C, output slope = ln(9)/0.8 R C.  Input slope is
// ignored entirely -- that blindness is what Table 2/Fig. 2 expose.
#pragma once

#include "delay/model.h"

namespace sldm {

class LumpedRcModel final : public DelayModel {
 public:
  std::string name() const override { return "lumped-rc"; }
  DelayEstimate estimate(const Stage& stage) const override;
  DelayEstimate estimate_audited(const Stage& stage,
                                 DelayAudit& audit) const override;
  /// Batch kernel over the store's cached R/C totals (no per-stage
  /// materialization, no element walk).
  void estimate_batch(const StageStore& store,
                      std::span<const StageStore::StageId> ids,
                      std::span<const Seconds> input_slopes,
                      std::span<DelayEstimate> out) const override;
};

}  // namespace sldm
