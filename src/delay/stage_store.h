// Flat structure-of-arrays storage for extracted stages: the batched
// delay-kernel core.
//
// The timing analyzer's propagation loop evaluates the same stage set
// thousands of times; a per-stage `Stage` (vector of StageElement,
// rebuilt per evaluation) pays an allocation, a pointer chase, and a
// re-derivation of every electrical total on each visit.  The
// StageStore amortizes all of that once, at extraction time:
//
//  * element data (type / resistance / capacitance) lives in three
//    contiguous arrays, with a per-stage [offset, offset+length) window;
//  * every slope-independent derived quantity is cached per stage:
//    total path resistance, total path capacitance, destination
//    capacitance, the Elmore constant at the destination, and the RPH
//    total time constant.  Caches are computed through exactly the same
//    arithmetic (same summation order, same RcTree walk) as the
//    standalone Stage/RcTree path, so model results over the store are
//    bit-identical to scalar evaluation of the materialized stage.
//
// Only the trigger's input slope varies between evaluations of one
// stage, so DelayModel::estimate_batch (delay/model.h) takes the store
// plus parallel (stage id, input slope) spans and never materializes a
// Stage on the specialized kernels' hot path.  materialize() rebuilds
// the thin Stage view for tests, explain traces, and the fuzz oracles.
#pragma once

#include <cstddef>
#include <cstdint>

#include "delay/stage.h"

namespace sldm {

class StageStore {
 public:
  /// Index of a stage within the store (assigned densely by add()).
  using StageId = std::uint32_t;

  /// Appends a validated stage and caches its derived totals.  Throws
  /// ContractViolation exactly like validate(stage) would.  Returns the
  /// new stage's id (== size() before the call).
  StageId add(const Stage& stage);

  /// Drops all stages (capacity is retained for rebuilds).
  void clear();

  /// Grows capacity ahead of a bulk build.
  void reserve(std::size_t stages, std::size_t elements);

  std::size_t size() const { return offset_.size() - 1; }
  bool empty() const { return size() == 0; }
  std::size_t element_count() const { return elem_r_.size(); }

  // --- Per-stage cached quantities (hot accessors, no recomputation).
  Transition output_dir(StageId s) const { return output_dir_[s]; }
  std::uint32_t length(StageId s) const {
    return offset_[s + 1] - offset_[s];
  }
  std::uint32_t trigger_index(StageId s) const { return trigger_index_[s]; }
  TransistorType trigger_type(StageId s) const { return trigger_type_[s]; }
  /// Sum of path resistances (identical to Stage::total_resistance()).
  Ohms total_resistance(StageId s) const { return total_r_[s]; }
  /// Sum of path node capacitances (identical to Stage::total_cap()).
  Farads total_cap(StageId s) const { return total_c_[s]; }
  /// Capacitance at the destination node.
  Farads destination_cap(StageId s) const { return dest_c_[s]; }
  /// Elmore time constant at the destination (identical to
  /// stage_elmore() of the materialized stage).
  Seconds elmore(StageId s) const { return elmore_[s]; }
  /// RPH total time constant T_P of the stage tree (identical to
  /// to_rc_tree(stage).total_time_constant()).
  Seconds total_time_constant(StageId s) const { return tp_[s]; }

  // --- Raw element window of stage `s` (length(s) entries each).
  const TransistorType* elem_types(StageId s) const {
    return elem_type_.data() + offset_[s];
  }
  const Ohms* elem_resistances(StageId s) const {
    return elem_r_.data() + offset_[s];
  }
  const Farads* elem_caps(StageId s) const {
    return elem_c_.data() + offset_[s];
  }

  /// Materializes stage `s` as a standalone Stage with the given input
  /// slope -- element storage of `out` is reused, so a loop-local Stage
  /// costs no allocation at steady state.  The result is bit-identical
  /// to the Stage the store was built from (with input_slope replaced).
  void materialize(StageId s, Seconds input_slope, Stage& out) const;
  Stage materialize(StageId s, Seconds input_slope) const;

  /// Snapshot bridge (design/snapshot.cpp): the store's exact internal
  /// arrays, in declaration order.  Restoring from_arrays() with an
  /// unmodified export reproduces a bit-identical store -- the cached
  /// doubles travel verbatim, so no electrical quantity is re-derived
  /// on a warm start.
  struct RawArrays {
    std::vector<TransistorType> elem_type;
    std::vector<Ohms> elem_r;
    std::vector<Farads> elem_c;
    std::vector<std::uint32_t> offset;
    std::vector<Transition> output_dir;
    std::vector<std::uint32_t> trigger_index;
    std::vector<TransistorType> trigger_type;
    std::vector<Ohms> total_r;
    std::vector<Farads> total_c;
    std::vector<Farads> dest_c;
    std::vector<Seconds> elmore;
    std::vector<Seconds> tp;
  };
  RawArrays export_arrays() const;
  /// Rebuilds a store from exported arrays.  Throws Error if the shapes
  /// are inconsistent (wrong per-stage array lengths, non-monotonic
  /// offsets) -- the snapshot loader's last line of defense.
  static StageStore from_arrays(RawArrays arrays);

 private:
  // Concatenated element arrays; stage s owns [offset_[s], offset_[s+1]).
  std::vector<TransistorType> elem_type_;
  std::vector<Ohms> elem_r_;
  std::vector<Farads> elem_c_;
  std::vector<std::uint32_t> offset_{0};

  // Per-stage records.
  std::vector<Transition> output_dir_;
  std::vector<std::uint32_t> trigger_index_;
  std::vector<TransistorType> trigger_type_;
  std::vector<Ohms> total_r_;
  std::vector<Farads> total_c_;
  std::vector<Farads> dest_c_;
  std::vector<Seconds> elmore_;
  std::vector<Seconds> tp_;
};

}  // namespace sldm
