#include "delay/bounds.h"

#include "rc/rc_tree.h"

namespace sldm {

DelayEstimate RphBoundsModel::estimate(const Stage& stage) const {
  const RcTree tree = to_rc_tree(stage);
  const std::size_t dest = stage.elements.size();
  const auto at = [&](double v) {
    const RcTree::Bounds b = tree.rph_bounds(dest, v);
    return mode_ == Mode::kUpper ? b.upper : b.lower;
  };
  DelayEstimate est;
  est.delay = at(0.5);
  // Transition-time estimate from the same bound family; guaranteed
  // non-negative because the bounds are monotone in v.
  est.output_slope = (at(0.9) - at(0.1)) / 0.8;
  if (est.output_slope <= 0.0) {
    est.output_slope = kSlopeFactor * tree.elmore(dest);
  }
  return est;
}

}  // namespace sldm
