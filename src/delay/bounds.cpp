#include "delay/bounds.h"

#include "rc/rc_tree.h"
#include "util/contracts.h"

namespace sldm {

DelayEstimate RphBoundsModel::estimate(const Stage& stage) const {
  const RcTree tree = to_rc_tree(stage);
  const std::size_t dest = stage.elements.size();
  const auto at = [&](double v) {
    const RcTree::Bounds b = tree.rph_bounds(dest, v);
    return mode_ == Mode::kUpper ? b.upper : b.lower;
  };
  DelayEstimate est;
  est.delay = at(0.5);
  // Transition-time estimate from the same bound family; guaranteed
  // non-negative because the bounds are monotone in v.
  est.output_slope = (at(0.9) - at(0.1)) / 0.8;
  if (est.output_slope <= 0.0) {
    est.output_slope = kSlopeFactor * tree.elmore(dest);
  }
  return est;
}

void RphBoundsModel::estimate_batch(
    const StageStore& store, std::span<const StageStore::StageId> ids,
    std::span<const Seconds> input_slopes,
    std::span<DelayEstimate> out) const {
  SLDM_EXPECTS(ids.size() == input_slopes.size());
  SLDM_EXPECTS(ids.size() == out.size());
  // The bound formulas need only T_D and T_P, both cached in the store
  // as the exact doubles RcTree would produce; `at` mirrors
  // RcTree::rph_bounds (including the lower clamp) term for term.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Seconds td = store.elmore(ids[i]);
    const Seconds tp = store.total_time_constant(ids[i]);
    const auto at = [this, td, tp](double v) {
      if (mode_ == Mode::kUpper) return td / (1.0 - v);
      Seconds lower = td - (1.0 - v) * tp;
      if (lower < 0.0) lower = 0.0;
      return lower;
    };
    DelayEstimate est;
    est.delay = at(0.5);
    est.output_slope = (at(0.9) - at(0.1)) / 0.8;
    if (est.output_slope <= 0.0) {
      est.output_slope = kSlopeFactor * td;
    }
    out[i] = est;
  }
}

}  // namespace sldm
