// Model 2 of the paper: distributed RC (RC-tree) analysis.
//
// The stage keeps its spatial structure: the Elmore time constant at the
// destination replaces the lumped product.  This fixes the ~2x
// pessimism of the lumped model on series pass-transistor chains
// (Table 3) but still knows nothing about the input transition time.
#pragma once

#include "delay/model.h"

namespace sldm {

class RcTreeModel final : public DelayModel {
 public:
  std::string name() const override { return "rc-tree"; }
  DelayEstimate estimate(const Stage& stage) const override;
  DelayEstimate estimate_audited(const Stage& stage,
                                 DelayAudit& audit) const override;
  /// Batch kernel over the store's cached Elmore constants (no RC tree
  /// rebuild per evaluation).
  void estimate_batch(const StageStore& store,
                      std::span<const StageStore::StageId> ids,
                      std::span<const Seconds> input_slopes,
                      std::span<DelayEstimate> out) const override;
};

}  // namespace sldm
