#include "delay/stage.h"

#include "util/contracts.h"

namespace sldm {

Farads Stage::destination_cap() const {
  SLDM_EXPECTS(!elements.empty());
  return elements.back().cap;
}

void Stage::refresh_totals() const {
  Ohms r = 0.0;
  Farads c = 0.0;
  for (const StageElement& e : elements) {
    r += e.resistance;
    c += e.cap;
  }
  cached_total_r_ = r;
  cached_total_c_ = c;
  totals_cached_ = true;
}

Ohms Stage::total_resistance() const {
  if (!totals_cached_) refresh_totals();
  return cached_total_r_;
}

Farads Stage::total_cap() const {
  if (!totals_cached_) refresh_totals();
  return cached_total_c_;
}

void validate(const Stage& stage) {
  SLDM_EXPECTS(!stage.elements.empty());
  SLDM_EXPECTS(stage.trigger_index < stage.elements.size());
  SLDM_EXPECTS(stage.input_slope >= 0.0);
  for (const StageElement& e : stage.elements) {
    SLDM_EXPECTS(e.resistance > 0.0);
    SLDM_EXPECTS(e.cap >= 0.0);
  }
  // Recompute unconditionally: validate() is the refresh point after
  // direct element mutation, so it must not trust an existing memo.
  stage.refresh_totals();
  SLDM_EXPECTS(stage.total_cap() > 0.0);
}

RcTree to_rc_tree(const Stage& stage) {
  validate(stage);
  RcTree tree;
  std::size_t parent = 0;
  for (const StageElement& e : stage.elements) {
    parent = tree.add_node(parent, e.resistance, e.cap);
  }
  return tree;
}

Seconds stage_elmore(const Stage& stage) {
  const RcTree tree = to_rc_tree(stage);
  return tree.elmore(stage.elements.size());
}

}  // namespace sldm
