// Calibration tables for the slope model.
//
// For each (trigger transistor type, output transition) the model keeps
// two piecewise-linear functions of the slope ratio
//   rho = input_slope / stage_elmore:
//  * a delay multiplier  m(rho): stage delay = ln2 * m(rho) * T_elmore;
//  * a slope multiplier  s(rho): output slope = ln9/0.8 * s(rho) * T_elmore.
// Tables are produced by src/calib against the analog simulator, exactly
// as Crystal's tables were fit from SPICE runs, and can be persisted as
// text.
//
// Out-of-range policy: a lookup with rho below the first abscissa or
// above the last returns the boundary cell's multiplier unchanged
// (PiecewiseLinear clamps; no extrapolation).  Extrapolating the end
// segments would let a steep fitted edge drive a multiplier through
// zero for extreme ratios, so the boundary cell is the answer by
// design -- calibrate over a wider rho range if the clamp region
// matters.  To keep the clamp safe, every multiplier value must be a
// finite positive number: set() enforces this as a precondition and
// read() rejects offending tables with a line-numbered ParseError.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "netlist/types.h"
#include "util/interp.h"

namespace sldm {

/// One table pair.
struct SlopeEntry {
  PiecewiseLinear delay_mult;
  PiecewiseLinear slope_mult;
};

/// The full set of tables for a technology.
class SlopeTables {
 public:
  SlopeTables() = default;

  /// Unit tables: multiplier 1 for every ratio (step-input behavior).
  /// An uncalibrated slope model with unit tables degenerates to the
  /// RC-tree model.
  static SlopeTables unit();

  /// Precondition: every multiplier value in both tables is finite and
  /// > 0 (a zero or negative boundary cell would make the clamped
  /// out-of-range lookup produce non-positive delays).
  void set(TransistorType type, Transition dir, SlopeEntry entry);
  bool has(TransistorType type, Transition dir) const;
  /// Precondition: has(type, dir).
  const SlopeEntry& entry(TransistorType type, Transition dir) const;

  /// Serialization.
  void write(std::ostream& out) const;
  static SlopeTables read(std::istream& in,
                          const std::string& origin = "<stream>");
  void write_file(const std::string& path) const;
  static SlopeTables read_file(const std::string& path);

 private:
  static std::size_t slot(TransistorType type, Transition dir);
  std::optional<SlopeEntry> entries_[6];
};

}  // namespace sldm
