// Model 3, the paper's contribution: the slope model.
//
// The stage keeps its distributed (Elmore) time constant, but the
// effective speed of the stage is modulated by how fast its trigger
// input moves: the slope ratio rho = input_slope / T_elmore selects a
// delay multiplier and an output-slope multiplier from per-device-type
// calibration tables.  A slow input (large rho) stretches both; a step
// input (rho -> 0) recovers the RC-tree behavior.  Slopes propagate:
// the estimated output slope becomes the next stage's input slope.
#pragma once

#include "delay/model.h"
#include "delay/slope_table.h"

namespace sldm {

class SlopeModel final : public DelayModel {
 public:
  /// `tables` must contain an entry for every (trigger type, direction)
  /// that estimate() will see; estimate() enforces this per call.
  explicit SlopeModel(SlopeTables tables);

  std::string name() const override { return "slope"; }
  DelayEstimate estimate(const Stage& stage) const override;
  /// Additionally exposes rho and the table multipliers as audit terms.
  DelayEstimate estimate_audited(const Stage& stage,
                                 DelayAudit& audit) const override;
  /// Batch kernel: cached Elmore constant + per-item slope ratio and
  /// table lookups (no RC tree rebuild per evaluation).
  void estimate_batch(const StageStore& store,
                      std::span<const StageStore::StageId> ids,
                      std::span<const Seconds> input_slopes,
                      std::span<DelayEstimate> out) const override;

  /// The slope ratio estimate() uses for a stage.
  static double slope_ratio(const Stage& stage, Seconds elmore);

  const SlopeTables& tables() const { return tables_; }

 private:
  SlopeTables tables_;
};

}  // namespace sldm
