// The naive baseline the paper's introduction argues against: a fixed
// delay per stage, as used by unit-delay logic simulators.  Blind to
// resistance, capacitance, structure, and input speed alike -- included
// so the benches can show what the RC family already buys before the
// slope model refines it.
#pragma once

#include "delay/model.h"

namespace sldm {

class UnitDelayModel final : public DelayModel {
 public:
  /// `unit` is the fixed per-stage delay.  Precondition: unit > 0.
  explicit UnitDelayModel(Seconds unit);

  std::string name() const override { return "unit-delay"; }
  DelayEstimate estimate(const Stage& stage) const override;
  /// Batch kernel: a constant fill (store stages are pre-validated).
  void estimate_batch(const StageStore& store,
                      std::span<const StageStore::StageId> ids,
                      std::span<const Seconds> input_slopes,
                      std::span<DelayEstimate> out) const override;

  Seconds unit() const { return unit_; }

 private:
  Seconds unit_;
};

}  // namespace sldm
