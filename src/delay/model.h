// The DelayModel interface: the paper's three models (lumped RC,
// distributed RC tree, slope) are interchangeable behind it, and the
// timing analyzer, the experiment harness, and the examples all take a
// `const DelayModel&`.
#pragma once

#include <string>

#include "delay/stage.h"
#include "util/units.h"

namespace sldm {

/// What a delay model predicts for one stage.
struct DelayEstimate {
  /// Time from the trigger's gate 50%-crossing to the destination
  /// node's 50%-crossing.
  Seconds delay = 0.0;
  /// Predicted transition time at the destination (full-swing-
  /// equivalent ramp time); feeds the next stage's input_slope.
  Seconds output_slope = 0.0;
};

/// Interface of all switch-level delay models.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Short identifier used in reports ("lumped-rc", "rc-tree", "slope").
  virtual std::string name() const = 0;

  /// Estimates delay and output slope for a validated stage.
  virtual DelayEstimate estimate(const Stage& stage) const = 0;

 protected:
  DelayModel() = default;
  DelayModel(const DelayModel&) = default;
  DelayModel& operator=(const DelayModel&) = default;
};

}  // namespace sldm
