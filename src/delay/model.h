// The DelayModel interface: the paper's three models (lumped RC,
// distributed RC tree, slope) are interchangeable behind it, and the
// timing analyzer, the experiment harness, and the examples all take a
// `const DelayModel&`.
//
// Besides the hot-path estimate(), every model supports an *audited*
// evaluation that additionally reports the electrical terms the verdict
// was built from (path resistance, capacitances, Elmore constant, and
// model-specific factors such as the slope model's rho and table
// multipliers).  The explain pipeline (timing/explain.h) re-evaluates
// each critical-path stage through this hook to produce the paper's
// Section-6-style per-stage breakdown.
//
// For throughput, models also expose estimate_batch(): one call prices
// a whole batch of stages resident in a StageStore (delay/stage_store.h)
// against per-item input slopes.  The contract is strict bit-identity:
// estimate_batch must produce, for every item, exactly the DelayEstimate
// that estimate() returns for the materialized stage -- same doubles,
// not merely close ones -- so the analyzer's batched wavefront
// propagation, the explain re-evaluations, and the fuzz oracles all
// agree regardless of which entry point priced a stage.  The base-class
// default materializes and delegates to estimate() (correct for any
// model); the five concrete models override it with branch-light
// kernels over the store's cached totals.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "delay/stage.h"
#include "delay/stage_store.h"
#include "util/units.h"

namespace sldm {

/// What a delay model predicts for one stage.
struct DelayEstimate {
  /// Time from the trigger's gate 50%-crossing to the destination
  /// node's 50%-crossing.
  Seconds delay = 0.0;
  /// Predicted transition time at the destination (full-swing-
  /// equivalent ramp time); feeds the next stage's input_slope.
  Seconds output_slope = 0.0;
};

/// One named quantity contributing to an audited estimate.  `name` and
/// `unit` are string literals owned by the model.
struct AuditTerm {
  const char* name = "";
  double value = 0.0;
  const char* unit = "";  ///< "s", "ohm", "F", or "" for dimensionless
};

/// The full accounting of one audited evaluation: the generic stage
/// electricals (filled for every model) plus the model's own terms, and
/// the resulting estimate.
struct DelayAudit {
  std::string model;              ///< DelayModel::name()
  Ohms total_resistance = 0.0;    ///< sum of path resistances
  Farads total_cap = 0.0;         ///< sum of path node capacitances
  Farads destination_cap = 0.0;   ///< capacitance at the switched node
  Seconds elmore = 0.0;           ///< Elmore constant at the destination
  Seconds input_slope = 0.0;      ///< trigger transition time seen
  std::size_t path_devices = 0;   ///< channel devices on the stage path
  /// Model-specific contributions in evaluation order (e.g. the slope
  /// model's rho and table multipliers).
  std::vector<AuditTerm> terms;
  DelayEstimate estimate;         ///< identical to estimate(stage)
};

/// Interface of all switch-level delay models.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Short identifier used in reports ("lumped-rc", "rc-tree", "slope").
  virtual std::string name() const = 0;

  /// Estimates delay and output slope for a validated stage.
  virtual DelayEstimate estimate(const Stage& stage) const = 0;

  /// Batched kernel: prices stage `ids[i]` of `store` with trigger
  /// input slope `input_slopes[i]` into `out[i]`, for every i.
  /// Preconditions: the three spans have equal length; every id is
  /// < store.size(); slopes are >= 0.  Ids may repeat and appear in any
  /// order, and the batch may be empty or larger than the store.
  ///
  /// Contract: out[i] is bit-identical to
  /// estimate(store.materialize(ids[i], input_slopes[i])) -- the default
  /// implementation computes exactly that through a reused scratch
  /// stage; overrides must preserve the identity (they read the store's
  /// caches, which are built with the scalar path's arithmetic).
  /// Implementations are pure over (store, id, slope): concurrent calls
  /// on disjoint output spans are safe, which is what the analyzer's
  /// parallel wavefront relies on.
  virtual void estimate_batch(const StageStore& store,
                              std::span<const StageStore::StageId> ids,
                              std::span<const Seconds> input_slopes,
                              std::span<DelayEstimate> out) const;

  /// Audited evaluation: fills `audit` with the generic stage terms and
  /// any model-specific contributions, and returns exactly what
  /// estimate(stage) returns (bit-identical: implementations compute
  /// the estimate the same way).  The base implementation fills the
  /// generic terms and delegates to estimate(); models with internal
  /// factors override it to expose them.
  virtual DelayEstimate estimate_audited(const Stage& stage,
                                         DelayAudit& audit) const;

 protected:
  DelayModel() = default;
  DelayModel(const DelayModel&) = default;
  DelayModel& operator=(const DelayModel&) = default;

  /// Fills the generic (model-independent) audit fields from `stage`.
  void fill_stage_audit(const Stage& stage, DelayAudit& audit) const;
};

}  // namespace sldm
