#include "delay/rctree.h"

#include "rc/rc_tree.h"
#include "util/contracts.h"

namespace sldm {

DelayEstimate RcTreeModel::estimate(const Stage& stage) const {
  const Seconds td = stage_elmore(stage);
  return {.delay = kLn2 * td, .output_slope = kSlopeFactor * td};
}

void RcTreeModel::estimate_batch(const StageStore& store,
                                 std::span<const StageStore::StageId> ids,
                                 std::span<const Seconds> input_slopes,
                                 std::span<DelayEstimate> out) const {
  SLDM_EXPECTS(ids.size() == input_slopes.size());
  SLDM_EXPECTS(ids.size() == out.size());
  // The cached Elmore constant is the exact stage_elmore() double, so
  // this reproduces estimate() bit for bit without rebuilding a tree.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Seconds td = store.elmore(ids[i]);
    out[i] = {.delay = kLn2 * td, .output_slope = kSlopeFactor * td};
  }
}

DelayEstimate RcTreeModel::estimate_audited(const Stage& stage,
                                            DelayAudit& audit) const {
  fill_stage_audit(stage, audit);
  audit.terms.push_back({"t_elmore", audit.elmore, "s"});
  audit.terms.push_back({"ln2", kLn2, ""});
  audit.estimate = estimate(stage);
  return audit.estimate;
}

}  // namespace sldm
