#include "delay/rctree.h"

#include "rc/rc_tree.h"

namespace sldm {

DelayEstimate RcTreeModel::estimate(const Stage& stage) const {
  const Seconds td = stage_elmore(stage);
  return {.delay = kLn2 * td, .output_slope = kSlopeFactor * td};
}

DelayEstimate RcTreeModel::estimate_audited(const Stage& stage,
                                            DelayAudit& audit) const {
  fill_stage_audit(stage, audit);
  audit.terms.push_back({"t_elmore", audit.elmore, "s"});
  audit.terms.push_back({"ln2", kLn2, ""});
  audit.estimate = estimate(stage);
  return audit.estimate;
}

}  // namespace sldm
