#include "delay/rctree.h"

#include "rc/rc_tree.h"

namespace sldm {

DelayEstimate RcTreeModel::estimate(const Stage& stage) const {
  const Seconds td = stage_elmore(stage);
  return {.delay = kLn2 * td, .output_slope = kSlopeFactor * td};
}

}  // namespace sldm
