#include "delay/slope_table.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/contracts.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {
namespace {

TransistorType type_from_letter(const std::string& s, const std::string& origin,
                                int lineno) {
  if (s == "e" || s == "n") return TransistorType::kNEnhancement;
  if (s == "d") return TransistorType::kNDepletion;
  if (s == "p") return TransistorType::kPEnhancement;
  throw ParseError(origin, lineno, "unknown device type '" + s + "'");
}

Transition dir_from_string(const std::string& s, const std::string& origin,
                           int lineno) {
  if (s == "rise") return Transition::kRise;
  if (s == "fall") return Transition::kFall;
  throw ParseError(origin, lineno, "unknown transition '" + s + "'");
}

void write_pwl(std::ostream& out, const char* tag, const PiecewiseLinear& f) {
  out << tag;
  for (std::size_t i = 0; i < f.size(); ++i) {
    out << format(" %.9g:%.9g", f.xs()[i], f.ys()[i]);
  }
  out << '\n';
}

PiecewiseLinear read_pwl(const std::vector<std::string>& tokens,
                         const std::string& origin, int lineno) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto parts = split(tokens[i], ':');
    if (parts.size() != 2) {
      throw ParseError(origin, lineno, "expected x:y pair, got " + tokens[i]);
    }
    const auto x = parse_double(parts[0]);
    const auto y = parse_double(parts[1]);
    if (!x || !y) throw ParseError(origin, lineno, "bad pair " + tokens[i]);
    // Lookups clamp to the boundary cells (slope_table.h), so every
    // cell -- especially the first and last -- must be a usable
    // multiplier: finite positive y, finite x.
    if (!std::isfinite(*x)) {
      throw ParseError(origin, lineno,
                       "non-finite abscissa in pair " + tokens[i]);
    }
    if (!std::isfinite(*y) || *y <= 0.0) {
      throw ParseError(origin, lineno,
                       "multiplier must be a finite positive number, got " +
                           tokens[i]);
    }
    xs.push_back(*x);
    ys.push_back(*y);
  }
  if (xs.empty()) throw ParseError(origin, lineno, "empty table");
  try {
    return PiecewiseLinear(std::move(xs), std::move(ys));
  } catch (const ContractViolation&) {
    throw ParseError(origin, lineno, "table abscissae not increasing");
  }
}

}  // namespace

SlopeTables SlopeTables::unit() {
  SlopeTables t;
  const PiecewiseLinear one({1e-3, 1e3}, {1.0, 1.0});
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      t.set(type, dir, SlopeEntry{one, one});
    }
  }
  return t;
}

std::size_t SlopeTables::slot(TransistorType type, Transition dir) {
  return static_cast<std::size_t>(type) * 2 +
         (dir == Transition::kRise ? 0 : 1);
}

void SlopeTables::set(TransistorType type, Transition dir, SlopeEntry entry) {
  for (const PiecewiseLinear* f : {&entry.delay_mult, &entry.slope_mult}) {
    for (double y : f->ys()) {
      SLDM_EXPECTS(std::isfinite(y) && y > 0.0);
    }
  }
  entries_[slot(type, dir)] = std::move(entry);
}

bool SlopeTables::has(TransistorType type, Transition dir) const {
  return entries_[slot(type, dir)].has_value();
}

const SlopeEntry& SlopeTables::entry(TransistorType type,
                                     Transition dir) const {
  const auto& e = entries_[slot(type, dir)];
  SLDM_EXPECTS(e.has_value());
  return *e;
}

void SlopeTables::write(std::ostream& out) const {
  out << "# sldm slope-model calibration tables\n";
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      if (!has(type, dir)) continue;
      const SlopeEntry& e = entry(type, dir);
      out << "entry " << to_letter(type) << ' ' << to_string(dir) << '\n';
      write_pwl(out, "delay", e.delay_mult);
      write_pwl(out, "slope", e.slope_mult);
    }
  }
}

SlopeTables SlopeTables::read(std::istream& in, const std::string& origin) {
  SlopeTables tables;
  std::string line;
  int lineno = 0;
  std::optional<TransistorType> cur_type;
  std::optional<Transition> cur_dir;
  std::optional<PiecewiseLinear> cur_delay;
  std::optional<PiecewiseLinear> cur_slope;

  auto flush = [&](int at_line) {
    if (!cur_type) return;
    if (!cur_delay || !cur_slope) {
      throw ParseError(origin, at_line, "incomplete entry (need delay+slope)");
    }
    tables.set(*cur_type, *cur_dir, SlopeEntry{*cur_delay, *cur_slope});
    cur_type.reset();
    cur_dir.reset();
    cur_delay.reset();
    cur_slope.reset();
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto tokens = split_ws(stripped);
    if (tokens[0] == "entry") {
      flush(lineno);
      if (tokens.size() != 3) {
        throw ParseError(origin, lineno, "entry <type> <rise|fall>");
      }
      cur_type = type_from_letter(tokens[1], origin, lineno);
      cur_dir = dir_from_string(tokens[2], origin, lineno);
    } else if (tokens[0] == "delay") {
      if (!cur_type) throw ParseError(origin, lineno, "delay outside entry");
      cur_delay = read_pwl(tokens, origin, lineno);
    } else if (tokens[0] == "slope") {
      if (!cur_type) throw ParseError(origin, lineno, "slope outside entry");
      cur_slope = read_pwl(tokens, origin, lineno);
    } else {
      throw ParseError(origin, lineno, "unknown record " + tokens[0]);
    }
  }
  flush(lineno);
  return tables;
}

void SlopeTables::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot create slope-table file: " + path);
  write(out);
}

SlopeTables SlopeTables::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open slope-table file: " + path);
  return read(in, path);
}

}  // namespace sldm
