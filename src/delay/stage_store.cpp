#include "delay/stage_store.h"

#include "util/contracts.h"

namespace sldm {

StageStore::StageId StageStore::add(const Stage& stage) {
  // validate() also refreshes the stage's memoized totals, which add()
  // then copies verbatim -- the cached store totals are therefore the
  // exact doubles Stage::total_resistance()/total_cap() return.
  validate(stage);
  SLDM_EXPECTS(offset_.back() + stage.elements.size() <= UINT32_MAX);

  const StageId id = static_cast<StageId>(size());
  for (const StageElement& e : stage.elements) {
    elem_type_.push_back(e.type);
    elem_r_.push_back(e.resistance);
    elem_c_.push_back(e.cap);
  }
  offset_.push_back(static_cast<std::uint32_t>(elem_r_.size()));

  output_dir_.push_back(stage.output_dir);
  trigger_index_.push_back(static_cast<std::uint32_t>(stage.trigger_index));
  trigger_type_.push_back(stage.elements[stage.trigger_index].type);
  total_r_.push_back(stage.total_resistance());
  total_c_.push_back(stage.total_cap());
  dest_c_.push_back(stage.destination_cap());

  // The Elmore constant and the RPH total time constant replicate the
  // RcTree arithmetic the scalar models run (to_rc_tree builds a pure
  // chain: tree node k is element k-1, the destination is the last
  // node), term for term and in the same summation order, so batch
  // kernels reading these caches reproduce scalar results bit for bit
  // -- without allocating a tree per stage:
  //  * RcTree::path_resistance(k) sums r_up from node k upward
  //    (descending element index);
  //  * elmore(dest) adds path_resistance(k) * cap_k over ascending k,
  //    skipping zero caps (the LCA of the destination with any chain
  //    node k is k itself, so common_resistance == path_resistance);
  //  * total_time_constant() is the same sum without the skip (the
  //    zero-cap root contributes +0.0, which no non-negative sum
  //    notices).
  const std::size_t n = stage.elements.size();
  Seconds td = 0.0;
  Seconds tp = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    Ohms path_r = 0.0;
    for (std::size_t a = k; a != 0; --a) {
      path_r += stage.elements[a - 1].resistance;
    }
    const Farads c = stage.elements[k - 1].cap;
    if (c != 0.0) td += path_r * c;
    tp += path_r * c;
  }
  elmore_.push_back(td);
  tp_.push_back(tp);
  return id;
}

void StageStore::clear() {
  elem_type_.clear();
  elem_r_.clear();
  elem_c_.clear();
  offset_.assign(1, 0);
  output_dir_.clear();
  trigger_index_.clear();
  trigger_type_.clear();
  total_r_.clear();
  total_c_.clear();
  dest_c_.clear();
  elmore_.clear();
  tp_.clear();
}

void StageStore::reserve(std::size_t stages, std::size_t elements) {
  elem_type_.reserve(elements);
  elem_r_.reserve(elements);
  elem_c_.reserve(elements);
  offset_.reserve(stages + 1);
  output_dir_.reserve(stages);
  trigger_index_.reserve(stages);
  trigger_type_.reserve(stages);
  total_r_.reserve(stages);
  total_c_.reserve(stages);
  dest_c_.reserve(stages);
  elmore_.reserve(stages);
  tp_.reserve(stages);
}

void StageStore::materialize(StageId s, Seconds input_slope,
                             Stage& out) const {
  SLDM_EXPECTS(s < size());
  const std::uint32_t n = length(s);
  out.output_dir = output_dir_[s];
  out.input_slope = input_slope;
  out.trigger_index = trigger_index_[s];
  out.elements.resize(n);
  const TransistorType* types = elem_types(s);
  const Ohms* rs = elem_resistances(s);
  const Farads* cs = elem_caps(s);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.elements[i] = StageElement{types[i], rs[i], cs[i]};
  }
  out.refresh_totals();
}

Stage StageStore::materialize(StageId s, Seconds input_slope) const {
  Stage stage;
  materialize(s, input_slope, stage);
  return stage;
}

}  // namespace sldm
