#include "delay/stage_store.h"

#include "util/contracts.h"
#include "util/error.h"

namespace sldm {

StageStore::StageId StageStore::add(const Stage& stage) {
  // validate() also refreshes the stage's memoized totals, which add()
  // then copies verbatim -- the cached store totals are therefore the
  // exact doubles Stage::total_resistance()/total_cap() return.
  validate(stage);
  SLDM_EXPECTS(offset_.back() + stage.elements.size() <= UINT32_MAX);

  const StageId id = static_cast<StageId>(size());
  for (const StageElement& e : stage.elements) {
    elem_type_.push_back(e.type);
    elem_r_.push_back(e.resistance);
    elem_c_.push_back(e.cap);
  }
  offset_.push_back(static_cast<std::uint32_t>(elem_r_.size()));

  output_dir_.push_back(stage.output_dir);
  trigger_index_.push_back(static_cast<std::uint32_t>(stage.trigger_index));
  trigger_type_.push_back(stage.elements[stage.trigger_index].type);
  total_r_.push_back(stage.total_resistance());
  total_c_.push_back(stage.total_cap());
  dest_c_.push_back(stage.destination_cap());

  // The Elmore constant and the RPH total time constant replicate the
  // RcTree arithmetic the scalar models run (to_rc_tree builds a pure
  // chain: tree node k is element k-1, the destination is the last
  // node), term for term and in the same summation order, so batch
  // kernels reading these caches reproduce scalar results bit for bit
  // -- without allocating a tree per stage:
  //  * RcTree::path_resistance(k) sums r_up from node k upward
  //    (descending element index);
  //  * elmore(dest) adds path_resistance(k) * cap_k over ascending k,
  //    skipping zero caps (the LCA of the destination with any chain
  //    node k is k itself, so common_resistance == path_resistance);
  //  * total_time_constant() is the same sum without the skip (the
  //    zero-cap root contributes +0.0, which no non-negative sum
  //    notices).
  const std::size_t n = stage.elements.size();
  Seconds td = 0.0;
  Seconds tp = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    Ohms path_r = 0.0;
    for (std::size_t a = k; a != 0; --a) {
      path_r += stage.elements[a - 1].resistance;
    }
    const Farads c = stage.elements[k - 1].cap;
    if (c != 0.0) td += path_r * c;
    tp += path_r * c;
  }
  elmore_.push_back(td);
  tp_.push_back(tp);
  return id;
}

void StageStore::clear() {
  elem_type_.clear();
  elem_r_.clear();
  elem_c_.clear();
  offset_.assign(1, 0);
  output_dir_.clear();
  trigger_index_.clear();
  trigger_type_.clear();
  total_r_.clear();
  total_c_.clear();
  dest_c_.clear();
  elmore_.clear();
  tp_.clear();
}

void StageStore::reserve(std::size_t stages, std::size_t elements) {
  elem_type_.reserve(elements);
  elem_r_.reserve(elements);
  elem_c_.reserve(elements);
  offset_.reserve(stages + 1);
  output_dir_.reserve(stages);
  trigger_index_.reserve(stages);
  trigger_type_.reserve(stages);
  total_r_.reserve(stages);
  total_c_.reserve(stages);
  dest_c_.reserve(stages);
  elmore_.reserve(stages);
  tp_.reserve(stages);
}

void StageStore::materialize(StageId s, Seconds input_slope,
                             Stage& out) const {
  SLDM_EXPECTS(s < size());
  const std::uint32_t n = length(s);
  out.output_dir = output_dir_[s];
  out.input_slope = input_slope;
  out.trigger_index = trigger_index_[s];
  out.elements.resize(n);
  const TransistorType* types = elem_types(s);
  const Ohms* rs = elem_resistances(s);
  const Farads* cs = elem_caps(s);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.elements[i] = StageElement{types[i], rs[i], cs[i]};
  }
  out.refresh_totals();
}

Stage StageStore::materialize(StageId s, Seconds input_slope) const {
  Stage stage;
  materialize(s, input_slope, stage);
  return stage;
}

StageStore::RawArrays StageStore::export_arrays() const {
  return RawArrays{elem_type_, elem_r_,   elem_c_, offset_,
                   output_dir_, trigger_index_, trigger_type_,
                   total_r_,   total_c_,  dest_c_, elmore_, tp_};
}

StageStore StageStore::from_arrays(RawArrays arrays) {
  if (arrays.offset.empty() || arrays.offset.front() != 0 ||
      arrays.offset.back() != arrays.elem_r.size()) {
    throw Error("stage store arrays are inconsistent: bad offset table");
  }
  const std::size_t stages = arrays.offset.size() - 1;
  const std::size_t elements = arrays.elem_r.size();
  if (arrays.elem_type.size() != elements ||
      arrays.elem_c.size() != elements) {
    throw Error("stage store arrays are inconsistent: element lengths");
  }
  if (arrays.output_dir.size() != stages ||
      arrays.trigger_index.size() != stages ||
      arrays.trigger_type.size() != stages ||
      arrays.total_r.size() != stages || arrays.total_c.size() != stages ||
      arrays.dest_c.size() != stages || arrays.elmore.size() != stages ||
      arrays.tp.size() != stages) {
    throw Error("stage store arrays are inconsistent: per-stage lengths");
  }
  for (std::size_t s = 0; s < stages; ++s) {
    if (arrays.offset[s] > arrays.offset[s + 1]) {
      throw Error("stage store arrays are inconsistent: bad offset table");
    }
    const std::uint32_t len = arrays.offset[s + 1] - arrays.offset[s];
    if (len == 0 || arrays.trigger_index[s] >= len) {
      throw Error(
          "stage store arrays are inconsistent: trigger out of window");
    }
  }
  StageStore store;
  store.elem_type_ = std::move(arrays.elem_type);
  store.elem_r_ = std::move(arrays.elem_r);
  store.elem_c_ = std::move(arrays.elem_c);
  store.offset_ = std::move(arrays.offset);
  store.output_dir_ = std::move(arrays.output_dir);
  store.trigger_index_ = std::move(arrays.trigger_index);
  store.trigger_type_ = std::move(arrays.trigger_type);
  store.total_r_ = std::move(arrays.total_r);
  store.total_c_ = std::move(arrays.total_c);
  store.dest_c_ = std::move(arrays.dest_c);
  store.elmore_ = std::move(arrays.elmore);
  store.tp_ = std::move(arrays.tp);
  return store;
}

}  // namespace sldm
