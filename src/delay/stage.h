// The "stage" abstraction of the paper: one charging/discharging event.
//
// A stage is a path from a source of value (rail, chip input, or
// precharged node) through the channels of conducting transistors to a
// destination node, triggered by one transistor's gate transition.  The
// delay models consume this electrical summary; the timing analyzer
// (src/timing) produces it from a netlist, and tests/benches also build
// stages directly.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/types.h"
#include "rc/rc_tree.h"
#include "util/units.h"

namespace sldm {

/// One conducting transistor along the stage path, with the lumped
/// capacitance of the node on its destination side.
struct StageElement {
  TransistorType type = TransistorType::kNEnhancement;
  Ohms resistance = 0.0;  ///< effective resistance for this transition
  Farads cap = 0.0;       ///< node capacitance it charges/discharges
};

/// A complete stage.
struct Stage {
  /// Transition produced at the destination node.
  Transition output_dir = Transition::kFall;
  /// Slope of the trigger's gate transition (full-swing-equivalent ramp
  /// time); 0 means an ideal step.
  Seconds input_slope = 0.0;
  /// Path from the value source (front) to the destination (back).
  std::vector<StageElement> elements;
  /// Index into `elements` of the trigger transistor.
  std::size_t trigger_index = 0;

  /// Capacitance at the destination node.
  Farads destination_cap() const;
  /// Sum of path resistances.
  Ohms total_resistance() const;
  /// Sum of path node capacitances.
  Farads total_cap() const;
};

/// Validates stage invariants: non-empty path, trigger in range,
/// positive resistances, non-negative caps, positive total cap,
/// non-negative input slope.  Throws ContractViolation otherwise.
void validate(const Stage& stage);

/// Builds the (chain-shaped) RC tree of the stage: root at the value
/// source, one tree node per element.  The destination is the last tree
/// node (index elements.size()).
RcTree to_rc_tree(const Stage& stage);

/// Elmore time constant at the stage destination.
Seconds stage_elmore(const Stage& stage);

}  // namespace sldm
