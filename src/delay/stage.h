// The "stage" abstraction of the paper: one charging/discharging event.
//
// A stage is a path from a source of value (rail, chip input, or
// precharged node) through the channels of conducting transistors to a
// destination node, triggered by one transistor's gate transition.  The
// delay models consume this electrical summary; the timing analyzer
// (src/timing) produces it from a netlist, and tests/benches also build
// stages directly.
//
// The analyzer's hot path does not evaluate standalone Stage objects:
// extracted stages live in the flat StageStore (delay/stage_store.h),
// which caches every derived electrical total at insertion time.  Stage
// remains the materialized per-stage view for tests, explain traces,
// the fuzz oracles, and direct model evaluation -- and it memoizes its
// own path totals so repeated queries (audits, per-model sweeps) do not
// re-walk the element vector.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/types.h"
#include "rc/rc_tree.h"
#include "util/units.h"

namespace sldm {

/// One conducting transistor along the stage path, with the lumped
/// capacitance of the node on its destination side.
struct StageElement {
  TransistorType type = TransistorType::kNEnhancement;
  Ohms resistance = 0.0;  ///< effective resistance for this transition
  Farads cap = 0.0;       ///< node capacitance it charges/discharges
};

/// A complete stage.
struct Stage {
  /// Transition produced at the destination node.
  Transition output_dir = Transition::kFall;
  /// Slope of the trigger's gate transition (full-swing-equivalent ramp
  /// time); 0 means an ideal step.
  Seconds input_slope = 0.0;
  /// Path from the value source (front) to the destination (back).
  /// Mutating this vector directly leaves any memoized totals stale
  /// until the next validate() -- which every model evaluation performs
  /// -- or an explicit refresh_totals().
  std::vector<StageElement> elements;
  /// Index into `elements` of the trigger transistor.
  std::size_t trigger_index = 0;

  /// Capacitance at the destination node.
  Farads destination_cap() const;
  /// Sum of path resistances.  Memoized: validate() (and therefore
  /// every model evaluation) refreshes the cache, so hot callers that
  /// validate first pay the element walk once per evaluation instead
  /// of once per query.
  Ohms total_resistance() const;
  /// Sum of path node capacitances (memoized like total_resistance()).
  Farads total_cap() const;

  /// Recomputes the memoized totals from `elements` (same front-to-back
  /// summation order as the uncached getters, so cached and uncached
  /// reads are bit-identical).  Called by validate(); call it manually
  /// after mutating `elements` if totals are read without a
  /// re-validation.
  void refresh_totals() const;

 private:
  mutable Ohms cached_total_r_ = 0.0;
  mutable Farads cached_total_c_ = 0.0;
  mutable bool totals_cached_ = false;
};

/// Validates stage invariants: non-empty path, trigger in range,
/// positive resistances, non-negative caps, positive total cap,
/// non-negative input slope.  Throws ContractViolation otherwise.
/// Also refreshes the stage's memoized totals (it walks the elements
/// anyway), so evaluation paths that validate first get cached totals
/// for free.
void validate(const Stage& stage);

/// Builds the (chain-shaped) RC tree of the stage: root at the value
/// source, one tree node per element.  The destination is the last tree
/// node (index elements.size()).
RcTree to_rc_tree(const Stage& stage);

/// Elmore time constant at the stage destination.
Seconds stage_elmore(const Stage& stage);

}  // namespace sldm
