#include "delay/model.h"

#include "util/contracts.h"

namespace sldm {

void DelayModel::estimate_batch(const StageStore& store,
                                std::span<const StageStore::StageId> ids,
                                std::span<const Seconds> input_slopes,
                                std::span<DelayEstimate> out) const {
  SLDM_EXPECTS(ids.size() == input_slopes.size());
  SLDM_EXPECTS(ids.size() == out.size());
  // Scalar fallback: materialize through one reused scratch stage and
  // delegate -- bit-identical to per-stage estimate() by construction,
  // and correct for any derived model that does not override.
  Stage scratch;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    store.materialize(ids[i], input_slopes[i], scratch);
    out[i] = estimate(scratch);
  }
}

void DelayModel::fill_stage_audit(const Stage& stage,
                                  DelayAudit& audit) const {
  audit.model = name();
  audit.total_resistance = stage.total_resistance();
  audit.total_cap = stage.total_cap();
  audit.destination_cap = stage.destination_cap();
  audit.elmore = stage_elmore(stage);
  audit.input_slope = stage.input_slope;
  audit.path_devices = stage.elements.size();
  audit.terms.clear();
}

DelayEstimate DelayModel::estimate_audited(const Stage& stage,
                                           DelayAudit& audit) const {
  fill_stage_audit(stage, audit);
  audit.estimate = estimate(stage);
  return audit.estimate;
}

}  // namespace sldm
