#include "delay/model.h"

namespace sldm {

void DelayModel::fill_stage_audit(const Stage& stage,
                                  DelayAudit& audit) const {
  audit.model = name();
  audit.total_resistance = stage.total_resistance();
  audit.total_cap = stage.total_cap();
  audit.destination_cap = stage.destination_cap();
  audit.elmore = stage_elmore(stage);
  audit.input_slope = stage.input_slope;
  audit.path_devices = stage.elements.size();
  audit.terms.clear();
}

DelayEstimate DelayModel::estimate_audited(const Stage& stage,
                                           DelayAudit& audit) const {
  fill_stage_audit(stage, audit);
  audit.estimate = estimate(stage);
  return audit.estimate;
}

}  // namespace sldm
