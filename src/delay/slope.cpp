#include "delay/slope.h"

#include "rc/rc_tree.h"
#include "util/contracts.h"

namespace sldm {

SlopeModel::SlopeModel(SlopeTables tables) : tables_(std::move(tables)) {}

double SlopeModel::slope_ratio(const Stage& stage, Seconds elmore) {
  SLDM_EXPECTS(elmore > 0.0);
  return stage.input_slope / elmore;
}

DelayEstimate SlopeModel::estimate(const Stage& stage) const {
  const Seconds td = stage_elmore(stage);
  const TransistorType trigger_type =
      stage.elements[stage.trigger_index].type;
  SLDM_EXPECTS(tables_.has(trigger_type, stage.output_dir));
  const SlopeEntry& e = tables_.entry(trigger_type, stage.output_dir);
  const double rho = slope_ratio(stage, td);
  const double dm = e.delay_mult(rho);
  const double sm = e.slope_mult(rho);
  SLDM_ENSURES(dm > 0.0 && sm > 0.0);
  return {.delay = kLn2 * dm * td, .output_slope = kSlopeFactor * sm * td};
}

void SlopeModel::estimate_batch(const StageStore& store,
                                std::span<const StageStore::StageId> ids,
                                std::span<const Seconds> input_slopes,
                                std::span<DelayEstimate> out) const {
  SLDM_EXPECTS(ids.size() == input_slopes.size());
  SLDM_EXPECTS(ids.size() == out.size());
  // Same arithmetic as estimate() with the tree walk replaced by the
  // cached Elmore constant: rho, the table lookups, and the output
  // formulas see the exact same doubles.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const StageStore::StageId s = ids[i];
    const Seconds td = store.elmore(s);
    const TransistorType trigger_type = store.trigger_type(s);
    SLDM_EXPECTS(tables_.has(trigger_type, store.output_dir(s)));
    const SlopeEntry& e = tables_.entry(trigger_type, store.output_dir(s));
    SLDM_EXPECTS(td > 0.0);
    const double rho = input_slopes[i] / td;
    const double dm = e.delay_mult(rho);
    const double sm = e.slope_mult(rho);
    SLDM_ENSURES(dm > 0.0 && sm > 0.0);
    out[i] = {.delay = kLn2 * dm * td,
              .output_slope = kSlopeFactor * sm * td};
  }
}

DelayEstimate SlopeModel::estimate_audited(const Stage& stage,
                                           DelayAudit& audit) const {
  fill_stage_audit(stage, audit);
  const TransistorType trigger_type =
      stage.elements[stage.trigger_index].type;
  SLDM_EXPECTS(tables_.has(trigger_type, stage.output_dir));
  const SlopeEntry& e = tables_.entry(trigger_type, stage.output_dir);
  const double rho = slope_ratio(stage, audit.elmore);
  audit.terms.push_back({"t_elmore", audit.elmore, "s"});
  audit.terms.push_back({"rho", rho, ""});
  audit.terms.push_back({"delay_mult", e.delay_mult(rho), ""});
  audit.terms.push_back({"slope_mult", e.slope_mult(rho), ""});
  audit.estimate = estimate(stage);
  return audit.estimate;
}

}  // namespace sldm
