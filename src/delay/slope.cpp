#include "delay/slope.h"

#include "rc/rc_tree.h"
#include "util/contracts.h"

namespace sldm {

SlopeModel::SlopeModel(SlopeTables tables) : tables_(std::move(tables)) {}

double SlopeModel::slope_ratio(const Stage& stage, Seconds elmore) {
  SLDM_EXPECTS(elmore > 0.0);
  return stage.input_slope / elmore;
}

DelayEstimate SlopeModel::estimate(const Stage& stage) const {
  const Seconds td = stage_elmore(stage);
  const TransistorType trigger_type =
      stage.elements[stage.trigger_index].type;
  SLDM_EXPECTS(tables_.has(trigger_type, stage.output_dir));
  const SlopeEntry& e = tables_.entry(trigger_type, stage.output_dir);
  const double rho = slope_ratio(stage, td);
  const double dm = e.delay_mult(rho);
  const double sm = e.slope_mult(rho);
  SLDM_ENSURES(dm > 0.0 && sm > 0.0);
  return {.delay = kLn2 * dm * td, .output_slope = kSlopeFactor * sm * td};
}

DelayEstimate SlopeModel::estimate_audited(const Stage& stage,
                                           DelayAudit& audit) const {
  fill_stage_audit(stage, audit);
  const TransistorType trigger_type =
      stage.elements[stage.trigger_index].type;
  SLDM_EXPECTS(tables_.has(trigger_type, stage.output_dir));
  const SlopeEntry& e = tables_.entry(trigger_type, stage.output_dir);
  const double rho = slope_ratio(stage, audit.elmore);
  audit.terms.push_back({"t_elmore", audit.elmore, "s"});
  audit.terms.push_back({"rho", rho, ""});
  audit.terms.push_back({"delay_mult", e.delay_mult(rho), ""});
  audit.terms.push_back({"slope_mult", e.slope_mult(rho), ""});
  audit.estimate = estimate(stage);
  return audit.estimate;
}

}  // namespace sldm
