#include "delay/lumped.h"

#include "rc/rc_tree.h"

namespace sldm {

DelayEstimate LumpedRcModel::estimate(const Stage& stage) const {
  validate(stage);
  const Seconds tau = stage.total_resistance() * stage.total_cap();
  return {.delay = kLn2 * tau, .output_slope = kSlopeFactor * tau};
}

DelayEstimate LumpedRcModel::estimate_audited(const Stage& stage,
                                              DelayAudit& audit) const {
  fill_stage_audit(stage, audit);
  const Seconds tau = stage.total_resistance() * stage.total_cap();
  audit.terms.push_back({"tau_lumped", tau, "s"});
  audit.terms.push_back({"ln2", kLn2, ""});
  audit.estimate = estimate(stage);
  return audit.estimate;
}

}  // namespace sldm
