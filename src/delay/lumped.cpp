#include "delay/lumped.h"

#include "rc/rc_tree.h"
#include "util/contracts.h"

namespace sldm {

DelayEstimate LumpedRcModel::estimate(const Stage& stage) const {
  validate(stage);
  const Seconds tau = stage.total_resistance() * stage.total_cap();
  return {.delay = kLn2 * tau, .output_slope = kSlopeFactor * tau};
}

void LumpedRcModel::estimate_batch(const StageStore& store,
                                   std::span<const StageStore::StageId> ids,
                                   std::span<const Seconds> input_slopes,
                                   std::span<DelayEstimate> out) const {
  SLDM_EXPECTS(ids.size() == input_slopes.size());
  SLDM_EXPECTS(ids.size() == out.size());
  // Store totals carry the exact doubles Stage::total_resistance() /
  // total_cap() return, so this reproduces estimate() bit for bit;
  // validation already happened at store insertion.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Seconds tau =
        store.total_resistance(ids[i]) * store.total_cap(ids[i]);
    out[i] = {.delay = kLn2 * tau, .output_slope = kSlopeFactor * tau};
  }
}

DelayEstimate LumpedRcModel::estimate_audited(const Stage& stage,
                                              DelayAudit& audit) const {
  fill_stage_audit(stage, audit);
  const Seconds tau = stage.total_resistance() * stage.total_cap();
  audit.terms.push_back({"tau_lumped", tau, "s"});
  audit.terms.push_back({"ln2", kLn2, ""});
  audit.estimate = estimate(stage);
  return audit.estimate;
}

}  // namespace sldm
