#include "delay/lumped.h"

#include "rc/rc_tree.h"

namespace sldm {

DelayEstimate LumpedRcModel::estimate(const Stage& stage) const {
  validate(stage);
  const Seconds tau = stage.total_resistance() * stage.total_cap();
  return {.delay = kLn2 * tau, .output_slope = kSlopeFactor * tau};
}

}  // namespace sldm
