// Greedy failure-case minimization.
//
// When an oracle fails, the raw random circuit (and eco script) is
// rarely the smallest witness.  The shrinker repeatedly deletes
// devices (ddmin-style: halves first, then single devices) and eco
// lines while the caller's predicate still reports the failure, so the
// checked-in repro case under testdata/fuzz/ is close to minimal.
//
// Netlist has no device-removal API by design (the ECO journal records
// only growth and annotation), so device deletion is a *rebuild*: kept
// devices and every role-carrying node are re-added in creation order,
// names preserved, orphaned plain nodes dropped.  Harness metadata is
// remapped by name.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gen/generators.h"

namespace sldm {

/// Rebuilds `g` keeping only the devices with keep[id] == true.
/// Nodes survive if a kept device touches them or they carry a role
/// (rail / input / output / precharged) or a pinned value; explicit
/// caps and names are preserved.  Precondition: keep.size() ==
/// g.netlist.device_count().
GeneratedCircuit subset_circuit(const GeneratedCircuit& g,
                                const std::vector<bool>& keep);

/// Greedy device minimization: returns the smallest circuit found for
/// which `fails` still returns true.  `fails` must treat candidates it
/// cannot evaluate (broken paths, analysis errors) as not failing.
/// Postcondition: fails(result) if fails(g) held on entry.
GeneratedCircuit shrink_circuit(
    const GeneratedCircuit& g,
    const std::function<bool(const GeneratedCircuit&)>& fails);

/// Greedy line minimization for eco scripts, same contract.
std::vector<std::string> shrink_eco(
    const std::vector<std::string>& lines,
    const std::function<bool(const std::vector<std::string>&)>& fails);

}  // namespace sldm
