#include "fuzz/shrink.h"

#include "util/contracts.h"

namespace sldm {
namespace {

/// Remaps a node id from the original netlist into the rebuilt one by
/// name; invalid if the node was dropped.
NodeId remap(const Netlist& from, const Netlist& to, NodeId n) {
  const auto found = to.find_node(from.node(n).name);
  return found ? *found : NodeId::invalid();
}

/// ddmin-style sweep at one granularity: tries dropping each
/// `chunk`-sized run of still-kept devices.  Returns true if anything
/// was removed.
bool sweep(const GeneratedCircuit& g, std::vector<bool>& keep,
           std::size_t chunk,
           const std::function<bool(const GeneratedCircuit&)>& fails) {
  bool removed = false;
  const std::size_t n = keep.size();
  std::size_t start = 0;
  while (start < n) {
    // Collect the next `chunk` kept indices from `start`.
    std::vector<std::size_t> victims;
    std::size_t i = start;
    for (; i < n && victims.size() < chunk; ++i) {
      if (keep[i]) victims.push_back(i);
    }
    if (victims.empty()) break;
    std::vector<bool> candidate = keep;
    for (const std::size_t v : victims) candidate[v] = false;
    if (fails(subset_circuit(g, candidate))) {
      keep = std::move(candidate);
      removed = true;
    }
    start = i;
  }
  return removed;
}

}  // namespace

GeneratedCircuit subset_circuit(const GeneratedCircuit& g,
                                const std::vector<bool>& keep) {
  const Netlist& src = g.netlist;
  SLDM_EXPECTS(keep.size() == src.device_count());

  std::vector<bool> node_kept(src.node_count(), false);
  for (DeviceId d : src.all_devices()) {
    if (!keep[d.value()]) continue;
    const Transistor& t = src.device(d);
    node_kept[t.gate.value()] = true;
    node_kept[t.source.value()] = true;
    node_kept[t.drain.value()] = true;
  }
  for (NodeId n : src.all_nodes()) {
    const Node& info = src.node(n);
    if (info.is_power || info.is_ground || info.is_input ||
        info.is_output || info.is_precharged || info.fixed >= 0) {
      node_kept[n.value()] = true;
    }
  }

  GeneratedCircuit out;
  out.name = g.name + "_shrunk";
  out.style = g.style;
  Netlist& nl = out.netlist;
  for (NodeId n : src.all_nodes()) {
    if (!node_kept[n.value()]) continue;
    const Node& info = src.node(n);
    const NodeId id = nl.add_node(info.name);
    if (info.is_power) nl.mark_power(info.name);
    if (info.is_ground) nl.mark_ground(info.name);
    if (info.is_input) nl.mark_input(info.name);
    if (info.is_output) nl.mark_output(info.name);
    if (info.is_precharged) nl.mark_precharged(info.name);
    if (info.cap > 0.0) nl.set_capacitance(id, info.cap);
    if (info.fixed >= 0) nl.set_fixed(id, info.fixed != 0);
  }
  for (DeviceId d : src.all_devices()) {
    if (!keep[d.value()]) continue;
    const Transistor& t = src.device(d);
    nl.add_transistor(t.type, remap(src, nl, t.gate),
                      remap(src, nl, t.source), remap(src, nl, t.drain),
                      t.width, t.length, t.flow);
  }

  out.input = remap(src, nl, g.input);
  out.output = remap(src, nl, g.output);
  for (NodeId n : g.high_inputs) {
    const NodeId m = remap(src, nl, n);
    if (m != NodeId::invalid()) out.high_inputs.push_back(m);
  }
  for (NodeId n : g.low_inputs) {
    const NodeId m = remap(src, nl, n);
    if (m != NodeId::invalid()) out.low_inputs.push_back(m);
  }
  return out;
}

GeneratedCircuit shrink_circuit(
    const GeneratedCircuit& g,
    const std::function<bool(const GeneratedCircuit&)>& fails) {
  std::vector<bool> keep(g.netlist.device_count(), true);
  std::size_t live = keep.size();
  std::size_t chunk = live > 1 ? live / 2 : 1;
  while (true) {
    const bool removed = sweep(g, keep, chunk, fails);
    if (removed) {
      live = 0;
      for (const bool k : keep) live += k ? 1u : 0u;
      // Stay at this granularity while it keeps paying off.
      continue;
    }
    if (chunk == 1) break;
    chunk = chunk / 2 > 0 ? chunk / 2 : 1;
  }
  return subset_circuit(g, keep);
}

std::vector<std::string> shrink_eco(
    const std::vector<std::string>& lines,
    const std::function<bool(const std::vector<std::string>&)>& fails) {
  std::vector<std::string> kept = lines;
  bool progress = true;
  while (progress && kept.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < kept.size();) {
      std::vector<std::string> candidate = kept;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        kept = std::move(candidate);
        progress = true;
      } else {
        ++i;
      }
    }
  }
  return kept;
}

}  // namespace sldm
