#include "fuzz/netlist_fuzzer.h"

#include <string>
#include <utility>
#include <vector>

#include "gen/builder.h"
#include "util/units.h"

namespace sldm {

GeneratedCircuit random_soup(Style style, int gates, int bridges,
                             FuzzRng& rng) {
  CircuitBuilder b(style);
  const NodeId a = b.input("a");
  const NodeId sel = b.input("sel");  // held high (pass gates, NAND fill)
  const NodeId lo = b.input("lo");    // held low (NOR fill input)

  // Gate DAG: every gate draws its inputs from earlier signals only, so
  // the network is acyclic and every gate output is driven.
  std::vector<NodeId> signals{a};
  for (int i = 0; i < gates; ++i) {
    const std::string out = "g" + std::to_string(i);
    const NodeId x = signals[rng.below(signals.size())];
    switch (rng.below(3)) {
      case 0:
        signals.push_back(b.inverter(x, out));
        break;
      case 1: {
        const NodeId y = signals[rng.below(signals.size())];
        signals.push_back(b.nand_gate({x, y == x ? sel : y}, out));
        break;
      }
      default: {
        const NodeId y = signals[rng.below(signals.size())];
        signals.push_back(b.nor_gate({x, y == x ? lo : y}, out));
        break;
      }
    }
  }

  // Pass-transistor bridges between distinct gate outputs, gated by the
  // held-high select: the resulting channel-connected components span
  // several logic stages -- topology the benchmark generators never
  // emit.  Each bridge is flow-restricted from the topologically
  // earlier signal to the later one (the paper's flow attribute);
  // without the restriction a bridge would close a stage-graph cycle
  // and the static analyzer would rightly reject the circuit.
  for (int i = 0; i < bridges; ++i) {
    std::size_t xi = rng.below(signals.size());
    std::size_t yi = rng.below(signals.size());
    if (xi > yi) std::swap(xi, yi);
    const NodeId x = signals[xi];
    const NodeId y = signals[yi];
    if (x == y || x == a || y == a) continue;
    const DeviceId d = b.pass(x, y, sel);
    b.netlist().set_flow(d, Flow::kSourceToDrain);
  }

  // Random loading: fanout gates and explicit caps.  Untouched internal
  // nodes keep their default zero explicit capacitance, which is itself
  // a case worth covering (device caps still apply via Tech).
  for (NodeId s : signals) {
    if (rng.chance(1, 3)) {
      b.add_fanout_load(s, 1 + static_cast<int>(rng.below(3)));
    }
    if (rng.chance(1, 4)) {
      b.netlist().add_cap(
          s, static_cast<double>(rng.below(80)) * units::fF);
    }
  }

  GeneratedCircuit g;
  g.name = "soup_" + to_string(style) + "_g" + std::to_string(gates) + "_b" +
           std::to_string(bridges);
  g.style = style;
  g.input = a;
  g.output = b.netlist().mark_output(
      b.netlist().node(signals.back()).name);
  g.high_inputs = {sel};
  g.low_inputs = {lo};
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit random_circuit(FuzzRng& rng) {
  const Style style = rng.chance(1, 2) ? Style::kNmos : Style::kCmos;
  // Parameter ranges keep every stage path inside the extractor's
  // default depth (ExtractOptions::max_depth == 16) so the static
  // analysis remains a sound over-approximation for the switch-level
  // oracle.
  switch (rng.below(14)) {
    case 0:
      return inverter_chain(style, 1 + static_cast<int>(rng.below(10)),
                            1 + static_cast<int>(rng.below(4)));
    case 1:
      return nand_chain(style, 2 + static_cast<int>(rng.below(4)));
    case 2:
      return nor_chain(style, 2 + static_cast<int>(rng.below(4)));
    case 3:
      return pass_chain(style, 1 + static_cast<int>(rng.below(8)));
    case 4:
      return barrel_shifter(style, 2 + static_cast<int>(rng.below(4)));
    case 5:
      return manchester_carry(style, 2 + static_cast<int>(rng.below(5)));
    case 6:
      return precharged_bus(style, 2 + static_cast<int>(rng.below(5)));
    case 7:
      return driver_chain(style, 2 + static_cast<int>(rng.below(4)),
                          1.5 + 0.5 * static_cast<double>(rng.below(4)),
                          20.0 + static_cast<double>(rng.below(100)));
    case 8:
      return address_decoder(style, 1 + static_cast<int>(rng.below(4)));
    case 9:
      return pla(style, 2 + static_cast<int>(rng.below(4)),
                 2 + static_cast<int>(rng.below(5)),
                 1 + static_cast<int>(rng.below(3)), rng.next());
    case 10:
      return shift_register(style, 1 + static_cast<int>(rng.below(4)));
    case 11:
      return sram_read_column(style, 1 + static_cast<int>(rng.below(8)));
    case 12:
      return random_logic(style, 2 + static_cast<int>(rng.below(4)),
                          2 + static_cast<int>(rng.below(6)), rng.next());
    default:
      return random_soup(style, 2 + static_cast<int>(rng.below(6)),
                         static_cast<int>(rng.below(4)), rng);
  }
}

}  // namespace sldm
