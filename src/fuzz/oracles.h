// Differential and mathematical oracles for fuzzing.
//
// Each oracle cross-checks one pair of independent implementations (or
// one provable inequality) and reports the first violation it finds.
// The oracles are deliberately conservative: anything the reference
// cannot decide (an X value in the switch-level simulation, an analog
// run whose output never crosses) is a *skip*, never a failure, so a
// reported failure always names a genuine disagreement.
//
// Oracles:
//  * netlist-check     structural validity of a generated circuit;
//  * sanity            arrivals finite/non-negative, critical path
//                      monotone in time;
//  * stage-bounds      per extracted stage: rph-lower <= elmore point
//                      estimate <= rph-upper, and elmore <= lumped
//                      (Elmore never exceeds R_tot*C_tot on a chain);
//  * batch-parity      every delay model's estimate_batch over the
//                      analyzer's stage store must be bit-identical to
//                      scalar estimate() of the materialized stages;
//  * switchsim         if flipping the stimulated input flips the
//                      settled output in the switch-level simulator,
//                      the analyzer must report an arrival for that
//                      output transition (static timing is an
//                      over-approximation of sensitizable paths);
//  * analog            small circuits only: the RC-tree prediction must
//                      land within a generous band of the analog
//                      transient reference;
//  * eco-identity      after an eco script, update() must be
//                      bit-identical to a from-scratch rebuild at every
//                      requested thread count;
//  * snapshot-roundtrip  analysis over a compile -> serialize ->
//                      deserialize round trip of the design must be
//                      bit-identical to direct analysis at every
//                      requested thread count.
#pragma once

#include <string>
#include <vector>

#include "compare/harness.h"
#include "gen/generators.h"
#include "timing/analyzer.h"

namespace sldm {

/// One oracle verdict.  `skipped` marks an undecidable case (counted,
/// never fatal); `detail` explains a failure or a skip.
struct OracleResult {
  bool ok = true;
  bool skipped = false;
  std::string detail;

  static OracleResult pass() { return {}; }
  static OracleResult skip(std::string why) {
    return {.ok = true, .skipped = true, .detail = std::move(why)};
  }
  static OracleResult fail(std::string why) {
    return {.ok = false, .skipped = false, .detail = std::move(why)};
  }
};

/// Structural checks (netlist/checks.h) must report no errors.
OracleResult check_netlist(const Netlist& nl);

/// Every arrival finite and non-negative (time and slope), and the
/// worst critical path's event times non-decreasing.
OracleResult check_sanity(const Netlist& nl, const TimingAnalyzer& analyzer);

/// The RPH/Elmore/lumped inequalities on every extracted stage, with a
/// relative tolerance for floating-point noise.
OracleResult check_stage_bounds(const Netlist& nl, const Tech& tech,
                                const std::vector<TimingStage>& stages,
                                Seconds input_slope);

/// For each of the five delay models: estimate_batch over
/// analyzer.stage_store() must equal scalar estimate() of the
/// materialized stage, bit for bit, for every stage (slopes varied per
/// item).  Guards the batched wavefront propagation against kernel
/// drift.
OracleResult check_batch_parity(const TimingAnalyzer& analyzer,
                                Seconds input_slope);

/// Differential functional check against the switch-level simulator.
/// `analyzer` must have been run with events on *all* inputs (both
/// directions) over g.netlist.
OracleResult check_switchsim(const GeneratedCircuit& g,
                             const TimingAnalyzer& analyzer);

/// Differential accuracy check against the analog transient engine;
/// `max_error_pct` bounds the RC-tree model's |signed % error|.
OracleResult check_analog(const GeneratedCircuit& g,
                          const CompareContext& ctx, Seconds input_slope,
                          double max_error_pct);

/// Applies `eco_script` to a copy of g.netlist and checks that
/// TimingAnalyzer::update() is bit-identical to a rebuild at each entry
/// of `thread_counts`.  A timing loop is only a failure if the two
/// sides disagree about it.
OracleResult check_eco_identity(const GeneratedCircuit& g,
                                const std::string& eco_script,
                                const std::vector<int>& thread_counts,
                                Seconds input_slope);

/// Compiles g.netlist into a CompiledDesign, serializes it to the
/// .sldc byte layout, deserializes, and checks that analysis over the
/// round-tripped design (arrivals, stage count, the worst critical
/// path) is bit-identical to direct analysis at each entry of
/// `thread_counts`.
OracleResult check_snapshot_roundtrip(const GeneratedCircuit& g,
                                      const std::vector<int>& thread_counts,
                                      Seconds input_slope);

}  // namespace sldm
