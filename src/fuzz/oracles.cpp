#include "fuzz/oracles.h"

#include <cmath>
#include <sstream>

#include "delay/bounds.h"
#include "delay/lumped.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "delay/unit.h"
#include "design/compiled_design.h"
#include "design/snapshot.h"
#include "netlist/checks.h"
#include "netlist/eco_io.h"
#include "switchsim/simulator.h"
#include "tech/tech.h"
#include "timing/stage_extract.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {
namespace {

/// Relative slack for floating-point noise in provable inequalities.
constexpr double kRelEps = 1e-9;

bool leq(double a, double b) { return a <= b * (1.0 + kRelEps) + 1e-18; }

const Tech& tech_for_style(Style style) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return style == Style::kNmos ? nmos : cmos;
}

}  // namespace

OracleResult check_netlist(const Netlist& nl) {
  const auto ds = check(nl);
  if (all_ok(ds)) return OracleResult::pass();
  return OracleResult::fail("netlist-check: " + to_string(nl, ds));
}

OracleResult check_sanity(const Netlist& nl, const TimingAnalyzer& analyzer) {
  for (NodeId n : nl.all_nodes()) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto a = analyzer.arrival(n, dir);
      if (!a) continue;
      if (!std::isfinite(a->time) || a->time < 0.0 ||
          !std::isfinite(a->slope) || a->slope < 0.0) {
        return OracleResult::fail(format(
            "sanity: arrival at %s %s is time=%g slope=%g",
            nl.node(n).name.c_str(), to_string(dir).c_str(), a->time,
            a->slope));
      }
    }
  }
  const auto worst = analyzer.worst_arrival(/*outputs_only=*/false);
  if (worst) {
    const auto path = analyzer.critical_path(worst->node, worst->dir);
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (path[i].time < path[i - 1].time) {
        return OracleResult::fail(format(
            "sanity: critical path time decreases at step %zu (%s): "
            "%g after %g",
            i, nl.node(path[i].node).name.c_str(), path[i].time,
            path[i - 1].time));
      }
    }
  }
  return OracleResult::pass();
}

OracleResult check_stage_bounds(const Netlist& nl, const Tech& tech,
                                const std::vector<TimingStage>& stages,
                                Seconds input_slope) {
  const LumpedRcModel lumped;
  const RcTreeModel rctree;
  const RphBoundsModel lower(RphBoundsModel::Mode::kLower);
  const RphBoundsModel upper(RphBoundsModel::Mode::kUpper);
  Stage s;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    make_stage(nl, tech, stages[i], input_slope, s);
    const Seconds d_lumped = lumped.estimate(s).delay;
    const Seconds d_elmore = rctree.estimate(s).delay;
    const Seconds d_lower = lower.estimate(s).delay;
    const Seconds d_upper = upper.estimate(s).delay;
    const auto describe_stage = [&] {
      return describe(nl, stages[i]) + format(" (stage %zu)", i);
    };
    for (const Seconds d : {d_lumped, d_elmore, d_lower, d_upper}) {
      if (!std::isfinite(d) || d <= 0.0) {
        return OracleResult::fail(
            format("stage-bounds: non-positive or non-finite delay %g on ",
                   d) +
            describe_stage());
      }
    }
    if (!leq(d_lower, d_elmore) || !leq(d_elmore, d_upper)) {
      return OracleResult::fail(
          format("stage-bounds: rph ordering violated: lower=%g elmore=%g "
                 "upper=%g on ",
                 d_lower, d_elmore, d_upper) +
          describe_stage());
    }
    if (!leq(d_elmore, d_lumped)) {
      return OracleResult::fail(
          format("stage-bounds: elmore %g exceeds lumped %g on ", d_elmore,
                 d_lumped) +
          describe_stage());
    }
  }
  return OracleResult::pass();
}

OracleResult check_batch_parity(const TimingAnalyzer& analyzer,
                                Seconds input_slope) {
  const LumpedRcModel lumped;
  const RcTreeModel rctree;
  const SlopeModel slope(SlopeTables::unit());
  const RphBoundsModel lower(RphBoundsModel::Mode::kLower);
  const RphBoundsModel upper(RphBoundsModel::Mode::kUpper);
  const UnitDelayModel unit(1e-9);
  const StageStore& store = analyzer.stage_store();
  if (store.empty()) return OracleResult::skip("no stages extracted");

  std::vector<StageStore::StageId> ids(store.size());
  std::vector<Seconds> slopes(store.size());
  for (std::size_t s = 0; s < store.size(); ++s) {
    ids[s] = static_cast<StageStore::StageId>(s);
    // Varied per item so slope-sensitive kernels are exercised off the
    // constant path.
    slopes[s] = input_slope * (1.0 + 0.25 * static_cast<double>(s % 5));
  }
  std::vector<DelayEstimate> batch(store.size());
  Stage scratch;
  const DelayModel* const models[] = {&lumped, &rctree, &slope,
                                      &lower,  &upper,  &unit};
  for (const DelayModel* model : models) {
    model->estimate_batch(store, ids, slopes, batch);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      store.materialize(ids[i], slopes[i], scratch);
      const DelayEstimate scalar = model->estimate(scratch);
      if (scalar.delay != batch[i].delay ||
          scalar.output_slope != batch[i].output_slope) {
        return OracleResult::fail(format(
            "batch-parity: model %s stage %zu: batch (%.17g, %.17g) vs "
            "scalar (%.17g, %.17g)",
            model->name().c_str(), i, batch[i].delay,
            batch[i].output_slope, scalar.delay, scalar.output_slope));
      }
    }
  }
  return OracleResult::pass();
}

OracleResult check_switchsim(const GeneratedCircuit& g,
                             const TimingAnalyzer& analyzer) {
  const auto settle_with_input = [&](bool value) {
    SwitchSimulator sim(g.netlist);
    for (NodeId n : g.high_inputs) sim.set_input(n, true);
    for (NodeId n : g.low_inputs) sim.set_input(n, false);
    sim.set_input(g.input, value);
    bool has_precharged = false;
    for (NodeId n : g.netlist.all_nodes()) {
      if (g.netlist.node(n).is_precharged) has_precharged = true;
    }
    if (has_precharged) sim.precharge();
    sim.settle();
    return sim.value(g.output);
  };

  Logic v0 = Logic::kX;
  Logic v1 = Logic::kX;
  try {
    v0 = settle_with_input(false);
    v1 = settle_with_input(true);
  } catch (const Error& e) {
    return OracleResult::skip(std::string("switchsim oscillated: ") +
                              e.what());
  }
  if (v0 == Logic::kX || v1 == Logic::kX) {
    return OracleResult::skip("switchsim output is X");
  }
  if (v0 == v1) {
    return OracleResult::skip("output insensitive to the stimulated input");
  }
  // Input 0 -> 1 flips the output to v1: the analyzer (seeded with both
  // transitions on every input) must know a path producing that edge.
  const Transition dir =
      v1 == Logic::k1 ? Transition::kRise : Transition::kFall;
  if (!analyzer.arrival(g.output, dir)) {
    return OracleResult::fail(format(
        "switchsim: output %s settles %c->%c when %s rises, but the "
        "analyzer has no %s arrival there",
        g.netlist.node(g.output).name.c_str(), to_char(v0), to_char(v1),
        g.netlist.node(g.input).name.c_str(), to_string(dir).c_str()));
  }
  return OracleResult::pass();
}

OracleResult check_analog(const GeneratedCircuit& g,
                          const CompareContext& ctx, Seconds input_slope,
                          double max_error_pct) {
  ComparisonResult r;
  try {
    r = run_comparison(g, ctx, input_slope);
  } catch (const Error& e) {
    // "Output never switches" and simulator non-convergence are
    // undecidable references, not model bugs.
    return OracleResult::skip(std::string("analog reference unavailable: ") +
                              e.what());
  }
  if (!std::isfinite(r.reference_delay) || r.reference_delay <= 0.0) {
    return OracleResult::fail(
        format("analog: non-positive reference delay %g on %s",
               r.reference_delay, g.name.c_str()));
  }
  const ModelResult& rctree = r.model("rc-tree");
  if (!std::isfinite(rctree.delay) || rctree.delay <= 0.0) {
    return OracleResult::fail(format(
        "analog: rc-tree predicted %g s on %s", rctree.delay,
        g.name.c_str()));
  }
  if (std::abs(rctree.error_pct) > max_error_pct) {
    return OracleResult::fail(format(
        "analog: rc-tree off by %.1f%% (bound %.0f%%) on %s: predicted "
        "%.4g s vs reference %.4g s",
        rctree.error_pct, max_error_pct, g.name.c_str(), rctree.delay,
        r.reference_delay));
  }
  return OracleResult::pass();
}

OracleResult check_eco_identity(const GeneratedCircuit& g,
                                const std::string& eco_script,
                                const std::vector<int>& thread_counts,
                                Seconds input_slope) {
  const RcTreeModel model;
  const Tech& tech = tech_for_style(g.style);
  for (const int threads : thread_counts) {
    AnalyzerOptions opts;
    opts.threads = threads;
    // Same headroom rationale as tests/eco_timing_test.cpp: update()
    // and a rebuild count arrival improvements along different
    // schedules, so only genuine loops may trip the default limit.
    opts.max_updates_per_arrival = 512;

    Netlist nl = g.netlist;
    TimingAnalyzer inc(nl, tech, model, opts);
    inc.add_input_event(g.input, Transition::kRise, 0.0, input_slope);
    inc.run();

    std::istringstream in(eco_script);
    apply_eco(in, nl, "<fuzz-eco>");

    bool inc_looped = false;
    std::string inc_error;
    try {
      inc.update();
    } catch (const Error& e) {
      inc_looped = true;
      inc_error = e.what();
    }

    TimingAnalyzer fresh(nl, tech, model, opts);
    fresh.add_input_event(g.input, Transition::kRise, 0.0, input_slope);
    bool fresh_looped = false;
    try {
      fresh.run();
    } catch (const Error&) {
      fresh_looped = true;
    }
    if (inc_looped != fresh_looped) {
      return OracleResult::fail(format(
          "eco-identity: loop detection diverged at %d thread(s): "
          "update() %s, rebuild %s (%s)",
          threads, inc_looped ? "looped" : "converged",
          fresh_looped ? "looped" : "converged", inc_error.c_str()));
    }
    if (inc_looped) continue;  // both looped: states are unspecified

    if (inc.stages().size() != fresh.stages().size()) {
      return OracleResult::fail(format(
          "eco-identity: stage count %zu vs %zu at %d thread(s)",
          inc.stages().size(), fresh.stages().size(), threads));
    }
    for (NodeId n : nl.all_nodes()) {
      for (Transition dir : {Transition::kRise, Transition::kFall}) {
        const auto a = inc.arrival(n, dir);
        const auto b = fresh.arrival(n, dir);
        const bool same =
            a.has_value() == b.has_value() &&
            (!a || (a->time == b->time && a->slope == b->slope &&
                    a->from_node == b->from_node &&
                    a->from_dir == b->from_dir &&
                    a->via_stage == b->via_stage));
        if (!same) {
          return OracleResult::fail(format(
              "eco-identity: arrival mismatch at %s %s with %d thread(s): "
              "update()=%s rebuild=%s",
              nl.node(n).name.c_str(), to_string(dir).c_str(), threads,
              a ? format("%.17g", a->time).c_str() : "none",
              b ? format("%.17g", b->time).c_str() : "none"));
        }
      }
    }
  }
  return OracleResult::pass();
}

OracleResult check_snapshot_roundtrip(const GeneratedCircuit& g,
                                      const std::vector<int>& thread_counts,
                                      Seconds input_slope) {
  const RcTreeModel model;
  const Tech& tech = tech_for_style(g.style);

  const std::shared_ptr<const CompiledDesign> compiled =
      CompiledDesign::compile(g.netlist, tech);
  LoadedDesign loaded;
  try {
    loaded = deserialize_design(serialize_design(*compiled),
                                "<roundtrip:" + g.name + ">");
  } catch (const Error& e) {
    return OracleResult::fail(
        std::string("snapshot-roundtrip: reload rejected its own "
                    "serialization: ") +
        e.what());
  }
  if (loaded.design->stages().size() != compiled->stages().size()) {
    return OracleResult::fail(format(
        "snapshot-roundtrip: %zu stage(s) reloaded vs %zu compiled",
        loaded.design->stages().size(), compiled->stages().size()));
  }

  for (const int threads : thread_counts) {
    AnalyzerOptions opts;
    opts.threads = threads;

    TimingAnalyzer direct(g.netlist, tech, model, opts);
    TimingAnalyzer reloaded(loaded.design, model, opts);
    direct.add_all_input_events(input_slope);
    reloaded.add_all_input_events(input_slope);
    bool direct_looped = false;
    bool reloaded_looped = false;
    try {
      direct.run();
    } catch (const Error&) {
      direct_looped = true;
    }
    try {
      reloaded.run();
    } catch (const Error&) {
      reloaded_looped = true;
    }
    if (direct_looped != reloaded_looped) {
      return OracleResult::fail(format(
          "snapshot-roundtrip: loop detection diverged at %d thread(s): "
          "direct %s, reloaded %s",
          threads, direct_looped ? "looped" : "converged",
          reloaded_looped ? "looped" : "converged"));
    }
    if (direct_looped) continue;  // both looped: states are unspecified

    for (NodeId n : g.netlist.all_nodes()) {
      for (Transition dir : {Transition::kRise, Transition::kFall}) {
        const auto a = direct.arrival(n, dir);
        const auto b = reloaded.arrival(n, dir);
        const bool same =
            a.has_value() == b.has_value() &&
            (!a || (a->time == b->time && a->slope == b->slope &&
                    a->from_node == b->from_node &&
                    a->from_dir == b->from_dir &&
                    a->via_stage == b->via_stage));
        if (!same) {
          return OracleResult::fail(format(
              "snapshot-roundtrip: arrival mismatch at %s %s with %d "
              "thread(s): direct=%s reloaded=%s",
              g.netlist.node(n).name.c_str(), to_string(dir).c_str(),
              threads, a ? format("%.17g", a->time).c_str() : "none",
              b ? format("%.17g", b->time).c_str() : "none"));
        }
      }
    }

    const auto worst = direct.worst_arrival(/*outputs_only=*/false);
    if (worst) {
      const auto pa = direct.critical_path(worst->node, worst->dir);
      const auto pb = reloaded.critical_path(worst->node, worst->dir);
      if (pa.size() != pb.size()) {
        return OracleResult::fail(format(
            "snapshot-roundtrip: critical path length %zu vs %zu at %d "
            "thread(s)",
            pa.size(), pb.size(), threads));
      }
      for (std::size_t i = 0; i < pa.size(); ++i) {
        if (pa[i].node != pb[i].node || pa[i].dir != pb[i].dir ||
            pa[i].time != pb[i].time || pa[i].slope != pb[i].slope) {
          return OracleResult::fail(format(
              "snapshot-roundtrip: critical path step %zu differs at %d "
              "thread(s)",
              i, threads));
        }
      }
    }
  }
  return OracleResult::pass();
}

}  // namespace sldm
