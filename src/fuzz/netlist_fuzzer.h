// Random-but-valid circuit generation for differential fuzzing.
//
// Circuits are composed from the same builder vocabulary the benchmark
// generators use (inverter/pass/precharge primitives over
// CircuitBuilder), so every fuzz circuit is a structurally valid
// netlist with harness metadata (stimulated input, observed output,
// held secondary inputs) -- the oracles in fuzz/oracles.h need that
// metadata to drive the switch-level and analog references.
//
// Families: randomized parameterizations of all thirteen src/gen
// benchmark generators, plus a hand-rolled "CCC soup" that the
// generators never produce -- a random gate DAG with pass-transistor
// bridges between gate outputs, random fanout loads, and random
// explicit node capacitances (including zero-cap internal nodes).
#pragma once

#include "fuzz/rng.h"
#include "gen/generators.h"

namespace sldm {

/// One random circuit.  Consumes a deterministic amount of `rng`
/// entropy per family, so the stream stays aligned across runs.
/// Postcondition: check(result.netlist) has no errors.
GeneratedCircuit random_circuit(FuzzRng& rng);

/// The "CCC soup" family on its own (exported for targeted tests):
/// `gates` random inverter/NAND/NOR gates wired into a DAG, up to
/// `bridges` pass transistors shorting gate outputs together under a
/// held-high select, random fanout loads and node caps.
GeneratedCircuit random_soup(Style style, int gates, int bridges,
                             FuzzRng& rng);

}  // namespace sldm
