// Deterministic random stream for the fuzzing subsystem.
//
// splitmix64, the same generator the randomized tests use: no <random>,
// so the stream is bit-identical across standard libraries and
// platforms -- a fuzz seed names one exact sequence of circuits and
// edits everywhere.  Determinism is the whole point: `sldm fuzz --seed
// S` must reproduce the same verdicts on every machine.
#pragma once

#include <cstdint>

namespace sldm {

class FuzzRng {
 public:
  explicit FuzzRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform-ish draw in [0, n).  Precondition-free: n == 0 returns 0.
  std::size_t below(std::size_t n) {
    if (n == 0) return 0;
    return static_cast<std::size_t>(next() % n);
  }

  /// Coin flip with probability num/den.
  bool chance(std::size_t num, std::size_t den) { return below(den) < num; }

  /// A derived, independent stream (for per-iteration sub-seeds).
  std::uint64_t fork() { return next() ^ 0xD1B54A32D192ED03ull; }

 private:
  std::uint64_t state_;
};

}  // namespace sldm
