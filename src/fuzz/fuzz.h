// The differential fuzzing driver behind `sldm fuzz`.
//
// One iteration: derive a per-iteration seed from the master seed,
// compose a random circuit (fuzz/netlist_fuzzer.h), run the static and
// differential oracles (fuzz/oracles.h), then drive a random eco
// script through the incremental-timing identity check.  Failures are
// shrunk (fuzz/shrink.h) and written as replayable repro cases
// (fuzz/repro.h).
//
// Determinism contract: the same FuzzOptions produce the same circuits,
// the same oracle verdicts, and byte-identical report text on every
// platform.  Nothing in a verdict depends on wall clock, thread timing,
// or the filesystem.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/units.h"

namespace sldm {

struct FuzzOptions {
  std::uint64_t seed = 1;
  int iterations = 100;
  /// Largest extraction thread count exercised by the eco-identity
  /// oracle (1 and 2 are always included).
  int threads = 4;
  /// Run the analog-reference oracle every k-th iteration on circuits
  /// small enough (0 disables it; analog runs dominate wall time).
  int analog_every = 0;
  /// Device-count ceiling for the analog oracle.
  std::size_t max_devices_analog = 30;
  /// |signed % error| bound for the RC-tree model vs the analog
  /// reference.  Generous by design: the oracle hunts for wildly wrong
  /// answers, not model accuracy regressions (EXPERIMENTS.md tracks
  /// those).
  double max_analog_error_pct = 150.0;
  /// Where to write shrunk repro cases ("" = don't write files).
  std::string out_dir;
  Seconds input_slope = 1e-9;
};

struct FuzzFailure {
  int iteration = 0;
  std::string oracle;
  std::string circuit;
  std::string detail;
  std::string repro_path;  ///< "" when out_dir was not set
};

struct FuzzReport {
  FuzzOptions options;
  int iterations = 0;
  /// Oracle name -> times it produced a definite verdict (pass/fail).
  std::map<std::string, std::size_t> oracle_runs;
  /// Oracle name -> undecidable cases (X outputs, oscillation, ...).
  std::map<std::string, std::size_t> oracle_skips;
  std::vector<FuzzFailure> failures;

  bool clean() const { return failures.empty(); }
  /// Deterministic multi-line summary (no timings, no paths beyond the
  /// ones the run itself chose).
  std::string to_string() const;
};

/// Runs the campaign.  `log` receives one line per failure as it
/// happens (progress feedback for long runs); the returned report has
/// the full accounting.
FuzzReport run_fuzz(const FuzzOptions& options, std::ostream& log);

/// Replays one `.repro` manifest, or every `*.repro` under a directory
/// (sorted by name).  Reports per-case verdicts to `log`; returns the
/// number of failing cases.
int replay_path(const std::string& path, std::ostream& log);

}  // namespace sldm
