#include "fuzz/repro.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "delay/rctree.h"
#include "delay/slope_table.h"
#include "fuzz/eco_fuzzer.h"
#include "netlist/eco_io.h"
#include "netlist/sim_io.h"
#include "tech/tech.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {
namespace {

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw Error("cannot create repro file: " + path);
  out << text;
}

/// The directory prefix of `path` including the trailing separator
/// ("" when the path has no directory component).
std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? "" : path.substr(0, slash + 1);
}

std::optional<std::uint64_t> parse_u64(const std::string& token) {
  if (token.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

const Tech& tech_for(Style style) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return style == Style::kNmos ? nmos : cmos;
}

Style style_of(const Netlist& nl) {
  for (DeviceId d : nl.all_devices()) {
    if (nl.device(d).type == TransistorType::kPEnhancement) {
      return Style::kCmos;
    }
  }
  return Style::kNmos;
}

/// Reconstructs the harness view of a replayed netlist: the stimulated
/// input is the first @in node, the observed output the first @out.
GeneratedCircuit as_generated(Netlist nl, const std::string& name) {
  GeneratedCircuit g;
  g.name = name;
  g.style = style_of(nl);
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.is_input && !g.input.valid()) g.input = n;
    if (info.is_output && !g.output.valid()) g.output = n;
  }
  g.netlist = std::move(nl);
  return g;
}

}  // namespace

std::string write_repro(const std::string& dir, const std::string& name,
                        const ReproCase& c, const std::string& sim_text,
                        const std::string& eco_text,
                        const std::string& tables_text) {
  const std::string base = dir.empty() ? name : dir + "/" + name;
  std::ostringstream manifest;
  manifest << "| sldm fuzz repro case (FORMATS.md section 10)\n";
  manifest << "oracle " << c.oracle << '\n';
  manifest << "seed " << c.seed << '\n';
  manifest << "threads " << c.threads << '\n';
  manifest << format("slope-ns %g\n", c.slope_ns);
  if (!sim_text.empty()) {
    write_text_file(base + ".sim", sim_text);
    manifest << "sim " << name << ".sim\n";
  }
  if (!eco_text.empty()) {
    write_text_file(base + ".eco", eco_text);
    manifest << "eco " << name << ".eco\n";
  }
  if (!tables_text.empty()) {
    write_text_file(base + ".slopes", tables_text);
    manifest << "tables " << name << ".slopes\n";
  }
  if (!c.detail.empty()) manifest << "detail " << c.detail << '\n';
  const std::string manifest_path = base + ".repro";
  write_text_file(manifest_path, manifest.str());
  return manifest_path;
}

ReproCase load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open repro case: " + path);
  const std::string dir = dir_of(path);
  ReproCase c;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '|') continue;
    const auto space = stripped.find_first_of(" \t");
    const std::string key = stripped.substr(0, space);
    const std::string value =
        space == std::string::npos ? "" : trim(stripped.substr(space + 1));
    if (value.empty()) {
      throw ParseError(path, lineno, "record '" + key + "' needs a value");
    }
    if (key == "oracle") {
      c.oracle = value;
    } else if (key == "seed") {
      const auto v = parse_u64(value);
      if (!v) throw ParseError(path, lineno, "bad seed '" + value + "'");
      c.seed = *v;
    } else if (key == "threads") {
      const auto v = parse_long(value);
      if (!v || *v < 1) {
        throw ParseError(path, lineno, "bad threads '" + value + "'");
      }
      c.threads = static_cast<int>(*v);
    } else if (key == "slope-ns") {
      const auto v = parse_finite_double(value);
      if (!v || *v < 0.0) {
        throw ParseError(path, lineno, "bad slope-ns '" + value + "'");
      }
      c.slope_ns = *v;
    } else if (key == "sim") {
      c.sim_path = dir + value;
    } else if (key == "eco") {
      c.eco_path = dir + value;
    } else if (key == "tables") {
      c.tables_path = dir + value;
    } else if (key == "detail") {
      c.detail = value;
    } else {
      throw ParseError(path, lineno, "unknown repro record '" + key + "'");
    }
  }
  if (c.oracle.empty()) {
    throw ParseError(path, lineno, "manifest has no 'oracle' record");
  }
  return c;
}

OracleResult replay_repro(const ReproCase& c) {
  // Reject-style cases: the referenced file is malformed by design, and
  // the fixed parser must say so.
  if (c.oracle == "tables-reject") {
    if (c.tables_path.empty()) {
      return OracleResult::fail("tables-reject case names no tables file");
    }
    try {
      SlopeTables::read_file(c.tables_path);
    } catch (const ParseError&) {
      return OracleResult::pass();
    }
    return OracleResult::fail("slope tables parsed but must be rejected: " +
                              c.tables_path);
  }
  if (c.oracle == "eco-reject") {
    if (c.sim_path.empty() || c.eco_path.empty()) {
      return OracleResult::fail("eco-reject case needs sim and eco files");
    }
    Netlist nl = read_sim_file(c.sim_path);
    try {
      apply_eco_file(c.eco_path, nl);
    } catch (const ParseError&) {
      return OracleResult::pass();
    }
    return OracleResult::fail("eco script applied but must be rejected: " +
                              c.eco_path);
  }

  // Everything else replays the static oracle suite over the netlist
  // (and the eco-identity check when a script is present).
  if (c.sim_path.empty()) {
    return OracleResult::fail("repro case names no sim file");
  }
  const GeneratedCircuit g =
      as_generated(read_sim_file(c.sim_path), c.sim_path);
  const Seconds slope = c.slope_ns * 1e-9;

  OracleResult r = check_netlist(g.netlist);
  if (!r.ok) return r;

  const RcTreeModel model;
  const Tech& tech = tech_for(g.style);
  TimingAnalyzer analyzer(g.netlist, tech, model);
  analyzer.add_all_input_events(slope);
  analyzer.run();

  r = check_sanity(g.netlist, analyzer);
  if (!r.ok) return r;
  r = check_stage_bounds(g.netlist, tech, analyzer.stages(), slope);
  if (!r.ok) return r;
  r = check_batch_parity(analyzer, slope);
  if (!r.ok) return r;
  std::vector<int> snapshot_threads{1, 4};
  if (c.threads > 4) snapshot_threads.push_back(c.threads);
  r = check_snapshot_roundtrip(g, snapshot_threads, slope);
  if (!r.ok) return r;

  if (!c.eco_path.empty()) {
    if (!g.input.valid()) {
      return OracleResult::fail("eco-identity replay needs an @in node in " +
                                c.sim_path);
    }
    std::ifstream eco(c.eco_path);
    if (!eco) return OracleResult::fail("cannot open " + c.eco_path);
    std::ostringstream text;
    text << eco.rdbuf();
    std::vector<int> threads{1, 2};
    if (c.threads > 2) threads.push_back(c.threads);
    r = check_eco_identity(g, text.str(), threads, slope);
    if (!r.ok) return r;
  }
  return OracleResult::pass();
}

}  // namespace sldm
