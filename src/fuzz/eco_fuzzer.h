// Random ECO edit scripts for incremental-timing fuzzing.
//
// Edits are generated as *text* in the eco script dialect
// (netlist/eco_io.h) rather than as direct Netlist calls: the same
// bytes that drove TimingAnalyzer::update() during fuzzing replay
// byte-identically from a checked-in repro case through `sldm eco`.
// Only journal-absorbable edits are emitted (resizes, caps, flow, value
// pins, new nodes/devices) -- never role changes, which update()
// rejects by contract.
#pragma once

#include <string>
#include <vector>

#include "fuzz/rng.h"
#include "netlist/netlist.h"

namespace sldm {

/// `edits` random eco records valid against `nl`, one per line.
/// Devices are addressed by terminal node names, so the script applies
/// to any structurally identical reload of the netlist.  `protect` (the
/// stimulated input) is never pinned to a constant, so the circuit
/// keeps a switching source.  Node names created by the script are
/// drawn from `*new_nodes`, which the caller threads across scripts to
/// keep names unique.
std::vector<std::string> random_eco_script(const Netlist& nl, FuzzRng& rng,
                                           int edits, NodeId protect,
                                           int* new_nodes);

/// Joins script lines with newlines (the byte form given to apply_eco).
std::string join_script(const std::vector<std::string>& lines);

}  // namespace sldm
