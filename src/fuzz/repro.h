// Replayable fuzz repro cases (FORMATS.md section 10).
//
// A repro case is a small directory-relative bundle: a `.repro` text
// manifest naming the failing oracle and parameters, plus the `.sim`
// netlist and optional `.eco` script / `.slopes` table it refers to.
// Cases are written by the fuzz driver when an oracle fails (after
// shrinking) and checked into testdata/fuzz/ once the underlying bug is
// fixed, where `sldm fuzz --replay` and scripts/check.sh re-run them as
// regression gates.
//
// Manifest records, one per line ('|' introduces a comment):
//   oracle <kind>          which oracle the case exercises (required)
//   seed <u64>             originating fuzz seed (provenance)
//   threads <n>            max thread count for identity checks
//   slope-ns <x>           input transition time in ns
//   sim <relpath>          netlist, relative to the manifest
//   eco <relpath>          eco script, relative to the manifest
//   tables <relpath>       slope-table file, relative to the manifest
//   detail <text to eol>   human note about the original failure
//
// Replay semantics by oracle kind:
//   eco-reject / tables-reject   the named file must FAIL to parse
//                                (ParseError); parsing it is the bug;
//   anything else                the netlist must pass the static
//                                oracles (netlist-check, sanity,
//                                stage-bounds), and when an eco script
//                                is present, eco-identity at 1, 2, and
//                                `threads` threads.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/oracles.h"

namespace sldm {

struct ReproCase {
  std::string oracle;
  std::uint64_t seed = 0;
  int threads = 1;
  double slope_ns = 1.0;
  std::string sim_path;     ///< absolute after load_repro
  std::string eco_path;     ///< "" when absent
  std::string tables_path;  ///< "" when absent
  std::string detail;
};

/// Writes `<dir>/<name>.repro` plus the referenced files.  `sim_text`
/// and `eco_text` / `tables_text` are the exact bytes to persist ("" =
/// omit the file and its manifest record).  Returns the manifest path.
/// Throws Error if a file cannot be created.
std::string write_repro(const std::string& dir, const std::string& name,
                        const ReproCase& c, const std::string& sim_text,
                        const std::string& eco_text,
                        const std::string& tables_text);

/// Parses a manifest; referenced paths are resolved relative to it.
/// Throws ParseError (line-numbered) on malformed manifests.
ReproCase load_repro(const std::string& path);

/// Replays one case per the semantics above.
OracleResult replay_repro(const ReproCase& c);

}  // namespace sldm
