#include "fuzz/fuzz.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <sstream>

#include "compare/harness.h"
#include "delay/rctree.h"
#include "fuzz/eco_fuzzer.h"
#include "fuzz/netlist_fuzzer.h"
#include "fuzz/oracles.h"
#include "fuzz/repro.h"
#include "fuzz/rng.h"
#include "fuzz/shrink.h"
#include "netlist/sim_io.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {
namespace {

const Tech& tech_for(Style style) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return style == Style::kNmos ? nmos : cmos;
}

/// The serialized .sim bytes of a circuit (for repro files).
std::string sim_text(const Netlist& nl) {
  std::ostringstream os;
  write_sim(nl, os);
  return os.str();
}

/// Builds and runs an analyzer over `g` with events on all inputs;
/// nullopt when the analyzer reports a loop (the caller decides whether
/// that is a failure).
std::optional<TimingAnalyzer> analyze(const GeneratedCircuit& g,
                                      const DelayModel& model,
                                      Seconds slope) {
  TimingAnalyzer an(g.netlist, tech_for(g.style), model);
  an.add_all_input_events(slope);
  try {
    an.run();
  } catch (const Error&) {
    return std::nullopt;
  }
  return an;
}

/// Everything the driver needs to process one oracle failure: shrink,
/// persist, account.
class FailureSink {
 public:
  FailureSink(const FuzzOptions& options, FuzzReport& report,
              std::ostream& log)
      : options_(options), report_(report), log_(log) {}

  void record(int iteration, const std::string& oracle,
              const GeneratedCircuit& g, const std::string& detail,
              const std::string& eco_text, std::uint64_t iter_seed) {
    FuzzFailure f;
    f.iteration = iteration;
    f.oracle = oracle;
    f.circuit = g.name;
    f.detail = detail;
    if (!options_.out_dir.empty()) {
      std::filesystem::create_directories(options_.out_dir);
      ReproCase c;
      c.oracle = oracle;
      c.seed = iter_seed;
      c.threads = options_.threads;
      c.slope_ns = options_.input_slope / units::ns;
      c.detail = detail;
      const std::string name =
          format("fuzz_%s_i%04d", oracle.c_str(), iteration);
      f.repro_path = write_repro(options_.out_dir, name, c,
                                 sim_text(g.netlist), eco_text, "");
    }
    log_ << format("FAIL iter %d [%s] %s: %s\n", iteration, oracle.c_str(),
                   g.name.c_str(), detail.c_str());
    report_.failures.push_back(std::move(f));
  }

 private:
  const FuzzOptions& options_;
  FuzzReport& report_;
  std::ostream& log_;
};

}  // namespace

std::string FuzzReport::to_string() const {
  std::ostringstream os;
  os << format("fuzz: seed %llu, %d iteration(s)\n",
               static_cast<unsigned long long>(options.seed), iterations);
  for (const auto& [name, runs] : oracle_runs) {
    const auto skip_it = oracle_skips.find(name);
    const std::size_t skips =
        skip_it == oracle_skips.end() ? 0 : skip_it->second;
    os << format("  %-16s %6zu checked, %zu skipped\n", name.c_str(), runs,
                 skips);
  }
  if (failures.empty()) {
    os << "verdict: clean\n";
  } else {
    os << format("verdict: %zu failure(s)\n", failures.size());
    for (const FuzzFailure& f : failures) {
      os << format("  iter %d [%s] %s: %s\n", f.iteration, f.oracle.c_str(),
                   f.circuit.c_str(), f.detail.c_str());
      if (!f.repro_path.empty()) {
        os << "    repro: " << f.repro_path << '\n';
      }
    }
  }
  return os.str();
}

FuzzReport run_fuzz(const FuzzOptions& options, std::ostream& log) {
  FuzzReport report;
  report.options = options;
  const RcTreeModel model;
  FailureSink sink(options, report, log);
  int new_nodes = 0;

  const auto count = [&report](const char* oracle, const OracleResult& r) {
    if (r.skipped) {
      ++report.oracle_skips[oracle];
    } else {
      ++report.oracle_runs[oracle];
    }
    return r.ok;
  };

  for (int i = 0; i < options.iterations; ++i) {
    ++report.iterations;
    // Independent per-iteration stream: iteration i is reproducible in
    // isolation from `seed` and `i` alone.
    const std::uint64_t iter_seed =
        FuzzRng(options.seed + static_cast<std::uint64_t>(i)).fork();
    FuzzRng rng(iter_seed);
    const GeneratedCircuit g = random_circuit(rng);

    {
      const OracleResult r = check_netlist(g.netlist);
      if (!count("netlist-check", r)) {
        // Structural breakage shrinks well: keep the predicate on the
        // same oracle.
        const GeneratedCircuit small = shrink_circuit(
            g, [](const GeneratedCircuit& c) {
              return !check_netlist(c.netlist).ok;
            });
        sink.record(i, "netlist-check", small, r.detail, "", iter_seed);
        continue;
      }
    }

    const auto analyzer = analyze(g, model, options.input_slope);
    if (!analyzer) {
      // A structural timing loop in a generated circuit is a generator
      // bug: the builder vocabulary only composes DAGs.
      sink.record(i, "sanity", g, "analyzer reported a timing loop", "",
                  iter_seed);
      ++report.oracle_runs["sanity"];
      continue;
    }

    {
      const OracleResult r = check_sanity(g.netlist, *analyzer);
      if (!count("sanity", r)) {
        const GeneratedCircuit small =
            shrink_circuit(g, [&](const GeneratedCircuit& c) {
              const auto an = analyze(c, model, options.input_slope);
              return an && !check_sanity(c.netlist, *an).ok;
            });
        sink.record(i, "sanity", small, r.detail, "", iter_seed);
        continue;
      }
    }

    {
      const OracleResult r =
          check_stage_bounds(g.netlist, tech_for(g.style),
                             analyzer->stages(), options.input_slope);
      if (!count("stage-bounds", r)) {
        const GeneratedCircuit small =
            shrink_circuit(g, [&](const GeneratedCircuit& c) {
              const auto an = analyze(c, model, options.input_slope);
              return an && !check_stage_bounds(c.netlist,
                                               tech_for(c.style),
                                               an->stages(),
                                               options.input_slope)
                                .ok;
            });
        sink.record(i, "stage-bounds", small, r.detail, "", iter_seed);
        continue;
      }
    }

    {
      const OracleResult r =
          check_batch_parity(*analyzer, options.input_slope);
      if (!count("batch-parity", r)) {
        const GeneratedCircuit small =
            shrink_circuit(g, [&](const GeneratedCircuit& c) {
              const auto an = analyze(c, model, options.input_slope);
              return an &&
                     !check_batch_parity(*an, options.input_slope).ok;
            });
        sink.record(i, "batch-parity", small, r.detail, "", iter_seed);
        continue;
      }
    }

    {
      // ISSUE acceptance: bit-identity through the .sldc round trip at
      // one worker and at four.
      const std::vector<int> snapshot_threads{1, 4};
      const OracleResult r = check_snapshot_roundtrip(
          g, snapshot_threads, options.input_slope);
      if (!count("snapshot-roundtrip", r)) {
        const GeneratedCircuit small =
            shrink_circuit(g, [&](const GeneratedCircuit& c) {
              return !check_snapshot_roundtrip(c, snapshot_threads,
                                               options.input_slope)
                          .ok;
            });
        sink.record(i, "snapshot-roundtrip", small, r.detail, "",
                    iter_seed);
        continue;
      }
    }

    {
      const OracleResult r = check_switchsim(g, *analyzer);
      if (!count("switchsim", r)) {
        const GeneratedCircuit small =
            shrink_circuit(g, [&](const GeneratedCircuit& c) {
              const auto an = analyze(c, model, options.input_slope);
              return an && !check_switchsim(c, *an).ok;
            });
        sink.record(i, "switchsim", small, r.detail, "", iter_seed);
        continue;
      }
    }

    if (options.analog_every > 0 && i % options.analog_every == 0 &&
        g.netlist.device_count() <= options.max_devices_analog) {
      const OracleResult r =
          check_analog(g, CompareContext::get(g.style),
                       options.input_slope, options.max_analog_error_pct);
      if (!count("analog", r)) {
        // No shrinking: the analog predicate is too slow to iterate,
        // and the un-shrunk circuit is already small by the gate above.
        sink.record(i, "analog", g, r.detail, "", iter_seed);
        continue;
      }
    }

    // ECO mutation fuzzing over the surviving circuit.
    {
      const std::vector<std::string> lines = random_eco_script(
          g.netlist, rng, 1 + static_cast<int>(rng.below(6)), g.input,
          &new_nodes);
      if (lines.empty()) continue;
      std::vector<int> threads{1, 2};
      if (options.threads > 2) threads.push_back(options.threads);
      const auto eco_fails = [&](const GeneratedCircuit& c,
                                 const std::vector<std::string>& ls) {
        try {
          return !check_eco_identity(c, join_script(ls), threads,
                                     options.input_slope)
                      .ok;
        } catch (const Error&) {
          return false;  // script no longer applies to the candidate
        }
      };
      const OracleResult r = check_eco_identity(
          g, join_script(lines), threads, options.input_slope);
      if (!count("eco-identity", r)) {
        // Shrink the script first (cheap), then the circuit under the
        // reduced script.
        const std::vector<std::string> small_eco = shrink_eco(
            lines,
            [&](const std::vector<std::string>& ls) {
              return eco_fails(g, ls);
            });
        const GeneratedCircuit small = shrink_circuit(
            g, [&](const GeneratedCircuit& c) {
              return eco_fails(c, small_eco);
            });
        sink.record(i, "eco-identity", small, r.detail,
                    join_script(small_eco), iter_seed);
      }
    }
  }
  return report;
}

int replay_path(const std::string& path, std::ostream& log) {
  namespace fs = std::filesystem;
  std::vector<std::string> manifests;
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.path().extension() == ".repro") {
        manifests.push_back(entry.path().string());
      }
    }
    std::sort(manifests.begin(), manifests.end());
  } else {
    manifests.push_back(path);
  }
  if (manifests.empty()) {
    log << "no .repro cases under " << path << '\n';
    return 0;
  }
  int failures = 0;
  for (const std::string& m : manifests) {
    OracleResult r;
    try {
      r = replay_repro(load_repro(m));
    } catch (const Error& e) {
      r = OracleResult::fail(e.what());
    }
    if (r.ok) {
      log << "PASS " << m << '\n';
    } else {
      log << "FAIL " << m << ": " << r.detail << '\n';
      ++failures;
    }
  }
  return failures;
}

}  // namespace sldm
