#include "fuzz/eco_fuzzer.h"

#include <string>

#include "util/strings.h"
#include "util/units.h"

namespace sldm {
namespace {

/// "<gate> <src> <drn>" for a device, the eco dialect's device address.
std::string device_address(const Netlist& nl, DeviceId d) {
  const Transistor& t = nl.device(d);
  return nl.node(t.gate).name + " " + nl.node(t.source).name + " " +
         nl.node(t.drain).name;
}

NodeId random_node(const Netlist& nl, FuzzRng& rng) {
  return NodeId(static_cast<std::uint32_t>(rng.below(nl.node_count())));
}

}  // namespace

std::vector<std::string> random_eco_script(const Netlist& nl, FuzzRng& rng,
                                           int edits, NodeId protect,
                                           int* new_nodes) {
  std::vector<std::string> lines;
  while (static_cast<int>(lines.size()) < edits) {
    if (nl.device_count() == 0) break;
    const DeviceId d(
        static_cast<std::uint32_t>(rng.below(nl.device_count())));
    switch (rng.below(7)) {
      case 0: {  // resize width: 1..16 um
        const double um = 1.0 + static_cast<double>(rng.below(16));
        lines.push_back(format("width %s %g", device_address(nl, d).c_str(),
                               um));
        break;
      }
      case 1: {  // resize length: 1..6 um
        const double um = 1.0 + static_cast<double>(rng.below(6));
        lines.push_back(format("length %s %g", device_address(nl, d).c_str(),
                               um));
        break;
      }
      case 2: {  // replace a node's explicit cap
        const NodeId n = random_node(nl, rng);
        lines.push_back(format("cap %s %zu", nl.node(n).name.c_str(),
                               rng.below(200)));
        break;
      }
      case 3: {  // add load
        const NodeId n = random_node(nl, rng);
        lines.push_back(format("addcap %s %zu", nl.node(n).name.c_str(),
                               rng.below(50)));
        break;
      }
      case 4: {  // flow annotation on a device
        static const char* kFlows[] = {"both", "s>d", "d>s"};
        lines.push_back(format("flow %s %s", device_address(nl, d).c_str(),
                               kFlows[rng.below(3)]));
        break;
      }
      case 5: {  // pin / free a node (never the stimulated input)
        const NodeId n = random_node(nl, rng);
        if (n == protect || nl.is_rail(n)) break;
        static const char* kValues[] = {"0", "1", "free"};
        lines.push_back(format("set %s %s", nl.node(n).name.c_str(),
                               kValues[rng.below(3)]));
        break;
      }
      default: {  // grow: a pass device, sometimes onto a fresh node
        const Transistor& t = nl.device(d);
        const NodeId gate = random_node(nl, rng);
        const NodeId source = t.source;
        std::string drain_name;
        if (rng.below(3) == 0) {
          drain_name = "fz_n" + std::to_string((*new_nodes)++);
        } else {
          const NodeId drain = random_node(nl, rng);
          if (drain == source) break;
          if (nl.is_rail(drain) && nl.is_rail(source)) break;
          drain_name = nl.node(drain).name;
        }
        lines.push_back(format("transistor e %s %s %s 2 %zu",
                               nl.node(gate).name.c_str(),
                               nl.node(source).name.c_str(),
                               drain_name.c_str(), 2 + rng.below(8)));
        break;
      }
    }
  }
  return lines;
}

std::string join_script(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace sldm
