// Reader for ECO edit scripts: small text files describing incremental
// engineering-change-order edits to an existing netlist (the `sldm eco`
// subcommand's input; see FORMATS.md).
//
// Records (one per line, '|' introduces a comment):
//
//   width  <gate> <src> <drn> <microns>   set channel width of matching devices
//   length <gate> <src> <drn> <microns>   set channel length
//   flow   <gate> <src> <drn> <s>d|d>s|both>  re-annotate signal flow
//   cap    <node> <fF>                    replace node's explicit lumped cap
//   addcap <node> <fF>                    add to node's explicit lumped cap
//   set    <node> <0|1|free>              pin node to a value / release it
//   node   <name>                         create a node
//   transistor <e|n|d|p> <gate> <src> <drn> <l_um> <w_um> [flow=s>d|d>s]
//                                         create a transistor
//
// Devices are addressed by their terminal node names; `<src> <drn>` also
// matches a device with the two channel terminals swapped.  A record
// applies to every matching device (parallel fingers resize together);
// matching nothing is an error.  Nodes referenced by every record except
// `node`/`transistor` must already exist.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace sldm {

/// Parses and applies an edit script to `nl`, in order.  Returns the
/// number of records applied.  Throws ParseError on malformed records,
/// unknown node names, or records matching no device; edits up to the
/// failing line remain applied (the change log records exactly what
/// happened).
std::size_t apply_eco(std::istream& in, Netlist& nl,
                      const std::string& origin = "<stream>");

/// File form.  Throws Error if unreadable.
std::size_t apply_eco_file(const std::string& path, Netlist& nl);

}  // namespace sldm
