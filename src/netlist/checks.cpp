#include "netlist/checks.h"

#include <queue>
#include <sstream>

#include "util/contracts.h"

namespace sldm {

std::string to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

namespace {

/// Marks every node reachable from a value source through channel edges.
/// Pinned nodes (Node::fixed) supply their constant value, so they count
/// as sources too.
std::vector<bool> reachable_from_sources(const Netlist& nl) {
  std::vector<bool> seen(nl.node_count(), false);
  std::queue<NodeId> work;
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.is_power || info.is_ground || info.is_input ||
        info.is_precharged || info.fixed >= 0) {
      seen[n.index()] = true;
      work.push(n);
    }
  }
  while (!work.empty()) {
    const NodeId n = work.front();
    work.pop();
    for (DeviceId d : nl.channels_at(n)) {
      const NodeId m = nl.device(d).other_end(n);
      if (!seen[m.index()]) {
        seen[m.index()] = true;
        work.push(m);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<Diagnostic> check(const Netlist& nl) {
  std::vector<Diagnostic> out;
  const bool has_devices = nl.device_count() > 0;

  bool has_power = false;
  bool has_ground = false;
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    has_power = has_power || info.is_power;
    has_ground = has_ground || info.is_ground;
    if (info.is_power && info.is_ground) {
      out.push_back({Severity::kError,
                     "node '" + info.name + "' marked both power and ground",
                     n, DeviceId::invalid()});
    }
  }
  if (has_devices && !has_power) {
    out.push_back({Severity::kError, "netlist has transistors but no power rail",
                   NodeId::invalid(), DeviceId::invalid()});
  }
  if (has_devices && !has_ground) {
    out.push_back({Severity::kError,
                   "netlist has transistors but no ground rail",
                   NodeId::invalid(), DeviceId::invalid()});
  }

  for (DeviceId d : nl.all_devices()) {
    const Transistor& t = nl.device(d);
    // Rail-gated devices that are permanently ON are legitimate loads
    // (depletion pull-ups, pseudo-nMOS p loads); permanently OFF ones
    // can never conduct and indicate a wiring error.
    const bool off_forever =
        (t.type == TransistorType::kNEnhancement &&
         nl.node(t.gate).is_ground) ||
        (t.type == TransistorType::kPEnhancement && nl.node(t.gate).is_power);
    if (off_forever) {
      out.push_back({Severity::kError,
                     "transistor gated by rail '" + nl.node(t.gate).name +
                         "' is permanently off",
                     NodeId::invalid(), d});
    }
  }

  const std::vector<bool> reachable = reachable_from_sources(nl);
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    const bool rail_or_source =
        info.is_power || info.is_ground || info.is_input || info.is_precharged;
    const bool has_channel = !nl.channels_at(n).empty();
    const bool is_gate = !nl.gated_by(n).empty();
    if (!rail_or_source && !has_channel && is_gate) {
      out.push_back({Severity::kWarning,
                     "floating gate: node '" + info.name +
                         "' drives gates but is never driven",
                     n, DeviceId::invalid()});
    }
    if (!rail_or_source && !has_channel && !is_gate && info.cap == 0.0) {
      out.push_back({Severity::kWarning,
                     "isolated node '" + info.name + "'", n,
                     DeviceId::invalid()});
    }
    if (has_channel && !reachable[n.index()]) {
      out.push_back({Severity::kWarning,
                     "node '" + info.name +
                         "' has no channel path to any value source",
                     n, DeviceId::invalid()});
    }
  }
  return out;
}

bool all_ok(const std::vector<Diagnostic>& ds) {
  for (const Diagnostic& d : ds) {
    if (d.severity == Severity::kError) return false;
  }
  return true;
}

std::string to_string(const Netlist& nl, const std::vector<Diagnostic>& ds) {
  std::ostringstream os;
  for (const Diagnostic& d : ds) {
    os << to_string(d.severity) << ": " << d.message;
    if (d.device.valid()) {
      const Transistor& t = nl.device(d.device);
      os << " [" << to_letter(t.type) << " g=" << nl.node(t.gate).name
         << " s=" << nl.node(t.source).name << " d=" << nl.node(t.drain).name
         << "]";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sldm
