// Structural sanity checks on a switch-level netlist.
//
// The timing analyzer and the analog elaborator both assume a circuit that
// has rails and no obviously-undriven nodes; check() reports violations as
// diagnostics instead of failing late inside an analysis pass.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sldm {

enum class Severity : std::uint8_t { kWarning, kError };

std::string to_string(Severity s);

/// One finding from check().
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string message;
  /// Offending node, if the finding is about a node.
  NodeId node = NodeId::invalid();
  /// Offending device, if the finding is about a transistor.
  DeviceId device = DeviceId::invalid();
};

/// Runs all structural checks.  Errors:
///  * no power rail / no ground rail while transistors exist;
///  * a node marked both power and ground;
///  * a transistor gated by a rail that can never switch it (depletion
///    devices excepted: their gate is conventionally tied to source).
/// Warnings:
///  * undriven node: no channel connection, not a rail/input, yet used as
///    a gate (a floating gate);
///  * isolated node: no connections at all;
///  * node with channel connections but no possible path to any value
///    source (rail, input, precharged node).
std::vector<Diagnostic> check(const Netlist& nl);

/// True if no diagnostic in `ds` is an error.
bool all_ok(const std::vector<Diagnostic>& ds);

/// Multi-line human-readable rendering.
std::string to_string(const Netlist& nl, const std::vector<Diagnostic>& ds);

}  // namespace sldm
