// Netlist census: the summary a user prints before trusting an imported
// .sim file (device mix, sizes, fanout extremes, capacitance budget).
#pragma once

#include <array>
#include <string>

#include "netlist/netlist.h"

namespace sldm {

struct NetlistStats {
  std::size_t nodes = 0;
  std::size_t devices = 0;
  /// Indexed by TransistorType's underlying value.
  std::array<std::size_t, 3> devices_by_type{};
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t precharged = 0;
  std::size_t power_rails = 0;
  std::size_t ground_rails = 0;
  Farads explicit_cap_total = 0.0;
  /// Drawn W/L extremes over all devices (0 when there are none).
  double min_aspect = 0.0;
  double max_aspect = 0.0;
  /// Worst gate fanout (devices gated by one node) and channel degree.
  std::size_t max_gate_fanout = 0;
  std::size_t max_channel_degree = 0;
};

NetlistStats compute_stats(const Netlist& nl);

/// Multi-line human-readable rendering.
std::string to_string(const NetlistStats& s);

}  // namespace sldm
