#include "netlist/eco_io.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <vector>

#include "util/error.h"
#include "util/strings.h"
#include "util/units.h"

namespace sldm {
namespace {

NodeId lookup(const Netlist& nl, const std::string& name,
              const std::string& origin, int lineno) {
  const auto id = nl.find_node(name);
  if (!id) throw ParseError(origin, lineno, "unknown node '" + name + "'");
  return *id;
}

/// All devices whose (gate, source, drain) names match, channel
/// terminals in either order.
std::vector<DeviceId> match_devices(const Netlist& nl, NodeId gate,
                                    NodeId src, NodeId drn) {
  std::vector<DeviceId> out;
  for (DeviceId d : nl.all_devices()) {
    const Transistor& t = nl.device(d);
    if (t.gate != gate) continue;
    if ((t.source == src && t.drain == drn) ||
        (t.source == drn && t.drain == src)) {
      out.push_back(d);
    }
  }
  return out;
}

std::vector<DeviceId> require_devices(const Netlist& nl,
                                      const std::vector<std::string>& tokens,
                                      const std::string& origin, int lineno) {
  const NodeId gate = lookup(nl, tokens[1], origin, lineno);
  const NodeId src = lookup(nl, tokens[2], origin, lineno);
  const NodeId drn = lookup(nl, tokens[3], origin, lineno);
  std::vector<DeviceId> devices = match_devices(nl, gate, src, drn);
  if (devices.empty()) {
    throw ParseError(origin, lineno,
                     "no device matches gate=" + tokens[1] + " channel=" +
                         tokens[2] + "/" + tokens[3]);
  }
  return devices;
}

double require_positive(const std::string& token, const std::string& origin,
                        int lineno, const char* what) {
  // parse_finite_double rejects "nan"/"inf" (which strtod accepts and
  // which would slip through the sign check and poison downstream
  // resistances) before the positivity test.
  const auto v = parse_finite_double(token);
  if (!v || *v <= 0.0) {
    throw ParseError(origin, lineno, std::string("bad ") + what + " '" +
                                         token + "' (finite positive number)");
  }
  return *v;
}

}  // namespace

std::size_t apply_eco(std::istream& in, Netlist& nl,
                      const std::string& origin) {
  std::size_t applied = 0;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '|') continue;
    const auto tokens = split_ws(stripped);
    const std::string& kind = tokens[0];

    if (kind == "width" || kind == "length") {
      if (tokens.size() != 5) {
        throw ParseError(origin, lineno,
                         kind + " record: " + kind +
                             " <gate> <src> <drn> <microns>");
      }
      const double um =
          require_positive(tokens[4], origin, lineno, "dimension");
      for (DeviceId d : require_devices(nl, tokens, origin, lineno)) {
        if (kind == "width") {
          nl.set_width(d, um * units::um);
        } else {
          nl.set_length(d, um * units::um);
        }
      }
    } else if (kind == "flow") {
      if (tokens.size() != 5) {
        throw ParseError(origin, lineno,
                         "flow record: flow <gate> <src> <drn> <s>d|d>s|both>");
      }
      Flow flow;
      if (tokens[4] == "s>d") {
        flow = Flow::kSourceToDrain;
      } else if (tokens[4] == "d>s") {
        flow = Flow::kDrainToSource;
      } else if (tokens[4] == "both") {
        flow = Flow::kBidirectional;
      } else {
        throw ParseError(origin, lineno,
                         "bad flow value '" + tokens[4] + "'");
      }
      for (DeviceId d : require_devices(nl, tokens, origin, lineno)) {
        nl.set_flow(d, flow);
      }
    } else if (kind == "cap" || kind == "addcap") {
      if (tokens.size() != 3) {
        throw ParseError(origin, lineno,
                         kind + " record: " + kind + " <node> <fF>");
      }
      const auto v = parse_finite_double(tokens[2]);
      if (!v || *v < 0.0) {
        throw ParseError(origin, lineno, "bad capacitance '" + tokens[2] +
                                             "' (finite non-negative fF)");
      }
      const NodeId n = lookup(nl, tokens[1], origin, lineno);
      if (kind == "cap") {
        nl.set_capacitance(n, *v * units::fF);
      } else {
        nl.add_cap(n, *v * units::fF);
      }
    } else if (kind == "set") {
      if (tokens.size() != 3) {
        throw ParseError(origin, lineno, "set record: set <node> <0|1|free>");
      }
      const NodeId n = lookup(nl, tokens[1], origin, lineno);
      if (tokens[2] == "0") {
        nl.set_fixed(n, false);
      } else if (tokens[2] == "1") {
        nl.set_fixed(n, true);
      } else if (tokens[2] == "free") {
        nl.set_fixed(n, std::nullopt);
      } else {
        throw ParseError(origin, lineno,
                         "bad set value '" + tokens[2] + "' (0, 1, or free)");
      }
    } else if (kind == "node") {
      if (tokens.size() != 2) {
        throw ParseError(origin, lineno, "node record: node <name>");
      }
      nl.add_node(tokens[1]);
    } else if (kind == "transistor") {
      if (tokens.size() < 7 || tokens.size() > 8) {
        throw ParseError(origin, lineno,
                         "transistor record: transistor <e|n|d|p> <gate> "
                         "<src> <drn> <l_um> <w_um> [flow=s>d|d>s]");
      }
      TransistorType type;
      if (tokens[1] == "e" || tokens[1] == "n") {
        type = TransistorType::kNEnhancement;
      } else if (tokens[1] == "d") {
        type = TransistorType::kNDepletion;
      } else if (tokens[1] == "p") {
        type = TransistorType::kPEnhancement;
      } else {
        throw ParseError(origin, lineno,
                         "bad transistor type '" + tokens[1] + "'");
      }
      const double l = require_positive(tokens[5], origin, lineno, "length");
      const double w = require_positive(tokens[6], origin, lineno, "width");
      Flow flow = Flow::kBidirectional;
      if (tokens.size() == 8) {
        if (tokens[7] == "flow=s>d") {
          flow = Flow::kSourceToDrain;
        } else if (tokens[7] == "flow=d>s") {
          flow = Flow::kDrainToSource;
        } else {
          throw ParseError(origin, lineno,
                           "unknown device attribute '" + tokens[7] + "'");
        }
      }
      // New terminals may be created on the fly (like .sim parsing).
      const NodeId gate = nl.add_node(tokens[2]);
      const NodeId src = nl.add_node(tokens[3]);
      const NodeId drn = nl.add_node(tokens[4]);
      if (src == drn) {
        throw ParseError(origin, lineno,
                         "transistor source and drain are the same node");
      }
      nl.add_transistor(type, gate, src, drn, w * units::um, l * units::um,
                        flow);
    } else {
      throw ParseError(origin, lineno, "unknown eco record '" + kind + "'");
    }
    ++applied;
  }
  return applied;
}

std::size_t apply_eco_file(const std::string& path, Netlist& nl) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open eco script: " + path);
  return apply_eco(in, nl, path);
}

}  // namespace sldm
