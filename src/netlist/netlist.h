// Switch-level circuit representation.
//
// A Netlist is the paper's circuit model: transistors acting as switches
// connecting nodes, with a lumped capacitance per node.  It is the common
// input of every other subsystem: the analog simulator elaborates it into
// a nonlinear circuit, the timing analyzer decomposes it into stages, and
// the generators in src/gen build benchmark instances of it.
//
// Node roles:
//  * power / ground nodes are infinite-strength sources of 1 / 0;
//  * input nodes are driven from outside the circuit (chip inputs);
//  * output nodes are observation points for reporting;
//  * precharged nodes are treated as sources of 1 at the start of an
//    evaluation phase (dynamic logic).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/changes.h"
#include "netlist/types.h"
#include "util/interner.h"
#include "util/units.h"

namespace sldm {

/// One electrical net.
struct Node {
  /// Interned view into the owning Netlist's symbol arena (stable
  /// across netlist moves; re-interned on netlist copy).
  Symbol name;
  /// Explicit lumped capacitance to ground (wiring + any annotated load).
  /// Device capacitances are *not* included here; Tech::node_capacitance
  /// adds gate/diffusion contributions from connected transistors.
  Farads cap = 0.0;
  bool is_power = false;       ///< Vdd rail
  bool is_ground = false;      ///< GND rail
  bool is_input = false;       ///< driven externally
  bool is_output = false;      ///< observation point
  bool is_precharged = false;  ///< dynamic node, precharged high
  /// Persistent pinned logic value (Crystal's "set" command as a netlist
  /// attribute, the `@set` .sim record): -1 free, 0/1 pinned.  Pinned
  /// nodes act as constant value sources during stage extraction.
  std::int8_t fixed = -1;

  /// The pinned value, if any.
  std::optional<bool> fixed_value() const {
    if (fixed < 0) return std::nullopt;
    return fixed != 0;
  }
};

/// One MOS transistor, modeled as a switch with a channel between
/// `source` and `drain`, controlled by `gate`.
///
/// Source/drain are interchangeable electrically; the names follow the
/// .sim convention only.  Dimensions are drawn channel width/length in
/// meters.
struct Transistor {
  TransistorType type = TransistorType::kNEnhancement;
  NodeId gate = NodeId::invalid();
  NodeId source = NodeId::invalid();
  NodeId drain = NodeId::invalid();
  Meters width = 0.0;
  Meters length = 0.0;
  /// Designer-annotated signal-flow restriction (default: none).
  Flow flow = Flow::kBidirectional;

  /// Width/length ratio (electrical strength factor).
  double aspect() const { return width / length; }
  /// The channel terminal opposite `n`.  Precondition: n is source or drain.
  NodeId other_end(NodeId n) const;
  /// True if `n` is one of the channel terminals.
  bool connects(NodeId n) const { return n == source || n == drain; }
  /// True if the flow annotation permits a signal entering at `from`
  /// and leaving at the other terminal.
  /// Precondition: `from` is a channel terminal.
  bool flow_allows_from(NodeId from) const;
};

/// A complete switch-level circuit.
///
/// Node and device ids are dense indices assigned in creation order, so
/// they can index parallel arrays in analysis passes.
///
/// Every mutation is journaled in a ChangeLog (changes()), and the log
/// length is the netlist's revision().  Incremental consumers
/// (CccPartition::update, TimingAnalyzer::update) replay the entries
/// recorded since the revision they last synchronized to, so ECO edits
/// (resizing, re-annotating, or growing an already-analyzed circuit)
/// cost work proportional to the damage, not the circuit.
class Netlist {
 public:
  Netlist() = default;

  /// Copying re-interns every node name into the copy's own arena, so
  /// the copy is fully independent of the original's lifetime.  Moves
  /// are cheap: the arena's chunks travel by pointer, so interned
  /// Symbols (and the by-name index) stay valid.
  Netlist(const Netlist& other);
  Netlist& operator=(const Netlist& other);
  Netlist(Netlist&&) = default;
  Netlist& operator=(Netlist&&) = default;

  /// Creates a node, or returns the existing one with this name.  The
  /// name is interned into the netlist's arena (no per-node string
  /// allocation).  Postcondition: find_node(name) == returned id.
  NodeId add_node(std::string_view name);

  /// Looks up a node by name.
  std::optional<NodeId> find_node(std::string_view name) const;

  /// Creates a transistor.  Preconditions: all ids valid and in range;
  /// width > 0 and length > 0; source != drain (no self-loops).
  DeviceId add_transistor(TransistorType type, NodeId gate, NodeId source,
                          NodeId drain, Meters width, Meters length,
                          Flow flow = Flow::kBidirectional);

  /// Changes a device's flow annotation.
  void set_flow(DeviceId id, Flow flow);

  /// Resizes a device's drawn channel.  Preconditions: id valid;
  /// value > 0.
  void set_width(DeviceId id, Meters width);
  void set_length(DeviceId id, Meters length);

  /// Replaces a node's explicit lumped capacitance.  Precondition:
  /// cap >= 0.
  void set_capacitance(NodeId n, Farads cap);

  /// Pins a node to a constant logic value (Crystal's "set"), or frees
  /// it (nullopt).  Pinned nodes act as value sources in extraction.
  void set_fixed(NodeId n, std::optional<bool> value);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t device_count() const { return devices_.size(); }

  const Node& node(NodeId id) const;
  Node& node(NodeId id);
  const Transistor& device(DeviceId id) const;

  /// All node / device ids in creation order (materialized; convenience
  /// only — hot loops should use all_nodes()/all_devices()).
  std::vector<NodeId> node_ids() const;
  std::vector<DeviceId> device_ids() const;

  /// Allocation-free id iteration for hot loops.
  IdRange<NodeId> all_nodes() const { return IdRange<NodeId>(nodes_.size()); }
  IdRange<DeviceId> all_devices() const {
    return IdRange<DeviceId>(devices_.size());
  }

  /// Devices whose gate is `n`.
  const std::vector<DeviceId>& gated_by(NodeId n) const;
  /// Devices with a channel terminal on `n`.
  const std::vector<DeviceId>& channels_at(NodeId n) const;

  // --- Role helpers -------------------------------------------------------
  /// Marks by name, creating the node if needed.
  NodeId mark_power(std::string_view name);
  NodeId mark_ground(std::string_view name);
  NodeId mark_input(std::string_view name);
  NodeId mark_output(std::string_view name);
  NodeId mark_precharged(std::string_view name);

  /// True if the node is a rail (power or ground).
  bool is_rail(NodeId n) const;

  /// Adds capacitance to a node's explicit lumped cap.
  /// Precondition: extra >= 0.
  void add_cap(NodeId n, Farads extra);

  /// The power / ground node if exactly one is marked.
  std::optional<NodeId> power_node() const;
  std::optional<NodeId> ground_node() const;

  /// Monotonic edit counter (== changes().revision()).
  std::uint64_t revision() const { return log_.revision(); }

  /// The full mutation journal since construction.
  const ChangeLog& changes() const { return log_; }

 private:
  void check_node(NodeId id) const;
  void check_device(DeviceId id) const;
  /// Re-interns node names and rebuilds by_name_ (copy construction).
  void reintern_names();

  std::vector<Node> nodes_;
  std::vector<Transistor> devices_;
  /// Owns the bytes of every node name; by_name_ keys and Node::name
  /// view into it.
  Interner names_;
  std::unordered_map<std::string_view, NodeId> by_name_;
  std::vector<std::vector<DeviceId>> gated_by_;
  std::vector<std::vector<DeviceId>> channels_at_;
  ChangeLog log_;
};

}  // namespace sldm
