// Per-edit change log for incremental (ECO) analysis.
//
// Every Netlist mutation appends one Change entry describing what was
// touched.  The log length doubles as a monotonic revision counter:
// a consumer that remembers the revision it last synchronized to can
// later replay exactly the entries it missed (log.entry(i) for
// i in [synced, revision())) and recompute only the affected state.
// This is the contract between the netlist layer and the incremental
// consumers (CccPartition::update, TimingAnalyzer::update).
//
// Entries are intentionally tiny (kind + index): consumers resolve the
// index against the netlist at replay time, when terminals, gating
// lists, and parameters are already in their post-edit state (device
// terminals are immutable after creation, so replay order within a
// batch does not matter for dirty-set derivation).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/types.h"
#include "util/contracts.h"

namespace sldm {

/// What one mutation did.  Kinds are grouped by how much an incremental
/// consumer must redo:
///  * topological (kNodeAdded, kDeviceAdded) changes the component
///    structure itself;
///  * parametric (kDeviceSized, kDeviceFlow, kNodeCap, kNodeFixed) keeps
///    the partition and only dirties the owning component(s);
///  * kNodeRoleOutput is reporting-only (no timing effect);
///  * kNodeRole (power/ground/input/precharge) would *split* components
///    or change value sources — incremental consumers refuse it.
enum class ChangeKind : std::uint8_t {
  kNodeAdded,       ///< index is the new node
  kDeviceAdded,     ///< index is the new device
  kDeviceSized,     ///< width/length changed; index is the device
  kDeviceFlow,      ///< flow annotation changed; index is the device
  kNodeCap,         ///< lumped capacitance changed; index is the node
  kNodeFixed,       ///< pinned value changed; index is the node
  kNodeRoleOutput,  ///< output (observation) mark; index is the node
  kNodeRole,        ///< power/ground/input/precharge mark; index is the node
};

/// One log entry.  `index` is a node or device index depending on kind.
struct Change {
  ChangeKind kind;
  std::uint32_t index;

  NodeId node() const { return NodeId(index); }
  DeviceId device() const { return DeviceId(index); }
};

/// Append-only mutation journal owned by a Netlist.
class ChangeLog {
 public:
  /// Current revision == number of entries ever recorded.
  std::uint64_t revision() const { return entries_.size(); }

  /// Entry `i`.  Precondition: i < revision().
  const Change& entry(std::uint64_t i) const {
    SLDM_EXPECTS(i < entries_.size());
    return entries_[static_cast<std::size_t>(i)];
  }

  void record(ChangeKind kind, std::uint32_t index) {
    entries_.push_back(Change{kind, index});
  }

 private:
  std::vector<Change> entries_;
};

}  // namespace sldm
