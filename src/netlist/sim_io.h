// Reader/writer for the Berkeley ".sim" switch-level netlist format used
// by esim and Crystal, with a few documented dialect extensions.
//
// Supported records (one per line, '|' introduces a comment line):
//
//   | units: <centimicrons>        header; dimension unit (default 100,
//                                  i.e. 1 file unit = 1 micron)
//   e <gate> <src> <drn> <l> <w>   n-enhancement transistor
//   n <gate> <src> <drn> <l> <w>   synonym for 'e'
//   d <gate> <src> <drn> <l> <w>   n-depletion transistor
//   p <gate> <src> <drn> <l> <w>   p-enhancement transistor
//   c <node> <cap_fF>              lumped capacitance to ground
//   C <node1> <node2> <cap_fF>     internodal cap; lumped to ground on
//                                  both terminals (Crystal's treatment)
//
// Dialect extensions for node roles (Crystal keeps these in command files;
// here they travel with the netlist so a .sim file is self-contained):
//
//   @vdd <name>...       power rails
//   @gnd <name>...       ground rails
//   @in <name>...        chip inputs
//   @out <name>...       observation points
//   @precharged <name>.. dynamic nodes precharged high
//   @set <name>=<0|1>... nodes pinned to a constant logic value
//                        (Crystal's "set" command; kills false paths)
//
// Nodes named "vdd"/"vdd!" or "gnd"/"gnd!"/"vss" (case-insensitive) are
// recognized as rails automatically.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace sldm {

/// Parses a .sim stream.  Throws ParseError on malformed input.
/// `origin` is used in error messages.
Netlist read_sim(std::istream& in, const std::string& origin = "<stream>");

/// Parses a .sim file from disk.  Throws Error if unreadable.
Netlist read_sim_file(const std::string& path);

/// Writes `nl` in the dialect above.  Dimensions are written in microns
/// (units header 100).  Only nonzero explicit node caps are emitted.
void write_sim(const Netlist& nl, std::ostream& out);

/// Writes to a file.  Throws Error if the file cannot be created.
void write_sim_file(const Netlist& nl, const std::string& path);

/// Round-trip convenience used by tests: serialize then reparse.
Netlist reparse(const Netlist& nl);

}  // namespace sldm
