#include "netlist/sim_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/contracts.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/units.h"

namespace sldm {
namespace {

constexpr double kCentimicron = 1e-8;  // meters

bool is_power_name(const std::string& name) {
  const std::string n = to_lower(name);
  return n == "vdd" || n == "vdd!";
}

bool is_ground_name(const std::string& name) {
  const std::string n = to_lower(name);
  return n == "gnd" || n == "gnd!" || n == "vss" || n == "vss!";
}

NodeId intern_node(Netlist& nl, const std::string& name) {
  const NodeId id = nl.add_node(name);
  if (is_power_name(name)) nl.node(id).is_power = true;
  if (is_ground_name(name)) nl.node(id).is_ground = true;
  return id;
}

}  // namespace

Netlist read_sim(std::istream& in, const std::string& origin) {
  Netlist nl;
  double unit_m = 100.0 * kCentimicron;  // default: 1 file unit = 1 micron
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    if (stripped[0] == '|') {
      // Comment; may carry the units header.
      const auto tokens = split_ws(stripped.substr(1));
      for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (to_lower(tokens[i]) == "units:") {
          const auto v = parse_finite_double(tokens[i + 1]);
          if (!v || *v <= 0.0) {
            throw ParseError(origin, lineno, "bad units value");
          }
          unit_m = *v * kCentimicron;
        }
      }
      continue;
    }
    const auto tokens = split_ws(stripped);
    SLDM_ASSERT(!tokens.empty());
    const std::string kind = tokens[0];

    if (kind == "e" || kind == "n" || kind == "d" || kind == "p") {
      if (tokens.size() < 6) {
        throw ParseError(origin, lineno,
                         "transistor record needs gate src drn length width");
      }
      const auto l = parse_finite_double(tokens[4]);
      const auto w = parse_finite_double(tokens[5]);
      if (!l || !w || *l <= 0.0 || *w <= 0.0) {
        throw ParseError(origin, lineno, "bad transistor dimensions");
      }
      TransistorType type = TransistorType::kNEnhancement;
      if (kind == "d") type = TransistorType::kNDepletion;
      if (kind == "p") type = TransistorType::kPEnhancement;
      Flow flow = Flow::kBidirectional;
      for (std::size_t i = 6; i < tokens.size(); ++i) {
        if (tokens[i] == "flow=s>d") {
          flow = Flow::kSourceToDrain;
        } else if (tokens[i] == "flow=d>s") {
          flow = Flow::kDrainToSource;
        } else {
          throw ParseError(origin, lineno,
                           "unknown device attribute '" + tokens[i] + "'");
        }
      }
      const NodeId gate = intern_node(nl, tokens[1]);
      const NodeId src = intern_node(nl, tokens[2]);
      const NodeId drn = intern_node(nl, tokens[3]);
      if (src == drn) {
        throw ParseError(origin, lineno,
                         "transistor source and drain are the same node");
      }
      nl.add_transistor(type, gate, src, drn, *w * unit_m, *l * unit_m, flow);
      continue;
    }

    if (kind == "c") {
      if (tokens.size() != 3) {
        throw ParseError(origin, lineno, "cap record: c <node> <cap_fF>");
      }
      const auto cap = parse_finite_double(tokens[2]);
      if (!cap || *cap < 0.0) throw ParseError(origin, lineno, "bad cap");
      nl.add_cap(intern_node(nl, tokens[1]), *cap * units::fF);
      continue;
    }

    if (kind == "C") {
      if (tokens.size() != 4) {
        throw ParseError(origin, lineno,
                         "cap record: C <node1> <node2> <cap_fF>");
      }
      const auto cap = parse_finite_double(tokens[3]);
      if (!cap || *cap < 0.0) throw ParseError(origin, lineno, "bad cap");
      // Crystal lumps internodal capacitance to ground at both ends.
      nl.add_cap(intern_node(nl, tokens[1]), *cap * units::fF);
      nl.add_cap(intern_node(nl, tokens[2]), *cap * units::fF);
      continue;
    }

    if (kind == "@set") {
      if (tokens.size() < 2) {
        throw ParseError(origin, lineno,
                         "@set record needs <name>=<0|1> entries");
      }
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        const std::string value =
            eq == std::string::npos ? "" : tokens[i].substr(eq + 1);
        if (eq == 0 || (value != "0" && value != "1")) {
          throw ParseError(origin, lineno,
                           "@set entry must be <name>=<0|1>, got '" +
                               tokens[i] + "'");
        }
        nl.set_fixed(intern_node(nl, tokens[i].substr(0, eq)), value == "1");
      }
      continue;
    }

    if (kind[0] == '@') {
      if (tokens.size() < 2) {
        throw ParseError(origin, lineno, "role record needs node names");
      }
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (kind == "@vdd") {
          nl.mark_power(tokens[i]);
        } else if (kind == "@gnd") {
          nl.mark_ground(tokens[i]);
        } else if (kind == "@in") {
          nl.mark_input(tokens[i]);
        } else if (kind == "@out") {
          nl.mark_output(tokens[i]);
        } else if (kind == "@precharged") {
          nl.mark_precharged(tokens[i]);
        } else {
          throw ParseError(origin, lineno, "unknown role record " + kind);
        }
      }
      continue;
    }

    throw ParseError(origin, lineno, "unknown record type '" + kind + "'");
  }
  return nl;
}

Netlist read_sim_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open .sim file: " + path);
  return read_sim(in, path);
}

void write_sim(const Netlist& nl, std::ostream& out) {
  out << "| units: 100 (1 unit = 1 micron); written by sldm\n";
  for (DeviceId d : nl.all_devices()) {
    const Transistor& t = nl.device(d);
    out << to_letter(t.type) << ' ' << nl.node(t.gate).name << ' '
        << nl.node(t.source).name << ' ' << nl.node(t.drain).name << ' '
        << format("%.6g %.6g", t.length / units::um, t.width / units::um);
    if (t.flow != Flow::kBidirectional) {
      out << " flow=" << to_string(t.flow);
    }
    out << '\n';
  }
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.cap > 0.0) {
      out << "c " << info.name << ' ' << format("%.6g", to_fF(info.cap))
          << '\n';
    }
  }
  auto emit_role = [&](const char* tag, auto pred) {
    bool any = false;
    for (NodeId n : nl.all_nodes()) {
      if (pred(nl.node(n))) {
        if (!any) out << tag;
        any = true;
        out << ' ' << nl.node(n).name;
      }
    }
    if (any) out << '\n';
  };
  emit_role("@vdd", [](const Node& n) { return n.is_power; });
  emit_role("@gnd", [](const Node& n) { return n.is_ground; });
  emit_role("@in", [](const Node& n) { return n.is_input; });
  emit_role("@out", [](const Node& n) { return n.is_output; });
  emit_role("@precharged", [](const Node& n) { return n.is_precharged; });
  bool any_set = false;
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.fixed < 0) continue;
    if (!any_set) out << "@set";
    any_set = true;
    out << ' ' << info.name << '=' << (info.fixed != 0 ? '1' : '0');
  }
  if (any_set) out << '\n';
}

void write_sim_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot create .sim file: " + path);
  write_sim(nl, out);
}

Netlist reparse(const Netlist& nl) {
  std::stringstream ss;
  write_sim(nl, ss);
  return read_sim(ss, "<reparse>");
}

}  // namespace sldm
