#include "netlist/netlist.h"

#include "util/contracts.h"

namespace sldm {

std::string to_letter(TransistorType t) {
  switch (t) {
    case TransistorType::kNEnhancement:
      return "e";
    case TransistorType::kNDepletion:
      return "d";
    case TransistorType::kPEnhancement:
      return "p";
  }
  SLDM_ASSERT(false);
  return {};
}

std::string to_string(TransistorType t) {
  switch (t) {
    case TransistorType::kNEnhancement:
      return "n-enhancement";
    case TransistorType::kNDepletion:
      return "n-depletion";
    case TransistorType::kPEnhancement:
      return "p-enhancement";
  }
  SLDM_ASSERT(false);
  return {};
}

std::string to_string(Transition t) {
  return t == Transition::kRise ? "rise" : "fall";
}

NodeId Transistor::other_end(NodeId n) const {
  SLDM_EXPECTS(connects(n));
  return n == source ? drain : source;
}

bool Transistor::flow_allows_from(NodeId from) const {
  SLDM_EXPECTS(connects(from));
  switch (flow) {
    case Flow::kBidirectional:
      return true;
    case Flow::kSourceToDrain:
      return from == source;
    case Flow::kDrainToSource:
      return from == drain;
  }
  SLDM_ASSERT(false);
  return false;
}

std::string to_string(Flow f) {
  switch (f) {
    case Flow::kBidirectional:
      return "bidirectional";
    case Flow::kSourceToDrain:
      return "s>d";
    case Flow::kDrainToSource:
      return "d>s";
  }
  SLDM_ASSERT(false);
  return {};
}

Netlist::Netlist(const Netlist& other)
    : nodes_(other.nodes_),
      devices_(other.devices_),
      gated_by_(other.gated_by_),
      channels_at_(other.channels_at_),
      log_(other.log_) {
  reintern_names();
}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this == &other) return *this;
  nodes_ = other.nodes_;
  devices_ = other.devices_;
  gated_by_ = other.gated_by_;
  channels_at_ = other.channels_at_;
  log_ = other.log_;
  names_ = Interner();
  reintern_names();
  return *this;
}

void Netlist::reintern_names() {
  by_name_.clear();
  by_name_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].name = names_.intern(nodes_[i].name);
    by_name_.emplace(nodes_[i].name.view(),
                     NodeId(static_cast<NodeId::underlying_type>(i)));
  }
}

NodeId Netlist::add_node(std::string_view name) {
  SLDM_EXPECTS(!name.empty());
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return it->second;
  }
  const NodeId id(static_cast<NodeId::underlying_type>(nodes_.size()));
  const Symbol interned = names_.intern(name);
  nodes_.push_back(Node{.name = interned});
  gated_by_.emplace_back();
  channels_at_.emplace_back();
  by_name_.emplace(interned.view(), id);
  log_.record(ChangeKind::kNodeAdded, id.value());
  return id;
}

std::optional<NodeId> Netlist::find_node(std::string_view name) const {
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return it->second;
  }
  return std::nullopt;
}

DeviceId Netlist::add_transistor(TransistorType type, NodeId gate,
                                 NodeId source, NodeId drain, Meters width,
                                 Meters length, Flow flow) {
  check_node(gate);
  check_node(source);
  check_node(drain);
  SLDM_EXPECTS(source != drain);
  SLDM_EXPECTS(width > 0.0 && length > 0.0);
  const DeviceId id(static_cast<DeviceId::underlying_type>(devices_.size()));
  devices_.push_back(Transistor{.type = type,
                                .gate = gate,
                                .source = source,
                                .drain = drain,
                                .width = width,
                                .length = length,
                                .flow = flow});
  gated_by_[gate.index()].push_back(id);
  channels_at_[source.index()].push_back(id);
  channels_at_[drain.index()].push_back(id);
  log_.record(ChangeKind::kDeviceAdded, id.value());
  return id;
}

const Node& Netlist::node(NodeId id) const {
  check_node(id);
  return nodes_[id.index()];
}

Node& Netlist::node(NodeId id) {
  check_node(id);
  return nodes_[id.index()];
}

const Transistor& Netlist::device(DeviceId id) const {
  SLDM_EXPECTS(id.valid() && id.index() < devices_.size());
  return devices_[id.index()];
}

void Netlist::set_flow(DeviceId id, Flow flow) {
  check_device(id);
  devices_[id.index()].flow = flow;
  log_.record(ChangeKind::kDeviceFlow, id.value());
}

void Netlist::set_width(DeviceId id, Meters width) {
  check_device(id);
  SLDM_EXPECTS(width > 0.0);
  devices_[id.index()].width = width;
  log_.record(ChangeKind::kDeviceSized, id.value());
}

void Netlist::set_length(DeviceId id, Meters length) {
  check_device(id);
  SLDM_EXPECTS(length > 0.0);
  devices_[id.index()].length = length;
  log_.record(ChangeKind::kDeviceSized, id.value());
}

void Netlist::set_capacitance(NodeId n, Farads cap) {
  check_node(n);
  SLDM_EXPECTS(cap >= 0.0);
  nodes_[n.index()].cap = cap;
  log_.record(ChangeKind::kNodeCap, n.value());
}

void Netlist::set_fixed(NodeId n, std::optional<bool> value) {
  check_node(n);
  nodes_[n.index()].fixed =
      value ? static_cast<std::int8_t>(*value ? 1 : 0) : std::int8_t{-1};
  log_.record(ChangeKind::kNodeFixed, n.value());
}

std::vector<NodeId> Netlist::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.push_back(NodeId(static_cast<NodeId::underlying_type>(i)));
  }
  return out;
}

std::vector<DeviceId> Netlist::device_ids() const {
  std::vector<DeviceId> out;
  out.reserve(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    out.push_back(DeviceId(static_cast<DeviceId::underlying_type>(i)));
  }
  return out;
}

const std::vector<DeviceId>& Netlist::gated_by(NodeId n) const {
  check_node(n);
  return gated_by_[n.index()];
}

const std::vector<DeviceId>& Netlist::channels_at(NodeId n) const {
  check_node(n);
  return channels_at_[n.index()];
}

NodeId Netlist::mark_power(std::string_view name) {
  const NodeId id = add_node(name);
  nodes_[id.index()].is_power = true;
  log_.record(ChangeKind::kNodeRole, id.value());
  return id;
}

NodeId Netlist::mark_ground(std::string_view name) {
  const NodeId id = add_node(name);
  nodes_[id.index()].is_ground = true;
  log_.record(ChangeKind::kNodeRole, id.value());
  return id;
}

NodeId Netlist::mark_input(std::string_view name) {
  const NodeId id = add_node(name);
  nodes_[id.index()].is_input = true;
  log_.record(ChangeKind::kNodeRole, id.value());
  return id;
}

NodeId Netlist::mark_output(std::string_view name) {
  const NodeId id = add_node(name);
  nodes_[id.index()].is_output = true;
  log_.record(ChangeKind::kNodeRoleOutput, id.value());
  return id;
}

NodeId Netlist::mark_precharged(std::string_view name) {
  const NodeId id = add_node(name);
  nodes_[id.index()].is_precharged = true;
  log_.record(ChangeKind::kNodeRole, id.value());
  return id;
}

bool Netlist::is_rail(NodeId n) const {
  const Node& info = node(n);
  return info.is_power || info.is_ground;
}

void Netlist::add_cap(NodeId n, Farads extra) {
  SLDM_EXPECTS(extra >= 0.0);
  node(n).cap += extra;
  log_.record(ChangeKind::kNodeCap, n.value());
}

std::optional<NodeId> Netlist::power_node() const {
  std::optional<NodeId> found;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_power) {
      if (found) return std::nullopt;  // ambiguous
      found = NodeId(static_cast<NodeId::underlying_type>(i));
    }
  }
  return found;
}

std::optional<NodeId> Netlist::ground_node() const {
  std::optional<NodeId> found;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_ground) {
      if (found) return std::nullopt;  // ambiguous
      found = NodeId(static_cast<NodeId::underlying_type>(i));
    }
  }
  return found;
}

void Netlist::check_node(NodeId id) const {
  SLDM_EXPECTS(id.valid() && id.index() < nodes_.size());
}

void Netlist::check_device(DeviceId id) const {
  SLDM_EXPECTS(id.valid() && id.index() < devices_.size());
}

}  // namespace sldm
