#include "netlist/stats.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"
#include "util/units.h"

namespace sldm {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.nodes = nl.node_count();
  s.devices = nl.device_count();
  for (DeviceId d : nl.all_devices()) {
    const Transistor& t = nl.device(d);
    ++s.devices_by_type[static_cast<std::size_t>(t.type)];
    const double aspect = t.aspect();
    if (s.min_aspect == 0.0 || aspect < s.min_aspect) s.min_aspect = aspect;
    s.max_aspect = std::max(s.max_aspect, aspect);
  }
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.is_input) ++s.inputs;
    if (info.is_output) ++s.outputs;
    if (info.is_precharged) ++s.precharged;
    if (info.is_power) ++s.power_rails;
    if (info.is_ground) ++s.ground_rails;
    s.explicit_cap_total += info.cap;
    s.max_gate_fanout = std::max(s.max_gate_fanout, nl.gated_by(n).size());
    s.max_channel_degree =
        std::max(s.max_channel_degree, nl.channels_at(n).size());
  }
  return s;
}

std::string to_string(const NetlistStats& s) {
  std::ostringstream os;
  os << format("nodes: %zu  devices: %zu (e=%zu d=%zu p=%zu)\n", s.nodes,
               s.devices,
               s.devices_by_type[static_cast<std::size_t>(
                   TransistorType::kNEnhancement)],
               s.devices_by_type[static_cast<std::size_t>(
                   TransistorType::kNDepletion)],
               s.devices_by_type[static_cast<std::size_t>(
                   TransistorType::kPEnhancement)]);
  os << format("roles: %zu inputs, %zu outputs, %zu precharged, rails %zu/%zu\n",
               s.inputs, s.outputs, s.precharged, s.power_rails,
               s.ground_rails);
  os << format("explicit cap: %.1f fF;  W/L range: %.2f .. %.2f\n",
               to_fF(s.explicit_cap_total), s.min_aspect, s.max_aspect);
  os << format("max gate fanout: %zu;  max channel degree: %zu\n",
               s.max_gate_fanout, s.max_channel_degree);
  return os.str();
}

}  // namespace sldm
