// Strong identifier types and enumerations shared across the switch-level
// representation.
//
// NodeId/DeviceId are index-like handles into a Netlist.  They are distinct
// types (Core Guidelines I.4) so a transistor index can never be passed
// where a node index is expected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace sldm {

namespace detail {

/// A type-tagged index.  `Tag` distinguishes unrelated id spaces.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type value) : value_(value) {}

  constexpr underlying_type value() const { return value_; }
  constexpr std::size_t index() const { return value_; }

  /// A sentinel distinct from every id produced by a Netlist.
  static constexpr Id invalid() { return Id(UINT32_MAX); }
  constexpr bool valid() const { return value_ != UINT32_MAX; }

  friend constexpr bool operator==(Id a, Id b) = default;
  friend constexpr auto operator<=>(Id a, Id b) = default;

 private:
  underlying_type value_ = UINT32_MAX;
};

struct NodeTag {};
struct DeviceTag {};

}  // namespace detail

/// Handle to a circuit node (an electrical net).
using NodeId = detail::Id<detail::NodeTag>;
/// Handle to a transistor.
using DeviceId = detail::Id<detail::DeviceTag>;

/// An allocation-free range of dense ids [0, count), for hot loops:
/// `for (NodeId n : nl.all_nodes())`.  Contrast Netlist::node_ids(),
/// which materializes a vector (convenience only).
template <typename IdT>
class IdRange {
 public:
  class iterator {
   public:
    constexpr explicit iterator(typename IdT::underlying_type v) : v_(v) {}
    constexpr IdT operator*() const { return IdT(v_); }
    constexpr iterator& operator++() {
      ++v_;
      return *this;
    }
    friend constexpr bool operator==(iterator a, iterator b) = default;

   private:
    typename IdT::underlying_type v_;
  };

  constexpr explicit IdRange(std::size_t count)
      : count_(static_cast<typename IdT::underlying_type>(count)) {}

  constexpr iterator begin() const { return iterator(0); }
  constexpr iterator end() const { return iterator(count_); }
  constexpr std::size_t size() const { return count_; }

 private:
  typename IdT::underlying_type count_;
};

/// Switch-level transistor types.
///
/// NEnh / PEnh are the ordinary enhancement devices of nMOS and CMOS
/// processes; NDep is the depletion-mode pull-up load used in E/D nMOS
/// (gate tied to source, always conducting).
enum class TransistorType : std::uint8_t {
  kNEnhancement,
  kNDepletion,
  kPEnhancement,
};

/// Short mnemonic used in reports and .sim files ("e", "d", "p").
std::string to_letter(TransistorType t);
/// Long human-readable name.
std::string to_string(TransistorType t);

/// Signal-flow restriction on a transistor channel (Crystal's flow
/// attributes).  Electrically a channel is symmetric, but in pass logic
/// the designer knows which way information moves; annotating it prunes
/// false paths that would otherwise flow "backward" through a mux or
/// shifter array.
enum class Flow : std::uint8_t {
  kBidirectional,   ///< default: either direction
  kSourceToDrain,   ///< signal enters at source, leaves at drain
  kDrainToSource,   ///< signal enters at drain, leaves at source
};

std::string to_string(Flow f);

/// Signal transition direction at a node.
enum class Transition : std::uint8_t {
  kRise,  ///< low-to-high
  kFall,  ///< high-to-low
};

/// The opposite transition.
constexpr Transition opposite(Transition t) {
  return t == Transition::kRise ? Transition::kFall : Transition::kRise;
}

std::string to_string(Transition t);

}  // namespace sldm

template <typename Tag>
struct std::hash<sldm::detail::Id<Tag>> {
  std::size_t operator()(sldm::detail::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
