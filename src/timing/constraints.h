// Timing-constraint files: the reproduction of Crystal's command files,
// which declared when each chip input switches and what cycle budget
// the outputs must meet.
//
// Format (one directive per line, '#' comments):
//
//   input <node> <rise|fall|both> at <ns> slope <ns>
//   require <ns>
//
// Example:
//   input phi1 rise at 0 slope 1.5
//   input data both at 2 slope 2
//   require 45
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "timing/analyzer.h"
#include "util/units.h"

namespace sldm {

/// One declared input event.
struct InputConstraint {
  std::string node;
  /// nullopt = both transitions.
  std::optional<Transition> dir;
  Seconds time = 0.0;
  Seconds slope = 0.0;
};

/// A parsed constraint set.
struct Constraints {
  std::vector<InputConstraint> inputs;
  std::optional<Seconds> required;  ///< cycle budget, if declared

  /// Seeds the analyzer with every declared event.  Throws Error if a
  /// named node does not exist or is not an input.
  void apply(const Netlist& nl, TimingAnalyzer& analyzer) const;
};

/// Parses a constraint stream.  Throws ParseError on malformed input.
Constraints read_constraints(std::istream& in,
                             const std::string& origin = "<stream>");
Constraints read_constraints_file(const std::string& path);

/// Writes the set back out in the same format.
void write_constraints(const Constraints& c, std::ostream& out);

}  // namespace sldm
