#include "timing/report.h"

#include <sstream>

#include "util/strings.h"
#include "util/text_table.h"

namespace sldm {

std::string format_path(const Netlist& nl, const std::vector<PathStep>& path) {
  std::ostringstream os;
  for (const PathStep& s : path) {
    os << format("%10.3f ns  %-6s %-12s slope %.3f ns  %s\n",
                 to_ns(s.time), to_string(s.dir).c_str(),
                 nl.node(s.node).name.c_str(), to_ns(s.slope),
                 s.description.c_str());
  }
  return os.str();
}

std::string format_output_arrivals(const Netlist& nl,
                                   const TimingAnalyzer& analyzer) {
  TextTable table({"output", "rise (ns)", "fall (ns)"});
  for (NodeId n : nl.node_ids()) {
    if (!nl.node(n).is_output) continue;
    const auto rise = analyzer.arrival(n, Transition::kRise);
    const auto fall = analyzer.arrival(n, Transition::kFall);
    table.add_row({nl.node(n).name,
                   rise ? format("%.3f", to_ns(rise->time)) : "-",
                   fall ? format("%.3f", to_ns(fall->time)) : "-"});
  }
  return table.to_string();
}

std::string format_all_arrivals(const Netlist& nl,
                                const TimingAnalyzer& analyzer) {
  TextTable table({"node", "rise (ns)", "rise slope", "fall (ns)",
                   "fall slope"});
  for (NodeId n : nl.node_ids()) {
    if (nl.node(n).is_input || nl.is_rail(n)) continue;
    const auto rise = analyzer.arrival(n, Transition::kRise);
    const auto fall = analyzer.arrival(n, Transition::kFall);
    if (!rise && !fall) continue;
    table.add_row({nl.node(n).name,
                   rise ? format("%.3f", to_ns(rise->time)) : "-",
                   rise ? format("%.3f", to_ns(rise->slope)) : "-",
                   fall ? format("%.3f", to_ns(fall->time)) : "-",
                   fall ? format("%.3f", to_ns(fall->slope)) : "-"});
  }
  return table.to_string();
}

}  // namespace sldm
