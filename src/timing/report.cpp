#include "timing/report.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/json.h"
#include "util/strings.h"
#include "util/text_table.h"

namespace sldm {

std::string format_path(const Netlist& nl, const std::vector<PathStep>& path) {
  std::ostringstream os;
  for (const PathStep& s : path) {
    os << format("%10.3f ns  %-6s %-12s slope %.3f ns  %s\n",
                 to_ns(s.time), to_string(s.dir).c_str(),
                 nl.node(s.node).name.c_str(), to_ns(s.slope),
                 s.description.c_str());
  }
  return os.str();
}

std::string format_output_arrivals(const Netlist& nl,
                                   const TimingAnalyzer& analyzer) {
  return format_output_arrivals(nl, analyzer.session());
}

std::string format_output_arrivals(const Netlist& nl,
                                   const Session& session) {
  TextTable table({"output", "rise (ns)", "fall (ns)"});
  for (NodeId n : nl.all_nodes()) {
    if (!nl.node(n).is_output) continue;
    const auto rise = session.arrival(n, Transition::kRise);
    const auto fall = session.arrival(n, Transition::kFall);
    table.add_row({nl.node(n).name.str(),
                   rise ? format("%.3f", to_ns(rise->time)) : "-",
                   fall ? format("%.3f", to_ns(fall->time)) : "-"});
  }
  return table.to_string();
}

std::string format_all_arrivals(const Netlist& nl,
                                const TimingAnalyzer& analyzer) {
  TextTable table({"node", "rise (ns)", "rise slope", "fall (ns)",
                   "fall slope"});
  for (NodeId n : nl.all_nodes()) {
    if (nl.node(n).is_input || nl.is_rail(n)) continue;
    const auto rise = analyzer.arrival(n, Transition::kRise);
    const auto fall = analyzer.arrival(n, Transition::kFall);
    if (!rise && !fall) continue;
    table.add_row({nl.node(n).name.str(),
                   rise ? format("%.3f", to_ns(rise->time)) : "-",
                   rise ? format("%.3f", to_ns(rise->slope)) : "-",
                   fall ? format("%.3f", to_ns(fall->time)) : "-",
                   fall ? format("%.3f", to_ns(fall->slope)) : "-"});
  }
  return table.to_string();
}

std::string format_analyzer_stats(const Netlist& nl,
                                  const TimingAnalyzer& analyzer,
                                  std::size_t max_cccs) {
  const AnalyzerStats& st = analyzer.stats();
  std::ostringstream os;
  os << "analyzer stats:\n"
     << format("  extraction : %9.3f ms  (%zu stages, %zu CCCs, "
               "%d thread%s)\n",
               st.extract_seconds * 1e3, st.stage_count, st.ccc_count,
               st.threads, st.threads == 1 ? "" : "s")
     << format("  propagation: %9.3f ms  (%zu stage evaluations, "
               "%zu worklist pushes, %zu arrival updates)\n",
               st.propagate_seconds * 1e3, st.stage_evaluations,
               st.worklist_pushes, st.arrival_updates);
  if (st.batches > 0) {
    os << format("  wavefronts : %9zu batches  (mean %.1f, max %zu "
                 "evaluations per batch)\n",
                 st.batches, st.mean_batch_size, st.max_batch_size);
  }
  if (st.incremental_updates > 0) {
    os << format("  eco update : %9.3f ms  (%zu absorbed; last: %zu dirty "
                 "CCC%s, %zu reused / %zu re-extracted stages, "
                 "%zu invalidated arrivals)\n",
                 st.update_seconds * 1e3, st.incremental_updates,
                 st.dirty_cccs, st.dirty_cccs == 1 ? "" : "s",
                 st.reused_stages, st.reextracted_stages, st.frontier_keys);
  }

  // Per-CCC census, largest stage contribution first.
  std::vector<std::size_t> order(st.stages_per_ccc.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return st.stages_per_ccc[a] > st.stages_per_ccc[b];
                   });
  if (order.size() > max_cccs) order.resize(max_cccs);
  const CccPartition& ccc = analyzer.components();
  TextTable table({"ccc", "nodes", "devices", "stages", "example node"});
  for (std::size_t c : order) {
    table.add_row({std::to_string(c),
                   std::to_string(ccc.members(c).size()),
                   std::to_string(ccc.device_count(c)),
                   std::to_string(st.stages_per_ccc[c]),
                   nl.node(ccc.members(c).front()).name.str()});
  }
  os << table.to_string();
  return os.str();
}

std::string analyzer_stats_json(const AnalyzerStats& st) {
  std::ostringstream os;
  os << '{' << format("\"ccc_count\":%zu", st.ccc_count)
     << format(",\"widest_ccc\":%zu", st.widest_ccc)
     << format(",\"stage_count\":%zu", st.stage_count)
     << format(",\"stage_evaluations\":%zu", st.stage_evaluations)
     << format(",\"worklist_pushes\":%zu", st.worklist_pushes)
     << format(",\"arrival_updates\":%zu", st.arrival_updates)
     << format(",\"batches\":%zu", st.batches)
     << ",\"mean_batch_size\":" << json_number(st.mean_batch_size)
     << format(",\"max_batch_size\":%zu", st.max_batch_size)
     << ",\"extract_seconds\":" << json_number(st.extract_seconds)
     << ",\"propagate_seconds\":" << json_number(st.propagate_seconds)
     << format(",\"threads\":%d", st.threads)
     << format(",\"incremental_updates\":%zu", st.incremental_updates)
     << format(",\"dirty_cccs\":%zu", st.dirty_cccs)
     << format(",\"reextracted_stages\":%zu", st.reextracted_stages)
     << format(",\"reused_stages\":%zu", st.reused_stages)
     << format(",\"frontier_keys\":%zu", st.frontier_keys)
     << ",\"update_seconds\":" << json_number(st.update_seconds) << '}';
  return os.str();
}

std::string analyzer_stats_json(const TimingAnalyzer& analyzer) {
  std::string json = analyzer_stats_json(analyzer.stats());
  json.pop_back();  // drop the closing brace
  json += ",\"metrics\":";
  json += analyzer.metrics().to_json();
  json += '}';
  return json;
}

}  // namespace sldm
