#include "timing/charge_sharing.h"

#include <queue>
#include <sstream>

#include "timing/stage_extract.h"
#include "util/contracts.h"
#include "util/strings.h"

namespace sldm {

ChargeSharingResult analyze_charge_sharing(
    const Netlist& nl, const Tech& tech, NodeId node,
    const ChargeSharingOptions& options) {
  SLDM_EXPECTS(nl.node(node).is_precharged);

  ChargeSharingResult result;
  result.node = node;
  result.node_cap = tech.node_capacitance(nl, node);
  result.v_initial = tech.vdd();

  // Breadth-first over channel edges through potentially-conducting
  // devices; rails, inputs, and other precharged nodes terminate the
  // search (they hold their own level and do not drain charge through
  // redistribution -- a path to a rail is a *drive* event, handled by
  // delay analysis, not charge sharing).
  std::vector<int> depth(nl.node_count(), -1);
  depth[node.index()] = 0;
  std::queue<NodeId> work;
  work.push(node);
  while (!work.empty()) {
    const NodeId n = work.front();
    work.pop();
    if (depth[n.index()] >= options.max_depth) continue;
    for (DeviceId d : nl.channels_at(n)) {
      if (!can_conduct(nl, d)) continue;
      const NodeId m = nl.device(d).other_end(n);
      if (depth[m.index()] >= 0) continue;
      const Node& info = nl.node(m);
      if (info.is_power || info.is_ground || info.is_input ||
          info.is_precharged) {
        continue;
      }
      depth[m.index()] = depth[n.index()] + 1;
      result.sharing_nodes.push_back(m);
      result.shared_cap += tech.node_capacitance(nl, m);
      work.push(m);
    }
  }

  result.v_after = result.v_initial * result.node_cap /
                   (result.node_cap + result.shared_cap);
  SLDM_ENSURES(result.v_after > 0.0);
  SLDM_ENSURES(result.v_after <= result.v_initial);
  return result;
}

std::vector<ChargeSharingResult> analyze_all_charge_sharing(
    const Netlist& nl, const Tech& tech,
    const ChargeSharingOptions& options) {
  std::vector<ChargeSharingResult> out;
  for (NodeId n : nl.all_nodes()) {
    if (nl.node(n).is_precharged) {
      out.push_back(analyze_charge_sharing(nl, tech, n, options));
    }
  }
  return out;
}

std::string format_charge_sharing(const Netlist& nl,
                                  const std::vector<ChargeSharingResult>& rs,
                                  Volts threshold) {
  std::ostringstream os;
  for (const ChargeSharingResult& r : rs) {
    os << format("%-12s %7.1f fF holds, %7.1f fF shareable: %.2f V -> %.2f V",
                 nl.node(r.node).name.c_str(), to_fF(r.node_cap),
                 to_fF(r.shared_cap), r.v_initial, r.v_after);
    if (r.fails(threshold)) {
      os << format("  ** FAILS (threshold %.2f V)", threshold);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sldm
