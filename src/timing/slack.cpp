#include "timing/slack.h"

#include <algorithm>
#include <sstream>

#include "timing/report.h"
#include "util/contracts.h"
#include "util/strings.h"

namespace sldm {

std::vector<SlackEntry> SlackReport::violations() const {
  std::vector<SlackEntry> out;
  for (const SlackEntry& e : entries) {
    if (e.slack < 0.0) out.push_back(e);
  }
  return out;
}

std::optional<Seconds> SlackReport::worst_slack() const {
  if (entries.empty()) return std::nullopt;
  return entries.front().slack;
}

SlackReport compute_slack(const Netlist& nl, const TimingAnalyzer& analyzer,
                          Seconds required) {
  SLDM_EXPECTS(required > 0.0);
  SlackReport report;
  report.required = required;
  for (NodeId n : nl.all_nodes()) {
    if (!nl.node(n).is_output) continue;
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto info = analyzer.arrival(n, dir);
      if (!info) continue;
      SlackEntry e;
      e.node = n;
      e.dir = dir;
      e.arrival = info->time;
      e.required = required;
      e.slack = required - info->time;
      report.entries.push_back(e);
    }
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const SlackEntry& a, const SlackEntry& b) {
              return a.slack < b.slack;
            });
  return report;
}

std::string format_slack(const Netlist& nl, const TimingAnalyzer& analyzer,
                         const SlackReport& report) {
  std::ostringstream os;
  os << format("required time: %.3f ns\n", to_ns(report.required));
  for (const SlackEntry& e : report.entries) {
    os << format("%-12s %-5s arrival %8.3f ns  slack %8.3f ns%s\n",
                 nl.node(e.node).name.c_str(), to_string(e.dir).c_str(),
                 to_ns(e.arrival), to_ns(e.slack),
                 e.slack < 0.0 ? "  ** VIOLATION" : "");
  }
  if (!report.entries.empty() && report.entries.front().slack < 0.0) {
    const SlackEntry& worst = report.entries.front();
    os << "\nworst violating path:\n"
       << format_path(nl, analyzer.critical_path(worst.node, worst.dir));
  }
  return os.str();
}

}  // namespace sldm
