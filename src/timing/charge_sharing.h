// Charge-sharing analysis for dynamic (precharged) nodes.
//
// Crystal's companion check to delay analysis: when pass/select
// transistors connect a precharged node to initially-discharged
// internal capacitance, the stored charge redistributes before (or
// instead of) any drive arrives, sagging the dynamic level to
//   V_after = V_pre * C_dyn / (C_dyn + C_shared).
// If V_after drops below the receiver threshold the circuit fails even
// though every *delay* constraint passes.  The worst case assumes every
// potentially-conducting transistor is on and every reachable internal
// node starts empty.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "tech/tech.h"

namespace sldm {

/// Worst-case charge sharing at one precharged node.
struct ChargeSharingResult {
  NodeId node = NodeId::invalid();
  Farads node_cap = 0.0;    ///< capacitance holding the precharge
  Farads shared_cap = 0.0;  ///< worst-case connectible empty capacitance
  Volts v_initial = 0.0;
  Volts v_after = 0.0;  ///< post-redistribution level
  /// Internal nodes that can share charge (through potentially
  /// conducting, non-rail paths).
  std::vector<NodeId> sharing_nodes;

  /// True if the sag crosses below `threshold`.
  bool fails(Volts threshold) const { return v_after < threshold; }
};

/// Analysis limits.
struct ChargeSharingOptions {
  /// Maximum channel hops explored from the dynamic node.
  int max_depth = 8;
};

/// Analyzes one precharged node.  Precondition: the node is marked
/// precharged.
ChargeSharingResult analyze_charge_sharing(
    const Netlist& nl, const Tech& tech, NodeId node,
    const ChargeSharingOptions& options = {});

/// Analyzes every precharged node in the netlist.
std::vector<ChargeSharingResult> analyze_all_charge_sharing(
    const Netlist& nl, const Tech& tech,
    const ChargeSharingOptions& options = {});

/// A rendered report; failing nodes (below `threshold`) are flagged.
std::string format_charge_sharing(const Netlist& nl,
                                  const std::vector<ChargeSharingResult>& rs,
                                  Volts threshold);

}  // namespace sldm
