// Critical-path explain traces (the paper's Section 6 reports, with
// the arithmetic shown).
//
// An arrival explained is the critical path into one (node, transition)
// with every stage on it *re-evaluated* through the delay model's audit
// hook (DelayModel::estimate_audited): each step carries the generic
// stage electricals (path resistance, capacitances, Elmore constant,
// input slope) plus the model-specific terms (e.g. the slope model's
// rho and table multipliers), so a surprising arrival can be traced to
// the R, C, and slope values it was computed from.
//
// The re-evaluation is exact, not approximate: the stored predecessor
// slope feeds make_stage() just as it did during propagation, so each
// step's audited delay is bit-identical to the delay that was committed
// -- the per-stage delays sum to the reported arrival.
#pragma once

#include <string>
#include <vector>

#include "timing/analyzer.h"

namespace sldm {

/// One event of an explained arrival, seed first.
struct ExplainStep {
  NodeId node;
  Transition dir = Transition::kRise;
  Seconds arrival = 0.0;  ///< committed arrival at (node, dir)
  Seconds slope = 0.0;    ///< committed slope at (node, dir)
  bool is_seed = false;   ///< primary-input event (no stage, no audit)
  /// This stage's contribution: audit.estimate.delay.  0 for seeds.
  Seconds delay = 0.0;
  std::string stage;  ///< describe() of the winning stage; "" for seeds
  /// The audited re-evaluation; meaningful only when !is_seed.
  DelayAudit audit;
};

/// An explained arrival: the event chain and its per-stage breakdown.
struct ExplainReport {
  NodeId node;
  Transition dir = Transition::kRise;
  Seconds arrival = 0.0;  ///< == steps.back().arrival
  std::vector<ExplainStep> steps;  ///< seed first
};

/// Walks the stored predecessor links from (node, dir) back to its seed
/// and re-evaluates every stage on the path through estimate_audited.
/// Preconditions: the session has run and arrival(node, dir) has a
/// value (Error otherwise).
ExplainReport explain_arrival(const Session& session, NodeId node,
                              Transition dir);

/// Facade form over the analyzer's attached session.
ExplainReport explain_arrival(const TimingAnalyzer& analyzer, NodeId node,
                              Transition dir);

/// Multi-line human-readable rendering: one block per event with the
/// stage delay, the stage description, and the audit terms.
std::string format_explain(const Netlist& nl, const ExplainReport& report);

/// One JSON object (schema in FORMATS.md): the chain as a "steps"
/// array, each non-seed step carrying its audit record.
std::string explain_json(const Netlist& nl, const ExplainReport& report);

}  // namespace sldm
