#include "timing/constraints.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/contracts.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {

void Constraints::apply(const Netlist& nl, TimingAnalyzer& analyzer) const {
  for (const InputConstraint& c : inputs) {
    const auto node = nl.find_node(c.node);
    if (!node) throw Error("constraint names unknown node '" + c.node + "'");
    if (!nl.node(*node).is_input) {
      throw Error("constraint node '" + c.node + "' is not a chip input");
    }
    if (c.dir) {
      analyzer.add_input_event(*node, *c.dir, c.time, c.slope);
    } else {
      analyzer.add_input_event(*node, Transition::kRise, c.time, c.slope);
      analyzer.add_input_event(*node, Transition::kFall, c.time, c.slope);
    }
  }
}

Constraints read_constraints(std::istream& in, const std::string& origin) {
  Constraints out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto tokens = split_ws(stripped);
    SLDM_ASSERT(!tokens.empty());

    if (tokens[0] == "input") {
      if (tokens.size() != 7 || tokens[3] != "at" || tokens[5] != "slope") {
        throw ParseError(origin, lineno,
                         "expected: input <node> <rise|fall|both> at <ns> "
                         "slope <ns>");
      }
      InputConstraint c;
      c.node = tokens[1];
      if (tokens[2] == "rise") {
        c.dir = Transition::kRise;
      } else if (tokens[2] == "fall") {
        c.dir = Transition::kFall;
      } else if (tokens[2] == "both") {
        c.dir = std::nullopt;
      } else {
        throw ParseError(origin, lineno,
                         "bad transition '" + tokens[2] + "'");
      }
      const auto t = parse_finite_double(tokens[4]);
      const auto s = parse_finite_double(tokens[6]);
      if (!t) throw ParseError(origin, lineno, "bad time");
      if (!s || *s < 0.0) throw ParseError(origin, lineno, "bad slope");
      c.time = *t * units::ns;
      c.slope = *s * units::ns;
      out.inputs.push_back(std::move(c));
      continue;
    }

    if (tokens[0] == "require") {
      if (tokens.size() != 2) {
        throw ParseError(origin, lineno, "expected: require <ns>");
      }
      const auto r = parse_finite_double(tokens[1]);
      if (!r || *r <= 0.0) throw ParseError(origin, lineno, "bad budget");
      out.required = *r * units::ns;
      continue;
    }

    throw ParseError(origin, lineno, "unknown directive '" + tokens[0] + "'");
  }
  return out;
}

Constraints read_constraints_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open constraints file: " + path);
  return read_constraints(in, path);
}

void write_constraints(const Constraints& c, std::ostream& out) {
  out << "# sldm timing constraints\n";
  for (const InputConstraint& i : c.inputs) {
    const char* dir = !i.dir ? "both"
                     : *i.dir == Transition::kRise ? "rise"
                                                   : "fall";
    out << format("input %s %s at %.6g slope %.6g\n", i.node.c_str(), dir,
                  to_ns(i.time), to_ns(i.slope));
  }
  if (c.required) {
    out << format("require %.6g\n", to_ns(*c.required));
  }
}

}  // namespace sldm
