#include "timing/ccc.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"

namespace sldm {
namespace {

/// Union-find with path halving; components are extracted in a second
/// deterministic pass, so no union-by-rank bookkeeping is needed beyond
/// keeping the smaller root (which also makes roots deterministic).
std::size_t find_root(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

CccPartition::CccPartition(const Netlist& nl)
    : component_of_(nl.node_count(), kNone) {
  const std::size_t n = nl.node_count();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});

  auto is_bridge = [&](NodeId id) { return !nl.is_rail(id); };

  for (DeviceId d : nl.device_ids()) {
    const Transistor& t = nl.device(d);
    if (is_bridge(t.source) && is_bridge(t.drain)) {
      std::size_t a = find_root(parent, t.source.index());
      std::size_t b = find_root(parent, t.drain.index());
      if (a == b) continue;
      if (b < a) std::swap(a, b);
      parent[b] = a;  // smaller index wins: deterministic roots
    }
  }

  // Number components in order of smallest member id and collect
  // members (node_ids() is ascending, so members come out sorted).
  std::vector<std::size_t> component_of_root(n, kNone);
  for (NodeId id : nl.node_ids()) {
    if (nl.is_rail(id)) continue;
    if (nl.channels_at(id).empty()) continue;  // gate-only node
    const std::size_t root = find_root(parent, id.index());
    std::size_t& c = component_of_root[root];
    if (c == kNone) {
      c = members_.size();
      members_.emplace_back();
    }
    component_of_[id.index()] = c;
    members_[c].push_back(id);
  }

  // Attribute devices: a device belongs to every component one of its
  // channel terminals is in (at most one, since rails are not bridges
  // and non-rail terminals of one device share a component).
  device_counts_.assign(members_.size(), 0);
  for (DeviceId d : nl.device_ids()) {
    const Transistor& t = nl.device(d);
    std::size_t c = component_of_[t.source.index()];
    if (c == kNone) c = component_of_[t.drain.index()];
    if (c != kNone) ++device_counts_[c];
  }
}

const std::vector<NodeId>& CccPartition::members(std::size_t c) const {
  SLDM_EXPECTS(c < members_.size());
  return members_[c];
}

std::size_t CccPartition::device_count(std::size_t c) const {
  SLDM_EXPECTS(c < device_counts_.size());
  return device_counts_[c];
}

std::size_t CccPartition::widest() const {
  std::size_t best = 0;
  for (const auto& m : members_) best = std::max(best, m.size());
  return best;
}

}  // namespace sldm
