#include "timing/ccc.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"
#include "util/error.h"
#include "util/trace.h"

namespace sldm {
namespace {

/// Union-find with path halving; components are extracted in a second
/// deterministic pass, so no union-by-rank bookkeeping is needed beyond
/// keeping the smaller root (which also makes roots deterministic).
std::size_t find_root(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

/// Merges the channel terminals of one device (rails never bridge).
void union_device(const Netlist& nl, std::vector<std::size_t>& parent,
                  const Transistor& t) {
  if (nl.is_rail(t.source) || nl.is_rail(t.drain)) return;
  std::size_t a = find_root(parent, t.source.index());
  std::size_t b = find_root(parent, t.drain.index());
  if (a == b) return;
  if (b < a) std::swap(a, b);
  parent[b] = a;  // smaller index wins: deterministic roots
}

}  // namespace

CccPartition::CccPartition(const Netlist& nl) : parent_(nl.node_count()) {
  TraceSpan span("ccc-partition", "timing");
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  for (DeviceId d : nl.all_devices()) {
    union_device(nl, parent_, nl.device(d));
  }
  renumber(nl);
  span.arg("nodes", static_cast<double>(nl.node_count()));
  span.arg("components", static_cast<double>(count()));
}

void CccPartition::renumber(const Netlist& nl) {
  const std::size_t n = nl.node_count();
  component_of_.assign(n, kNone);
  members_.clear();

  // Number components in order of smallest member id and collect
  // members (ids are iterated ascending, so members come out sorted).
  std::vector<std::size_t> component_of_root(n, kNone);
  for (NodeId id : nl.all_nodes()) {
    if (nl.is_rail(id)) continue;
    if (nl.channels_at(id).empty()) continue;  // gate-only node
    const std::size_t root = find_root(parent_, id.index());
    std::size_t& c = component_of_root[root];
    if (c == kNone) {
      c = members_.size();
      members_.emplace_back();
    }
    component_of_[id.index()] = c;
    members_[c].push_back(id);
  }

  // Attribute devices: a device belongs to every component one of its
  // channel terminals is in (at most one, since rails are not bridges
  // and non-rail terminals of one device share a component).
  device_counts_.assign(members_.size(), 0);
  for (DeviceId d : nl.all_devices()) {
    const Transistor& t = nl.device(d);
    std::size_t c = component_of_[t.source.index()];
    if (c == kNone) c = component_of_[t.drain.index()];
    if (c != kNone) ++device_counts_[c];
  }
}

std::vector<std::size_t> CccPartition::update(const Netlist& nl,
                                              const ChangeLog& log,
                                              std::uint64_t since) {
  SLDM_EXPECTS(since <= log.revision());
  SLDM_EXPECTS(parent_.size() <= nl.node_count());

  // First pass: classify the batch and collect the touched nodes (the
  // nodes whose owning components' stage sets may change).  Device
  // terminals are immutable, so resolving them after the whole batch
  // was applied to the netlist is equivalent to replaying in order.
  bool topological = false;
  std::vector<NodeId> touched;
  for (std::uint64_t i = since; i < log.revision(); ++i) {
    const Change& c = log.entry(i);
    switch (c.kind) {
      case ChangeKind::kNodeAdded:
        topological = true;  // membership handled by renumber()
        break;
      case ChangeKind::kDeviceAdded: {
        topological = true;
        const Transistor& t = nl.device(c.device());
        touched.push_back(t.gate);  // new gate load changes gate-node cap
        touched.push_back(t.source);
        touched.push_back(t.drain);
        break;
      }
      case ChangeKind::kDeviceSized: {
        // Resistance affects the channel's component; gate/diffusion
        // capacitance contributions affect every terminal's component.
        const Transistor& t = nl.device(c.device());
        touched.push_back(t.gate);
        touched.push_back(t.source);
        touched.push_back(t.drain);
        break;
      }
      case ChangeKind::kDeviceFlow: {
        const Transistor& t = nl.device(c.device());
        touched.push_back(t.source);
        touched.push_back(t.drain);
        break;
      }
      case ChangeKind::kNodeCap:
        touched.push_back(c.node());
        break;
      case ChangeKind::kNodeFixed:
        // The node stops/starts acting as a value source (its own
        // component), and every device it gates flips between
        // switching and constant-on/off (the gated channels'
        // components).
        touched.push_back(c.node());
        for (DeviceId d : nl.gated_by(c.node())) {
          touched.push_back(nl.device(d).source);
          touched.push_back(nl.device(d).drain);
        }
        break;
      case ChangeKind::kNodeRoleOutput:
        break;  // reporting only
      case ChangeKind::kNodeRole:
        throw Error(
            "incremental update cannot absorb a power/ground/input/"
            "precharge role change on node '" + nl.node(c.node()).name +
            "'; rebuild the analyzer");
    }
  }

  if (topological) {
    const std::size_t old_size = parent_.size();
    parent_.resize(nl.node_count());
    std::iota(parent_.begin() + static_cast<std::ptrdiff_t>(old_size),
              parent_.end(), old_size);
    // Only the added devices introduce new unions; existing roots are
    // already correct and components can only merge.
    for (std::uint64_t i = since; i < log.revision(); ++i) {
      const Change& c = log.entry(i);
      if (c.kind != ChangeKind::kDeviceAdded) continue;
      union_device(nl, parent_, nl.device(c.device()));
    }
    renumber(nl);
  }

  // Map touched nodes to components under the (possibly new) numbering.
  std::vector<std::size_t> dirty;
  dirty.reserve(touched.size());
  for (NodeId n : touched) {
    const std::size_t c = component_of(n);
    if (c != kNone) dirty.push_back(c);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

const std::vector<NodeId>& CccPartition::members(std::size_t c) const {
  SLDM_EXPECTS(c < members_.size());
  return members_[c];
}

std::size_t CccPartition::device_count(std::size_t c) const {
  SLDM_EXPECTS(c < device_counts_.size());
  return device_counts_[c];
}

std::size_t CccPartition::widest() const {
  std::size_t best = 0;
  for (const auto& m : members_) best = std::max(best, m.size());
  return best;
}

}  // namespace sldm
