#include "timing/stage_extract.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/contracts.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace sldm {
namespace {

/// Hard cap on enumerated paths per (node, direction); prevents blowup
/// on pathological pass-transistor meshes.
constexpr std::size_t kMaxPathsPerQuery = 20000;

bool is_source_for(const Netlist& nl, const ExtractOptions& options,
                   NodeId n, Transition dir) {
  const Node& info = nl.node(n);
  if (const auto fixed = known_value(nl, options, n)) {
    // A pinned node supplies its constant value.
    return dir == Transition::kRise ? *fixed : !*fixed;
  }
  if (dir == Transition::kRise) {
    if (info.is_precharged) return true;
  }
  return options.inputs_as_sources && info.is_input;
}

/// Value sources terminate traversal: a channel path never runs through
/// a rail, a pinned node, or an input.  A precharged node terminates
/// only rise-direction searches (where it acts as the source);
/// discharge paths legitimately run through precharged nodes (e.g. a
/// Manchester carry chain).
bool blocks_traversal(const Netlist& nl, const ExtractOptions& options,
                      NodeId n, Transition dir) {
  const Node& info = nl.node(n);
  return known_value(nl, options, n).has_value() || info.is_input ||
         (info.is_precharged && dir == Transition::kRise);
}

/// Depth-first enumeration of simple channel paths dest -> source into
/// `out` (cleared first).  `device_filter` restricts which devices may
/// appear on the path.  Flow annotations are enforced: moving the
/// *search* from node n to node m means the *signal* flows m -> n, so
/// the device must allow conduction entering at m.
///
/// Uses the scratch's visited marks and stack; both are restored to
/// their empty state on return (the DFS unmarks on unwind), so one
/// scratch serves any number of sequential queries without clearing.
template <typename Filter>
void enumerate_paths(const Netlist& nl, NodeId dest, Transition dir,
                     const ExtractOptions& options, Filter device_filter,
                     ExtractScratch& scratch, PathList& out) {
  out.clear();
  scratch.visited.resize(nl.node_count(), 0);
  auto& visited = scratch.visited;
  auto& stack = scratch.stack;
  SLDM_ASSERT(stack.empty());

  auto dfs = [&](auto&& self, NodeId n) -> void {
    if (out.size() >= kMaxPathsPerQuery) return;
    visited[n.index()] = 1;
    for (DeviceId d : nl.channels_at(n)) {
      if (!device_filter(d)) continue;
      const Transistor& t = nl.device(d);
      const NodeId m = t.other_end(n);
      if (visited[m.index()]) continue;
      if (!t.flow_allows_from(m)) continue;  // signal would flow m -> n
      stack.push_back(d);
      if (is_source_for(nl, options, m, dir)) {
        // Emit in source->dest order.
        out.devices.insert(out.devices.end(), stack.rbegin(), stack.rend());
        out.offsets.push_back(
            static_cast<std::uint32_t>(out.devices.size()));
      } else if (!blocks_traversal(nl, options, m, dir) &&
                 static_cast<int>(stack.size()) < options.max_depth) {
        self(self, m);
      }
      stack.pop_back();
    }
    visited[n.index()] = 0;
  };
  dfs(dfs, dest);
}

/// The node at the source end of a source->dest path.
template <typename It>
NodeId path_source(const Netlist& nl, NodeId dest, It first, It last) {
  // Walk from dest backwards to find the far end.
  NodeId cur = dest;
  for (It it = last; it != first;) {
    cur = nl.device(*--it).other_end(cur);
  }
  return cur;
}

/// Gate transition that turns an enhancement device ON.
Transition on_gate_dir(TransistorType type) {
  return type == TransistorType::kPEnhancement ? Transition::kFall
                                               : Transition::kRise;
}

}  // namespace

std::optional<bool> known_value(const Netlist& nl,
                                const ExtractOptions& options, NodeId n) {
  const Node& info = nl.node(n);
  if (info.is_power) return true;
  if (info.is_ground) return false;
  if (const auto it = options.fixed_values.find(n);
      it != options.fixed_values.end()) {
    return it->second;
  }
  return info.fixed_value();
}

bool can_conduct(const Netlist& nl, const ExtractOptions& options,
                 DeviceId d) {
  const Transistor& t = nl.device(d);
  if (t.type == TransistorType::kNDepletion) return true;
  const auto gate = known_value(nl, options, t.gate);
  if (!gate) return true;  // the gate can move: assume the worst case
  return t.type == TransistorType::kNEnhancement ? *gate : !*gate;
}

bool can_conduct(const Netlist& nl, DeviceId d) {
  return can_conduct(nl, ExtractOptions{}, d);
}

bool always_on(const Netlist& nl, const ExtractOptions& options, DeviceId d) {
  const Transistor& t = nl.device(d);
  if (t.type == TransistorType::kNDepletion) return true;
  const auto gate = known_value(nl, options, t.gate);
  if (!gate) return false;
  return t.type == TransistorType::kNEnhancement ? *gate : !*gate;
}

bool always_on(const Netlist& nl, DeviceId d) {
  return always_on(nl, ExtractOptions{}, d);
}

void stages_to(const Netlist& nl, NodeId dest, Transition dir,
               const ExtractOptions& options, ExtractScratch& scratch,
               std::vector<TimingStage>& out) {
  const Node& dest_info = nl.node(dest);
  // Rails, pinned nodes, and inputs never switch.
  if (known_value(nl, options, dest).has_value() || dest_info.is_input) {
    return;
  }

  // --- ON-trigger stages: a transistor on the path turns on. ----------
  enumerate_paths(
      nl, dest, dir, options,
      [&](DeviceId d) { return can_conduct(nl, options, d); }, scratch,
      scratch.paths);
  const PathList& paths = scratch.paths;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const auto first = paths.devices.begin() + paths.offsets[p];
    const auto last = paths.devices.begin() + paths.offsets[p + 1];
    const NodeId src = path_source(nl, dest, first, last);
    for (auto it = first; it != last; ++it) {
      const DeviceId d = *it;
      if (always_on(nl, options, d)) continue;  // loads never trigger
      out.push_back(TimingStage{.source = src,
                                .destination = dest,
                                .output_dir = dir,
                                .path = {first, last},
                                .trigger = d,
                                .trigger_gate_dir =
                                    on_gate_dir(nl.device(d).type),
                                .trigger_is_release = false});
    }
    // A chip-input source also fires the stage with its own edge (the
    // only trigger when every path device is constant-on).
    if (nl.node(src).is_input) {
      out.push_back(TimingStage{.source = src,
                                .destination = dest,
                                .output_dir = dir,
                                .path = {first, last},
                                .trigger = *first,
                                .trigger_gate_dir = dir,
                                .trigger_is_release = false,
                                .source_triggered = true});
    }
  }

  // --- Release stages: an always-on load restores the node after the
  // opposing network shuts off (ratioed logic). -------------------------
  enumerate_paths(
      nl, dest, dir, options,
      [&](DeviceId d) { return always_on(nl, options, d); }, scratch,
      scratch.load_paths);
  const PathList& load_paths = scratch.load_paths;
  if (load_paths.size() != 0) {
    enumerate_paths(
        nl, dest, opposite(dir), options,
        [&](DeviceId d) { return can_conduct(nl, options, d); }, scratch,
        scratch.opposing);
    // Each switching device on an opposing path is a release trigger
    // (sorted and deduplicated for a deterministic emission order).
    auto& triggers = scratch.release_triggers;
    triggers.clear();
    for (DeviceId d : scratch.opposing.devices) {
      if (!always_on(nl, options, d)) triggers.push_back(d);
    }
    std::sort(triggers.begin(), triggers.end());
    triggers.erase(std::unique(triggers.begin(), triggers.end()),
                   triggers.end());
    for (std::size_t p = 0; p < load_paths.size(); ++p) {
      const auto first = load_paths.devices.begin() + load_paths.offsets[p];
      const auto last =
          load_paths.devices.begin() + load_paths.offsets[p + 1];
      const NodeId src = path_source(nl, dest, first, last);
      // Only rail-driven loads restore a level.
      if (!nl.node(src).is_power && !nl.node(src).is_ground) continue;
      for (DeviceId d : triggers) {
        out.push_back(
            TimingStage{.source = src,
                        .destination = dest,
                        .output_dir = dir,
                        .path = {first, last},
                        .trigger = d,
                        .trigger_gate_dir =
                            opposite(on_gate_dir(nl.device(d).type)),
                        .trigger_is_release = true});
      }
    }
  }
}

std::vector<TimingStage> stages_to(const Netlist& nl, NodeId dest,
                                   Transition dir,
                                   const ExtractOptions& options) {
  std::vector<TimingStage> stages;
  ExtractScratch scratch;
  stages_to(nl, dest, dir, options, scratch, stages);
  return stages;
}

std::vector<TimingStage> extract_all_stages(const Netlist& nl,
                                            const ExtractOptions& options) {
  std::vector<TimingStage> all;
  ExtractScratch scratch;
  for (NodeId n : nl.all_nodes()) {
    if (nl.channels_at(n).empty()) continue;
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      stages_to(nl, n, dir, options, scratch, all);
    }
  }
  return all;
}

std::vector<std::vector<TimingStage>> extract_components(
    const Netlist& nl, const ExtractOptions& options, const CccPartition& ccc,
    const std::vector<std::size_t>& components, int threads) {
  SLDM_EXPECTS(threads >= 1);
  // Per-component buckets; each job writes only its own slots, so no
  // synchronization is needed beyond the pool's wait() barrier.
  std::vector<std::vector<TimingStage>> buckets(components.size());

  // Group components into contiguous chunks of roughly equal device
  // weight so a few big CCCs don't serialize the tail and thousands of
  // tiny ones don't drown the queue in task overhead.
  std::size_t total_weight = 0;
  for (const std::size_t c : components) {
    total_weight += ccc.device_count(c) + 1;
  }
  const std::size_t target_chunks =
      std::max<std::size_t>(1, static_cast<std::size_t>(threads) * 8);
  const std::size_t chunk_weight =
      std::max<std::size_t>(1, total_weight / target_chunks);

  ThreadPool pool(threads);
  std::size_t begin = 0;
  while (begin < components.size()) {
    std::size_t end = begin;
    std::size_t weight = 0;
    while (end < components.size() && weight < chunk_weight) {
      weight += ccc.device_count(components[end]) + 1;
      ++end;
    }
    pool.submit([&nl, &options, &ccc, &components, &buckets, begin, end,
                 weight] {
      // The span runs on the worker thread, so the chunk is attributed
      // to the worker that actually extracted it.
      TraceSpan span("extract-chunk", "timing");
      std::size_t stages = 0;
      ExtractScratch scratch;
      for (std::size_t i = begin; i < end; ++i) {
        std::vector<TimingStage>& bucket = buckets[i];
        for (NodeId n : ccc.members(components[i])) {
          for (Transition dir : {Transition::kRise, Transition::kFall}) {
            stages_to(nl, n, dir, options, scratch, bucket);
          }
        }
        stages += bucket.size();
      }
      span.arg("components", static_cast<double>(end - begin));
      span.arg("devices", static_cast<double>(weight));
      span.arg("stages", static_cast<double>(stages));
    });
    begin = end;
  }
  pool.wait();
  return buckets;
}

PartitionedStages extract_stages_partitioned(const Netlist& nl,
                                             const ExtractOptions& options,
                                             const CccPartition& ccc,
                                             int threads) {
  SLDM_EXPECTS(threads >= 1);
  PartitionedStages out;
  out.per_ccc.assign(ccc.count(), 0);

  std::vector<std::size_t> all(ccc.count());
  std::iota(all.begin(), all.end(), std::size_t{0});
  std::vector<std::vector<TimingStage>> per_ccc =
      extract_components(nl, options, ccc, all, threads);

  // Deterministic merge: global node-id order, exactly the order the
  // sequential extract_all_stages produces.  Component members are
  // ascending and components are numbered by smallest member, but
  // component *ranges* of node ids can interleave, so merge per node.
  std::size_t total = 0;
  for (const auto& bucket : per_ccc) total += bucket.size();
  out.stages.reserve(total);
  // Position of the next unconsumed stage per component bucket.
  std::vector<std::size_t> cursor(ccc.count(), 0);
  for (NodeId n : nl.all_nodes()) {
    const std::size_t c = ccc.component_of(n);
    if (c == CccPartition::kNone) continue;
    std::vector<TimingStage>& bucket = per_ccc[c];
    std::size_t& cur = cursor[c];
    while (cur < bucket.size() && bucket[cur].destination == n) {
      out.stages.push_back(std::move(bucket[cur]));
      ++cur;
      ++out.per_ccc[c];
    }
  }
  SLDM_ENSURES(out.stages.size() == total);
  return out;
}

void make_stage(const Netlist& nl, const Tech& tech, const TimingStage& ts,
                Seconds input_slope, Stage& out) {
  SLDM_EXPECTS(!ts.path.empty());
  out.elements.clear();
  out.output_dir = ts.output_dir;
  out.input_slope = input_slope;
  out.trigger_index = 0;
  NodeId cur = ts.source;
  for (std::size_t i = 0; i < ts.path.size(); ++i) {
    const Transistor& t = nl.device(ts.path[i]);
    SLDM_EXPECTS(t.connects(cur));
    const NodeId next = t.other_end(cur);
    StageElement el;
    el.type = t.type;
    el.resistance = tech.resistance(t, ts.output_dir);
    el.cap = tech.node_capacitance(nl, next);
    out.elements.push_back(el);
    if (!ts.trigger_is_release && ts.path[i] == ts.trigger) {
      out.trigger_index = i;
    }
    cur = next;
  }
  SLDM_ENSURES(cur == ts.destination);
  validate(out);
}

Stage make_stage(const Netlist& nl, const Tech& tech, const TimingStage& ts,
                 Seconds input_slope) {
  Stage stage;
  make_stage(nl, tech, ts, input_slope, stage);
  return stage;
}

std::string describe(const Netlist& nl, const TimingStage& ts) {
  std::ostringstream os;
  os << nl.node(ts.destination).name << ' ' << to_string(ts.output_dir)
     << " from " << nl.node(ts.source).name << " via";
  for (DeviceId d : ts.path) {
    os << ' ' << to_letter(nl.device(d).type) << '('
       << nl.node(nl.device(d).gate).name << ')';
  }
  if (ts.source_triggered) {
    os << " driven by " << nl.node(ts.source).name << ' '
       << to_string(ts.trigger_gate_dir);
  } else {
    os << (ts.trigger_is_release ? " released by " : " triggered by ")
       << nl.node(nl.device(ts.trigger).gate).name << ' '
       << to_string(ts.trigger_gate_dir);
  }
  return os.str();
}

}  // namespace sldm
