#include "timing/stage_extract.h"

#include <set>
#include <sstream>

#include "util/contracts.h"

namespace sldm {
namespace {

/// Hard cap on enumerated paths per (node, direction); prevents blowup
/// on pathological pass-transistor meshes.
constexpr std::size_t kMaxPathsPerQuery = 20000;

bool is_source_for(const Netlist& nl, const ExtractOptions& options,
                   NodeId n, Transition dir) {
  const Node& info = nl.node(n);
  if (const auto fixed = known_value(nl, options, n)) {
    // A pinned node supplies its constant value.
    return dir == Transition::kRise ? *fixed : !*fixed;
  }
  if (dir == Transition::kRise) {
    if (info.is_precharged) return true;
  }
  return options.inputs_as_sources && info.is_input;
}

/// Value sources terminate traversal: a channel path never runs through
/// a rail, a pinned node, or an input.  A precharged node terminates
/// only rise-direction searches (where it acts as the source);
/// discharge paths legitimately run through precharged nodes (e.g. a
/// Manchester carry chain).
bool blocks_traversal(const Netlist& nl, const ExtractOptions& options,
                      NodeId n, Transition dir) {
  const Node& info = nl.node(n);
  return known_value(nl, options, n).has_value() || info.is_input ||
         (info.is_precharged && dir == Transition::kRise);
}

/// Depth-first enumeration of simple channel paths dest -> source.
/// `device_filter` restricts which devices may appear on the path.
/// Flow annotations are enforced: moving the *search* from node n to
/// node m means the *signal* flows m -> n, so the device must allow
/// conduction entering at m.
template <typename Filter>
std::vector<std::vector<DeviceId>> enumerate_paths(
    const Netlist& nl, NodeId dest, Transition dir,
    const ExtractOptions& options, Filter device_filter) {
  std::vector<std::vector<DeviceId>> paths;
  std::vector<bool> visited(nl.node_count(), false);
  std::vector<DeviceId> stack;

  auto dfs = [&](auto&& self, NodeId n) -> void {
    if (paths.size() >= kMaxPathsPerQuery) return;
    visited[n.index()] = true;
    for (DeviceId d : nl.channels_at(n)) {
      if (!device_filter(d)) continue;
      const Transistor& t = nl.device(d);
      const NodeId m = t.other_end(n);
      if (visited[m.index()]) continue;
      if (!t.flow_allows_from(m)) continue;  // signal would flow m -> n
      stack.push_back(d);
      if (is_source_for(nl, options, m, dir)) {
        // Emit in source->dest order.
        paths.emplace_back(stack.rbegin(), stack.rend());
      } else if (!blocks_traversal(nl, options, m, dir) &&
                 static_cast<int>(stack.size()) < options.max_depth) {
        self(self, m);
      }
      stack.pop_back();
    }
    visited[n.index()] = false;
  };
  dfs(dfs, dest);
  return paths;
}

/// The node at the source end of a source->dest path.
NodeId path_source(const Netlist& nl, NodeId dest,
                   const std::vector<DeviceId>& path) {
  // Walk from dest backwards to find the far end.
  NodeId cur = dest;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    cur = nl.device(*it).other_end(cur);
  }
  return cur;
}

/// Gate transition that turns an enhancement device ON.
Transition on_gate_dir(TransistorType type) {
  return type == TransistorType::kPEnhancement ? Transition::kFall
                                               : Transition::kRise;
}

}  // namespace

std::optional<bool> known_value(const Netlist& nl,
                                const ExtractOptions& options, NodeId n) {
  const Node& info = nl.node(n);
  if (info.is_power) return true;
  if (info.is_ground) return false;
  if (const auto it = options.fixed_values.find(n);
      it != options.fixed_values.end()) {
    return it->second;
  }
  return std::nullopt;
}

bool can_conduct(const Netlist& nl, const ExtractOptions& options,
                 DeviceId d) {
  const Transistor& t = nl.device(d);
  if (t.type == TransistorType::kNDepletion) return true;
  const auto gate = known_value(nl, options, t.gate);
  if (!gate) return true;  // the gate can move: assume the worst case
  return t.type == TransistorType::kNEnhancement ? *gate : !*gate;
}

bool can_conduct(const Netlist& nl, DeviceId d) {
  return can_conduct(nl, ExtractOptions{}, d);
}

bool always_on(const Netlist& nl, const ExtractOptions& options, DeviceId d) {
  const Transistor& t = nl.device(d);
  if (t.type == TransistorType::kNDepletion) return true;
  const auto gate = known_value(nl, options, t.gate);
  if (!gate) return false;
  return t.type == TransistorType::kNEnhancement ? *gate : !*gate;
}

bool always_on(const Netlist& nl, DeviceId d) {
  return always_on(nl, ExtractOptions{}, d);
}

std::vector<TimingStage> stages_to(const Netlist& nl, NodeId dest,
                                   Transition dir,
                                   const ExtractOptions& options) {
  std::vector<TimingStage> stages;
  const Node& dest_info = nl.node(dest);
  // Rails, pinned nodes, and inputs never switch.
  if (known_value(nl, options, dest).has_value() || dest_info.is_input) {
    return stages;
  }

  // --- ON-trigger stages: a transistor on the path turns on. ----------
  const auto paths =
      enumerate_paths(nl, dest, dir, options,
                      [&](DeviceId d) { return can_conduct(nl, options, d); });
  for (const auto& path : paths) {
    const NodeId src = path_source(nl, dest, path);
    for (DeviceId d : path) {
      if (always_on(nl, options, d)) continue;  // loads never trigger
      stages.push_back(TimingStage{.source = src,
                                   .destination = dest,
                                   .output_dir = dir,
                                   .path = path,
                                   .trigger = d,
                                   .trigger_gate_dir =
                                       on_gate_dir(nl.device(d).type),
                                   .trigger_is_release = false});
    }
    // A chip-input source also fires the stage with its own edge (the
    // only trigger when every path device is constant-on).
    if (nl.node(src).is_input) {
      stages.push_back(TimingStage{.source = src,
                                   .destination = dest,
                                   .output_dir = dir,
                                   .path = path,
                                   .trigger = path.front(),
                                   .trigger_gate_dir = dir,
                                   .trigger_is_release = false,
                                   .source_triggered = true});
    }
  }

  // --- Release stages: an always-on load restores the node after the
  // opposing network shuts off (ratioed logic). -------------------------
  const auto load_paths =
      enumerate_paths(nl, dest, dir, options,
                      [&](DeviceId d) { return always_on(nl, options, d); });
  if (!load_paths.empty()) {
    const auto opposing =
        enumerate_paths(nl, dest, opposite(dir), options, [&](DeviceId d) {
          return can_conduct(nl, options, d);
        });
    // Each switching device on an opposing path is a release trigger.
    std::set<DeviceId> release_triggers;
    for (const auto& opp : opposing) {
      for (DeviceId d : opp) {
        if (!always_on(nl, options, d)) release_triggers.insert(d);
      }
    }
    for (const auto& load : load_paths) {
      const NodeId src = path_source(nl, dest, load);
      // Only rail-driven loads restore a level.
      if (!nl.node(src).is_power && !nl.node(src).is_ground) continue;
      for (DeviceId d : release_triggers) {
        stages.push_back(
            TimingStage{.source = src,
                        .destination = dest,
                        .output_dir = dir,
                        .path = load,
                        .trigger = d,
                        .trigger_gate_dir =
                            opposite(on_gate_dir(nl.device(d).type)),
                        .trigger_is_release = true});
      }
    }
  }
  return stages;
}

std::vector<TimingStage> extract_all_stages(const Netlist& nl,
                                            const ExtractOptions& options) {
  std::vector<TimingStage> all;
  for (NodeId n : nl.node_ids()) {
    if (nl.channels_at(n).empty()) continue;
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      auto stages = stages_to(nl, n, dir, options);
      all.insert(all.end(), std::make_move_iterator(stages.begin()),
                 std::make_move_iterator(stages.end()));
    }
  }
  return all;
}

Stage make_stage(const Netlist& nl, const Tech& tech, const TimingStage& ts,
                 Seconds input_slope) {
  SLDM_EXPECTS(!ts.path.empty());
  Stage stage;
  stage.output_dir = ts.output_dir;
  stage.input_slope = input_slope;
  stage.trigger_index = 0;
  NodeId cur = ts.source;
  for (std::size_t i = 0; i < ts.path.size(); ++i) {
    const Transistor& t = nl.device(ts.path[i]);
    SLDM_EXPECTS(t.connects(cur));
    const NodeId next = t.other_end(cur);
    StageElement el;
    el.type = t.type;
    el.resistance = tech.resistance(t, ts.output_dir);
    el.cap = tech.node_capacitance(nl, next);
    stage.elements.push_back(el);
    if (!ts.trigger_is_release && ts.path[i] == ts.trigger) {
      stage.trigger_index = i;
    }
    cur = next;
  }
  SLDM_ENSURES(cur == ts.destination);
  validate(stage);
  return stage;
}

std::string describe(const Netlist& nl, const TimingStage& ts) {
  std::ostringstream os;
  os << nl.node(ts.destination).name << ' ' << to_string(ts.output_dir)
     << " from " << nl.node(ts.source).name << " via";
  for (DeviceId d : ts.path) {
    os << ' ' << to_letter(nl.device(d).type) << '('
       << nl.node(nl.device(d).gate).name << ')';
  }
  if (ts.source_triggered) {
    os << " driven by " << nl.node(ts.source).name << ' '
       << to_string(ts.trigger_gate_dir);
  } else {
    os << (ts.trigger_is_release ? " released by " : " triggered by ")
       << nl.node(nl.device(ts.trigger).gate).name << ' '
       << to_string(ts.trigger_gate_dir);
  }
  return os.str();
}

}  // namespace sldm
