// The Crystal-style static timing analyzer.
//
// Worst-case arrival times (and slopes) are propagated from the declared
// input events through the extracted stages to a fixpoint: an event at a
// gate node fires every stage it triggers, each stage's delay model
// estimate produces a candidate (time, slope) at the stage destination,
// and the latest candidate wins.  Critical paths are recovered by
// walking the recorded predecessors.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "delay/model.h"
#include "timing/stage_extract.h"

namespace sldm {

/// Analyzer configuration.
struct AnalyzerOptions {
  ExtractOptions extract;
  /// Safety valve: maximum times a (node, direction) arrival may be
  /// improved before the analyzer reports a structural loop.
  int max_updates_per_arrival = 64;
};

/// Final arrival data at one (node, transition).
struct ArrivalInfo {
  Seconds time = 0.0;
  Seconds slope = 0.0;
  /// Predecessor event (invalid node for primary-input events).
  NodeId from_node = NodeId::invalid();
  Transition from_dir = Transition::kRise;
  /// Index into TimingAnalyzer::stages() of the stage that set this
  /// arrival; SIZE_MAX for primary-input events.
  std::size_t via_stage = SIZE_MAX;
};

/// One step of a reported critical path.
struct PathStep {
  NodeId node;
  Transition dir;
  Seconds time;
  Seconds slope;
  std::string description;  ///< stage description ("<- input" for seeds)
};

class TimingAnalyzer {
 public:
  /// Extracts all stages up-front.  `nl`, `tech`, and `model` must
  /// outlive the analyzer.
  TimingAnalyzer(const Netlist& nl, const Tech& tech, const DelayModel& model,
                 AnalyzerOptions options = {});

  /// Declares a primary-input event.  Precondition: `input` is marked
  /// is_input; slope >= 0.  May be called repeatedly before run().
  void add_input_event(NodeId input, Transition dir, Seconds time,
                       Seconds slope);

  /// Convenience: both transitions on every input at t=0 with `slope`
  /// (full worst-case analysis).
  void add_all_input_events(Seconds slope);

  /// Propagates to fixpoint.  Throws Error if a structural loop exceeds
  /// the update bound.
  void run();

  /// Arrival at (node, dir), if the node can switch that way at all.
  std::optional<ArrivalInfo> arrival(NodeId node, Transition dir) const;

  /// The latest arrival over all nodes (or only output-marked nodes).
  struct Worst {
    NodeId node;
    Transition dir;
    Seconds time;
  };
  std::optional<Worst> worst_arrival(bool outputs_only) const;

  /// The chain of events ending at (node, dir), input first.
  /// Precondition: arrival(node, dir) has a value.
  std::vector<PathStep> critical_path(NodeId node, Transition dir) const;

  /// Limits for k_worst_paths().
  struct PathQueryOptions {
    std::size_t max_explored = 200000;  ///< DFS work bound
    int max_length = 64;                ///< events per path
  };

  /// One enumerated event path (input seed first).
  struct EnumeratedPath {
    std::vector<PathStep> steps;
    Seconds arrival = 0.0;  ///< arrival of the final event
  };

  /// The k latest-arriving distinct event paths ending at (node, dir),
  /// sorted latest first -- Crystal's "show me the N worst paths".
  /// Slopes are propagated along each candidate path independently, so
  /// alternative paths get their own slope history (unlike the arrival
  /// fixpoint, which keeps only the worst predecessor).
  /// Precondition: run() has completed; k >= 1.
  std::vector<EnumeratedPath> k_worst_paths(
      NodeId node, Transition dir, std::size_t k,
      const PathQueryOptions& options) const;
  std::vector<EnumeratedPath> k_worst_paths(NodeId node, Transition dir,
                                            std::size_t k) const {
    return k_worst_paths(node, dir, k, PathQueryOptions());
  }

  /// All extracted stages (index space of ArrivalInfo::via_stage).
  const std::vector<TimingStage>& stages() const { return stages_; }

  /// Work counter for the Table 5 runtime comparison.
  std::size_t stage_evaluations() const { return stage_evaluations_; }

 private:
  std::size_t key(NodeId node, Transition dir) const;

  const Netlist& nl_;
  const Tech& tech_;
  const DelayModel& model_;
  AnalyzerOptions options_;
  std::vector<TimingStage> stages_;
  /// stages indexed by trigger gate node and gate direction.
  std::vector<std::vector<std::size_t>> stages_by_trigger_;
  std::vector<std::optional<ArrivalInfo>> arrivals_;
  std::vector<int> update_counts_;
  std::vector<std::pair<NodeId, Transition>> seeds_;
  bool ran_ = false;
  std::size_t stage_evaluations_ = 0;
};

}  // namespace sldm
