// The Crystal-style static timing analyzer, as a facade over the
// compiled-design / session split.
//
// Construction compiles the netlist into an immutable CompiledDesign
// (design/compiled_design.h: CCC partition, per-component stage
// extraction fanned over AnalyzerOptions::threads workers with a
// deterministic merge, and the baked StageStore) and attaches one
// Session (design/session.h) that owns all mutable analysis state.
// Every query -- arrivals, critical paths, k-worst enumeration, stats,
// metrics -- delegates to that session, so results are bit-identical
// to driving the two layers directly.
//
// The facade earns its keep on the ECO path: update() is the single
// sanctioned writer of a CompiledDesign.  After mutating the netlist
// through its journaled API, update() absorbs the edits instead of
// rebuilding -- only dirty components are re-extracted (spliced into
// the globally ordered stage vector), only arrivals reachable from the
// damage are invalidated (frontier walk over the recorded predecessor
// keys), and re-propagation starts from the frontier instead of from
// all seeds.  Because other sessions may be borrowing the design,
// update() refuses to run while share_design() handles are outstanding.
// Invariant (enforced by tests/eco_timing_test.cpp): the analyzer state
// after update() is bit-identical to a freshly constructed-and-run
// analyzer over the mutated netlist.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "design/compiled_design.h"
#include "design/session.h"

namespace sldm {

/// Analyzer configuration.
struct AnalyzerOptions {
  ExtractOptions extract;
  /// Safety valve: maximum times a (node, direction) arrival may be
  /// improved before the analyzer reports a structural loop.
  int max_updates_per_arrival = 64;
  /// Worker threads for stage extraction and for batched wavefront
  /// evaluation during propagation (1 = fully sequential; results are
  /// bit-identical for any value).  Must be >= 1.
  int threads = 1;
};

class TimingAnalyzer {
 public:
  /// Compiles the design up-front (per channel-connected component,
  /// over options.threads workers) and attaches a session.  `nl`,
  /// `tech`, and `model` must outlive the analyzer.
  TimingAnalyzer(const Netlist& nl, const Tech& tech, const DelayModel& model,
                 AnalyzerOptions options = {});

  /// Adopts an already-compiled design (e.g. loaded from a .sldc
  /// snapshot) instead of compiling: options.extract is ignored in
  /// favor of the design's own extraction options.  `model` must
  /// outlive the analyzer.  ECO updates through this analyzer require
  /// the design to own its netlist (snapshot loads do) and to not be
  /// shared with other sessions.
  TimingAnalyzer(std::shared_ptr<CompiledDesign> design,
                 const DelayModel& model, AnalyzerOptions options = {});

  /// Declares a primary-input event.  Precondition: `input` is marked
  /// is_input; slope >= 0.  May be called repeatedly before run().
  /// Throws Error if run() already completed (reset() first).
  void add_input_event(NodeId input, Transition dir, Seconds time,
                       Seconds slope) {
    session_.add_input_event(input, dir, time, slope);
  }

  /// Convenience: both transitions on every input at t=0 with `slope`
  /// (full worst-case analysis).  Same post-run() Error as
  /// add_input_event.
  void add_all_input_events(Seconds slope) {
    session_.add_all_input_events(slope);
  }

  /// Propagates to fixpoint.  Throws Error if a structural loop exceeds
  /// the update bound, or if run() already completed (reset() first),
  /// or if the netlist was mutated since the analyzer synchronized
  /// (update() first).
  void run() { session_.run(); }

  /// Absorbs all netlist mutations since the analyzer last
  /// synchronized (construction or previous update()): synchronizes the
  /// component partition, re-extracts stages for dirty components only,
  /// invalidates the arrivals transitively reachable from the damage,
  /// and re-propagates from that frontier.  Postcondition: stages,
  /// arrivals, and critical paths are bit-identical to a freshly
  /// constructed analyzer over the mutated netlist with the same input
  /// events (and run(), if this analyzer had run).  No-op when already
  /// in sync.  Throws Error for edits the incremental pipeline cannot
  /// absorb (power/ground/input/precharge role changes), for timing
  /// loops exactly like construction + run() would, and when the design
  /// is shared (outstanding share_design() handles -- the immutability
  /// other sessions rely on forbids in-place mutation).
  void update();

  /// Discards arrivals and seeds so a new set of input events can be
  /// analyzed without re-extracting stages.  Wall-clock stats of the
  /// extraction phase are kept; propagation counters keep accumulating.
  void reset() { session_.reset(); }

  /// Arrival at (node, dir), if the node can switch that way at all.
  std::optional<ArrivalInfo> arrival(NodeId node, Transition dir) const {
    return session_.arrival(node, dir);
  }

  /// The latest arrival over all nodes (or only output-marked nodes).
  using Worst = Session::Worst;
  std::optional<Worst> worst_arrival(bool outputs_only) const {
    return session_.worst_arrival(outputs_only);
  }

  /// The chain of events ending at (node, dir), input first.
  /// Precondition: arrival(node, dir) has a value.
  std::vector<PathStep> critical_path(NodeId node, Transition dir) const {
    return session_.critical_path(node, dir);
  }

  using PathQueryOptions = Session::PathQueryOptions;
  using EnumeratedPath = Session::EnumeratedPath;

  /// The k latest-arriving distinct event paths ending at (node, dir),
  /// sorted latest first (see Session::k_worst_paths).
  /// Precondition: run() has completed; k >= 1.
  std::vector<EnumeratedPath> k_worst_paths(
      NodeId node, Transition dir, std::size_t k,
      const PathQueryOptions& options) const {
    return session_.k_worst_paths(node, dir, k, options);
  }
  std::vector<EnumeratedPath> k_worst_paths(NodeId node, Transition dir,
                                            std::size_t k) const {
    return session_.k_worst_paths(node, dir, k);
  }

  /// All extracted stages (index space of ArrivalInfo::via_stage).
  const std::vector<TimingStage>& stages() const {
    return design_->stages();
  }

  /// The SoA store propagation evaluates against: stage ids coincide
  /// with indices into stages() (and so with ArrivalInfo::via_stage).
  const StageStore& stage_store() const { return design_->stage_store(); }

  /// The channel-connected component partition extraction ran over.
  const CccPartition& components() const { return design_->components(); }

  /// The analyzed netlist / technology / delay model (explain traces
  /// re-evaluate stages through these).
  const Netlist& netlist() const { return design_->netlist(); }
  /// Mutable access to a design-owned netlist (snapshot loads), the
  /// ECO edit surface for adopted designs.  Throws Error when the
  /// design borrows the caller's netlist -- mutate that one instead.
  Netlist& mutable_netlist();
  const Tech& tech() const { return design_->tech(); }
  const DelayModel& delay_model() const { return session_.delay_model(); }

  /// The immutable compiled artifact this analyzer drives.  Additional
  /// Sessions may borrow it concurrently; while any such handle is
  /// outstanding, update() refuses to mutate the design.
  std::shared_ptr<const CompiledDesign> share_design() const {
    return design_;
  }

  /// The attached session (the mutable half of this analyzer).
  Session& session() { return session_; }
  const Session& session() const { return session_; }

  /// Forwards a cooperative deadline token to the session, covering
  /// both run() and the re-propagation inside update().  Borrowed; pass
  /// nullptr to detach (callers must detach before the token dies).
  void set_cancel_token(const CancelToken* token) {
    session_.set_cancel_token(token);
  }

  /// Phase timings and work counters (see AnalyzerStats); refreshed
  /// from the metrics registry on each call.
  const AnalyzerStats& stats() const { return session_.stats(); }

  /// The named metric registry (names listed in FORMATS.md).
  const MetricsRegistry& metrics() const { return session_.metrics(); }

  /// Work counter for the Table 5 runtime comparison.
  std::size_t stage_evaluations() const {
    return session_.stage_evaluations();
  }

 private:
  std::shared_ptr<CompiledDesign> design_;
  AnalyzerOptions options_;
  Session session_;
};

}  // namespace sldm
