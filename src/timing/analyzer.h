// The Crystal-style static timing analyzer.
//
// Worst-case arrival times (and slopes) are propagated from the declared
// input events through the extracted stages to a fixpoint: an event at a
// gate node fires every stage it triggers, each stage's delay model
// estimate produces a candidate (time, slope) at the stage destination,
// and the latest candidate wins.  Critical paths are recovered by
// walking the recorded predecessors.
//
// Pipeline: construction decomposes the netlist into channel-connected
// components (timing/ccc.h) and extracts stages per component, fanned
// out over AnalyzerOptions::threads workers with a deterministic merge
// (stage indices are identical for every thread count).  The extracted
// stages are then baked into a flat SoA StageStore
// (delay/stage_store.h): every per-stage electrical quantity the models
// need is derived once here, so propagation never rebuilds a Stage or
// an RC tree.
//
// Propagation drains an explicit FIFO worklist with in-queue
// deduplication in *wavefronts*: each round snapshots the ready
// frontier, gathers every (stage, firing event) candidate it triggers
// into one batch, prices the whole batch through
// DelayModel::estimate_batch (fanned over the thread pool in contiguous
// chunks when threads > 1), and commits the results sequentially in
// canonical order (FIFO event order, ascending stage index per event)
// against the flat structure-of-arrays arrival store.  Estimates are
// pure per (stage, slope) and the commit order is thread-independent,
// so arrivals, predecessors, and every work counter are bit-identical
// for any AnalyzerOptions::threads.  AnalyzerStats reports where the
// time went, including the batch shape of the run.
//
// Incremental (ECO) analysis: after mutating the netlist through its
// journaled API, update() absorbs the edits instead of rebuilding —
// only dirty components are re-extracted (spliced into the globally
// ordered stage vector), only arrivals reachable from the damage are
// invalidated (frontier walk over the recorded predecessor keys), and
// re-propagation starts from the frontier instead of from all seeds.
// Invariant (enforced by tests/eco_timing_test.cpp): the analyzer state
// after update() is bit-identical to a freshly constructed-and-run
// analyzer over the mutated netlist.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "delay/model.h"
#include "delay/stage_store.h"
#include "timing/ccc.h"
#include "timing/stage_extract.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace sldm {

/// Analyzer configuration.
struct AnalyzerOptions {
  ExtractOptions extract;
  /// Safety valve: maximum times a (node, direction) arrival may be
  /// improved before the analyzer reports a structural loop.
  int max_updates_per_arrival = 64;
  /// Worker threads for stage extraction and for batched wavefront
  /// evaluation during propagation (1 = fully sequential; results are
  /// bit-identical for any value).  Must be >= 1.
  int threads = 1;
};

/// Observability counters for one analyzer lifetime: where did the time
/// go (extraction vs propagation), and how much work did each phase do.
/// Counter fields accumulate across run()/reset() cycles; wall-clock
/// fields hold the most recent phase execution.
///
/// This struct is a *view*: the analyzer stores its work counters and
/// phase timings in plain Counter/Gauge/Histogram members (also
/// exported by name through TimingAnalyzer::metrics(), which
/// additionally carries distribution histograms), and stats() refreshes
/// these fields from those members on each call.
struct AnalyzerStats {
  std::size_t ccc_count = 0;        ///< channel-connected components
  std::size_t widest_ccc = 0;       ///< member nodes in the largest CCC
  std::vector<std::size_t> stages_per_ccc;  ///< indexed by CCC id
  std::size_t stage_count = 0;      ///< total extracted stages
  std::size_t stage_evaluations = 0;  ///< delay-model calls during run()
  std::size_t worklist_pushes = 0;  ///< events enqueued (incl. seeds)
  std::size_t arrival_updates = 0;  ///< arrival improvements committed
  Seconds extract_seconds = 0.0;    ///< stage-extraction wall clock
  Seconds propagate_seconds = 0.0;  ///< run() wall clock
  int threads = 1;                  ///< extraction worker count used

  // Batch shape of wavefront propagation.  `batches` accumulates like
  // stage_evaluations; mean/max describe the whole analyzer lifetime.
  std::size_t batches = 0;          ///< wavefront batches evaluated
  double mean_batch_size = 0.0;     ///< stage_evaluations / batches
  std::size_t max_batch_size = 0;   ///< largest single batch

  // Incremental (ECO) counters.  `incremental_updates` accumulates;
  // the rest describe the most recent update() call.
  std::size_t incremental_updates = 0;  ///< update() calls absorbed
  std::size_t dirty_cccs = 0;           ///< components re-extracted
  std::size_t reextracted_stages = 0;   ///< stages rebuilt by update()
  std::size_t reused_stages = 0;        ///< stages carried over untouched
  std::size_t frontier_keys = 0;        ///< (node, dir) arrivals invalidated
  Seconds update_seconds = 0.0;         ///< update() wall clock
};

/// Final arrival data at one (node, transition).
struct ArrivalInfo {
  Seconds time = 0.0;
  Seconds slope = 0.0;
  /// Predecessor event (invalid node for primary-input events).
  NodeId from_node = NodeId::invalid();
  Transition from_dir = Transition::kRise;
  /// Index into TimingAnalyzer::stages() of the stage that set this
  /// arrival; SIZE_MAX for primary-input events.
  std::size_t via_stage = SIZE_MAX;
};

/// One step of a reported critical path.
struct PathStep {
  NodeId node;
  Transition dir;
  Seconds time;
  Seconds slope;
  std::string description;  ///< stage description ("<- input" for seeds)
};

class TimingAnalyzer {
 public:
  /// Extracts all stages up-front (per channel-connected component,
  /// over options.threads workers).  `nl`, `tech`, and `model` must
  /// outlive the analyzer.
  TimingAnalyzer(const Netlist& nl, const Tech& tech, const DelayModel& model,
                 AnalyzerOptions options = {});

  /// Declares a primary-input event.  Precondition: `input` is marked
  /// is_input; slope >= 0.  May be called repeatedly before run().
  /// Throws Error if run() already completed (reset() first).
  void add_input_event(NodeId input, Transition dir, Seconds time,
                       Seconds slope);

  /// Convenience: both transitions on every input at t=0 with `slope`
  /// (full worst-case analysis).  Same post-run() Error as
  /// add_input_event.
  void add_all_input_events(Seconds slope);

  /// Propagates to fixpoint.  Throws Error if a structural loop exceeds
  /// the update bound, or if run() already completed (reset() first),
  /// or if the netlist was mutated since the analyzer synchronized
  /// (update() first).
  void run();

  /// Absorbs all netlist mutations since the analyzer last
  /// synchronized (construction or previous update()): synchronizes the
  /// component partition, re-extracts stages for dirty components only,
  /// invalidates the arrivals transitively reachable from the damage,
  /// and re-propagates from that frontier.  Postcondition: stages,
  /// arrivals, and critical paths are bit-identical to a freshly
  /// constructed analyzer over the mutated netlist with the same input
  /// events (and run(), if this analyzer had run).  No-op when already
  /// in sync.  Throws Error for edits the incremental pipeline cannot
  /// absorb (power/ground/input/precharge role changes) and for timing
  /// loops, exactly like construction + run() would.
  void update();

  /// Discards arrivals and seeds so a new set of input events can be
  /// analyzed without re-extracting stages.  Wall-clock stats of the
  /// extraction phase are kept; propagation counters keep accumulating.
  void reset();

  /// Arrival at (node, dir), if the node can switch that way at all.
  std::optional<ArrivalInfo> arrival(NodeId node, Transition dir) const;

  /// The latest arrival over all nodes (or only output-marked nodes).
  struct Worst {
    NodeId node;
    Transition dir;
    Seconds time;
  };
  std::optional<Worst> worst_arrival(bool outputs_only) const;

  /// The chain of events ending at (node, dir), input first.
  /// Precondition: arrival(node, dir) has a value.
  std::vector<PathStep> critical_path(NodeId node, Transition dir) const;

  /// Limits for k_worst_paths().
  struct PathQueryOptions {
    std::size_t max_explored = 200000;  ///< DFS work bound
    int max_length = 64;                ///< events per path
  };

  /// One enumerated event path (input seed first).
  struct EnumeratedPath {
    std::vector<PathStep> steps;
    Seconds arrival = 0.0;  ///< arrival of the final event
  };

  /// The k latest-arriving distinct event paths ending at (node, dir),
  /// sorted latest first -- Crystal's "show me the N worst paths".
  /// Slopes are propagated along each candidate path independently, so
  /// alternative paths get their own slope history (unlike the arrival
  /// fixpoint, which keeps only the worst predecessor).
  /// Precondition: run() has completed; k >= 1.
  std::vector<EnumeratedPath> k_worst_paths(
      NodeId node, Transition dir, std::size_t k,
      const PathQueryOptions& options) const;
  std::vector<EnumeratedPath> k_worst_paths(NodeId node, Transition dir,
                                            std::size_t k) const {
    return k_worst_paths(node, dir, k, PathQueryOptions());
  }

  /// All extracted stages (index space of ArrivalInfo::via_stage).
  const std::vector<TimingStage>& stages() const { return stages_; }

  /// The SoA store propagation evaluates against: stage ids coincide
  /// with indices into stages() (and so with ArrivalInfo::via_stage).
  /// Rebuilt by construction and update(); explain traces and path
  /// queries materialize stages from here instead of re-deriving them
  /// from the netlist.
  const StageStore& stage_store() const { return store_; }

  /// The channel-connected component partition extraction ran over.
  const CccPartition& components() const { return ccc_; }

  /// The analyzed netlist / technology / delay model (explain traces
  /// re-evaluate stages through these).
  const Netlist& netlist() const { return nl_; }
  const Tech& tech() const { return tech_; }
  const DelayModel& delay_model() const { return model_; }

  /// Phase timings and work counters (see AnalyzerStats); refreshed
  /// from the metrics registry on each call.
  const AnalyzerStats& stats() const;

  /// The named metric registry: counters, phase-timing gauges, and
  /// distribution histograms (stage fan-in, RC path depth, sampled
  /// delay-model evaluation time, worklist queue depth, ECO frontier
  /// size).  Names are listed in FORMATS.md.  Materialized from the
  /// plain metric members on each call, so observers pay for the name
  /// table and the hot paths do not; the reference stays valid (and is
  /// re-refreshed by later calls) for the analyzer's lifetime.
  const MetricsRegistry& metrics() const;

  /// Work counter for the Table 5 runtime comparison.
  std::size_t stage_evaluations() const {
    return static_cast<std::size_t>(ctr_stage_evaluations_.value());
  }

 private:
  /// Flat arrival key: (node, dir) -> node * 2 + dir.
  std::size_t key(NodeId node, Transition dir) const;

  /// Requires that run() has not completed yet (Error otherwise).
  void require_not_ran(const char* what) const;

  /// Requires that the netlist is at the revision the analyzer last
  /// synchronized to (Error pointing at update() otherwise).
  void require_synced(const char* what) const;

  /// Rebuilds the trigger index over the current stages_.
  void index_stages_by_trigger();

  /// Rebuilds the SoA stage store from the current stages_ (each
  /// netlist-level stage is resolved to its electrical form exactly
  /// once here instead of once per evaluation).
  void rebuild_store();

  /// Prices one wavefront batch through the model's batch kernel,
  /// fanning contiguous chunks over the thread pool when
  /// options_.threads > 1 and the batch is large enough to pay for the
  /// handoff.  Estimates are pure per item, so the result is identical
  /// for any thread count or chunking.
  void evaluate_batch(std::span<const StageStore::StageId> ids,
                      std::span<const Seconds> input_slopes,
                      std::span<DelayEstimate> out);

  /// Drains the worklist to fixpoint in wavefront batches.  `queued` is
  /// the in-queue deduplication mark, sized like the arrival arrays.
  void propagate(std::deque<std::uint32_t>& work, std::vector<char>& queued);

  const Netlist& nl_;
  const Tech& tech_;
  const DelayModel& model_;
  AnalyzerOptions options_;
  CccPartition ccc_;
  std::vector<TimingStage> stages_;
  /// Electrical SoA view of stages_ (same index space).
  StageStore store_;
  /// Lazily created pool for batched wavefront evaluation (only when
  /// options_.threads > 1; extraction manages its own pool).
  std::unique_ptr<ThreadPool> pool_;
  /// stages indexed by trigger gate node and gate direction.
  std::vector<std::vector<std::size_t>> stages_by_trigger_;

  // Arrival store: structure-of-arrays keyed by key(node, dir).  The
  // hot propagation loop touches time_/slope_/valid_ only; predecessor
  // bookkeeping lives in parallel arrays instead of an optional-of-
  // struct so the inner loop stays on dense doubles.
  std::vector<Seconds> arrival_time_;
  std::vector<Seconds> arrival_slope_;
  std::vector<std::uint32_t> arrival_from_;  ///< packed key; UINT32_MAX none
  std::vector<std::size_t> arrival_via_;     ///< stage idx; SIZE_MAX seeds
  std::vector<char> arrival_valid_;

  std::vector<int> update_counts_;
  std::vector<std::uint32_t> seeds_;  ///< packed keys, insertion order
  bool ran_ = false;
  /// Netlist revision the stages/partition reflect.
  std::uint64_t synced_revision_ = 0;

  // Metric storage: plain members, so constructing an analyzer and the
  // hot loops pay a field update and never a map lookup or a string
  // allocation.  metrics() materializes these into the named registry
  // below on demand.
  Counter ctr_stage_evaluations_;
  Counter ctr_worklist_pushes_;
  Counter ctr_arrival_updates_;
  Counter ctr_batches_;
  Counter ctr_incremental_updates_;
  Gauge g_extract_seconds_;
  Gauge g_propagate_seconds_;
  Gauge g_update_seconds_;
  Gauge g_dirty_cccs_;
  Gauge g_reextracted_stages_;
  Gauge g_reused_stages_;
  Gauge g_frontier_keys_;
  Gauge g_max_batch_size_;
  Histogram h_fan_in_{0.0, 64.0, 16};
  Histogram h_batch_size_{0.0, 4096.0, 16};
  Histogram h_rc_depth_{0.0, 16.0, 16};
  Histogram h_eval_us_{0.0, 50.0, 20};
  Histogram h_queue_depth_{0.0, 4096.0, 16};
  Histogram h_frontier_{0.0, 2048.0, 16};

  /// Named export refreshed from the members above by metrics().
  mutable MetricsRegistry metrics_;

  /// View refreshed from the metric members by stats(); structural
  /// fields (ccc_count, stage counts, threads) are maintained directly.
  mutable AnalyzerStats stats_;
};

}  // namespace sldm
