// Slack analysis on top of the arrival-time fixpoint: given a cycle
// budget (required time at the observation points), report per-output
// slack and the paths that violate it -- the "does this chip make its
// clock" question Crystal was built to answer.
#pragma once

#include <string>
#include <vector>

#include "timing/analyzer.h"

namespace sldm {

/// Slack at one observed (node, transition).
struct SlackEntry {
  NodeId node = NodeId::invalid();
  Transition dir = Transition::kRise;
  Seconds arrival = 0.0;
  Seconds required = 0.0;
  Seconds slack = 0.0;  ///< required - arrival; negative = violation
};

/// The whole report.
struct SlackReport {
  Seconds required = 0.0;  ///< the budget the report was computed for
  std::vector<SlackEntry> entries;  ///< sorted, most critical first

  /// Entries with negative slack.
  std::vector<SlackEntry> violations() const;
  /// The minimum slack over all entries (0 entries -> nullopt).
  std::optional<Seconds> worst_slack() const;
};

/// Computes slack at every output-marked node (both transitions that
/// have arrivals) against a single required time.
/// Precondition: analyzer.run() has completed; required > 0.
SlackReport compute_slack(const Netlist& nl, const TimingAnalyzer& analyzer,
                          Seconds required);

/// Renders the report; violating entries are flagged, and for the worst
/// violation the full critical path is appended.
std::string format_slack(const Netlist& nl, const TimingAnalyzer& analyzer,
                         const SlackReport& report);

}  // namespace sldm
