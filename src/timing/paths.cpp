// K-worst-path enumeration: the session's fixpoint keeps only the
// single worst predecessor per (node, transition); this pass re-walks
// the stage graph forward from the input seeds, carrying an independent
// (time, slope) history per candidate path, and reports the k latest
// distinct event chains ending at a target.
#include <algorithm>

#include "design/session.h"
#include "util/contracts.h"

namespace sldm {

std::vector<Session::EnumeratedPath> Session::k_worst_paths(
    NodeId node, Transition dir, std::size_t k,
    const PathQueryOptions& options) const {
  SLDM_EXPECTS(ran_);
  SLDM_EXPECTS(k >= 1);
  const Netlist& nl = design_->netlist();
  const std::vector<TimingStage>& stages = design_->stages();
  const StageStore& store = design_->stage_store();
  const std::vector<std::vector<std::size_t>>& by_trigger =
      design_->stages_by_trigger();
  const std::size_t target = key(node, dir);

  std::vector<EnumeratedPath> found;
  std::size_t explored = 0;
  std::vector<bool> on_path(arrival_valid_.size(), false);
  std::vector<PathStep> steps;

  auto dfs = [&](auto&& self, NodeId n, Transition d, Seconds t,
                 Seconds slope, const std::string& how) -> void {
    if (explored >= options.max_explored) return;
    ++explored;
    const std::size_t kk = key(n, d);
    if (on_path[kk]) return;  // no event repeats within one path
    if (static_cast<int>(steps.size()) >= options.max_length) return;

    on_path[kk] = true;
    steps.push_back(PathStep{n, d, t, slope, how});
    if (kk == target) {
      found.push_back(EnumeratedPath{steps, t});
    }
    for (std::size_t s : by_trigger[kk]) {
      const TimingStage& ts = stages[s];
      const Stage stage = store.materialize(
          static_cast<StageStore::StageId>(s), slope);
      const DelayEstimate est = model_.estimate(stage);
      self(self, ts.destination, ts.output_dir, t + est.delay,
           est.output_slope, describe(nl, ts));
    }
    steps.pop_back();
    on_path[kk] = false;
  };

  for (const std::uint32_t seed_key : seeds_) {
    SLDM_ASSERT(arrival_valid_[seed_key]);
    const NodeId seed_node(seed_key / 2);
    const Transition seed_dir =
        seed_key % 2 == 0 ? Transition::kRise : Transition::kFall;
    dfs(dfs, seed_node, seed_dir, arrival_time_[seed_key],
        arrival_slope_[seed_key], "<- input");
  }

  std::sort(found.begin(), found.end(),
            [](const EnumeratedPath& a, const EnumeratedPath& b) {
              return a.arrival > b.arrival;
            });
  if (found.size() > k) found.resize(k);
  return found;
}

}  // namespace sldm
