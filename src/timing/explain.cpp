#include "timing/explain.h"

#include <sstream>

#include "util/contracts.h"
#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace sldm {
namespace {

std::string audit_json(const DelayAudit& audit) {
  std::ostringstream os;
  os << '{' << format("\"model\":\"%s\"", json_escape(audit.model).c_str())
     << ",\"r_total_ohm\":" << json_number(audit.total_resistance)
     << ",\"c_total_f\":" << json_number(audit.total_cap)
     << ",\"c_dest_f\":" << json_number(audit.destination_cap)
     << ",\"t_elmore_s\":" << json_number(audit.elmore)
     << ",\"input_slope_s\":" << json_number(audit.input_slope)
     << format(",\"path_devices\":%zu", audit.path_devices)
     << ",\"terms\":[";
  for (std::size_t i = 0; i < audit.terms.size(); ++i) {
    const AuditTerm& t = audit.terms[i];
    if (i > 0) os << ',';
    os << format("{\"name\":\"%s\",\"value\":", json_escape(t.name).c_str())
       << json_number(t.value)
       << format(",\"unit\":\"%s\"}", json_escape(t.unit).c_str());
  }
  os << "],\"delay_s\":" << json_number(audit.estimate.delay)
     << ",\"output_slope_s\":" << json_number(audit.estimate.output_slope)
     << '}';
  return os.str();
}

}  // namespace

ExplainReport explain_arrival(const Session& session, NodeId node,
                              Transition dir) {
  const Netlist& nl = session.netlist();
  if (!session.arrival(node, dir)) {
    throw Error("no arrival at node '" + nl.node(node).name + "' " +
                to_string(dir) + "; nothing to explain");
  }

  // Collect the event chain destination-first (same walk as
  // critical_path, bounded the same way).
  std::vector<std::pair<NodeId, Transition>> chain;
  NodeId cur = node;
  Transition cdir = dir;
  for (std::size_t guard = 0;; ++guard) {
    SLDM_ASSERT(guard <= 2 * nl.node_count());
    chain.emplace_back(cur, cdir);
    const auto info = session.arrival(cur, cdir);
    SLDM_EXPECTS(info.has_value());
    if (!info->from_node.valid()) break;
    cur = info->from_node;
    cdir = info->from_dir;
  }

  ExplainReport report;
  report.node = node;
  report.dir = dir;
  report.arrival = session.arrival(node, dir)->time;
  report.steps.reserve(chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const ArrivalInfo info = *session.arrival(it->first, it->second);
    ExplainStep step;
    step.node = it->first;
    step.dir = it->second;
    step.arrival = info.time;
    step.slope = info.slope;
    if (info.via_stage == SIZE_MAX) {
      step.is_seed = true;
    } else {
      const TimingStage& ts = session.stages()[info.via_stage];
      // The predecessor's committed slope is exactly what fed this
      // stage during propagation, so the audited re-evaluation
      // reproduces the committed delay bit for bit.
      const ArrivalInfo from =
          *session.arrival(info.from_node, info.from_dir);
      const Stage stage = session.stage_store().materialize(
          static_cast<StageStore::StageId>(info.via_stage), from.slope);
      session.delay_model().estimate_audited(stage, step.audit);
      step.delay = step.audit.estimate.delay;
      step.stage = describe(nl, ts);
    }
    report.steps.push_back(std::move(step));
  }
  return report;
}

ExplainReport explain_arrival(const TimingAnalyzer& analyzer, NodeId node,
                              Transition dir) {
  return explain_arrival(analyzer.session(), node, dir);
}

std::string format_explain(const Netlist& nl, const ExplainReport& report) {
  std::ostringstream os;
  os << format("explain: %s %s  arrival %.6f ns  (%zu events)\n",
               nl.node(report.node).name.c_str(),
               to_string(report.dir).c_str(), to_ns(report.arrival),
               report.steps.size());
  Seconds sum = 0.0;
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const ExplainStep& s = report.steps[i];
    if (s.is_seed) {
      sum = s.arrival;
      os << format("  #%-2zu %10.6f ns  %-6s %-12s <- input (slope %.6f "
                   "ns)\n",
                   i, to_ns(s.arrival), to_string(s.dir).c_str(),
                   nl.node(s.node).name.c_str(), to_ns(s.slope));
      continue;
    }
    sum += s.delay;
    const DelayAudit& a = s.audit;
    os << format("  #%-2zu %10.6f ns  %-6s %-12s +%.6f ns  %s\n", i,
                 to_ns(s.arrival), to_string(s.dir).c_str(),
                 nl.node(s.node).name.c_str(), to_ns(s.delay),
                 s.stage.c_str())
       << format("      model %s: R_path %.4g ohm  C_path %.4g fF "
                 "(dest %.4g fF)  t_elmore %.6f ns  slope_in %.6f ns  "
                 "%zu device%s\n",
                 a.model.c_str(), a.total_resistance, a.total_cap * 1e15,
                 a.destination_cap * 1e15, to_ns(a.elmore),
                 to_ns(a.input_slope), a.path_devices,
                 a.path_devices == 1 ? "" : "s");
    if (!a.terms.empty()) {
      os << "      terms:";
      for (std::size_t t = 0; t < a.terms.size(); ++t) {
        const AuditTerm& term = a.terms[t];
        os << format("%s %s = %.6g%s%s", t > 0 ? "," : "", term.name,
                     term.value, term.unit[0] ? " " : "", term.unit);
      }
      os << '\n';
    }
  }
  os << format("  sum of stage delays: %.6f ns (arrival %.6f ns)\n",
               to_ns(sum), to_ns(report.arrival));
  return os.str();
}

std::string explain_json(const Netlist& nl, const ExplainReport& report) {
  std::ostringstream os;
  os << '{'
     << format("\"node\":\"%s\"",
               json_escape(nl.node(report.node).name).c_str())
     << format(",\"dir\":\"%s\"", to_string(report.dir).c_str())
     << ",\"arrival_s\":" << json_number(report.arrival) << ",\"steps\":[";
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const ExplainStep& s = report.steps[i];
    if (i > 0) os << ',';
    os << '{'
       << format("\"node\":\"%s\"",
                 json_escape(nl.node(s.node).name).c_str())
       << format(",\"dir\":\"%s\"", to_string(s.dir).c_str())
       << ",\"arrival_s\":" << json_number(s.arrival)
       << ",\"slope_s\":" << json_number(s.slope)
       << format(",\"seed\":%s", s.is_seed ? "true" : "false");
    if (!s.is_seed) {
      os << ",\"delay_s\":" << json_number(s.delay)
         << format(",\"stage\":\"%s\"", json_escape(s.stage).c_str())
         << ",\"audit\":" << audit_json(s.audit);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace sldm
