// Channel-connected component (CCC) decomposition.
//
// Crystal's unit of circuit structure: two nodes belong to the same CCC
// when a chain of transistor channels connects them without passing
// through a supply rail.  Every channel path the stage extractor
// enumerates stays inside one CCC (rails, chip inputs, and pinned nodes
// terminate traversal; rails additionally never *bridge* two
// components), so per-CCC extraction jobs touch disjoint destination
// sets and can run in parallel with no shared mutable state.
//
// The partition is purely structural: it depends only on the Netlist,
// not on ExtractOptions, so it is computed once and reused across
// analyses of the same circuit.  It is also the incrementality boundary
// for ECO edits: update() absorbs a batch of change-log entries by
// re-running union-find only over newly added devices (components only
// ever merge — there is no removal API) and reports which components'
// stage sets may have changed.
//
// Pinned node values (Node::fixed) deliberately do NOT affect the
// partition even though extraction treats pinned nodes like rails: the
// partition is an upper bound on channel connectivity, so keeping
// pinned nodes as bridges means pinning/unpinning never has to split a
// component — it only dirties one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace sldm {

class CccPartition {
 public:
  /// Nodes outside every component (rails and nodes with no channel
  /// terminals) map here.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Computes the partition.  Components are numbered deterministically
  /// in order of their smallest member node id.
  explicit CccPartition(const Netlist& nl);

  /// Applies the change-log entries [since, log.revision()) to the
  /// partition and returns the ids of the components whose stage sets
  /// may have changed (new numbering, ascending, deduplicated).
  /// Topological entries (added devices) extend the union-find
  /// incrementally and renumber; parameter-only batches keep the
  /// numbering untouched.  The result is identical to rebuilding from
  /// scratch.  Throws Error for edits the incremental path cannot
  /// absorb (power/ground/input/precharge role changes, which would
  /// split components or change value sources).
  /// Precondition: `log` is nl.changes() and since <= log.revision().
  std::vector<std::size_t> update(const Netlist& nl, const ChangeLog& log,
                                  std::uint64_t since);

  /// Number of components.
  std::size_t count() const { return members_.size(); }

  /// The component containing `n`, or kNone.
  std::size_t component_of(NodeId n) const {
    return component_of_[n.index()];
  }

  /// Member nodes of component `c`, ascending by node id.
  /// Precondition: c < count().
  const std::vector<NodeId>& members(std::size_t c) const;

  /// Number of transistors with at least one channel terminal in `c`
  /// (rail-to-component devices count toward the component).
  /// Precondition: c < count().
  std::size_t device_count(std::size_t c) const;

  /// The largest component's member count (0 when there are none).
  std::size_t widest() const;

 private:
  /// Recomputes component numbering, members, and device counts from
  /// the current union-find roots (the constructor's second half).
  void renumber(const Netlist& nl);

  std::vector<std::size_t> parent_;        ///< persistent union-find
  std::vector<std::size_t> component_of_;  ///< per node, kNone for rails
  std::vector<std::vector<NodeId>> members_;
  std::vector<std::size_t> device_counts_;
};

}  // namespace sldm
