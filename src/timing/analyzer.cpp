#include "timing/analyzer.h"

#include <algorithm>
#include <chrono>

#include "util/contracts.h"
#include "util/error.h"
#include "util/trace.h"

namespace sldm {
namespace {

Seconds now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TimingAnalyzer::TimingAnalyzer(const Netlist& nl, const Tech& tech,
                               const DelayModel& model,
                               AnalyzerOptions options)
    : design_(CompiledDesign::build_over(
          nl, tech, CompileOptions{options.extract, options.threads})),
      options_(options),
      session_(design_, model,
               SessionOptions{options.max_updates_per_arrival,
                              options.threads}) {}

TimingAnalyzer::TimingAnalyzer(std::shared_ptr<CompiledDesign> design,
                               const DelayModel& model,
                               AnalyzerOptions options)
    : design_(std::move(design)),
      options_(options),
      session_(design_, model,
               SessionOptions{options.max_updates_per_arrival,
                              options.threads}) {
  options_.extract = design_->extract_options();
}

Netlist& TimingAnalyzer::mutable_netlist() {
  if (!design_->owns_netlist()) {
    throw Error(
        "mutable_netlist() on an analyzer over a borrowed netlist; "
        "mutate the caller-owned Netlist directly");
  }
  return *design_->owned_nl_;
}

void TimingAnalyzer::update() {
  const Netlist& nl = design_->netlist();
  const ChangeLog& log = nl.changes();
  if (log.revision() == design_->built_revision_) return;  // in sync
  // Single-writer discipline: the facade and its session hold the only
  // two references when the design is unshared.  Any outstanding
  // share_design() handle (another session, a snapshot writer) sees the
  // design as immutable, so in-place ECO mutation is forbidden.
  if (design_.use_count() > 2) {
    throw Error(
        "update() on a shared CompiledDesign: " +
        std::to_string(design_.use_count() - 2) +
        " other reference(s) outstanding; drop them or rebuild instead");
  }
  TraceSpan span("update", "timing");
  const Seconds t0 = now_seconds();
  const std::uint64_t since = design_->built_revision_;
  CccPartition& ccc = *design_->ccc_;
  std::vector<TimingStage>& stages = design_->stages_;

  // --- Partition sync: which components' stage sets may have changed.
  std::vector<std::size_t> dirty;
  bool grew = false;
  {
    TraceSpan sync_span("update-partition", "timing");
    dirty = ccc.update(nl, log, since);
    for (std::uint64_t i = since; i < log.revision(); ++i) {
      if (log.entry(i).kind == ChangeKind::kNodeAdded) grew = true;
    }
    sync_span.arg("edits", static_cast<double>(log.revision() - since));
    sync_span.arg("dirty_cccs", static_cast<double>(dirty.size()));
  }
  design_->built_revision_ = log.revision();

  // Grow the flat per-(node, dir) arrays for nodes added by the batch.
  const std::size_t nkeys = nl.node_count() * 2;
  if (grew) {
    session_.arrival_time_.resize(nkeys, 0.0);
    session_.arrival_slope_.resize(nkeys, 0.0);
    session_.arrival_from_.resize(nkeys, UINT32_MAX);
    session_.arrival_via_.resize(nkeys, SIZE_MAX);
    session_.arrival_valid_.resize(nkeys, 0);
    session_.update_counts_.resize(nkeys, 0);
  }

  std::vector<char> node_dirty(nl.node_count(), 0);
  for (const std::size_t c : dirty) {
    for (NodeId n : ccc.members(c)) node_dirty[n.index()] = 1;
  }

  // --- Re-extract the dirty components only (same fan-out and per-
  // component stage order as a full extraction).
  std::vector<std::vector<TimingStage>> fresh;
  std::size_t fresh_total = 0;
  {
    TraceSpan extract_span("update-extract", "timing");
    fresh = extract_components(nl, design_->extract_, ccc, dirty,
                               options_.threads);
    for (const auto& bucket : fresh) fresh_total += bucket.size();
    extract_span.arg("cccs", static_cast<double>(dirty.size()));
    extract_span.arg("stages", static_cast<double>(fresh_total));
  }

  // --- Splice: walk nodes in ascending id order (the global stage
  // order), dropping the old stages of dirty nodes and pulling in the
  // freshly extracted ones; clean nodes keep theirs.  remap[] carries
  // surviving old stage indices to their new positions so retained
  // arrivals' via_stage links stay valid.
  std::vector<std::size_t> remap(stages.size(), SIZE_MAX);
  std::size_t reused = 0;
  {
    TraceSpan splice_span("update-splice", "timing");
    std::vector<TimingStage> merged;
    merged.reserve(stages.size() + fresh_total);
    std::vector<std::size_t> cursor(fresh.size(), 0);
    std::vector<TimingStage> old = std::move(stages);
    std::size_t old_i = 0;
    for (NodeId n : nl.all_nodes()) {
      if (node_dirty[n.index()]) {
        while (old_i < old.size() && old[old_i].destination == n) ++old_i;
        const std::size_t c = ccc.component_of(n);
        const auto it = std::lower_bound(dirty.begin(), dirty.end(), c);
        SLDM_ASSERT(it != dirty.end() && *it == c);
        const std::size_t b = static_cast<std::size_t>(it - dirty.begin());
        std::size_t& cur = cursor[b];
        while (cur < fresh[b].size() && fresh[b][cur].destination == n) {
          // fresh is const for the workers' benefit; moving out of the
          // bucket here would be safe but reads better as an explicit
          // copy of the small TimingStage records.
          merged.push_back(fresh[b][cur]);
          ++cur;
        }
      } else {
        while (old_i < old.size() && old[old_i].destination == n) {
          remap[old_i] = merged.size();
          merged.push_back(std::move(old[old_i]));
          ++old_i;
          ++reused;
        }
      }
    }
    SLDM_ASSERT(old_i == old.size());
    stages = std::move(merged);

    // --- Refresh the structure-dependent indexes and session census.
    design_->recount_stages_per_ccc();
    session_.g_dirty_cccs_.set(static_cast<double>(dirty.size()));
    session_.g_reused_stages_.set(static_cast<double>(reused));
    session_.g_reextracted_stages_.set(static_cast<double>(fresh_total));
    session_.ctr_incremental_updates_.add();
    design_->index_stages_by_trigger();
    // The splice renumbered stages, so the SoA mirror must follow; a
    // full rebuild keeps store ids == stage indices (the invariant the
    // propagation and explain paths rely on).
    design_->rebuild_store();
    session_.refresh_fan_in();
    splice_span.arg("reused", static_cast<double>(reused));
    splice_span.arg("reextracted", static_cast<double>(fresh_total));
  }

  if (!session_.ran_) {
    // Structure-only sync: no arrivals to repair yet (declared seeds,
    // if any, are untouched and stages carry no arrival state).
    session_.g_frontier_keys_.set(0.0);
    session_.g_update_seconds_.set(now_seconds() - t0);
    session_.publish_telemetry();
    return;
  }

  // --- Damage: every (node, dir) arrival whose value may have changed.
  // Base set: all keys of dirty components (their stage sets changed);
  // closure: everything downstream through the recorded predecessor
  // links.  Primary-input seeds are never stage destinations, so they
  // keep their declared arrivals.
  std::vector<char> damaged(nkeys, 0);
  {
    TraceSpan invalidate_span("update-invalidate", "timing");
    std::vector<std::vector<std::uint32_t>> successors(nkeys);
    for (std::size_t k = 0; k < nkeys; ++k) {
      if (session_.arrival_valid_[k] &&
          session_.arrival_from_[k] != UINT32_MAX) {
        successors[session_.arrival_from_[k]].push_back(
            static_cast<std::uint32_t>(k));
      }
    }
    std::deque<std::uint32_t> bfs;
    for (const std::size_t c : dirty) {
      for (NodeId n : ccc.members(c)) {
        for (const Transition dir :
             {Transition::kRise, Transition::kFall}) {
          const std::size_t k = arrival_key(n, dir);
          if (session_.arrival_valid_[k] &&
              session_.arrival_via_[k] == SIZE_MAX) {
            continue;
          }
          if (!damaged[k]) {
            damaged[k] = 1;
            bfs.push_back(static_cast<std::uint32_t>(k));
          }
        }
      }
    }
    while (!bfs.empty()) {
      const std::uint32_t k = bfs.front();
      bfs.pop_front();
      for (const std::uint32_t succ : successors[k]) {
        if (!damaged[succ]) {
          damaged[succ] = 1;
          bfs.push_back(succ);
        }
      }
    }

    // Invalidate damaged arrivals; remap retained ones onto the new
    // stage numbering (their stages survived the splice by
    // construction).
    std::size_t invalidated = 0;
    for (std::size_t k = 0; k < nkeys; ++k) {
      if (!damaged[k]) {
        if (session_.arrival_valid_[k] &&
            session_.arrival_via_[k] != SIZE_MAX) {
          SLDM_ASSERT(remap[session_.arrival_via_[k]] != SIZE_MAX);
          session_.arrival_via_[k] = remap[session_.arrival_via_[k]];
        }
        continue;
      }
      if (session_.arrival_valid_[k]) ++invalidated;
      session_.arrival_valid_[k] = 0;
      session_.update_counts_[k] = 0;
    }
    session_.g_frontier_keys_.set(static_cast<double>(invalidated));
    session_.h_frontier_.add(static_cast<double>(invalidated));
    invalidate_span.arg("frontier_keys", static_cast<double>(invalidated));
  }

  // --- Re-propagate from the frontier: every stage targeting a damaged
  // key whose firing event is currently valid re-fires now; damaged
  // keys revalidated during propagation enqueue themselves through the
  // normal accept path.
  TraceSpan repropagate_span("update-propagate", "timing");
  std::deque<std::uint32_t> work;
  std::vector<char> queued(nkeys, 0);
  for (std::size_t k = 0; k < nkeys; ++k) {
    if (!session_.arrival_valid_[k] || queued[k]) continue;
    for (const std::size_t s : design_->stages_by_trigger_[k]) {
      const TimingStage& ts = stages[s];
      if (damaged[arrival_key(ts.destination, ts.output_dir)]) {
        queued[k] = 1;
        work.push_back(static_cast<std::uint32_t>(k));
        session_.ctr_worklist_pushes_.add();
        break;
      }
    }
  }
  repropagate_span.arg("seeds", static_cast<double>(work.size()));
  session_.propagate(work, queued);
  session_.g_update_seconds_.set(now_seconds() - t0);
  session_.publish_telemetry();
}

}  // namespace sldm
