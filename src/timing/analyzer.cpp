#include "timing/analyzer.h"

#include <algorithm>
#include <deque>

#include "util/contracts.h"
#include "util/error.h"

namespace sldm {

TimingAnalyzer::TimingAnalyzer(const Netlist& nl, const Tech& tech,
                               const DelayModel& model,
                               AnalyzerOptions options)
    : nl_(nl),
      tech_(tech),
      model_(model),
      options_(options),
      stages_(extract_all_stages(nl, options.extract)),
      stages_by_trigger_(nl.node_count() * 2),
      arrivals_(nl.node_count() * 2),
      update_counts_(static_cast<std::size_t>(nl.node_count()) * 2, 0) {
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const TimingStage& ts = stages_[s];
    const NodeId fire_node =
        ts.source_triggered ? ts.source : nl_.device(ts.trigger).gate;
    stages_by_trigger_[key(fire_node, ts.trigger_gate_dir)].push_back(s);
  }
}

std::size_t TimingAnalyzer::key(NodeId node, Transition dir) const {
  return node.index() * 2 + (dir == Transition::kRise ? 0 : 1);
}

void TimingAnalyzer::add_input_event(NodeId input, Transition dir,
                                     Seconds time, Seconds slope) {
  SLDM_EXPECTS(nl_.node(input).is_input);
  SLDM_EXPECTS(slope >= 0.0);
  SLDM_EXPECTS(!ran_);
  ArrivalInfo info;
  info.time = time;
  info.slope = slope;
  arrivals_[key(input, dir)] = info;
  seeds_.emplace_back(input, dir);
}

void TimingAnalyzer::add_all_input_events(Seconds slope) {
  for (NodeId n : nl_.node_ids()) {
    if (!nl_.node(n).is_input) continue;
    add_input_event(n, Transition::kRise, 0.0, slope);
    add_input_event(n, Transition::kFall, 0.0, slope);
  }
}

void TimingAnalyzer::run() {
  SLDM_EXPECTS(!ran_);
  ran_ = true;
  std::deque<std::pair<NodeId, Transition>> work(seeds_.begin(), seeds_.end());
  std::vector<bool> queued(arrivals_.size(), false);
  for (const auto& [n, d] : seeds_) queued[key(n, d)] = true;

  while (!work.empty()) {
    const auto [gate, gdir] = work.front();
    work.pop_front();
    queued[key(gate, gdir)] = false;
    const auto& info = arrivals_[key(gate, gdir)];
    SLDM_ASSERT(info.has_value());
    const Seconds t0 = info->time;
    const Seconds slope0 = info->slope;

    for (std::size_t s : stages_by_trigger_[key(gate, gdir)]) {
      const TimingStage& ts = stages_[s];
      const Stage stage = make_stage(nl_, tech_, ts, slope0);
      const DelayEstimate est = model_.estimate(stage);
      ++stage_evaluations_;
      const std::size_t dest_key = key(ts.destination, ts.output_dir);
      auto& cur = arrivals_[dest_key];
      const Seconds t_new = t0 + est.delay;
      if (cur.has_value() && t_new <= cur->time) continue;
      if (++update_counts_[dest_key] > options_.max_updates_per_arrival) {
        throw Error("timing loop detected at node '" +
                    nl_.node(ts.destination).name +
                    "': arrival keeps increasing");
      }
      ArrivalInfo next;
      next.time = t_new;
      next.slope = est.output_slope;
      next.from_node = gate;
      next.from_dir = gdir;
      next.via_stage = s;
      cur = next;
      if (!queued[dest_key]) {
        queued[dest_key] = true;
        work.emplace_back(ts.destination, ts.output_dir);
      }
    }
  }
}

std::optional<ArrivalInfo> TimingAnalyzer::arrival(NodeId node,
                                                   Transition dir) const {
  return arrivals_[key(node, dir)];
}

std::optional<TimingAnalyzer::Worst> TimingAnalyzer::worst_arrival(
    bool outputs_only) const {
  std::optional<Worst> worst;
  for (NodeId n : nl_.node_ids()) {
    if (outputs_only && !nl_.node(n).is_output) continue;
    if (nl_.node(n).is_input) continue;  // input events are seeds
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto& info = arrivals_[key(n, dir)];
      if (!info) continue;
      if (!worst || info->time > worst->time) {
        worst = Worst{n, dir, info->time};
      }
    }
  }
  return worst;
}

std::vector<PathStep> TimingAnalyzer::critical_path(NodeId node,
                                                    Transition dir) const {
  std::vector<PathStep> steps;
  NodeId cur = node;
  Transition cdir = dir;
  // Bounded walk: each step strictly decreases arrival time, so the
  // node-count bound can only be exceeded by corrupted predecessors.
  for (std::size_t guard = 0; guard <= arrivals_.size(); ++guard) {
    const auto& info = arrivals_[key(cur, cdir)];
    SLDM_EXPECTS(info.has_value());
    PathStep step;
    step.node = cur;
    step.dir = cdir;
    step.time = info->time;
    step.slope = info->slope;
    step.description = info->via_stage == SIZE_MAX
                           ? "<- input"
                           : describe(nl_, stages_[info->via_stage]);
    steps.push_back(std::move(step));
    if (!info->from_node.valid()) break;
    cur = info->from_node;
    cdir = info->from_dir;
  }
  std::reverse(steps.begin(), steps.end());
  return steps;
}

}  // namespace sldm
