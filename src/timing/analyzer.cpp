#include "timing/analyzer.h"

#include <algorithm>
#include <chrono>

#include "util/contracts.h"
#include "util/error.h"
#include "util/trace.h"

namespace sldm {
namespace {

Seconds now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Below this many candidates a wavefront batch is evaluated inline:
/// the pool handoff costs more than the evaluations save.
constexpr std::size_t kMinParallelChunk = 128;

}  // namespace

TimingAnalyzer::TimingAnalyzer(const Netlist& nl, const Tech& tech,
                               const DelayModel& model,
                               AnalyzerOptions options)
    : nl_(nl),
      tech_(tech),
      model_(model),
      options_(options),
      ccc_(nl),
      arrival_time_(nl.node_count() * 2, 0.0),
      arrival_slope_(nl.node_count() * 2, 0.0),
      arrival_from_(nl.node_count() * 2, UINT32_MAX),
      arrival_via_(nl.node_count() * 2, SIZE_MAX),
      arrival_valid_(nl.node_count() * 2, 0),
      update_counts_(static_cast<std::size_t>(nl.node_count()) * 2, 0),
      synced_revision_(nl.revision()) {
  SLDM_EXPECTS(options.threads >= 1);
  TraceSpan span("extract", "timing");
  const Seconds t0 = now_seconds();
  PartitionedStages extracted =
      extract_stages_partitioned(nl, options.extract, ccc_, options.threads);
  stages_ = std::move(extracted.stages);
  stats_.ccc_count = ccc_.count();
  stats_.widest_ccc = ccc_.widest();
  stats_.stages_per_ccc = std::move(extracted.per_ccc);
  stats_.stage_count = stages_.size();
  stats_.threads = options.threads;
  span.arg("cccs", static_cast<double>(ccc_.count()));
  span.arg("stages", static_cast<double>(stages_.size()));
  span.arg("threads", static_cast<double>(options.threads));
  index_stages_by_trigger();
  rebuild_store();
  g_extract_seconds_.set(now_seconds() - t0);
}

const MetricsRegistry& TimingAnalyzer::metrics() const {
  metrics_.counter("propagate.stage_evaluations")
      .set(ctr_stage_evaluations_.value());
  metrics_.counter("propagate.worklist_pushes")
      .set(ctr_worklist_pushes_.value());
  metrics_.counter("propagate.arrival_updates")
      .set(ctr_arrival_updates_.value());
  metrics_.counter("propagate.batches").set(ctr_batches_.value());
  metrics_.counter("eco.updates").set(ctr_incremental_updates_.value());
  metrics_.gauge("extract.seconds").set(g_extract_seconds_.value());
  metrics_.gauge("propagate.seconds").set(g_propagate_seconds_.value());
  metrics_.gauge("eco.update_seconds").set(g_update_seconds_.value());
  metrics_.gauge("eco.dirty_cccs").set(g_dirty_cccs_.value());
  metrics_.gauge("eco.reextracted_stages").set(g_reextracted_stages_.value());
  metrics_.gauge("eco.reused_stages").set(g_reused_stages_.value());
  metrics_.gauge("eco.frontier_keys").set(g_frontier_keys_.value());
  metrics_.gauge("propagate.max_batch_size").set(g_max_batch_size_.value());
  metrics_.histogram("propagate.batch_size", 0.0, 4096.0, 16) =
      h_batch_size_;
  metrics_.histogram("extract.stage_fan_in", 0.0, 64.0, 16) = h_fan_in_;
  metrics_.histogram("propagate.rc_path_depth", 0.0, 16.0, 16) = h_rc_depth_;
  metrics_.histogram("propagate.eval_us", 0.0, 50.0, 20) = h_eval_us_;
  metrics_.histogram("propagate.queue_depth", 0.0, 4096.0, 16) =
      h_queue_depth_;
  metrics_.histogram("eco.frontier_size", 0.0, 2048.0, 16) = h_frontier_;
  return metrics_;
}

const AnalyzerStats& TimingAnalyzer::stats() const {
  stats_.stage_evaluations =
      static_cast<std::size_t>(ctr_stage_evaluations_.value());
  stats_.worklist_pushes =
      static_cast<std::size_t>(ctr_worklist_pushes_.value());
  stats_.arrival_updates =
      static_cast<std::size_t>(ctr_arrival_updates_.value());
  stats_.batches = static_cast<std::size_t>(ctr_batches_.value());
  stats_.mean_batch_size =
      stats_.batches == 0
          ? 0.0
          : static_cast<double>(ctr_stage_evaluations_.value()) /
                static_cast<double>(stats_.batches);
  stats_.max_batch_size =
      static_cast<std::size_t>(g_max_batch_size_.value());
  stats_.incremental_updates =
      static_cast<std::size_t>(ctr_incremental_updates_.value());
  stats_.extract_seconds = g_extract_seconds_.value();
  stats_.propagate_seconds = g_propagate_seconds_.value();
  stats_.update_seconds = g_update_seconds_.value();
  stats_.dirty_cccs = static_cast<std::size_t>(g_dirty_cccs_.value());
  stats_.reextracted_stages =
      static_cast<std::size_t>(g_reextracted_stages_.value());
  stats_.reused_stages = static_cast<std::size_t>(g_reused_stages_.value());
  stats_.frontier_keys = static_cast<std::size_t>(g_frontier_keys_.value());
  return stats_;
}

void TimingAnalyzer::index_stages_by_trigger() {
  stages_by_trigger_.assign(nl_.node_count() * 2,
                            std::vector<std::size_t>());
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const TimingStage& ts = stages_[s];
    const NodeId fire_node =
        ts.source_triggered ? ts.source : nl_.device(ts.trigger).gate;
    stages_by_trigger_[key(fire_node, ts.trigger_gate_dir)].push_back(s);
  }
  // Fan-in census of the *current* structure: one sample per trigger
  // key that fires at least one stage (rebuilt, not accumulated, so
  // the distribution tracks the latest stage set after update()).
  h_fan_in_.reset();
  for (const std::vector<std::size_t>& list : stages_by_trigger_) {
    if (!list.empty()) h_fan_in_.add(static_cast<double>(list.size()));
  }
}

std::size_t TimingAnalyzer::key(NodeId node, Transition dir) const {
  return node.index() * 2 + (dir == Transition::kRise ? 0 : 1);
}

void TimingAnalyzer::require_not_ran(const char* what) const {
  if (ran_) {
    throw Error(std::string(what) +
                " called after run(); call reset() to start a new "
                "analysis or construct a fresh TimingAnalyzer");
  }
}

void TimingAnalyzer::require_synced(const char* what) const {
  if (nl_.revision() != synced_revision_) {
    throw Error(std::string(what) +
                " called on a stale analyzer: the netlist was mutated "
                "since the last synchronization; call update() first");
  }
}

void TimingAnalyzer::add_input_event(NodeId input, Transition dir,
                                     Seconds time, Seconds slope) {
  require_not_ran("add_input_event");
  require_synced("add_input_event");
  SLDM_EXPECTS(nl_.node(input).is_input);
  SLDM_EXPECTS(slope >= 0.0);
  const std::size_t k = key(input, dir);
  arrival_time_[k] = time;
  arrival_slope_[k] = slope;
  arrival_from_[k] = UINT32_MAX;
  arrival_via_[k] = SIZE_MAX;
  arrival_valid_[k] = 1;
  seeds_.push_back(static_cast<std::uint32_t>(k));
}

void TimingAnalyzer::add_all_input_events(Seconds slope) {
  require_not_ran("add_all_input_events");
  require_synced("add_all_input_events");
  for (NodeId n : nl_.all_nodes()) {
    if (!nl_.node(n).is_input) continue;
    add_input_event(n, Transition::kRise, 0.0, slope);
    add_input_event(n, Transition::kFall, 0.0, slope);
  }
}

void TimingAnalyzer::run() {
  require_not_ran("run");
  require_synced("run");
  ran_ = true;
  TraceSpan span("propagate", "timing");
  const Seconds t0 = now_seconds();
  const std::uint64_t evals_before = ctr_stage_evaluations_.value();

  // Explicit FIFO worklist of packed (node, dir) keys with in-queue
  // deduplication: an event already awaiting processing is not enqueued
  // again, it simply gets processed with its latest arrival.
  std::deque<std::uint32_t> work(seeds_.begin(), seeds_.end());
  std::vector<char> queued(arrival_valid_.size(), 0);
  for (const std::uint32_t k : seeds_) queued[k] = 1;
  ctr_worklist_pushes_.add(seeds_.size());
  propagate(work, queued);
  g_propagate_seconds_.set(now_seconds() - t0);
  span.arg("seeds", static_cast<double>(seeds_.size()));
  span.arg("stage_evaluations",
           static_cast<double>(ctr_stage_evaluations_.value() -
                               evals_before));
}

void TimingAnalyzer::rebuild_store() {
  TraceSpan span("build-store", "timing");
  store_.clear();
  std::size_t elements = 0;
  for (const TimingStage& ts : stages_) elements += ts.path.size();
  store_.reserve(stages_.size(), elements);
  Stage scratch;  // element storage reused across stages
  for (const TimingStage& ts : stages_) {
    // The slope argument is per-evaluation state, not store state: any
    // non-negative value yields the same stored elements.
    make_stage(nl_, tech_, ts, /*input_slope=*/0.0, scratch);
    store_.add(scratch);
  }
  span.arg("stages", static_cast<double>(store_.size()));
  span.arg("elements", static_cast<double>(store_.element_count()));
}

void TimingAnalyzer::evaluate_batch(std::span<const StageStore::StageId> ids,
                                    std::span<const Seconds> input_slopes,
                                    std::span<DelayEstimate> out) {
  const std::size_t n = ids.size();
  if (options_.threads <= 1 || n < 2 * kMinParallelChunk) {
    model_.estimate_batch(store_, ids, input_slopes, out);
    return;
  }
  // Contiguous chunks, workers write disjoint out[] windows; chunk 0
  // runs on the calling thread so all `threads` threads participate.
  const std::size_t nchunks = std::min<std::size_t>(
      static_cast<std::size_t>(options_.threads), n / kMinParallelChunk);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.threads);
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * n / nchunks;
    const std::size_t end = (c + 1) * n / nchunks;
    TraceSpan span("propagate-chunk", "timing");
    span.arg("evaluations", static_cast<double>(end - begin));
    model_.estimate_batch(store_, ids.subspan(begin, end - begin),
                          input_slopes.subspan(begin, end - begin),
                          out.subspan(begin, end - begin));
  };
  for (std::size_t c = 1; c < nchunks; ++c) {
    pool_->submit([&run_chunk, c] { run_chunk(c); });
  }
  try {
    run_chunk(0);
  } catch (...) {
    // The workers still hold references into this frame; drain them
    // before unwinding (their failures, if any, stay suppressed -- the
    // inline chunk's exception already carries the diagnosis).
    try {
      pool_->wait();
    } catch (...) {
    }
    throw;
  }
  pool_->wait();
}

void TimingAnalyzer::propagate(std::deque<std::uint32_t>& work,
                               std::vector<char>& queued) {
  Tracer& tracer = Tracer::instance();
  const bool tracing = tracer.enabled();

  // Wavefront buffers, reused across rounds of the drain loop.
  std::vector<StageStore::StageId> ids;
  std::vector<Seconds> slopes;
  std::vector<std::uint32_t> fire_keys;
  std::vector<Seconds> fire_times;
  std::vector<DelayEstimate> ests;

  while (!work.empty()) {
    const double wave_t0_us = tracing ? tracer.now_us() : 0.0;

    // --- Gather: snapshot the ready frontier.  Every event currently
    // in the worklist fires all its stages this round; candidates are
    // priced against the arrivals as of this snapshot, and any arrival
    // the commit phase changes re-enqueues its key into the *next*
    // wavefront, so the drain still reaches the same canonical
    // fixpoint as one-event-at-a-time processing.
    const std::size_t wave_events = work.size();
    h_queue_depth_.add(static_cast<double>(wave_events));
    ids.clear();
    slopes.clear();
    fire_keys.clear();
    fire_times.clear();
    for (std::size_t e = 0; e < wave_events; ++e) {
      const std::uint32_t fire_key = work.front();
      work.pop_front();
      queued[fire_key] = 0;
      SLDM_ASSERT(arrival_valid_[fire_key]);
      for (std::size_t s : stages_by_trigger_[fire_key]) {
        ids.push_back(static_cast<StageStore::StageId>(s));
        slopes.push_back(arrival_slope_[fire_key]);
        fire_keys.push_back(fire_key);
        fire_times.push_back(arrival_time_[fire_key]);
      }
    }
    if (ids.empty()) continue;  // frontier of sink events

    // --- Evaluate the whole wavefront through the batch kernel.
    const std::size_t n = ids.size();
    ests.resize(n);
    const double eval_t0_us = tracer.now_us();
    evaluate_batch(ids, slopes, ests);
    h_eval_us_.add((tracer.now_us() - eval_t0_us) /
                   static_cast<double>(n));
    ctr_stage_evaluations_.add(n);
    ctr_batches_.add();
    h_batch_size_.add(static_cast<double>(n));
    if (static_cast<double>(n) > g_max_batch_size_.value()) {
      g_max_batch_size_.set(static_cast<double>(n));
    }
    for (std::size_t i = 0; i < n; ++i) {
      h_rc_depth_.add(static_cast<double>(store_.length(ids[i])));
    }

    // --- Commit sequentially in gather order (FIFO event order, then
    // ascending stage index per event): thread-independent, so the
    // accepted arrivals -- and the next wavefront's contents -- are
    // bit-identical for any chunking of the evaluation above.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t s = ids[i];
      const TimingStage& ts = stages_[s];
      const std::uint32_t fire_key = fire_keys[i];
      const std::size_t dest_key = key(ts.destination, ts.output_dir);
      const Seconds t_new = fire_times[i] + ests[i].delay;
      bool tie = false;
      if (arrival_valid_[dest_key]) {
        if (t_new < arrival_time_[dest_key]) continue;
        if (t_new == arrival_time_[dest_key]) {
          // Canonical tie-break: among equal-time candidates the one
          // with the smallest (stage index, predecessor key) wins, so
          // the fixpoint winner is independent of processing order --
          // the property that keeps incremental update() bit-identical
          // to a from-scratch rebuild.
          if (arrival_via_[dest_key] < s ||
              (arrival_via_[dest_key] == s &&
               arrival_from_[dest_key] <= fire_key)) {
            continue;
          }
          tie = true;
        }
      }
      // Tie rewrites strictly decrease the stored (stage, predecessor)
      // pair, so they terminate on their own and don't count toward
      // the loop bound.
      if (!tie &&
          ++update_counts_[dest_key] > options_.max_updates_per_arrival) {
        throw Error("timing loop detected at node '" +
                    nl_.node(ts.destination).name +
                    "': arrival keeps increasing");
      }
      arrival_time_[dest_key] = t_new;
      arrival_slope_[dest_key] = ests[i].output_slope;
      arrival_from_[dest_key] = fire_key;
      arrival_via_[dest_key] = s;
      arrival_valid_[dest_key] = 1;
      ctr_arrival_updates_.add();
      if (!queued[dest_key]) {
        queued[dest_key] = 1;
        work.push_back(static_cast<std::uint32_t>(dest_key));
        ctr_worklist_pushes_.add();
      }
    }

    if (tracing) {
      tracer.record("propagate-wave", "timing", wave_t0_us,
                    tracer.now_us() - wave_t0_us,
                    {{"events", static_cast<double>(wave_events)},
                     {"evaluations", static_cast<double>(n)},
                     {"queue_depth", static_cast<double>(work.size())}});
    }
  }
}

void TimingAnalyzer::update() {
  const ChangeLog& log = nl_.changes();
  if (log.revision() == synced_revision_) return;  // already in sync
  TraceSpan span("update", "timing");
  const Seconds t0 = now_seconds();
  const std::uint64_t since = synced_revision_;

  // --- Partition sync: which components' stage sets may have changed.
  std::vector<std::size_t> dirty;
  bool grew = false;
  {
    TraceSpan sync_span("update-partition", "timing");
    dirty = ccc_.update(nl_, log, since);
    for (std::uint64_t i = since; i < log.revision(); ++i) {
      if (log.entry(i).kind == ChangeKind::kNodeAdded) grew = true;
    }
    sync_span.arg("edits", static_cast<double>(log.revision() - since));
    sync_span.arg("dirty_cccs", static_cast<double>(dirty.size()));
  }
  synced_revision_ = log.revision();

  // Grow the flat per-(node, dir) arrays for nodes added by the batch.
  const std::size_t nkeys = nl_.node_count() * 2;
  if (grew) {
    arrival_time_.resize(nkeys, 0.0);
    arrival_slope_.resize(nkeys, 0.0);
    arrival_from_.resize(nkeys, UINT32_MAX);
    arrival_via_.resize(nkeys, SIZE_MAX);
    arrival_valid_.resize(nkeys, 0);
    update_counts_.resize(nkeys, 0);
  }

  std::vector<char> node_dirty(nl_.node_count(), 0);
  for (const std::size_t c : dirty) {
    for (NodeId n : ccc_.members(c)) node_dirty[n.index()] = 1;
  }

  // --- Re-extract the dirty components only (same fan-out and per-
  // component stage order as a full extraction).
  std::vector<std::vector<TimingStage>> fresh;
  std::size_t fresh_total = 0;
  {
    TraceSpan extract_span("update-extract", "timing");
    fresh = extract_components(nl_, options_.extract, ccc_, dirty,
                               options_.threads);
    for (const auto& bucket : fresh) fresh_total += bucket.size();
    extract_span.arg("cccs", static_cast<double>(dirty.size()));
    extract_span.arg("stages", static_cast<double>(fresh_total));
  }

  // --- Splice: walk nodes in ascending id order (the global stage
  // order), dropping the old stages of dirty nodes and pulling in the
  // freshly extracted ones; clean nodes keep theirs.  remap[] carries
  // surviving old stage indices to their new positions so retained
  // arrivals' via_stage links stay valid.
  std::vector<std::size_t> remap(stages_.size(), SIZE_MAX);
  std::size_t reused = 0;
  {
    TraceSpan splice_span("update-splice", "timing");
    std::vector<TimingStage> merged;
    merged.reserve(stages_.size() + fresh_total);
    std::vector<std::size_t> cursor(fresh.size(), 0);
    std::vector<TimingStage> old = std::move(stages_);
    std::size_t old_i = 0;
    for (NodeId n : nl_.all_nodes()) {
      if (node_dirty[n.index()]) {
        while (old_i < old.size() && old[old_i].destination == n) ++old_i;
        const std::size_t c = ccc_.component_of(n);
        const auto it = std::lower_bound(dirty.begin(), dirty.end(), c);
        SLDM_ASSERT(it != dirty.end() && *it == c);
        const std::size_t b = static_cast<std::size_t>(it - dirty.begin());
        std::size_t& cur = cursor[b];
        while (cur < fresh[b].size() && fresh[b][cur].destination == n) {
          // fresh is const for the workers' benefit; moving out of the
          // bucket here would be safe but reads better as an explicit
          // copy of the small TimingStage records.
          merged.push_back(fresh[b][cur]);
          ++cur;
        }
      } else {
        while (old_i < old.size() && old[old_i].destination == n) {
          remap[old_i] = merged.size();
          merged.push_back(std::move(old[old_i]));
          ++old_i;
          ++reused;
        }
      }
    }
    SLDM_ASSERT(old_i == old.size());
    stages_ = std::move(merged);

    // --- Refresh structure-dependent stats and the trigger index.
    stats_.stages_per_ccc.assign(ccc_.count(), 0);
    for (const TimingStage& ts : stages_) {
      ++stats_.stages_per_ccc[ccc_.component_of(ts.destination)];
    }
    stats_.ccc_count = ccc_.count();
    stats_.widest_ccc = ccc_.widest();
    stats_.stage_count = stages_.size();
    g_dirty_cccs_.set(static_cast<double>(dirty.size()));
    g_reused_stages_.set(static_cast<double>(reused));
    g_reextracted_stages_.set(static_cast<double>(fresh_total));
    ctr_incremental_updates_.add();
    index_stages_by_trigger();
    // The splice renumbered stages_, so the SoA mirror must follow; a
    // full rebuild keeps store ids == stage indices (the invariant the
    // propagation and explain paths rely on).
    rebuild_store();
    splice_span.arg("reused", static_cast<double>(reused));
    splice_span.arg("reextracted", static_cast<double>(fresh_total));
  }

  if (!ran_) {
    // Structure-only sync: no arrivals to repair yet (declared seeds,
    // if any, are untouched and stages carry no arrival state).
    g_frontier_keys_.set(0.0);
    g_update_seconds_.set(now_seconds() - t0);
    return;
  }

  // --- Damage: every (node, dir) arrival whose value may have changed.
  // Base set: all keys of dirty components (their stage sets changed);
  // closure: everything downstream through the recorded predecessor
  // links.  Primary-input seeds are never stage destinations, so they
  // keep their declared arrivals.
  std::vector<char> damaged(nkeys, 0);
  {
    TraceSpan invalidate_span("update-invalidate", "timing");
    std::vector<std::vector<std::uint32_t>> successors(nkeys);
    for (std::size_t k = 0; k < nkeys; ++k) {
      if (arrival_valid_[k] && arrival_from_[k] != UINT32_MAX) {
        successors[arrival_from_[k]].push_back(
            static_cast<std::uint32_t>(k));
      }
    }
    std::deque<std::uint32_t> bfs;
    for (const std::size_t c : dirty) {
      for (NodeId n : ccc_.members(c)) {
        for (const Transition dir :
             {Transition::kRise, Transition::kFall}) {
          const std::size_t k = key(n, dir);
          if (arrival_valid_[k] && arrival_via_[k] == SIZE_MAX) continue;
          if (!damaged[k]) {
            damaged[k] = 1;
            bfs.push_back(static_cast<std::uint32_t>(k));
          }
        }
      }
    }
    while (!bfs.empty()) {
      const std::uint32_t k = bfs.front();
      bfs.pop_front();
      for (const std::uint32_t succ : successors[k]) {
        if (!damaged[succ]) {
          damaged[succ] = 1;
          bfs.push_back(succ);
        }
      }
    }

    // Invalidate damaged arrivals; remap retained ones onto the new
    // stage numbering (their stages survived the splice by
    // construction).
    std::size_t invalidated = 0;
    for (std::size_t k = 0; k < nkeys; ++k) {
      if (!damaged[k]) {
        if (arrival_valid_[k] && arrival_via_[k] != SIZE_MAX) {
          SLDM_ASSERT(remap[arrival_via_[k]] != SIZE_MAX);
          arrival_via_[k] = remap[arrival_via_[k]];
        }
        continue;
      }
      if (arrival_valid_[k]) ++invalidated;
      arrival_valid_[k] = 0;
      update_counts_[k] = 0;
    }
    g_frontier_keys_.set(static_cast<double>(invalidated));
    h_frontier_.add(static_cast<double>(invalidated));
    invalidate_span.arg("frontier_keys", static_cast<double>(invalidated));
  }

  // --- Re-propagate from the frontier: every stage targeting a damaged
  // key whose firing event is currently valid re-fires now; damaged
  // keys revalidated during propagation enqueue themselves through the
  // normal accept path.
  TraceSpan repropagate_span("update-propagate", "timing");
  std::deque<std::uint32_t> work;
  std::vector<char> queued(nkeys, 0);
  for (std::size_t k = 0; k < nkeys; ++k) {
    if (!arrival_valid_[k] || queued[k]) continue;
    for (const std::size_t s : stages_by_trigger_[k]) {
      const TimingStage& ts = stages_[s];
      if (damaged[key(ts.destination, ts.output_dir)]) {
        queued[k] = 1;
        work.push_back(static_cast<std::uint32_t>(k));
        ctr_worklist_pushes_.add();
        break;
      }
    }
  }
  repropagate_span.arg("seeds", static_cast<double>(work.size()));
  propagate(work, queued);
  g_update_seconds_.set(now_seconds() - t0);
}

void TimingAnalyzer::reset() {
  std::fill(arrival_valid_.begin(), arrival_valid_.end(), 0);
  std::fill(update_counts_.begin(), update_counts_.end(), 0);
  seeds_.clear();
  ran_ = false;
}

std::optional<ArrivalInfo> TimingAnalyzer::arrival(NodeId node,
                                                   Transition dir) const {
  const std::size_t k = key(node, dir);
  if (!arrival_valid_[k]) return std::nullopt;
  ArrivalInfo info;
  info.time = arrival_time_[k];
  info.slope = arrival_slope_[k];
  if (arrival_from_[k] != UINT32_MAX) {
    info.from_node = NodeId(arrival_from_[k] / 2);
    info.from_dir =
        arrival_from_[k] % 2 == 0 ? Transition::kRise : Transition::kFall;
  }
  info.via_stage = arrival_via_[k];
  return info;
}

std::optional<TimingAnalyzer::Worst> TimingAnalyzer::worst_arrival(
    bool outputs_only) const {
  std::optional<Worst> worst;
  for (NodeId n : nl_.all_nodes()) {
    if (outputs_only && !nl_.node(n).is_output) continue;
    if (nl_.node(n).is_input) continue;  // input events are seeds
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const std::size_t k = key(n, dir);
      if (!arrival_valid_[k]) continue;
      if (!worst || arrival_time_[k] > worst->time) {
        worst = Worst{n, dir, arrival_time_[k]};
      }
    }
  }
  return worst;
}

std::vector<PathStep> TimingAnalyzer::critical_path(NodeId node,
                                                    Transition dir) const {
  std::vector<PathStep> steps;
  NodeId cur = node;
  Transition cdir = dir;
  // Bounded walk: each step strictly decreases arrival time, so the
  // node-count bound can only be exceeded by corrupted predecessors.
  for (std::size_t guard = 0; guard <= arrival_valid_.size(); ++guard) {
    const auto info = arrival(cur, cdir);
    SLDM_EXPECTS(info.has_value());
    PathStep step;
    step.node = cur;
    step.dir = cdir;
    step.time = info->time;
    step.slope = info->slope;
    step.description = info->via_stage == SIZE_MAX
                           ? "<- input"
                           : describe(nl_, stages_[info->via_stage]);
    steps.push_back(std::move(step));
    if (!info->from_node.valid()) break;
    cur = info->from_node;
    cdir = info->from_dir;
  }
  std::reverse(steps.begin(), steps.end());
  return steps;
}

}  // namespace sldm
