#include "timing/analyzer.h"

#include <algorithm>
#include <chrono>
#include <deque>

#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

Seconds now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TimingAnalyzer::TimingAnalyzer(const Netlist& nl, const Tech& tech,
                               const DelayModel& model,
                               AnalyzerOptions options)
    : nl_(nl),
      tech_(tech),
      model_(model),
      options_(options),
      ccc_(nl),
      stages_by_trigger_(nl.node_count() * 2),
      arrival_time_(nl.node_count() * 2, 0.0),
      arrival_slope_(nl.node_count() * 2, 0.0),
      arrival_from_(nl.node_count() * 2, UINT32_MAX),
      arrival_via_(nl.node_count() * 2, SIZE_MAX),
      arrival_valid_(nl.node_count() * 2, 0),
      update_counts_(static_cast<std::size_t>(nl.node_count()) * 2, 0) {
  SLDM_EXPECTS(options.threads >= 1);
  const Seconds t0 = now_seconds();
  PartitionedStages extracted =
      extract_stages_partitioned(nl, options.extract, ccc_, options.threads);
  stages_ = std::move(extracted.stages);
  stats_.extract_seconds = now_seconds() - t0;
  stats_.ccc_count = ccc_.count();
  stats_.widest_ccc = ccc_.widest();
  stats_.stages_per_ccc = std::move(extracted.per_ccc);
  stats_.stage_count = stages_.size();
  stats_.threads = options.threads;

  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const TimingStage& ts = stages_[s];
    const NodeId fire_node =
        ts.source_triggered ? ts.source : nl_.device(ts.trigger).gate;
    stages_by_trigger_[key(fire_node, ts.trigger_gate_dir)].push_back(s);
  }
}

std::size_t TimingAnalyzer::key(NodeId node, Transition dir) const {
  return node.index() * 2 + (dir == Transition::kRise ? 0 : 1);
}

void TimingAnalyzer::require_not_ran(const char* what) const {
  if (ran_) {
    throw Error(std::string(what) +
                " called after run(); call reset() to start a new "
                "analysis or construct a fresh TimingAnalyzer");
  }
}

void TimingAnalyzer::add_input_event(NodeId input, Transition dir,
                                     Seconds time, Seconds slope) {
  require_not_ran("add_input_event");
  SLDM_EXPECTS(nl_.node(input).is_input);
  SLDM_EXPECTS(slope >= 0.0);
  const std::size_t k = key(input, dir);
  arrival_time_[k] = time;
  arrival_slope_[k] = slope;
  arrival_from_[k] = UINT32_MAX;
  arrival_via_[k] = SIZE_MAX;
  arrival_valid_[k] = 1;
  seeds_.push_back(static_cast<std::uint32_t>(k));
}

void TimingAnalyzer::add_all_input_events(Seconds slope) {
  require_not_ran("add_all_input_events");
  for (NodeId n : nl_.node_ids()) {
    if (!nl_.node(n).is_input) continue;
    add_input_event(n, Transition::kRise, 0.0, slope);
    add_input_event(n, Transition::kFall, 0.0, slope);
  }
}

void TimingAnalyzer::run() {
  require_not_ran("run");
  ran_ = true;
  const Seconds t0 = now_seconds();

  // Explicit FIFO worklist of packed (node, dir) keys with in-queue
  // deduplication: an event already awaiting processing is not enqueued
  // again, it simply gets processed with its latest arrival.
  std::deque<std::uint32_t> work(seeds_.begin(), seeds_.end());
  std::vector<char> queued(arrival_valid_.size(), 0);
  for (const std::uint32_t k : seeds_) queued[k] = 1;
  stats_.worklist_pushes += seeds_.size();
  Stage stage;  // element storage reused across evaluations

  while (!work.empty()) {
    const std::uint32_t fire_key = work.front();
    work.pop_front();
    queued[fire_key] = 0;
    SLDM_ASSERT(arrival_valid_[fire_key]);
    const Seconds t_fire = arrival_time_[fire_key];
    const Seconds slope_fire = arrival_slope_[fire_key];

    for (std::size_t s : stages_by_trigger_[fire_key]) {
      const TimingStage& ts = stages_[s];
      make_stage(nl_, tech_, ts, slope_fire, stage);
      const DelayEstimate est = model_.estimate(stage);
      ++stats_.stage_evaluations;
      const std::size_t dest_key = key(ts.destination, ts.output_dir);
      const Seconds t_new = t_fire + est.delay;
      if (arrival_valid_[dest_key] && t_new <= arrival_time_[dest_key]) {
        continue;
      }
      if (++update_counts_[dest_key] > options_.max_updates_per_arrival) {
        throw Error("timing loop detected at node '" +
                    nl_.node(ts.destination).name +
                    "': arrival keeps increasing");
      }
      arrival_time_[dest_key] = t_new;
      arrival_slope_[dest_key] = est.output_slope;
      arrival_from_[dest_key] = static_cast<std::uint32_t>(fire_key);
      arrival_via_[dest_key] = s;
      arrival_valid_[dest_key] = 1;
      ++stats_.arrival_updates;
      if (!queued[dest_key]) {
        queued[dest_key] = 1;
        work.push_back(static_cast<std::uint32_t>(dest_key));
        ++stats_.worklist_pushes;
      }
    }
  }
  stats_.propagate_seconds = now_seconds() - t0;
}

void TimingAnalyzer::reset() {
  std::fill(arrival_valid_.begin(), arrival_valid_.end(), 0);
  std::fill(update_counts_.begin(), update_counts_.end(), 0);
  seeds_.clear();
  ran_ = false;
}

std::optional<ArrivalInfo> TimingAnalyzer::arrival(NodeId node,
                                                   Transition dir) const {
  const std::size_t k = key(node, dir);
  if (!arrival_valid_[k]) return std::nullopt;
  ArrivalInfo info;
  info.time = arrival_time_[k];
  info.slope = arrival_slope_[k];
  if (arrival_from_[k] != UINT32_MAX) {
    info.from_node = NodeId(arrival_from_[k] / 2);
    info.from_dir =
        arrival_from_[k] % 2 == 0 ? Transition::kRise : Transition::kFall;
  }
  info.via_stage = arrival_via_[k];
  return info;
}

std::optional<TimingAnalyzer::Worst> TimingAnalyzer::worst_arrival(
    bool outputs_only) const {
  std::optional<Worst> worst;
  for (NodeId n : nl_.node_ids()) {
    if (outputs_only && !nl_.node(n).is_output) continue;
    if (nl_.node(n).is_input) continue;  // input events are seeds
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const std::size_t k = key(n, dir);
      if (!arrival_valid_[k]) continue;
      if (!worst || arrival_time_[k] > worst->time) {
        worst = Worst{n, dir, arrival_time_[k]};
      }
    }
  }
  return worst;
}

std::vector<PathStep> TimingAnalyzer::critical_path(NodeId node,
                                                    Transition dir) const {
  std::vector<PathStep> steps;
  NodeId cur = node;
  Transition cdir = dir;
  // Bounded walk: each step strictly decreases arrival time, so the
  // node-count bound can only be exceeded by corrupted predecessors.
  for (std::size_t guard = 0; guard <= arrival_valid_.size(); ++guard) {
    const auto info = arrival(cur, cdir);
    SLDM_EXPECTS(info.has_value());
    PathStep step;
    step.node = cur;
    step.dir = cdir;
    step.time = info->time;
    step.slope = info->slope;
    step.description = info->via_stage == SIZE_MAX
                           ? "<- input"
                           : describe(nl_, stages_[info->via_stage]);
    steps.push_back(std::move(step));
    if (!info->from_node.valid()) break;
    cur = info->from_node;
    cdir = info->from_dir;
  }
  std::reverse(steps.begin(), steps.end());
  return steps;
}

}  // namespace sldm
