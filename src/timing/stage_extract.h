// Stage extraction: decomposing a switch-level netlist into the stages
// the delay models evaluate.
//
// For a destination node and transition, we enumerate the simple channel
// paths from a suitable value source to the destination (Crystal's
// path-tracing step).  Each enhancement transistor on a path is a
// potential trigger (the transistor whose gate transition opens the
// path); ratioed circuits additionally produce *release* stages, where
// an always-on load recharges the node after its opposing network turns
// off (nMOS depletion pull-ups, pseudo-nMOS p loads).
//
// Two false-path controls mirror Crystal's:
//  * transistor flow attributes (Transistor::flow) forbid traversing a
//    pass device against its annotated signal direction;
//  * fixed node values (ExtractOptions::fixed_values, Crystal's "set"
//    command) pin a node to a constant: the node acts like a rail, and
//    devices it gates are constant-on or constant-off.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "delay/stage.h"
#include "netlist/netlist.h"
#include "tech/tech.h"
#include "timing/ccc.h"

namespace sldm {

/// One stage at netlist level (device/node identities preserved).
struct TimingStage {
  NodeId source;            ///< value source the charge comes from
  NodeId destination;       ///< node being switched
  Transition output_dir;    ///< transition produced at destination
  std::vector<DeviceId> path;  ///< channel devices, source -> destination
  /// The transistor whose gate event fires this stage.  For ON-trigger
  /// stages it lies on `path`; for release stages it lies on the
  /// opposing network; for source-triggered stages it is the source-side
  /// path device (used for electrical typing only).
  DeviceId trigger;
  Transition trigger_gate_dir;  ///< gate transition that fires the stage
  bool trigger_is_release = false;
  /// True when the firing event is the *source node's own transition*
  /// (a chip input driving through a conducting pass network), not a
  /// gate: the analyzer indexes such stages by (source, output_dir).
  bool source_triggered = false;
};

/// Extraction limits and assumptions.
struct ExtractOptions {
  /// Maximum number of channel devices on a path (deep enough for the
  /// longest benchmark pass/carry chains; kMaxPathsPerQuery caps the
  /// work on dense pass-transistor meshes).
  int max_depth = 16;
  /// Treat chip inputs as value sources (they can pass either value).
  bool inputs_as_sources = true;
  /// Nodes pinned to constant logic values for this analysis.  Takes
  /// precedence over the netlist's persistent Node::fixed attribute
  /// (the `@set` .sim record), which is also honored.
  std::unordered_map<NodeId, bool> fixed_values;
};

/// The logic value of a node if it is constant under `options`
/// (rails, per-analysis fixed_values, and persistently pinned nodes),
/// nullopt otherwise.
std::optional<bool> known_value(const Netlist& nl,
                                const ExtractOptions& options, NodeId n);

/// True if the device can conduct under some gate value (i.e. it is not
/// permanently off given rails and fixed values).
bool can_conduct(const Netlist& nl, const ExtractOptions& options,
                 DeviceId d);
bool can_conduct(const Netlist& nl, DeviceId d);

/// True if the device conducts regardless of circuit activity
/// (depletion devices, devices whose gate is pinned to the enabling
/// value).
bool always_on(const Netlist& nl, const ExtractOptions& options, DeviceId d);
bool always_on(const Netlist& nl, DeviceId d);

/// Flat storage for a batch of channel paths (concatenated device
/// lists); path `i` occupies [offsets[i], offsets[i+1]) of `devices`.
/// Reused across queries so path enumeration does not allocate per path.
struct PathList {
  std::vector<DeviceId> devices;
  std::vector<std::uint32_t> offsets{0};

  void clear() {
    devices.clear();
    offsets.assign(1, 0);
  }
  std::size_t size() const { return offsets.size() - 1; }
};

/// Reusable workspace for stage extraction.  One scratch per thread;
/// queries through the same scratch must not run concurrently.  All
/// buffers grow to the high-water mark of the netlist and stay
/// allocated, which removes the per-(node, direction) allocation churn
/// of the DFS hot path.
struct ExtractScratch {
  std::vector<char> visited;        ///< per-node DFS mark (self-clearing)
  std::vector<DeviceId> stack;      ///< DFS channel stack
  PathList paths;                   ///< ON-trigger candidate paths
  PathList load_paths;              ///< always-on load paths
  PathList opposing;                ///< opposing-network paths
  std::vector<DeviceId> release_triggers;  ///< sorted, deduplicated
};

/// All stages that can drive `dest` to `dir`, including release stages
/// through always-on loads.  Appends to `out` in deterministic order.
void stages_to(const Netlist& nl, NodeId dest, Transition dir,
               const ExtractOptions& options, ExtractScratch& scratch,
               std::vector<TimingStage>& out);

/// Convenience form (allocates its own scratch).
std::vector<TimingStage> stages_to(const Netlist& nl, NodeId dest,
                                   Transition dir,
                                   const ExtractOptions& options = {});

/// All stages in the whole netlist (every non-rail, channel-connected
/// node, both directions), in ascending (node id, rise-then-fall)
/// order.
std::vector<TimingStage> extract_all_stages(
    const Netlist& nl, const ExtractOptions& options = {});

/// Result of a component-partitioned whole-netlist extraction.
struct PartitionedStages {
  /// Same contents and order as extract_all_stages (bit-identical for
  /// any thread count).
  std::vector<TimingStage> stages;
  /// Stage count per CCC of the partition used for extraction.
  std::vector<std::size_t> per_ccc;
};

/// Extracts the whole netlist by fanning the channel-connected
/// components of `ccc` out over `threads` workers (threads == 1 runs
/// inline with no pool).  Each component is an independent job with its
/// own scratch; results are merged back into global node-id order, so
/// stage indices are identical to the sequential path regardless of
/// thread count.  Precondition: threads >= 1; ccc was built from `nl`.
PartitionedStages extract_stages_partitioned(const Netlist& nl,
                                             const ExtractOptions& options,
                                             const CccPartition& ccc,
                                             int threads);

/// Extracts only the listed components, fanned out over `threads`
/// workers exactly like extract_stages_partitioned.  Returns one stage
/// bucket per entry of `components` (same order); each bucket holds the
/// component's stages in ascending (node id, rise-then-fall) order —
/// bit-identical to the corresponding slice of a whole-netlist
/// extraction.  This is the re-extraction primitive of
/// TimingAnalyzer::update(): dirty components pay, clean ones don't.
/// Preconditions: threads >= 1; components are valid ids of `ccc`,
/// ascending and unique.
std::vector<std::vector<TimingStage>> extract_components(
    const Netlist& nl, const ExtractOptions& options, const CccPartition& ccc,
    const std::vector<std::size_t>& components, int threads);

/// Converts a TimingStage into the electrical Stage the delay models
/// consume: per-device effective resistances for the output direction
/// and per-node lumped capacitances from `tech`.
/// For release stages the trigger element defaults to the source-side
/// driver of the path (the load device).
Stage make_stage(const Netlist& nl, const Tech& tech, const TimingStage& ts,
                 Seconds input_slope);

/// In-place form for hot loops: rebuilds `out` (element storage is
/// reused across calls, so a loop-local Stage avoids one allocation per
/// delay-model evaluation).
void make_stage(const Netlist& nl, const Tech& tech, const TimingStage& ts,
                Seconds input_slope, Stage& out);

/// Human-readable one-line description, for reports.
std::string describe(const Netlist& nl, const TimingStage& ts);

}  // namespace sldm
