// Rendering of timing results: arrival summaries and critical paths.
#pragma once

#include <string>

#include "timing/analyzer.h"

namespace sldm {

/// A multi-line rendering of a critical path (one event per line).
std::string format_path(const Netlist& nl, const std::vector<PathStep>& path);

/// A table of arrivals at all output-marked nodes.
std::string format_output_arrivals(const Netlist& nl,
                                   const TimingAnalyzer& analyzer);

/// Session variant of the same table: the serve layer runs bare
/// Sessions (no facade) and must emit byte-identical report text to
/// the cold CLI path for the parity contract.
std::string format_output_arrivals(const Netlist& nl,
                                   const Session& session);

/// A table of arrivals at every node that has any (Crystal's full
/// listing); nodes with no arrivals are omitted.
std::string format_all_arrivals(const Netlist& nl,
                                const TimingAnalyzer& analyzer);

/// The analyzer's instrumentation report: per-phase wall clock
/// (extraction vs propagation), work counters, incremental-update
/// counters when update() has run, and a per-CCC stage census (largest
/// components first, up to `max_cccs` rows).
std::string format_analyzer_stats(const Netlist& nl,
                                  const TimingAnalyzer& analyzer,
                                  std::size_t max_cccs = 10);

/// One-line JSON object of the stats counters (machine-readable
/// counterpart of format_analyzer_stats, minus the per-CCC census) for
/// scripted perf tracking: `sldm time --stats --json`, `sldm eco
/// --json`, and the compare harness all emit this.
std::string analyzer_stats_json(const AnalyzerStats& stats);

/// Same object with a trailing "metrics" member holding the analyzer's
/// full metrics registry (counters / gauges / histograms; see
/// FORMATS.md).  The legacy fields stay first, so consumers keyed on
/// them are unaffected.
std::string analyzer_stats_json(const TimingAnalyzer& analyzer);

}  // namespace sldm
