// Rendering of timing results: arrival summaries and critical paths.
#pragma once

#include <string>

#include "timing/analyzer.h"

namespace sldm {

/// A multi-line rendering of a critical path (one event per line).
std::string format_path(const Netlist& nl, const std::vector<PathStep>& path);

/// A table of arrivals at all output-marked nodes.
std::string format_output_arrivals(const Netlist& nl,
                                   const TimingAnalyzer& analyzer);

/// A table of arrivals at every node that has any (Crystal's full
/// listing); nodes with no arrivals are omitted.
std::string format_all_arrivals(const Netlist& nl,
                                const TimingAnalyzer& analyzer);

/// The analyzer's instrumentation report: per-phase wall clock
/// (extraction vs propagation), work counters, and a per-CCC stage
/// census (largest components first, up to `max_cccs` rows).
std::string format_analyzer_stats(const Netlist& nl,
                                  const TimingAnalyzer& analyzer,
                                  std::size_t max_cccs = 10);

}  // namespace sldm
