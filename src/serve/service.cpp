#include "serve/service.h"

#include <optional>
#include <sstream>
#include <utility>

#include "calib/calibrate.h"
#include "delay/bounds.h"
#include "delay/lumped.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "delay/unit.h"
#include "design/session.h"
#include "design/snapshot.h"
#include "netlist/eco_io.h"
#include "netlist/sim_io.h"
#include "serve/protocol.h"
#include "tech/tech_io.h"
#include "timing/analyzer.h"
#include "timing/explain.h"
#include "timing/report.h"
#include "util/cancel.h"
#include "util/failpoint.h"
#include "util/json.h"
#include "util/ledger.h"
#include "util/strings.h"
#include "util/telemetry.h"
#include "util/version.h"

namespace sldm {

struct TimingService::Lease::CacheEntry {
  std::shared_ptr<CompiledDesign> design;
  std::shared_ptr<const SlopeTables> tables;  ///< slope calibration, if any
  std::atomic<int> active{0};  ///< outstanding reader leases
  std::uint64_t last_used = 0;
};

namespace {

using namespace serve_errors;

std::string fingerprint_hex(std::uint64_t fp) {
  return format("%016llx", static_cast<unsigned long long>(fp));
}

/// Mirror of the CLI's tech loading: preset name or .tech file path.
Tech load_tech_spec(const std::string& spec) {
  if (spec == "nmos") return nmos4();
  if (spec == "cmos") return cmos3();
  return read_tech_file(spec);
}

Style style_for(const Tech& tech) {
  return tech.has(TransistorType::kPEnhancement) ? Style::kCmos
                                                 : Style::kNmos;
}

bool known_model(const std::string& name) {
  return name == "slope" || name == "lumped" || name == "rc-tree" ||
         name == "rph-upper" || name == "unit";
}

/// Builds the per-request delay model.  Construction mirrors the CLI's
/// make_model exactly -- same classes, same parameters -- which is half
/// of the cold-run parity contract (the other half is that the design
/// was compiled with the same tech transformation at load time).
std::unique_ptr<DelayModel> make_request_model(
    const std::string& name,
    const std::shared_ptr<const SlopeTables>& tables) {
  if (name == "lumped") return std::make_unique<LumpedRcModel>();
  if (name == "rc-tree") return std::make_unique<RcTreeModel>();
  if (name == "rph-upper") {
    return std::make_unique<RphBoundsModel>(RphBoundsModel::Mode::kUpper);
  }
  if (name == "unit") return std::make_unique<UnitDelayModel>(1e-9);
  if (name != "slope") {
    throw RequestError(kBadRequest, "unknown model '" + name + "'");
  }
  if (!tables) {
    throw RequestError(kFailed,
                       "design carries no slope calibration tables; load "
                       "it with \"model\":\"slope\" (or from a "
                       "slope-compiled .sldc), or request another model");
  }
  return std::make_unique<SlopeModel>(*tables);
}

std::ostream& begin_response(std::ostream& os, const ServeRequest& req,
                             const char* kind) {
  os << '{';
  if (!req.id_token.empty()) os << "\"id\":" << req.id_token << ',';
  os << "\"kind\":\"" << kind << "\",\"ok\":true";
  return os;
}

/// Exactly the cold `sldm time` stdout for this analysis, so the
/// parity check is a byte compare.
std::string report_text(const std::string& model_name, const Netlist& nl,
                        const Session& session) {
  return "model: " + model_name + "\n\n" +
         format_output_arrivals(nl, session) + "\n";
}

std::string arrivals_json(const Netlist& nl, const Session& session) {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (NodeId n : nl.all_nodes()) {
    if (!nl.node(n).is_output) continue;
    for (const Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto a = session.arrival(n, dir);
      if (!a) continue;
      if (!first) os << ',';
      first = false;
      os << "{\"node\":\"" << json_escape(nl.node(n).name.str())
         << "\",\"dir\":\"" << to_string(dir)
         << "\",\"time_s\":" << json_number(a->time)
         << ",\"slope_s\":" << json_number(a->slope) << '}';
    }
  }
  os << ']';
  return os.str();
}

void append_worst(std::ostream& os, const Netlist& nl,
                  const Session& session) {
  if (const auto w = session.worst_arrival(true)) {
    os << ",\"worst\":{\"node\":\"" << json_escape(nl.node(w->node).name.str())
       << "\",\"dir\":\"" << to_string(w->dir)
       << "\",\"time_s\":" << json_number(w->time) << '}';
  }
}

/// A ledger record for a finished serve-side analysis (same fields
/// note_analysis fills on the CLI path).
LedgerRecord session_record(const char* kind, const Session& session,
                            std::uint64_t fingerprint,
                            const std::string& model, int threads) {
  LedgerRecord r;
  r.kind = kind;
  r.version = sldm_version();
  r.outcome = "ok";
  r.detail = "serve";
  r.fingerprint = fingerprint;
  r.model = model;
  r.threads = threads;
  const AnalyzerStats& st = session.stats();
  r.extract_seconds = st.extract_seconds;
  r.propagate_seconds = st.propagate_seconds;
  r.update_seconds = st.update_seconds;
  r.stage_evaluations = st.stage_evaluations;
  if (const auto w = session.worst_arrival(true)) {
    r.has_critical = true;
    r.critical_node = session.netlist().node(w->node).name.str();
    r.critical_dir = to_string(w->dir);
    r.critical_arrival_s = w->time;
  }
  return r;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The effective deadline for one request: the request's own
/// deadline_ms when present, else the server-wide default; an inert
/// token when neither is set.
CancelToken deadline_for(const ServeRequest& req, const ServeOptions& opts) {
  const double ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : opts.default_deadline_ms;
  return ms > 0.0 ? CancelToken::deadline_after(ms * 1e-3) : CancelToken();
}

}  // namespace

// ---- Lease ---------------------------------------------------------------

TimingService::Lease::Lease(std::shared_ptr<CacheEntry> entry)
    : entry_(std::move(entry)) {}

TimingService::Lease& TimingService::Lease::operator=(Lease&& o) noexcept {
  if (this != &o) {
    release();
    entry_ = std::move(o.entry_);
  }
  return *this;
}

void TimingService::Lease::release() {
  if (!entry_) return;
  entry_->active.fetch_sub(1, std::memory_order_acq_rel);
  entry_.reset();
}

std::shared_ptr<const CompiledDesign> TimingService::Lease::design() const {
  return entry_ ? entry_->design : nullptr;
}

std::shared_ptr<const SlopeTables> TimingService::Lease::tables() const {
  return entry_ ? entry_->tables : nullptr;
}

// ---- Cache ---------------------------------------------------------------

TimingService::TimingService(ServeOptions options)
    : options_(std::move(options)) {
  if (options_.cache_capacity < 1) {
    throw Error("serve cache capacity must be >= 1");
  }
  TelemetryHub::instance().enable();
}

TimingService::Lease TimingService::lease(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(fingerprint);
  if (it == cache_.end()) {
    throw RequestError(kUnknownDesign,
                       "design '" + fingerprint +
                           "' is not loaded (load it first; it may also "
                           "have been evicted or rewritten by an eco)");
  }
  it->second->last_used = ++use_clock_;
  it->second->active.fetch_add(1, std::memory_order_acq_rel);
  return Lease(it->second);
}

void TimingService::insert_entry(const std::string& fingerprint,
                                 std::shared_ptr<Lease::CacheEntry> entry) {
  // Injected "cache.insert" refuses before any state changes, so the
  // cache is exactly as consistent as if the request never arrived (the
  // design simply is not cached; the caller's envelope says why).
  // Evaluated before taking the lock so an injected delay never holds
  // mutex_.
  failpoint("cache.insert");
  std::lock_guard<std::mutex> lock(mutex_);
  entry->last_used = ++use_clock_;
  cache_[fingerprint] = entry;
  // LRU eviction, skipping leased entries (their readers must stay
  // valid) and the entry just inserted.
  while (cache_.size() >
         static_cast<std::size_t>(options_.cache_capacity)) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second == entry) continue;
      if (it->second->active.load(std::memory_order_acquire) > 0) continue;
      if (victim == cache_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == cache_.end()) break;  // everything is leased
    // Injected "cache.evict" leaves the victim cached: the insert above
    // already happened, so the cache ends over capacity but internally
    // consistent -- every entry still resolves and leases still pin.
    failpoint("cache.evict");
    cache_.erase(victim);
  }
}

std::shared_ptr<TimingService::Lease::CacheEntry> TimingService::take_for_eco(
    const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(fingerprint);
  if (it == cache_.end()) {
    throw RequestError(kUnknownDesign,
                       "design '" + fingerprint + "' is not loaded");
  }
  if (it->second->active.load(std::memory_order_acquire) > 0) {
    throw RequestError(kEcoShared,
                       "design '" + fingerprint +
                           "' is shared by in-flight requests; an eco "
                           "needs exclusive ownership -- retry when they "
                           "drain");
  }
  auto entry = it->second;
  cache_.erase(it);
  return entry;
}

std::size_t TimingService::design_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void TimingService::append_ledger(const LedgerRecord& record) {
  if (options_.ledger_path.empty()) return;
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  // Best-effort by design, like the CLI's LedgerScope: a failing ledger
  // append must not fail the request it describes.  It is *surfaced*,
  // though -- try_append bumps ledger.append_failures and warns once --
  // so operators see silent history loss instead of discovering it at
  // the next `sldm ledger` read.
  try_append_ledger_record(options_.ledger_path, record);
}

void TimingService::publish_service_metrics() {
  TelemetryHub& hub = TelemetryHub::instance();
  if (!hub.enabled()) return;
  MetricsRegistry reg;
  reg.counter("serve.requests")
      .set(static_cast<std::size_t>(requests_.load(std::memory_order_relaxed)));
  reg.counter("serve.errors")
      .set(static_cast<std::size_t>(errors_.load(std::memory_order_relaxed)));
  reg.counter("serve.overloaded").set(
      static_cast<std::size_t>(overloads_.load(std::memory_order_relaxed)));
  reg.gauge("serve.designs").set(static_cast<double>(design_count()));
  TelemetryLabels labels;
  labels.session = "serve";
  labels.model = "-";
  hub.publish(labels, reg);
}

// ---- Request handlers ----------------------------------------------------

struct TimingService::ServeRequestDispatch {
  static std::string load(TimingService& svc, const ServeRequest& req) {
    if (!known_model(req.model)) {
      throw RequestError(kBadRequest, "unknown model '" + req.model + "'");
    }
    std::shared_ptr<CompiledDesign> design;
    std::shared_ptr<const SlopeTables> tables;
    if (ends_with(req.path, ".sldc")) {
      LoadedDesign loaded = load_design_file(req.path);
      design = std::move(loaded.design);
      if (loaded.slope_tables) {
        tables =
            std::make_shared<SlopeTables>(std::move(*loaded.slope_tables));
      }
    } else {
      Netlist nl = read_sim_file(req.path);
      Tech tech = load_tech_spec(req.tech.empty() ? svc.options_.default_tech
                                                  : req.tech);
      if (req.model == "slope") {
        // Same deterministic in-process calibration the cold CLI runs
        // (and that `sldm compile` bakes into .sldc): calibration
        // rewrites the tech, so skipping it here would change the
        // fingerprint and the arrivals.
        CalibrationResult cal = calibrate(tech, style_for(tech));
        tech = cal.tech;
        tables = std::make_shared<SlopeTables>(std::move(cal.tables));
      }
      design = CompiledDesign::compile_owned(std::move(nl), std::move(tech),
                                             CompileOptions{{}, req.threads});
    }

    const std::uint64_t fp =
        design_fingerprint(design->netlist(), design->tech());
    const std::string fp_hex = fingerprint_hex(fp);
    bool cached = false;
    {
      std::lock_guard<std::mutex> lock(svc.mutex_);
      const auto it = svc.cache_.find(fp_hex);
      if (it != svc.cache_.end()) {
        // Equal fingerprints mean bit-identical analyses: keep the
        // cached entry (readers may hold leases on it) and just adopt
        // the calibration tables if the earlier load lacked them.
        cached = true;
        if (!it->second->tables && tables) it->second->tables = tables;
        it->second->last_used = ++svc.use_clock_;
      }
    }
    if (!cached) {
      auto entry = std::make_shared<Lease::CacheEntry>();
      entry->design = design;
      entry->tables = tables;
      svc.insert_entry(fp_hex, entry);

      LedgerRecord r;
      r.kind = "compile";
      r.version = sldm_version();
      r.outcome = "ok";
      r.detail = "serve";
      r.source = req.path;
      r.model = req.model;
      r.threads = req.threads;
      r.fingerprint = fp;
      r.extract_seconds = design->extract_seconds();
      svc.append_ledger(r);
    }

    std::ostringstream os;
    begin_response(os, req, "load")
        << ",\"design\":\"" << fp_hex << "\",\"source\":\""
        << json_escape(req.path) << "\",\"nodes\":"
        << design->netlist().node_count()
        << ",\"devices\":" << design->netlist().device_count()
        << ",\"cccs\":" << design->components().count()
        << ",\"stages\":" << design->stages().size()
        << ",\"tables\":" << (tables ? "true" : "false")
        << ",\"cached\":" << (cached ? "true" : "false") << '}';
    return os.str();
  }

  /// Shared body of time/explain: lease, model, session, seed, run.
  struct Analysis {
    Lease lease;
    std::unique_ptr<DelayModel> model;
    std::unique_ptr<Session> session;
  };

  static Analysis run_analysis(TimingService& svc, const ServeRequest& req,
                               const char* request_label) {
    Analysis a;
    a.lease = svc.lease(req.design);
    a.model = make_request_model(req.model, a.lease.tables());
    a.session = std::make_unique<Session>(a.lease.design(), *a.model,
                                          SessionOptions{64, req.threads});
    a.session->set_telemetry_request(request_label);
    a.session->add_all_input_events(req.slope_ns * 1e-9);
    const CancelToken deadline = deadline_for(req, svc.options_);
    if (deadline.armed()) {
      // The token is a stack local and Analysis outlives this frame, so
      // the session must be detached before it escapes -- on the throw
      // path the whole Analysis (lease included) unwinds instead, which
      // is exactly the "partial state discarded, lease released"
      // contract of the deadline envelope.
      a.session->set_cancel_token(&deadline);
      try {
        a.session->run();
      } catch (...) {
        a.session->set_cancel_token(nullptr);
        throw;
      }
      a.session->set_cancel_token(nullptr);
    } else {
      a.session->run();
    }
    return a;
  }

  static std::string time(TimingService& svc, const ServeRequest& req) {
    const Analysis a = run_analysis(svc, req, "time");
    const Session& session = *a.session;
    const Netlist& nl = session.netlist();
    svc.append_ledger(session_record("run", session,
                                     parse_hex_u64(req.design).value_or(0),
                                     a.model->name(), req.threads));

    std::ostringstream os;
    begin_response(os, req, "time")
        << ",\"design\":\"" << req.design << "\",\"model\":\""
        << json_escape(a.model->name()) << "\",\"threads\":" << req.threads
        << ",\"report\":\""
        << json_escape(report_text(a.model->name(), nl, session))
        << "\",\"arrivals\":" << arrivals_json(nl, session);
    append_worst(os, nl, session);
    os << ",\"stats\":" << analyzer_stats_json(session.stats()) << '}';
    return os.str();
  }

  static std::string explain(TimingService& svc, const ServeRequest& req) {
    const Analysis a = run_analysis(svc, req, "explain");
    const Session& session = *a.session;
    const Netlist& nl = session.netlist();

    const auto node = nl.find_node(req.node);
    if (!node) {
      throw RequestError(kBadRequest, "unknown node '" + req.node + "'");
    }
    Transition dir;
    if (req.dir == "rise") {
      dir = Transition::kRise;
    } else if (req.dir == "fall") {
      dir = Transition::kFall;
    } else {
      // Default to the later (worst) arrival, like the cold CLI.
      const auto rise = session.arrival(*node, Transition::kRise);
      const auto fall = session.arrival(*node, Transition::kFall);
      if (!rise && !fall) {
        throw RequestError(kFailed,
                           "no arrival at node '" + req.node +
                               "'; it never switches under the declared "
                               "events");
      }
      dir = (!fall || (rise && rise->time >= fall->time))
                ? Transition::kRise
                : Transition::kFall;
    }
    if (!session.arrival(*node, dir)) {
      throw RequestError(kFailed, "no " + std::string(to_string(dir)) +
                                      " arrival at node '" + req.node + "'");
    }
    const ExplainReport report = explain_arrival(session, *node, dir);

    std::ostringstream os;
    begin_response(os, req, "explain")
        << ",\"design\":\"" << req.design << "\",\"model\":\""
        << json_escape(a.model->name())
        // The embedded object is byte-for-byte what cold
        // `sldm explain --json` prints (minus the newline).
        << "\",\"explain\":" << explain_json(nl, report) << '}';
    return os.str();
  }

  static std::string eco(TimingService& svc, const ServeRequest& req) {
    auto entry = svc.take_for_eco(req.design);
    const std::weak_ptr<CompiledDesign> master = entry->design;
    const auto model = make_request_model(req.model, entry->tables);
    // Declared before the analyzer so the analyzer (which borrows it)
    // dies first on every exit path.
    const CancelToken deadline = deadline_for(req, svc.options_);

    // Move the cache's owning pointer into the analyzer so use_count
    // lands at exactly facade + session: the PR 6 single-writer check
    // in update() stays armed as the backstop behind take_for_eco's
    // lease accounting.
    TimingAnalyzer analyzer(std::move(entry->design), *model,
                            AnalyzerOptions{{}, 64, req.threads});
    analyzer.session().set_telemetry_request("eco");
    analyzer.add_all_input_events(req.slope_ns * 1e-9);
    if (deadline.armed()) analyzer.set_cancel_token(&deadline);

    std::size_t applied = 0;
    try {
      // run() is inside the salvage scope: a deadline (or any failure)
      // before the script mutates anything must put the untouched
      // design back under its old fingerprint.
      analyzer.run();
      if (!req.script.empty()) {
        std::istringstream script(req.script);
        applied = apply_eco(script, analyzer.mutable_netlist(),
                            "<eco-request>");
      } else {
        applied = apply_eco_file(req.path, analyzer.mutable_netlist());
      }
      analyzer.update();
    } catch (...) {
      // A failed script may have partially mutated the netlist, in
      // which case the design is lost from the cache (re-load it).
      // But if nothing was applied yet the design is pristine --
      // salvage it under its old fingerprint.
      if (auto design = master.lock()) {
        if (design->netlist().revision() == design->built_revision()) {
          entry->design = std::move(design);
          svc.insert_entry(req.design, entry);
        }
      }
      throw;
    }

    const Session& session = analyzer.session();
    const Netlist& nl = analyzer.netlist();
    const std::uint64_t new_fp = design_fingerprint(nl, analyzer.tech());
    const std::string new_hex = fingerprint_hex(new_fp);

    LedgerRecord r =
        session_record("eco", session, new_fp, model->name(), req.threads);
    r.detail = format("serve: %zu edit(s)", applied);
    svc.append_ledger(r);

    std::ostringstream os;
    begin_response(os, req, "eco")
        << ",\"design\":\"" << new_hex << "\",\"was\":\"" << req.design
        << "\",\"applied\":" << applied << ",\"model\":\""
        << json_escape(model->name()) << "\",\"threads\":" << req.threads
        << ",\"report\":\""
        << json_escape(report_text(model->name(), nl, session))
        << "\",\"arrivals\":" << arrivals_json(nl, session);
    append_worst(os, nl, session);
    os << ",\"stats\":" << analyzer_stats_json(session.stats()) << '}';

    // Re-adopt the master pointer (the analyzer still holds it, so the
    // weak_ptr is live) and publish the rewritten design under its new
    // identity; the old fingerprint now reports unknown-design.
    entry->design = master.lock();
    svc.insert_entry(new_hex, entry);
    return os.str();
  }

  static std::string stats(TimingService& svc, const ServeRequest& req) {
    std::ostringstream os;
    begin_response(os, req, "stats")
        << ",\"designs\":" << svc.design_count()
        << ",\"requests\":" << svc.requests_handled()
        << ",\"errors\":" << svc.errors_returned()
        << ",\"overloaded\":" << svc.overloads_rejected() << ",\"telemetry\":"
        << TelemetryHub::instance().aggregate().to_json() << '}';
    return os.str();
  }

  static std::string shutdown(TimingService& svc, const ServeRequest& req) {
    svc.shutdown_.store(true, std::memory_order_release);
    std::ostringstream os;
    begin_response(os, req, "shutdown") << '}';
    return os.str();
  }
};

std::string TimingService::handle_line(const std::string& line) {
  ServeRequest req;
  try {
    req = parse_request(line);
  } catch (const RequestError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    publish_service_metrics();
    return error_response(request_id_token(line), e.name(), e.what());
  }

  std::string response;
  try {
    // Injected "serve.request": error fails the whole request with a
    // "failed" envelope before any handler state is touched; delay
    // models a slow handler (and, under a deadline, pushes the request
    // past it).
    failpoint("serve.request");
    switch (req.kind) {
      case RequestKind::kLoad:
        response = ServeRequestDispatch::load(*this, req);
        break;
      case RequestKind::kTime:
        response = ServeRequestDispatch::time(*this, req);
        break;
      case RequestKind::kExplain:
        response = ServeRequestDispatch::explain(*this, req);
        break;
      case RequestKind::kEco:
        response = ServeRequestDispatch::eco(*this, req);
        break;
      case RequestKind::kStats:
        response = ServeRequestDispatch::stats(*this, req);
        break;
      case RequestKind::kShutdown:
        response = ServeRequestDispatch::shutdown(*this, req);
        break;
    }
  } catch (const RequestError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    response = error_response(req.id_token, e.name(), e.what());
  } catch (const CancelledError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    response = error_response(req.id_token, kDeadline, e.what());
  } catch (const Error& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    response = error_response(req.id_token, kFailed, e.what());
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    response = error_response(req.id_token, kFailed, e.what());
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  publish_service_metrics();
  return response;
}

std::string TimingService::overload_response(const std::string& line) {
  overloads_.fetch_add(1, std::memory_order_relaxed);
  errors_.fetch_add(1, std::memory_order_relaxed);
  publish_service_metrics();
  return error_response(request_id_token(line), kOverloaded,
                        "server is at its --max-inflight admission limit; "
                        "retry after in-flight requests drain");
}

std::string TimingService::too_large_response(const std::string& line_prefix,
                                              std::size_t limit) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(1, std::memory_order_relaxed);
  publish_service_metrics();
  return error_response(
      request_id_token_prefix(line_prefix), kTooLarge,
      format("request line exceeds --max-line-bytes (%zu); split the "
             "request or raise the limit",
             limit));
}

}  // namespace sldm
