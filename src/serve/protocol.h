// The `sldm serve` wire protocol: line-delimited JSON requests and
// responses (FORMATS.md section 14).
//
// Every request is one JSON object on one line with a "kind" member
// selecting the operation (load / time / explain / eco / stats /
// shutdown) and an optional "id" the server echoes verbatim, so
// clients can match responses to requests even when a concurrent
// server interleaves them.  Every failure -- malformed line, unknown
// kind, missing field, unknown design, admission overload -- produces
// a structured error envelope
//
//   {"id":<echoed>,"error":"<name>","detail":"<human text>"}
//
// with a *named* error (never an uncaught exception and never a closed
// connection), because inputs arriving over a pipe or socket are
// untrusted by definition.
#pragma once

#include <string>

#include "util/error.h"

namespace sldm {

/// The protocol's named errors (the "error" member of an envelope).
namespace serve_errors {
inline constexpr const char* kParse = "parse";
inline constexpr const char* kUnknownKind = "unknown-kind";
inline constexpr const char* kBadRequest = "bad-request";
inline constexpr const char* kUnknownDesign = "unknown-design";
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kEcoShared = "eco-shared";
inline constexpr const char* kFailed = "failed";
inline constexpr const char* kDeadline = "deadline";
inline constexpr const char* kTooLarge = "too-large";
}  // namespace serve_errors

enum class RequestKind { kLoad, kTime, kExplain, kEco, kStats, kShutdown };

/// A parsed, validated request.  String members default empty; numeric
/// members default to the cold-CLI defaults so a serve request with
/// only the required fields behaves exactly like the bare CLI command.
struct ServeRequest {
  /// The "id" member as a rendered JSON token ("7", "\"abc\""), empty
  /// when absent.  Echoed verbatim into the response.
  std::string id_token;
  RequestKind kind = RequestKind::kStats;

  // load
  std::string path;  ///< .sim to compile or .sldc to load
  std::string tech;  ///< preset name or .tech path; "" = server default

  // load / time / explain / eco
  std::string design;          ///< 16-hex design fingerprint
  std::string model = "slope";
  int threads = 1;
  double slope_ns = 1.0;
  /// Cooperative per-request deadline in milliseconds; 0 (the default)
  /// means no request-level deadline (the server-wide default, if any,
  /// still applies).  Expiry aborts propagation between wavefronts and
  /// answers with the named "deadline" envelope; partial arrivals are
  /// discarded, so the design cache is untouched.
  double deadline_ms = 0.0;

  // explain
  std::string node;
  std::string dir;  ///< "", "rise", or "fall"

  // eco
  std::string script;  ///< inline edit-script text (eco_io format)
};

/// A protocol-level failure: `name()` is the serve_errors constant for
/// the envelope, what() the human detail.
class RequestError : public Error {
 public:
  RequestError(const char* name, const std::string& detail)
      : Error(detail), name_(name) {}
  const char* name() const { return name_; }

 private:
  const char* name_;
};

/// Parses and validates one request line.  Throws RequestError with
/// the appropriate protocol name (parse / unknown-kind / bad-request)
/// on any deviation; never throws anything else.
ServeRequest parse_request(const std::string& line);

/// Best-effort "id" extraction from a possibly malformed request line,
/// for envelopes written before parsing completes (overload rejection).
/// Returns a rendered JSON token, or "" when absent or unrecoverable.
std::string request_id_token(const std::string& line);

/// Like request_id_token, but for a *truncated* prefix of an oversized
/// line (the too-large envelope): falls back to scanning for a
/// complete `"id":<scalar>` member when the full parse fails.  A value
/// that may itself be cut off by the truncation yields "" rather than
/// a corrupt id.
std::string request_id_token_prefix(const std::string& prefix);

/// The error envelope for `id_token` (may be empty) and a named error.
std::string error_response(const std::string& id_token, const char* error,
                           const std::string& detail);

}  // namespace sldm
