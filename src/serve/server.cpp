#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sldm {

namespace {

void check_loop_options(const ServeLoopOptions& options) {
  if (options.max_inflight < 1) {
    throw Error("serve needs --max-inflight >= 1");
  }
  if (options.workers < 1) throw Error("serve needs --workers >= 1");
}

}  // namespace

int serve_pipe(TimingService& service, std::istream& in, std::ostream& out,
               const ServeLoopOptions& options) {
  check_loop_options(options);
  ThreadPool pool(options.workers);
  std::mutex out_mutex;
  std::atomic<int> inflight{0};

  // A shutdown response is written by its worker; the loop then exits
  // on the flag (or on EOF when the client just closes the pipe).
  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    if (inflight.load(std::memory_order_acquire) >= options.max_inflight) {
      const std::string response = service.overload_response(line);
      std::lock_guard<std::mutex> lock(out_mutex);
      out << response << '\n' << std::flush;
      continue;
    }
    inflight.fetch_add(1, std::memory_order_acq_rel);
    pool.submit([&service, &out, &out_mutex, &inflight, line] {
      const std::string response = service.handle_line(line);
      {
        std::lock_guard<std::mutex> lock(out_mutex);
        out << response << '\n' << std::flush;
      }
      inflight.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  pool.wait();
  return 0;
}

// ---- TCP front end -------------------------------------------------------

namespace {

/// Per-connection state shared between the reader thread and the
/// worker tasks still writing responses for it; the socket closes when
/// the last holder lets go.
struct ConnState {
  explicit ConnState(int f) : fd(f) {}
  ~ConnState() { ::close(fd); }
  ConnState(const ConnState&) = delete;
  ConnState& operator=(const ConnState&) = delete;

  int fd;
  std::mutex write_mutex;  ///< whole-line response interleaving
};

/// Writes one response line, riding out partial sends.  A vanished
/// peer just drops the response (the request still ran and was
/// ledgered; there is nobody left to read the result).
void write_line(ConnState& conn, const std::string& response) {
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  const std::string framed = response + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(conn.fd, framed.data() + off,
                             framed.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

TcpServer::TcpServer(TimingService& service, const ServeLoopOptions& options,
                     int port)
    : service_(service), options_(options) {
  check_loop_options(options_);
  if (port < 0 || port > 65535) {
    throw Error("TCP port must be in [0, 65535]");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("cannot create a TCP socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(format("cannot bind 127.0.0.1:%d", port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(format("cannot listen on 127.0.0.1:%d", port));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

int TcpServer::run() {
  ThreadPool pool(options_.workers);
  std::atomic<int> inflight{0};
  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<ConnState>> conns;
  std::mutex conns_mutex;

  // One reader thread per connection: splits the byte stream into
  // lines and dispatches them exactly like the pipe loop; the
  // admission cap spans all connections.
  const auto serve_connection = [this, &pool,
                                 &inflight](std::shared_ptr<ConnState> conn) {
    std::string buffer;
    char chunk[4096];
    while (!service_.shutdown_requested()) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos = 0;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (inflight.load(std::memory_order_acquire) >=
            options_.max_inflight) {
          write_line(*conn, service_.overload_response(line));
          continue;
        }
        inflight.fetch_add(1, std::memory_order_acq_rel);
        pool.submit([this, conn, line = std::move(line), &inflight] {
          write_line(*conn, service_.handle_line(line));
          inflight.fetch_sub(1, std::memory_order_acq_rel);
        });
      }
    }
  };

  while (!service_.shutdown_requested()) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, 200);  // re-check shutdown ~5x/s
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<ConnState>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mutex);
      conns.push_back(conn);
    }
    readers.emplace_back(serve_connection, std::move(conn));
  }

  // Drain: stop accepting, let in-flight workers finish their writes
  // (so the shutdown ack reaches its client), then nudge blocked
  // readers off recv(), join them, and wait again for anything they
  // dispatched in between.
  ::close(listen_fd_);
  listen_fd_ = -1;
  pool.wait();
  {
    std::lock_guard<std::mutex> lock(conns_mutex);
    for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& t : readers) t.join();
  pool.wait();
  return 0;
}

}  // namespace sldm
