#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sldm {

namespace {

void check_loop_options(const ServeLoopOptions& options) {
  if (options.max_inflight < 1) {
    throw Error("serve needs --max-inflight >= 1");
  }
  if (options.workers < 1) throw Error("serve needs --workers >= 1");
  if (options.max_line_bytes < 64) {
    throw Error("serve needs --max-line-bytes >= 64");
  }
}

// ---- Signal drain --------------------------------------------------------
//
// Classic self-pipe: the handler only flips an atomic and writes one
// byte to a nonblocking pipe the accept loop polls.  sa_flags
// deliberately omits SA_RESTART so a read blocked in recv()/getline()
// wakes with EINTR and notices the flag.  A second signal means the
// operator insists: _exit immediately (128 + SIGINT's 2 = 130, the
// shell convention for a signal death).

std::atomic<bool> g_drain_signalled{false};
std::atomic<int> g_signal_pipe_write{-1};

extern "C" void serve_drain_handler(int /*sig*/) {
  if (g_drain_signalled.exchange(true)) _exit(130);
  const int fd = g_signal_pipe_write.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // Best-effort wake; a full pipe already woke the loop.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

bool drain_signalled() {
  return g_drain_signalled.load(std::memory_order_acquire);
}

/// Installs the drain handlers for the lifetime of one serve loop and
/// restores the previous dispositions on exit (tests run loops
/// back-to-back in one process).
class SignalDrain {
 public:
  SignalDrain() {
    if (::pipe(fds_) != 0) fds_[0] = fds_[1] = -1;
    for (const int fd : fds_) {
      if (fd >= 0) ::fcntl(fd, F_SETFL, O_NONBLOCK);
    }
    g_drain_signalled.store(false, std::memory_order_release);
    g_signal_pipe_write.store(fds_[1], std::memory_order_release);
    struct sigaction sa{};
    sa.sa_handler = serve_drain_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: blocked reads must see EINTR
    ::sigaction(SIGINT, &sa, &old_int_);
    ::sigaction(SIGTERM, &sa, &old_term_);
  }

  ~SignalDrain() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
    g_signal_pipe_write.store(-1, std::memory_order_release);
    for (const int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
  }

  SignalDrain(const SignalDrain&) = delete;
  SignalDrain& operator=(const SignalDrain&) = delete;

  bool signalled() const { return drain_signalled(); }
  /// The read end the accept loop polls alongside the listen socket.
  int fd() const { return fds_[0]; }

 private:
  int fds_[2] = {-1, -1};
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

// ---- EINTR-safe syscall wrappers -----------------------------------------
//
// Every blocking call retries on EINTR *unless* the interrupt was our
// own drain signal, in which case the call returns its error so the
// caller's loop condition can exit.  Without these, any signal -- a
// harmless SIGWINCH under a debugger, a profiler's SIGPROF -- would
// sporadically sever connections.

ssize_t recv_intr(int fd, void* buf, std::size_t len) {
  while (true) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0 || errno != EINTR || drain_signalled()) return n;
  }
}

ssize_t send_intr(int fd, const void* buf, std::size_t len) {
  while (true) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0 || errno != EINTR || drain_signalled()) return n;
  }
}

int accept_intr(int fd) {
  while (true) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0 || errno != EINTR || drain_signalled()) return conn;
  }
}

int poll_intr(pollfd* fds, nfds_t nfds, int timeout_ms) {
  while (true) {
    const int ready = ::poll(fds, nfds, timeout_ms);
    if (ready >= 0 || errno != EINTR || drain_signalled()) return ready;
  }
}

}  // namespace

int serve_pipe(TimingService& service, std::istream& in, std::ostream& out,
               const ServeLoopOptions& options) {
  check_loop_options(options);
  SignalDrain drain;
  std::mutex out_mutex;
  std::atomic<int> inflight{0};
  // The pool is declared after every object its tasks reference, so if
  // anything below ever unwinds, ~ThreadPool drains the queue first.
  ThreadPool pool(options.workers);

  const auto write_response = [&out, &out_mutex](const std::string& response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << response << '\n' << std::flush;
  };

  // A shutdown response is written by its worker; the loop then exits
  // on the flag (or on EOF when the client just closes the pipe, or on
  // a drain signal interrupting the blocked read).
  std::string line;
  while (!service.shutdown_requested() && !drain.signalled() &&
         std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.size() > options.max_line_bytes) {
      // istream already buffered the oversized line (the hard byte
      // bound is the TCP front end's); reclaim its capacity after the
      // envelope so one huge line does not pin memory for the rest of
      // the session.
      write_response(service.too_large_response(line.substr(0, 64),
                                                options.max_line_bytes));
      std::string().swap(line);
      continue;
    }
    if (inflight.load(std::memory_order_acquire) >= options.max_inflight) {
      write_response(service.overload_response(line));
      continue;
    }
    inflight.fetch_add(1, std::memory_order_acq_rel);
    try {
      pool.submit([&service, &write_response, &inflight, line] {
        write_response(service.handle_line(line));
        inflight.fetch_sub(1, std::memory_order_acq_rel);
      });
    } catch (const Error& e) {
      // A refused dispatch (injected pool.submit, say) still owes the
      // client its one envelope; answer inline on the reader thread.
      inflight.fetch_sub(1, std::memory_order_acq_rel);
      write_response(error_response(request_id_token(line),
                                    serve_errors::kFailed, e.what()));
    }
  }
  if (drain.signalled()) service.note_shutdown();
  // In-flight requests are answered before exit; their tasks never
  // throw (handle_line guarantees it), but a drain must reach exit 0
  // even if that invariant ever breaks.
  try {
    pool.wait();
  } catch (const std::exception&) {
  }
  return 0;
}

// ---- TCP front end -------------------------------------------------------

namespace {

/// Per-connection state shared between the reader thread and the
/// worker tasks still writing responses for it; the socket closes when
/// the last holder lets go.
struct ConnState {
  explicit ConnState(int f) : fd(f) {}
  ~ConnState() { ::close(fd); }
  ConnState(const ConnState&) = delete;
  ConnState& operator=(const ConnState&) = delete;

  int fd;
  std::mutex write_mutex;  ///< whole-line response interleaving
};

/// Writes one response line, riding out partial sends.  A vanished
/// peer just drops the response (the request still ran and was
/// ledgered; there is nobody left to read the result).  Injected
/// "socket.send": error behaves as a vanished peer; partial sends half
/// the frame then stops, the torn write a mid-send crash would leave.
void write_line(ConnState& conn, const std::string& response) {
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  const std::string framed = response + "\n";
  std::size_t limit = framed.size();
  try {
    if (failpoint("socket.send")) limit = framed.size() / 2;
  } catch (const Error&) {
    return;
  }
  std::size_t off = 0;
  while (off < limit) {
    const ssize_t n = send_intr(conn.fd, framed.data() + off, limit - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

TcpServer::TcpServer(TimingService& service, const ServeLoopOptions& options,
                     int port)
    : service_(service), options_(options) {
  check_loop_options(options_);
  if (port < 0 || port > 65535) {
    throw Error("TCP port must be in [0, 65535]");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("cannot create a TCP socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(format("cannot bind 127.0.0.1:%d", port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(format("cannot listen on 127.0.0.1:%d", port));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

int TcpServer::run() {
  SignalDrain drain;
  std::atomic<int> inflight{0};
  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<ConnState>> conns;
  std::mutex conns_mutex;
  // Declared last so an unwind drains worker tasks before any state
  // they reference goes away.
  ThreadPool pool(options_.workers);

  // One reader thread per connection: splits the byte stream into
  // lines and dispatches them exactly like the pipe loop; the
  // admission cap spans all connections.  The line buffer is bounded:
  // once it exceeds max_line_bytes with no newline in sight, the
  // client gets one "too-large" envelope, the buffer's memory is
  // reclaimed, and bytes are discarded until the newline finally
  // arrives.  A reader must never take down the server, so its whole
  // body is fenced.
  const auto serve_connection = [this, &pool, &inflight,
                                 &drain](std::shared_ptr<ConnState> conn) {
    try {
      std::string buffer;
      bool discarding = false;
      char chunk[4096];
      while (!service_.shutdown_requested() && !drain.signalled()) {
        std::size_t want = sizeof(chunk);
        try {
          // Injected "socket.recv": error is a vanished peer (close the
          // connection); partial dribbles one byte per read, the
          // pathological-framing case line splitting must survive.
          if (failpoint("socket.recv")) want = 1;
        } catch (const Error&) {
          break;
        }
        const ssize_t n = recv_intr(conn->fd, chunk, want);
        if (n <= 0) break;
        if (!discarding) {
          buffer.append(chunk, static_cast<std::size_t>(n));
        } else {
          // Mid-discard: keep only what follows the terminating
          // newline, if it is here yet.
          const char* nl = static_cast<const char*>(
              std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
          if (!nl) continue;
          buffer.assign(nl + 1, static_cast<const char*>(chunk) + n);
          discarding = false;
        }
        std::size_t pos = 0;
        while ((pos = buffer.find('\n')) != std::string::npos) {
          std::string line = buffer.substr(0, pos);
          buffer.erase(0, pos + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (line.empty()) continue;
          if (line.size() > options_.max_line_bytes) {
            write_line(*conn,
                       service_.too_large_response(line.substr(0, 64),
                                                   options_.max_line_bytes));
            continue;
          }
          if (inflight.load(std::memory_order_acquire) >=
              options_.max_inflight) {
            write_line(*conn, service_.overload_response(line));
            continue;
          }
          inflight.fetch_add(1, std::memory_order_acq_rel);
          try {
            pool.submit([this, conn, line = std::move(line), &inflight] {
              write_line(*conn, service_.handle_line(line));
              inflight.fetch_sub(1, std::memory_order_acq_rel);
            });
          } catch (const Error& e) {
            inflight.fetch_sub(1, std::memory_order_acq_rel);
            write_line(*conn,
                       error_response(request_id_token(line),
                                      serve_errors::kFailed, e.what()));
          }
        }
        if (!discarding && buffer.size() > options_.max_line_bytes) {
          write_line(*conn,
                     service_.too_large_response(buffer.substr(0, 64),
                                                 options_.max_line_bytes));
          std::string().swap(buffer);  // reclaim, then discard to newline
          discarding = true;
        }
      }
    } catch (const std::exception&) {
      // Connection-local failure: drop the connection, keep serving.
    }
  };

  while (!service_.shutdown_requested() && !drain.signalled()) {
    pollfd p[2] = {};
    p[0].fd = listen_fd_;
    p[0].events = POLLIN;
    p[1].fd = drain.fd();
    p[1].events = POLLIN;
    const int ready = poll_intr(p, 2, 200);  // re-check shutdown ~5x/s
    if (ready <= 0) continue;
    if (p[1].revents != 0) break;  // drain signal: stop accepting
    if ((p[0].revents & POLLIN) == 0) continue;
    const int fd = accept_intr(listen_fd_);
    if (fd < 0) continue;
    auto conn = std::make_shared<ConnState>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mutex);
      conns.push_back(conn);
    }
    readers.emplace_back(serve_connection, std::move(conn));
  }
  if (drain.signalled()) service_.note_shutdown();

  // Drain: stop accepting, let in-flight workers finish their writes
  // (so the shutdown ack reaches its client), then nudge blocked
  // readers off recv(), join them, and wait again for anything they
  // dispatched in between.  Both waits are fenced: a drain must reach
  // exit 0 even if a task ever leaks an exception.
  ::close(listen_fd_);
  listen_fd_ = -1;
  try {
    pool.wait();
  } catch (const std::exception&) {
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex);
    for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& t : readers) t.join();
  try {
    pool.wait();
  } catch (const std::exception&) {
  }
  return 0;
}

}  // namespace sldm
