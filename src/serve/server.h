// The `sldm serve` front ends: a stdin/stdout pipe loop and a
// localhost TCP listener, both dispatching request lines onto a shared
// TimingService over a worker pool with bounded admission.
//
// Admission control is a hard cap, not a queue: when `max_inflight`
// requests are already dispatched, a newly read line is answered
// immediately with the structured "overloaded" envelope on the reader
// thread -- the server never blocks the input stream and never buffers
// unbounded work.  Input is bounded too: a request line longer than
// `max_line_bytes` is answered with the "too-large" envelope and (on
// TCP) discarded without ever being buffered whole, so a hostile or
// broken client cannot balloon the server.  Responses are written one
// per line, each under the output mutex, so concurrent completions
// interleave by whole lines (clients correlate via the echoed "id").
//
// Both loops install SIGINT/SIGTERM drain handlers (self-pipe, no
// SA_RESTART so blocked reads wake with EINTR): the first signal stops
// admission, answers every in-flight request, flushes ledger and
// telemetry as a side effect of those answers, and exits 0; a second
// signal force-exits immediately with status 130.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "serve/service.h"

namespace sldm {

struct ServeLoopOptions {
  /// Maximum requests dispatched concurrently; further lines are
  /// rejected with {"error":"overloaded"}.  Must be >= 1.
  int max_inflight = 64;
  /// Worker threads executing requests.  Must be >= 1.
  int workers = 4;
  /// Maximum bytes in one request line; longer lines are rejected with
  /// {"error":"too-large"} and their bytes discarded.  Must be >= 64.
  std::size_t max_line_bytes = std::size_t{1} << 20;
};

/// Runs the line-delimited JSON loop over a pipe: reads request lines
/// from `in` until EOF or a shutdown request, writes one response line
/// (flushed) per request to `out`.  Returns the process exit code (0;
/// request failures are in-band envelopes, not exit codes).
int serve_pipe(TimingService& service, std::istream& in, std::ostream& out,
               const ServeLoopOptions& options);

/// The localhost TCP front end.  Binds 127.0.0.1:`port` at
/// construction (port 0 picks an ephemeral port, see port()); run()
/// accepts connections until a shutdown request arrives on any of
/// them, serving each connection the same line protocol as
/// serve_pipe().  The in-flight cap spans all connections.
class TcpServer {
 public:
  /// Throws Error when the socket cannot be bound or the options are
  /// out of range.
  TcpServer(TimingService& service, const ServeLoopOptions& options,
            int port);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolves port 0 to the kernel's choice).
  int port() const { return port_; }

  /// Accept loop; returns the process exit code (0) after shutdown.
  int run();

 private:
  TimingService& service_;
  ServeLoopOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace sldm
