#include "serve/protocol.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/json.h"
#include "util/strings.h"

namespace sldm {
namespace {

using namespace serve_errors;

/// Renders an "id" member back to a JSON token.  Only numbers and
/// strings are legal ids; anything else reports bad-request (the
/// caller must be able to echo the id into one line).
std::string id_token_of(const JsonValue& v) {
  if (v.kind() == JsonValue::Kind::kString) {
    return "\"" + json_escape(v.as_string()) + "\"";
  }
  if (v.kind() == JsonValue::Kind::kNumber) {
    return json_number(v.as_number());
  }
  throw RequestError(kBadRequest, "\"id\" must be a string or number");
}

std::string require_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind() != JsonValue::Kind::kString || v->as_string().empty()) {
    throw RequestError(kBadRequest, std::string("request needs a non-empty "
                                                "string \"") +
                                        key + "\" member");
  }
  return v->as_string();
}

std::string optional_string(const JsonValue& obj, const char* key,
                            std::string fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (v->kind() != JsonValue::Kind::kString) {
    throw RequestError(kBadRequest,
                       std::string("\"") + key + "\" must be a string");
  }
  return v->as_string();
}

double optional_number(const JsonValue& obj, const char* key,
                       double fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (v->kind() != JsonValue::Kind::kNumber) {
    throw RequestError(kBadRequest,
                       std::string("\"") + key + "\" must be a number");
  }
  return v->as_number();
}

int optional_threads(const JsonValue& obj) {
  const double v = optional_number(obj, "threads", 1.0);
  if (v < 1.0 || v > 1024.0 || v != std::floor(v)) {
    throw RequestError(kBadRequest,
                       "\"threads\" must be an integer in [1, 1024]");
  }
  return static_cast<int>(v);
}

double optional_slope_ns(const JsonValue& obj) {
  const double v = optional_number(obj, "slope_ns", 1.0);
  if (!std::isfinite(v) || v < 0.0) {
    throw RequestError(kBadRequest,
                       "\"slope_ns\" must be a finite non-negative number");
  }
  return v;
}

double optional_deadline_ms(const JsonValue& obj) {
  const double v = optional_number(obj, "deadline_ms", 0.0);
  if (!std::isfinite(v) || v < 0.0) {
    throw RequestError(
        kBadRequest,
        "\"deadline_ms\" must be a finite non-negative number");
  }
  return v;
}

}  // namespace

ServeRequest parse_request(const std::string& line) {
  JsonValue obj;
  try {
    obj = parse_json(line);
  } catch (const Error& e) {
    throw RequestError(kParse, e.what());
  }
  if (!obj.is_object()) {
    throw RequestError(kParse, "request is not a JSON object");
  }

  ServeRequest req;
  if (const JsonValue* id = obj.find("id")) req.id_token = id_token_of(*id);

  const JsonValue* kind = obj.find("kind");
  if (!kind || kind->kind() != JsonValue::Kind::kString) {
    throw RequestError(kBadRequest,
                       "request needs a string \"kind\" member");
  }
  const std::string& k = kind->as_string();
  if (k == "load") {
    req.kind = RequestKind::kLoad;
    req.path = require_string(obj, "path");
    req.tech = optional_string(obj, "tech", "");
    req.model = optional_string(obj, "model", "slope");
    req.threads = optional_threads(obj);
  } else if (k == "time" || k == "explain" || k == "eco") {
    req.kind = k == "time" ? RequestKind::kTime
               : k == "explain" ? RequestKind::kExplain
                                : RequestKind::kEco;
    req.design = require_string(obj, "design");
    req.model = optional_string(obj, "model", "slope");
    req.threads = optional_threads(obj);
    req.slope_ns = optional_slope_ns(obj);
    req.deadline_ms = optional_deadline_ms(obj);
    if (req.kind == RequestKind::kExplain) {
      req.node = require_string(obj, "node");
      req.dir = optional_string(obj, "dir", "");
      if (!req.dir.empty() && req.dir != "rise" && req.dir != "fall") {
        throw RequestError(kBadRequest,
                           "\"dir\" must be \"rise\" or \"fall\"");
      }
    }
    if (req.kind == RequestKind::kEco) {
      req.script = optional_string(obj, "script", "");
      req.path = optional_string(obj, "path", "");
      if (req.script.empty() == req.path.empty()) {
        throw RequestError(kBadRequest,
                           "eco needs exactly one of \"script\" (inline "
                           "edit text) or \"path\" (edit-script file)");
      }
    }
  } else if (k == "stats") {
    req.kind = RequestKind::kStats;
  } else if (k == "shutdown") {
    req.kind = RequestKind::kShutdown;
  } else {
    throw RequestError(kUnknownKind, "unknown request kind '" + k + "'");
  }
  return req;
}

std::string request_id_token(const std::string& line) {
  try {
    const JsonValue obj = parse_json(line);
    if (!obj.is_object()) return "";
    const JsonValue* id = obj.find("id");
    return id ? id_token_of(*id) : "";
  } catch (const Error&) {
    return "";
  }
}

std::string request_id_token_prefix(const std::string& prefix) {
  const std::string parsed = request_id_token(prefix);
  if (!parsed.empty()) return parsed;
  const auto key = prefix.find("\"id\"");
  if (key == std::string::npos) return "";
  std::size_t i = key + 4;
  const auto skip_ws = [&] {
    while (i < prefix.size() &&
           std::isspace(static_cast<unsigned char>(prefix[i]))) {
      ++i;
    }
  };
  skip_ws();
  if (i >= prefix.size() || prefix[i] != ':') return "";
  ++i;
  skip_ws();
  if (i >= prefix.size()) return "";
  if (prefix[i] == '"') {
    const auto close = prefix.find('"', i + 1);
    if (close == std::string::npos) return "";
    // An escape anywhere in the body means `close` may be an escaped
    // quote, not the terminator; give up rather than guess.
    const std::string body = prefix.substr(i + 1, close - i - 1);
    if (body.find('\\') != std::string::npos) return "";
    return prefix.substr(i, close - i + 1);
  }
  std::size_t end = i;
  while (end < prefix.size()) {
    const char c = prefix[end];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+' || c == '.' || c == 'e' || c == 'E') {
      ++end;
    } else {
      break;
    }
  }
  // A numeric token running into the truncation point may have lost
  // digits; only trust one terminated inside the prefix.
  if (end == i || end == prefix.size()) return "";
  const std::string token = prefix.substr(i, end - i);
  char* stop = nullptr;
  errno = 0;
  (void)std::strtod(token.c_str(), &stop);
  if (errno != 0 || stop != token.c_str() + token.size()) return "";
  return token;
}

std::string error_response(const std::string& id_token, const char* error,
                           const std::string& detail) {
  std::ostringstream os;
  os << '{';
  if (!id_token.empty()) os << "\"id\":" << id_token << ',';
  os << "\"error\":\"" << json_escape(error) << "\",\"detail\":\""
     << json_escape(detail) << "\"}";
  return os.str();
}

}  // namespace sldm
