// The concurrent timing service behind `sldm serve`.
//
// A TimingService owns an LRU cache of CompiledDesigns keyed by their
// 16-hex design fingerprint and processes protocol requests
// (serve/protocol.h) against it.  The design around the PR 6 split:
//
//   * `load` compiles a .sim (calibrating exactly like the cold CLI
//     when the slope model is requested, so later analyses are
//     bit-identical to single-shot runs) or restores a .sldc snapshot,
//     and caches the design under its fingerprint;
//   * `time` / `explain` take a *lease* on the cached entry and run a
//     fresh Session over the shared immutable design -- any number of
//     mixed-model requests proceed concurrently with no cloning, each
//     bit-identical to an independent cold analyzer
//     (tests/design_test.cpp extends that guarantee here);
//   * `eco` is the single writer: it removes the entry from the cache
//     (refusing with "eco-shared" while reader leases are outstanding),
//     mutates the design through TimingAnalyzer::update() with the
//     use_count discipline as a backstop, and re-inserts the result
//     under its *new* fingerprint -- an edited design is a different
//     design, and stale fingerprints fail fast with "unknown-design".
//
// handle_line() is thread-safe and never throws: every failure becomes
// a structured error envelope, because a worker-pool task that throws
// would poison the pool's wait().  Each request appends a run-ledger
// record (when configured) and publishes Session telemetry labeled
// with the request kind, so `sldm stats --prom` covers live traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "delay/slope_table.h"
#include "design/compiled_design.h"

namespace sldm {

struct ServeOptions {
  /// Maximum cached designs; least-recently-used unleased entries are
  /// evicted beyond this.  Must be >= 1.
  int cache_capacity = 8;
  /// Technology for .sim loads that do not name one: preset ("nmos",
  /// "cmos") or a .tech file path.
  std::string default_tech = "nmos";
  /// Run-ledger file for per-request records; empty disables.
  std::string ledger_path;
  /// Server-wide default deadline for time/explain/eco requests, in
  /// milliseconds; 0 disables.  A request's own "deadline_ms" member
  /// overrides it.  Expiry is cooperative (checked between propagation
  /// wavefronts) and answers with the named "deadline" envelope.
  double default_deadline_ms = 0.0;
};

class TimingService {
 public:
  /// Enables the process TelemetryHub (the service *is* the process
  /// worth observing).  Throws Error on bad options.
  explicit TimingService(ServeOptions options = {});

  /// Parses and fully processes one request line, returning the
  /// single-line JSON response (no trailing newline).  Thread-safe;
  /// never throws -- failures come back as error envelopes.
  std::string handle_line(const std::string& line);

  /// The "overloaded" envelope for a line refused at admission, with
  /// the id recovered best-effort.  Counts the rejection.
  std::string overload_response(const std::string& line);

  /// The "too-large" envelope for a line that exceeded the serve loop's
  /// --max-line-bytes bound.  `line_prefix` is whatever prefix the loop
  /// retained (the id is recovered best-effort from it, usually empty
  /// because the JSON is truncated).  Counts as an error.
  std::string too_large_response(const std::string& line_prefix,
                                 std::size_t limit);

  /// True once a shutdown request has been processed (the pipe loop /
  /// TCP accept loop exit condition).
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Marks the service shutting down without a protocol request -- the
  /// serve loops call this when a SIGINT/SIGTERM drain begins, so any
  /// concurrent loop sharing the service also stops admitting.
  void note_shutdown() { shutdown_.store(true, std::memory_order_release); }

  /// A reader's hold on a cached design: while alive, `eco` against
  /// the same fingerprint is refused with "eco-shared".  Exposed so
  /// embedders (and the eco-refusal tests) can pin a design exactly
  /// like an in-flight time/explain request does.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept : entry_(std::move(o.entry_)) {}
    Lease& operator=(Lease&& o) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    std::shared_ptr<const CompiledDesign> design() const;
    std::shared_ptr<const SlopeTables> tables() const;

   private:
    friend class TimingService;
    struct CacheEntry;
    explicit Lease(std::shared_ptr<CacheEntry> entry);
    void release();
    std::shared_ptr<CacheEntry> entry_;
  };

  /// Takes a reader lease on the design with this 16-hex fingerprint.
  /// Throws RequestError("unknown-design") when it is not cached.
  Lease lease(const std::string& fingerprint);

  std::size_t design_count() const;
  std::uint64_t requests_handled() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors_returned() const {
    return errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t overloads_rejected() const {
    return overloads_.load(std::memory_order_relaxed);
  }

 private:
  struct ServeRequestDispatch;

  /// Inserts (or refreshes) a cache entry and evicts LRU unleased
  /// entries beyond capacity.  Caller must not hold mutex_.
  void insert_entry(const std::string& fingerprint,
                    std::shared_ptr<Lease::CacheEntry> entry);

  /// Removes the entry for an eco rewrite; throws RequestError
  /// ("unknown-design" / "eco-shared") when absent or leased.
  std::shared_ptr<Lease::CacheEntry> take_for_eco(
      const std::string& fingerprint);

  void append_ledger(const class LedgerRecord& record);
  void publish_service_metrics();

  ServeOptions options_;
  mutable std::mutex mutex_;  ///< guards cache_ and use_clock_
  std::map<std::string, std::shared_ptr<Lease::CacheEntry>> cache_;
  std::uint64_t use_clock_ = 0;  ///< LRU timestamp source

  std::mutex ledger_mutex_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> overloads_{0};
};

}  // namespace sldm
