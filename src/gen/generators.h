// Benchmark circuit generators: the workload families of the paper's
// evaluation, reconstructed.
//
// Every generator returns a GeneratedCircuit with the stimulated input,
// the observed output, and the set of secondary inputs that must be held
// high/low (pass-gate selects, secondary gate inputs) so that the analog
// simulation exercises the same path the timing analyzer reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/builder.h"
#include "netlist/netlist.h"

namespace sldm {

/// A generated benchmark with its test harness metadata.
struct GeneratedCircuit {
  Netlist netlist;
  std::string name;
  Style style = Style::kNmos;
  NodeId input;                   ///< main stimulated input
  NodeId output;                  ///< main observed output
  std::vector<NodeId> high_inputs;  ///< hold at Vdd during simulation
  std::vector<NodeId> low_inputs;   ///< hold at 0 V during simulation
};

/// A chain of `stages` inverters; each internal stage output additionally
/// drives `fanout - 1` dummy gate loads (fanout >= 1).
/// Preconditions: stages >= 1, fanout >= 1.
GeneratedCircuit inverter_chain(Style style, int stages, int fanout);

/// One NAND gate with `inputs` inputs; the stimulated input is the one
/// closest to the output (worst case), the rest are held high.  A final
/// inverter acts as the observation load.
GeneratedCircuit nand_chain(Style style, int inputs);

/// One NOR gate with `inputs` inputs; stimulated input switches, others
/// held low.
GeneratedCircuit nor_chain(Style style, int inputs);

/// A driver inverter feeding `length` series pass transistors (all
/// selects held high) into an inverter load: the structure where the
/// lumped model's quadratic pessimism shows (Table 3).
GeneratedCircuit pass_chain(Style style, int length);

/// An n-bit barrel shifter built from a pass-transistor array: `bits`
/// data lines, `bits` shift amounts (one-hot selects).  The stimulated
/// input is data line 0 observed at output line 0 with shift select 0
/// active -- the longest loaded path through the array.
GeneratedCircuit barrel_shifter(Style style, int bits);

/// An n-bit Manchester carry chain (dynamic): precharged carry nodes,
/// generate pull-downs, propagate pass transistors.  The stimulated
/// input is generate[0]; the output is the final carry.  Propagates are
/// held high (worst-case ripple).
GeneratedCircuit manchester_carry(Style style, int bits);

/// A precharged bus with `drivers` two-high pull-down stacks.  One
/// driver's data input switches (its select held high); the others add
/// diffusion load only.
GeneratedCircuit precharged_bus(Style style, int drivers);

/// A geometrically-tapered driver chain ("superbuffer"): `stages`
/// inverters with strength ratio `taper`, driving `load_fF` femtofarads.
GeneratedCircuit driver_chain(Style style, int stages, double taper,
                              double load_fF);

/// A 2^bits-row NOR address decoder with true/complement line drivers.
/// The stimulated input is address bit 0 (others held low); the
/// observed output follows row 1 (the row that activates when a0
/// rises).  Address lines carry 2^(bits-1) gate loads each -- the
/// heavy-fanout structure of RAM/ROM periphery.
/// Precondition: 1 <= bits <= 8.
GeneratedCircuit address_decoder(Style style, int bits);

/// A NOR-NOR PLA with a seeded random personality: `inputs` buffered
/// inputs, `products` product terms, `outputs` outputs.  Product 0 is
/// pinned to literal !a0 and output 0 always includes product 0 so a
/// switching path from the stimulated input (a0) is guaranteed.
GeneratedCircuit pla(Style style, int inputs, int products, int outputs,
                     std::uint64_t seed);

/// A two-phase dynamic shift register: each stage is a phi1-gated pass
/// transistor into an inverter (master) followed by a phi2-gated pass
/// into a second inverter (slave), data held as charge on the pass-gate
/// nodes between phases -- the canonical 1980s dynamic-logic pipeline.
/// Inputs: "data", "phi1", "phi2"; output: the last slave inverter.
/// For the static timing harness phi1 is listed as held high and phi2
/// low (master-transparent phase).  Precondition: stages >= 1.
GeneratedCircuit shift_register(Style style, int stages);

/// A RAM read-path column: a precharged bit line loaded by `rows`
/// access transistors.  Row 0 stores a 0 (modeled by its read
/// equivalent: an always-on pull-down behind the access device -- this
/// sidesteps the bistable cell while keeping the read path's
/// electricals); the other rows only load the bit line.  The stimulated
/// input is wordline 0; the output observes the bit line through an
/// inverter.  Precondition: rows >= 1.
GeneratedCircuit sram_read_column(Style style, int rows);

/// A pseudo-random layered gate network for scaling/property tests:
/// `layers` levels of NAND/NOR/inverters, `width` gates per level,
/// deterministic in `seed`.
GeneratedCircuit random_logic(Style style, int layers, int width,
                              std::uint64_t seed);

/// The whole accuracy suite used for the Fig. 3 error survey.
std::vector<GeneratedCircuit> accuracy_suite(Style style);

}  // namespace sldm
