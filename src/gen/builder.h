// Structured construction of benchmark circuits in both supported logic
// styles: ratioed E/D nMOS (enhancement pull-downs, depletion loads) and
// static CMOS (complementary pull-up/pull-down networks).
//
// All the generators in this module are built on CircuitBuilder so the
// same benchmark topology can be emitted for either process.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/units.h"

namespace sldm {

enum class Style : std::uint8_t { kNmos, kCmos };

std::string to_string(Style s);

/// Default device sizes per style (drawn dimensions).
struct Sizing {
  Meters driver_w;  ///< pull-down (nMOS) / both (CMOS n) width
  Meters driver_l;
  Meters load_w;  ///< depletion load (nMOS) / p device (CMOS) width
  Meters load_l;
  Meters pass_w;  ///< pass transistor width
  Meters pass_l;

  static Sizing standard(Style style);
  /// Scales driver and load widths by `k` (gate strength multiplier).
  Sizing scaled(double k) const;
};

/// A Netlist-building helper with power rails and gate primitives.
class CircuitBuilder {
 public:
  explicit CircuitBuilder(Style style);

  Style style() const { return style_; }
  Netlist& netlist() { return nl_; }
  const Netlist& netlist() const { return nl_; }
  NodeId vdd() const { return vdd_; }
  NodeId gnd() const { return gnd_; }

  NodeId node(const std::string& name) { return nl_.add_node(name); }
  NodeId input(const std::string& name) { return nl_.mark_input(name); }
  NodeId output(const std::string& name) { return nl_.mark_output(name); }

  /// An inverter driving `out` from `in`; returns `out`'s id.
  /// `strength` scales driver/load widths.
  NodeId inverter(NodeId in, const std::string& out_name,
                  double strength = 1.0);

  /// k-input NAND (series pull-down / parallel pull-up).
  NodeId nand_gate(const std::vector<NodeId>& ins,
                   const std::string& out_name, double strength = 1.0);

  /// k-input NOR (parallel pull-down / series pull-up).
  NodeId nor_gate(const std::vector<NodeId>& ins, const std::string& out_name,
                  double strength = 1.0);

  /// A pass transistor between `a` and `b` controlled by `gate`
  /// (n-enhancement in both styles; CMOS full transmission gates are a
  /// straightforward extension not needed by the 1984 workloads).
  DeviceId pass(NodeId a, NodeId b, NodeId gate);

  /// Attaches `count` dummy inverter gates to `n` as fanout load.
  void add_fanout_load(NodeId n, int count);

 private:
  /// The ratioed load (nMOS) or the complete p-network (CMOS) for a
  /// gate.  `series_pullup` lists inputs whose p devices go in series
  /// (NOR) -- empty means parallel (NAND/inverter).
  void add_pullup(NodeId out, const std::vector<NodeId>& ins, bool series,
                  const Sizing& s);

  Style style_;
  Netlist nl_;
  NodeId vdd_;
  NodeId gnd_;
  int unique_ = 0;
};

}  // namespace sldm
