#include "gen/generators.h"

#include <random>

#include "util/contracts.h"
#include "util/strings.h"
#include "util/units.h"

namespace sldm {

GeneratedCircuit inverter_chain(Style style, int stages, int fanout) {
  SLDM_EXPECTS(stages >= 1);
  SLDM_EXPECTS(fanout >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("inv_chain_s%d_f%d_%s", stages, fanout,
                  to_string(style).c_str());
  g.style = style;
  g.input = b.input("in");
  NodeId cur = g.input;
  for (int i = 0; i < stages; ++i) {
    cur = b.inverter(cur, "s" + std::to_string(i + 1));
    if (i + 1 < stages) {
      b.add_fanout_load(cur, fanout - 1);
    }
  }
  b.netlist().mark_output(b.netlist().node(cur).name);
  // The final stage sees the same fanout load as the internal ones.
  b.add_fanout_load(cur, fanout - 1);
  g.output = cur;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit nand_chain(Style style, int inputs) {
  SLDM_EXPECTS(inputs >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("nand%d_%s", inputs, to_string(style).c_str());
  g.style = style;
  std::vector<NodeId> ins;
  for (int i = 0; i < inputs; ++i) {
    const NodeId in = b.input("a" + std::to_string(i));
    ins.push_back(in);
    if (i > 0) g.high_inputs.push_back(in);
  }
  g.input = ins[0];  // the device nearest the output switches (worst case)
  const NodeId y = b.nand_gate(ins, "y");
  const NodeId out = b.inverter(y, "out");
  b.netlist().mark_output("out");
  g.output = out;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit nor_chain(Style style, int inputs) {
  SLDM_EXPECTS(inputs >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("nor%d_%s", inputs, to_string(style).c_str());
  g.style = style;
  std::vector<NodeId> ins;
  for (int i = 0; i < inputs; ++i) {
    const NodeId in = b.input("a" + std::to_string(i));
    ins.push_back(in);
    if (i > 0) g.low_inputs.push_back(in);
  }
  g.input = ins[0];
  const NodeId y = b.nor_gate(ins, "y");
  const NodeId out = b.inverter(y, "out");
  b.netlist().mark_output("out");
  g.output = out;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit pass_chain(Style style, int length) {
  SLDM_EXPECTS(length >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("pass_chain_%d_%s", length, to_string(style).c_str());
  g.style = style;
  g.input = b.input("in");
  NodeId cur = b.inverter(g.input, "p0");
  const NodeId sel = b.input("sel");
  g.high_inputs.push_back(sel);
  for (int i = 1; i <= length; ++i) {
    const NodeId next = b.node("p" + std::to_string(i));
    b.pass(cur, next, sel);
    cur = next;
  }
  const NodeId out = b.inverter(cur, "out");
  b.netlist().mark_output("out");
  g.output = out;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit barrel_shifter(Style style, int bits) {
  SLDM_EXPECTS(bits >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("barrel_%d_%s", bits, to_string(style).c_str());
  g.style = style;
  g.input = b.input("in");

  // Data lines: line 0 is driven from the stimulated input; the others
  // are externally held low.
  std::vector<NodeId> data(static_cast<std::size_t>(bits));
  data[0] = b.inverter(g.input, "d0");
  for (int i = 1; i < bits; ++i) {
    data[static_cast<std::size_t>(i)] = b.input("d" + std::to_string(i));
    g.low_inputs.push_back(data[static_cast<std::size_t>(i)]);
  }

  // One-hot shift selects; shift 0 active.
  std::vector<NodeId> sel(static_cast<std::size_t>(bits));
  for (int s = 0; s < bits; ++s) {
    sel[static_cast<std::size_t>(s)] = b.input("sh" + std::to_string(s));
    if (s == 0) {
      g.high_inputs.push_back(sel[static_cast<std::size_t>(s)]);
    } else {
      g.low_inputs.push_back(sel[static_cast<std::size_t>(s)]);
    }
  }

  // Output lines; out_j connects to data_{(j+s) mod bits} under sh_s.
  std::vector<NodeId> out(static_cast<std::size_t>(bits));
  for (int j = 0; j < bits; ++j) {
    out[static_cast<std::size_t>(j)] = b.node("o" + std::to_string(j));
  }
  for (int s = 0; s < bits; ++s) {
    for (int j = 0; j < bits; ++j) {
      const int i = (j + s) % bits;
      b.pass(data[static_cast<std::size_t>(i)],
             out[static_cast<std::size_t>(j)],
             sel[static_cast<std::size_t>(s)]);
    }
  }
  const NodeId y = b.inverter(out[0], "out");
  b.netlist().mark_output("out");
  g.output = y;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit manchester_carry(Style style, int bits) {
  SLDM_EXPECTS(bits >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("manchester_%d_%s", bits, to_string(style).c_str());
  g.style = style;

  // Precharged carry nodes c0..c<bits-1>.
  std::vector<NodeId> carry(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    carry[static_cast<std::size_t>(i)] =
        b.netlist().mark_precharged("c" + std::to_string(i));
  }
  const Sizing s = Sizing::standard(style);

  // generate[0] is the stimulated input; its pull-down discharges c0.
  g.input = b.input("g0");
  b.netlist().add_transistor(TransistorType::kNEnhancement, g.input, b.gnd(),
                             carry[0], s.driver_w, s.driver_l);

  // Propagate pass transistors chain the carries; all held high.
  for (int i = 1; i < bits; ++i) {
    const NodeId p = b.input("p" + std::to_string(i));
    g.high_inputs.push_back(p);
    b.pass(carry[static_cast<std::size_t>(i - 1)],
           carry[static_cast<std::size_t>(i)], p);
  }

  const NodeId out =
      b.inverter(carry[static_cast<std::size_t>(bits - 1)], "out");
  b.netlist().mark_output("out");
  g.output = out;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit precharged_bus(Style style, int drivers) {
  SLDM_EXPECTS(drivers >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("bus_%d_%s", drivers, to_string(style).c_str());
  g.style = style;
  const NodeId bus = b.netlist().mark_precharged("bus");
  // Bus wiring capacitance grows with the number of taps.
  b.netlist().add_cap(bus, 10e-15 * drivers);

  const Sizing s = Sizing::standard(style);
  for (int j = 0; j < drivers; ++j) {
    const NodeId sel = b.input("sel" + std::to_string(j));
    const NodeId data = b.input("data" + std::to_string(j));
    const NodeId mid = b.node("mid" + std::to_string(j));
    b.netlist().add_transistor(TransistorType::kNEnhancement, sel, mid, bus,
                               s.driver_w, s.driver_l);
    b.netlist().add_transistor(TransistorType::kNEnhancement, data, b.gnd(),
                               mid, s.driver_w, s.driver_l);
    if (j == 0) {
      g.input = data;
      g.high_inputs.push_back(sel);
    } else {
      g.low_inputs.push_back(sel);
      g.low_inputs.push_back(data);
    }
  }
  const NodeId out = b.inverter(bus, "out");
  b.netlist().mark_output("out");
  g.output = out;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit driver_chain(Style style, int stages, double taper,
                              double load_fF) {
  SLDM_EXPECTS(stages >= 1);
  SLDM_EXPECTS(taper >= 1.0);
  SLDM_EXPECTS(load_fF > 0.0);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("driver_s%d_t%.1f_%s", stages, taper,
                  to_string(style).c_str());
  g.style = style;
  g.input = b.input("in");
  NodeId cur = g.input;
  double strength = 1.0;
  for (int i = 0; i < stages; ++i) {
    cur = b.inverter(cur, "d" + std::to_string(i + 1), strength);
    strength *= taper;
  }
  b.netlist().add_cap(cur, load_fF * units::fF);
  b.netlist().mark_output(b.netlist().node(cur).name);
  g.output = cur;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit address_decoder(Style style, int bits) {
  SLDM_EXPECTS(bits >= 1 && bits <= 8);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("decoder_%d_%s", bits, to_string(style).c_str());
  g.style = style;

  // Buffered true/complement address lines.
  std::vector<NodeId> a_true(static_cast<std::size_t>(bits));
  std::vector<NodeId> a_bar(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    const NodeId a = b.input("a" + std::to_string(i));
    if (i == 0) {
      g.input = a;
    } else {
      g.low_inputs.push_back(a);
    }
    a_bar[static_cast<std::size_t>(i)] =
        b.inverter(a, "abar" + std::to_string(i));
    a_true[static_cast<std::size_t>(i)] =
        b.inverter(a_bar[static_cast<std::size_t>(i)],
                   "atrue" + std::to_string(i));
  }

  // One NOR row per address value: row r goes high when a == r.
  const int rows = 1 << bits;
  NodeId row1 = NodeId::invalid();
  for (int r = 0; r < rows; ++r) {
    std::vector<NodeId> literals;
    for (int i = 0; i < bits; ++i) {
      const bool bit_set = ((r >> i) & 1) != 0;
      // NOR row: feed the literal that must be LOW for the row to fire.
      literals.push_back(bit_set ? a_bar[static_cast<std::size_t>(i)]
                                 : a_true[static_cast<std::size_t>(i)]);
    }
    const NodeId row = b.nor_gate(literals, "row" + std::to_string(r));
    if (r == 1) row1 = row;
  }
  SLDM_ASSERT(row1.valid());
  const NodeId out = b.inverter(row1, "out");
  b.netlist().mark_output("out");
  g.output = out;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit pla(Style style, int inputs, int products, int outputs,
                     std::uint64_t seed) {
  SLDM_EXPECTS(inputs >= 1);
  SLDM_EXPECTS(products >= 1);
  SLDM_EXPECTS(outputs >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("pla_i%d_p%d_o%d_%s", inputs, products, outputs,
                  to_string(style).c_str());
  g.style = style;
  std::mt19937_64 rng(seed);

  std::vector<NodeId> a_true(static_cast<std::size_t>(inputs));
  std::vector<NodeId> a_bar(static_cast<std::size_t>(inputs));
  for (int i = 0; i < inputs; ++i) {
    const NodeId a = b.input("i" + std::to_string(i));
    if (i == 0) {
      g.input = a;
    } else {
      g.low_inputs.push_back(a);
    }
    a_bar[static_cast<std::size_t>(i)] =
        b.inverter(a, "ibar" + std::to_string(i));
    a_true[static_cast<std::size_t>(i)] =
        b.inverter(a_bar[static_cast<std::size_t>(i)],
                   "itrue" + std::to_string(i));
  }

  // AND plane as NOR rows over literals.  Product 0 is pinned to !a0 so
  // the stimulated input always has a path to output 0.
  std::vector<NodeId> product(static_cast<std::size_t>(products));
  std::bernoulli_distribution include(0.4);
  std::bernoulli_distribution polarity(0.5);
  for (int p = 0; p < products; ++p) {
    std::vector<NodeId> literals;
    if (p == 0) {
      literals.push_back(a_bar[0]);
    } else {
      for (int i = 0; i < inputs; ++i) {
        if (!include(rng)) continue;
        literals.push_back(polarity(rng)
                               ? a_true[static_cast<std::size_t>(i)]
                               : a_bar[static_cast<std::size_t>(i)]);
      }
      if (literals.empty()) {
        literals.push_back(a_bar[static_cast<std::size_t>(
            static_cast<int>(rng() % static_cast<unsigned>(inputs)))]);
      }
    }
    product[static_cast<std::size_t>(p)] =
        b.nor_gate(literals, "p" + std::to_string(p));
  }

  // OR plane: outputs are NORs of products (active low), re-inverted at
  // the periphery.  Output 0 always includes product 0.
  for (int o = 0; o < outputs; ++o) {
    std::vector<NodeId> terms;
    if (o == 0) terms.push_back(product[0]);
    for (int p = (o == 0 ? 1 : 0); p < products; ++p) {
      if (include(rng)) terms.push_back(product[static_cast<std::size_t>(p)]);
    }
    if (terms.empty()) {
      terms.push_back(product[static_cast<std::size_t>(
          static_cast<int>(rng() % static_cast<unsigned>(products)))]);
    }
    const NodeId nor_out =
        b.nor_gate(terms, "no" + std::to_string(o));
    const NodeId out = b.inverter(nor_out, "o" + std::to_string(o));
    b.netlist().mark_output(b.netlist().node(out).name);
    if (o == 0) g.output = out;
  }
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit shift_register(Style style, int stages) {
  SLDM_EXPECTS(stages >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("shiftreg_%d_%s", stages, to_string(style).c_str());
  g.style = style;

  g.input = b.input("data");
  const NodeId phi1 = b.input("phi1");
  const NodeId phi2 = b.input("phi2");
  g.high_inputs.push_back(phi1);
  g.low_inputs.push_back(phi2);

  NodeId carry = g.input;
  NodeId q = NodeId::invalid();
  for (int s = 0; s < stages; ++s) {
    const NodeId m_in = b.node(format("m%d", s));
    b.pass(carry, m_in, phi1);
    const NodeId m_out = b.inverter(m_in, format("mq%d", s));
    const NodeId s_in = b.node(format("s%d", s));
    b.pass(m_out, s_in, phi2);
    q = b.inverter(s_in, format("q%d", s));
    carry = q;
  }
  SLDM_ASSERT(q.valid());
  b.netlist().mark_output(b.netlist().node(q).name);
  g.output = q;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit sram_read_column(Style style, int rows) {
  SLDM_EXPECTS(rows >= 1);
  CircuitBuilder b(Style::kNmos == style ? style : style);
  GeneratedCircuit g;
  g.name = format("sram_col_%d_%s", rows, to_string(style).c_str());
  g.style = style;

  const NodeId bit = b.netlist().mark_precharged("bit");
  // Bit-line wiring capacitance grows with the column height.
  b.netlist().add_cap(bit, 3e-15 * rows);

  const Sizing s = Sizing::standard(style);
  for (int r = 0; r < rows; ++r) {
    const NodeId wl = b.input("wl" + std::to_string(r));
    const NodeId cell = b.node("cell" + std::to_string(r));
    // Access transistor: bit <-> cell, gated by the wordline.
    b.netlist().add_transistor(TransistorType::kNEnhancement, wl, cell, bit,
                               s.pass_w, s.pass_l);
    if (r == 0) {
      // The accessed cell stores 0: its read path is an always-on
      // pull-down (gate at Vdd), the electrical equivalent of the
      // cell's on-side driver.
      b.netlist().add_transistor(TransistorType::kNEnhancement, b.vdd(),
                                 b.gnd(), cell, s.driver_w, s.driver_l);
      g.input = wl;
    } else {
      g.low_inputs.push_back(wl);
    }
  }
  const NodeId out = b.inverter(bit, "out");
  b.netlist().mark_output("out");
  g.output = out;
  g.netlist = std::move(b.netlist());
  return g;
}

GeneratedCircuit random_logic(Style style, int layers, int width,
                              std::uint64_t seed) {
  SLDM_EXPECTS(layers >= 1);
  SLDM_EXPECTS(width >= 1);
  CircuitBuilder b(style);
  GeneratedCircuit g;
  g.name = format("random_l%d_w%d_%s", layers, width,
                  to_string(style).c_str());
  g.style = style;
  std::mt19937_64 rng(seed);

  std::vector<NodeId> prev;
  for (int i = 0; i < width; ++i) {
    const NodeId in = b.input("in" + std::to_string(i));
    prev.push_back(in);
    if (i == 0) {
      g.input = in;
    } else {
      // Secondary inputs held at non-controlling values for NANDs.
      g.high_inputs.push_back(in);
    }
  }

  for (int l = 0; l < layers; ++l) {
    std::vector<NodeId> next;
    for (int w = 0; w < width; ++w) {
      const std::string name = format("g%d_%d", l, w);
      std::uniform_int_distribution<int> pick(
          0, static_cast<int>(prev.size()) - 1);
      std::uniform_int_distribution<int> kind_dist(0, 2);
      const int kind = kind_dist(rng);
      const NodeId a = prev[static_cast<std::size_t>(pick(rng))];
      const NodeId c = prev[static_cast<std::size_t>(pick(rng))];
      NodeId y;
      if (kind == 0 || a == c) {
        y = b.inverter(a, name);
      } else if (kind == 1) {
        y = b.nand_gate({a, c}, name);
      } else {
        y = b.nor_gate({a, c}, name);
      }
      next.push_back(y);
    }
    prev = std::move(next);
  }
  for (NodeId n : prev) {
    b.netlist().mark_output(b.netlist().node(n).name);
  }
  g.output = prev.front();
  g.netlist = std::move(b.netlist());
  return g;
}

std::vector<GeneratedCircuit> accuracy_suite(Style style) {
  std::vector<GeneratedCircuit> suite;
  suite.push_back(inverter_chain(style, 3, 1));
  suite.push_back(inverter_chain(style, 3, 4));
  suite.push_back(inverter_chain(style, 5, 2));
  suite.push_back(nand_chain(style, 2));
  suite.push_back(nand_chain(style, 3));
  suite.push_back(nor_chain(style, 2));
  suite.push_back(nor_chain(style, 3));
  suite.push_back(pass_chain(style, 2));
  suite.push_back(pass_chain(style, 4));
  suite.push_back(pass_chain(style, 6));
  suite.push_back(driver_chain(style, 3, 3.0, 250.0));
  suite.push_back(barrel_shifter(style, 4));
  suite.push_back(manchester_carry(style, 4));
  suite.push_back(precharged_bus(style, 4));
  suite.push_back(address_decoder(style, 3));
  suite.push_back(pla(style, 4, 6, 2, /*seed=*/7));
  return suite;
}

}  // namespace sldm
