#include "gen/builder.h"

#include "util/contracts.h"

namespace sldm {

std::string to_string(Style s) {
  return s == Style::kNmos ? "nmos" : "cmos";
}

Sizing Sizing::standard(Style style) {
  using namespace units;
  if (style == Style::kNmos) {
    // Mead-Conway-style 4:1 impedance ratio inverter in a 4 um process:
    // pull-down 8/4, depletion load 4/8.
    return {.driver_w = 8 * um,
            .driver_l = 4 * um,
            .load_w = 4 * um,
            .load_l = 8 * um,
            .pass_w = 8 * um,
            .pass_l = 4 * um};
  }
  // 3 um CMOS: p device twice as wide to balance the mobility gap.
  return {.driver_w = 6 * um,
          .driver_l = 3 * um,
          .load_w = 12 * um,
          .load_l = 3 * um,
          .pass_w = 6 * um,
          .pass_l = 3 * um};
}

Sizing Sizing::scaled(double k) const {
  SLDM_EXPECTS(k > 0.0);
  Sizing s = *this;
  s.driver_w *= k;
  s.load_w *= k;
  return s;
}

CircuitBuilder::CircuitBuilder(Style style) : style_(style) {
  vdd_ = nl_.mark_power("vdd");
  gnd_ = nl_.mark_ground("gnd");
}

void CircuitBuilder::add_pullup(NodeId out, const std::vector<NodeId>& ins,
                                bool series, const Sizing& s) {
  if (style_ == Style::kNmos) {
    // One depletion load, gate tied to source (the output node).
    nl_.add_transistor(TransistorType::kNDepletion, out, out, vdd_, s.load_w,
                       s.load_l);
    return;
  }
  if (!series) {
    // Parallel p devices (NAND / inverter).
    for (NodeId in : ins) {
      nl_.add_transistor(TransistorType::kPEnhancement, in, out, vdd_,
                         s.load_w, s.load_l);
    }
    return;
  }
  // Series p stack (NOR).
  NodeId below = out;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const NodeId above =
        i + 1 == ins.size()
            ? vdd_
            : nl_.add_node("pu" + std::to_string(unique_++));
    nl_.add_transistor(TransistorType::kPEnhancement, ins[i], below, above,
                       s.load_w, s.load_l);
    below = above;
  }
}

NodeId CircuitBuilder::inverter(NodeId in, const std::string& out_name,
                                double strength) {
  const Sizing s = Sizing::standard(style_).scaled(strength);
  const NodeId out = nl_.add_node(out_name);
  nl_.add_transistor(TransistorType::kNEnhancement, in, gnd_, out, s.driver_w,
                     s.driver_l);
  add_pullup(out, {in}, /*series=*/false, s);
  return out;
}

NodeId CircuitBuilder::nand_gate(const std::vector<NodeId>& ins,
                                 const std::string& out_name,
                                 double strength) {
  SLDM_EXPECTS(!ins.empty());
  const Sizing s = Sizing::standard(style_).scaled(strength);
  const NodeId out = nl_.add_node(out_name);
  // Series pull-down from out to ground.
  NodeId above = out;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const NodeId below =
        i + 1 == ins.size()
            ? gnd_
            : nl_.add_node("pd" + std::to_string(unique_++));
    nl_.add_transistor(TransistorType::kNEnhancement, ins[i], below, above,
                       s.driver_w, s.driver_l);
    above = below;
  }
  add_pullup(out, ins, /*series=*/false, s);
  return out;
}

NodeId CircuitBuilder::nor_gate(const std::vector<NodeId>& ins,
                                const std::string& out_name,
                                double strength) {
  SLDM_EXPECTS(!ins.empty());
  const Sizing s = Sizing::standard(style_).scaled(strength);
  const NodeId out = nl_.add_node(out_name);
  for (NodeId in : ins) {
    nl_.add_transistor(TransistorType::kNEnhancement, in, gnd_, out,
                       s.driver_w, s.driver_l);
  }
  add_pullup(out, ins, /*series=*/true, s);
  return out;
}

DeviceId CircuitBuilder::pass(NodeId a, NodeId b, NodeId gate) {
  const Sizing s = Sizing::standard(style_);
  return nl_.add_transistor(TransistorType::kNEnhancement, gate, a, b,
                            s.pass_w, s.pass_l);
}

void CircuitBuilder::add_fanout_load(NodeId n, int count) {
  SLDM_EXPECTS(count >= 0);
  for (int i = 0; i < count; ++i) {
    inverter(n, "load" + std::to_string(unique_++));
  }
}

}  // namespace sldm
