// Nonlinear transient simulation: modified nodal analysis with
// Newton-Raphson per time point, trapezoidal integration (backward-Euler
// first step), and step-size control on per-step voltage change.
//
// The solver never steps across a source breakpoint, so edges launched by
// PwlSource::edge are resolved exactly.
#pragma once

#include <unordered_map>
#include <vector>

#include "analog/circuit.h"
#include "analog/waveform.h"

namespace sldm {

/// Linear-solver selection for the Newton iterations.
enum class MatrixKind {
  kAuto,    ///< sparse above ~100 unknowns, dense below
  kDense,   ///< dense LU with partial pivoting
  kSparse,  ///< map-per-row sparse LU with partial pivoting
};

/// Options for simulate().
struct TransientOptions {
  Seconds t_stop = 0.0;        ///< required; end of the run
  MatrixKind matrix = MatrixKind::kAuto;
  Seconds dt_init = 1e-12;     ///< first step size
  Seconds dt_min = 1e-18;      ///< below this a failing step is fatal
  Seconds dt_max = 0.0;        ///< 0 = t_stop / 200
  Volts dv_max = 0.25;         ///< max accepted per-step node change
  int newton_max_iter = 80;    ///< iterations before a step is retried
  Volts newton_abstol = 1e-7;  ///< absolute Newton convergence tolerance
  double newton_reltol = 1e-6;
  Volts newton_damping = 1.0;  ///< max update magnitude per iteration
  /// If true, the initial state is the DC operating point at t = 0.
  /// If false, nodes start at 0 V unless overridden below.
  bool start_from_dc = true;
  /// Per-node initial voltages applied after (or instead of) the DC
  /// solve; used for precharged dynamic nodes.
  std::unordered_map<AnalogNode, Volts> initial_conditions;
};

/// Result of a transient run: one waveform per analog node (index ==
/// AnalogNode), plus work counters for the Table 5 runtime comparison.
struct TransientResult {
  std::vector<Waveform> waveforms;
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t newton_iterations = 0;

  const Waveform& at(AnalogNode n) const;
};

/// DC operating point with all sources at their t=0 values and
/// capacitors open.  Returns node voltages indexed by AnalogNode
/// (ground included as entry 0).  Throws NumericalError on failure.
std::vector<Volts> dc_operating_point(const Circuit& circuit,
                                      const TransientOptions& options = {});

/// Runs a transient analysis.  Throws NumericalError if Newton fails to
/// converge at the minimum step size.
TransientResult simulate(const Circuit& circuit,
                         const TransientOptions& options);

}  // namespace sldm
