#include "analog/elaborate.h"

#include "util/contracts.h"
#include "util/error.h"
#include "util/trace.h"

namespace sldm {

AnalogNode Elaboration::analog(NodeId n) const {
  SLDM_EXPECTS(n.valid() && n.index() < node_map_.size());
  return node_map_[n.index()];
}

void Elaboration::apply_precharge(const Netlist& nl, Volts v,
                                  TransientOptions& options) const {
  for (NodeId n : nl.all_nodes()) {
    if (nl.node(n).is_precharged) {
      options.initial_conditions[analog(n)] = v;
    }
  }
}

Elaboration elaborate(const Netlist& nl, const Tech& tech,
                      const std::vector<Stimulus>& stimuli) {
  TraceSpan span("elaborate", "analog");
  span.arg("nodes", static_cast<double>(nl.node_count()));
  span.arg("devices", static_cast<double>(nl.device_count()));
  Circuit circuit;
  std::vector<AnalogNode> node_map(nl.node_count(), kGround);

  // Nodes: ground maps to the analog ground; everything else gets its
  // own analog node.
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.is_ground) {
      node_map[n.index()] = kGround;
    } else {
      node_map[n.index()] = circuit.add_node(info.name.str());
    }
  }

  // Rails and inputs become voltage sources.
  std::unordered_map<NodeId, const PwlSource*> stim_by_node;
  for (const Stimulus& s : stimuli) {
    SLDM_EXPECTS(nl.node(s.node).is_input);
    const bool inserted = stim_by_node.emplace(s.node, &s.source).second;
    SLDM_EXPECTS(inserted);  // one stimulus per input
  }
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.is_ground) continue;
    if (info.is_power) {
      circuit.add_vsource(node_map[n.index()], kGround,
                          PwlSource::dc(tech.vdd()));
    } else if (info.is_input) {
      const auto it = stim_by_node.find(n);
      circuit.add_vsource(node_map[n.index()], kGround,
                          it != stim_by_node.end() ? *it->second
                                                   : PwlSource::dc(0.0));
    }
  }

  // Lumped node capacitances (skip source-driven nodes: a cap across an
  // ideal source is invisible and only slows the integrator).
  for (NodeId n : nl.all_nodes()) {
    const Node& info = nl.node(n);
    if (info.is_ground || info.is_power || info.is_input) continue;
    const Farads c = tech.node_capacitance(nl, n);
    if (c > 0.0) {
      circuit.add_capacitor(node_map[n.index()], kGround, c);
    }
  }

  // Transistors.
  for (DeviceId d : nl.all_devices()) {
    const Transistor& t = nl.device(d);
    if (!tech.has(t.type)) {
      throw Error("technology '" + tech.name() + "' has no device type " +
                  to_string(t.type));
    }
    Mosfet m;
    m.params = tech.params(t.type);
    m.is_p = t.type == TransistorType::kPEnhancement;
    m.drain = node_map[t.drain.index()];
    m.gate = node_map[t.gate.index()];
    m.source = node_map[t.source.index()];
    m.width = t.width;
    m.length = t.length;
    circuit.add_mosfet(std::move(m));
  }

  return Elaboration(std::move(circuit), std::move(node_map));
}

}  // namespace sldm
