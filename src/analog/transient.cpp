#include "analog/transient.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "analog/matrix.h"
#include "analog/sparse.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

/// Conductance from every node to ground, for numerical robustness with
/// momentarily floating nodes (all switches off).
constexpr double kGmin = 1e-12;

/// Integration method for the capacitor companion model.
enum class Method { kBackwardEuler, kTrapezoidal };

/// Per-capacitor dynamic state carried between time points.
struct CapState {
  Volts v_prev = 0.0;    ///< capacitor voltage at the last accepted point
  Amperes i_prev = 0.0;  ///< capacitor current at the last accepted point
};

/// Assembles and solves the MNA system.
class Solver {
 public:
  Solver(const Circuit& circuit, const TransientOptions& options)
      : circuit_(circuit),
        options_(options),
        n_nodes_(circuit.node_count()),
        n_unknowns_(circuit.node_count() - 1 + circuit.vsources().size()),
        sparse_(options.matrix == MatrixKind::kSparse ||
                (options.matrix == MatrixKind::kAuto && n_unknowns_ > 100)),
        jac_(sparse_ ? 1 : n_unknowns_, sparse_ ? 1 : n_unknowns_),
        sjac_(sparse_ ? n_unknowns_ : 1) {
    SLDM_EXPECTS(circuit.node_count() > 1);
  }

  std::size_t unknown_count() const { return n_unknowns_; }

  /// Newton-solves the circuit equations at time `t`.
  ///
  /// `x` holds node voltages (entry per node, ground included and pinned
  /// to 0) and is updated in place on success.  `branch` receives source
  /// branch currents.  In transient mode (`with_caps`), capacitor
  /// companions use step `h` from `states`.  `source_scale` scales all
  /// source values (used for DC continuation).
  /// Returns the number of Newton iterations, or -1 on divergence.
  int newton(std::vector<Volts>& x, std::vector<Amperes>& branch, Seconds t,
             bool with_caps, Method method, Seconds h,
             const std::vector<CapState>& states, double source_scale,
             double gmin = kGmin) {
    const std::size_t n = n_unknowns_;
    std::vector<double> f(n);
    std::vector<double> u(n);  // packed unknowns
    pack(x, branch, u);

    for (int iter = 1; iter <= options_.newton_max_iter; ++iter) {
      if (sparse_) {
        sjac_.set_zero();
      } else {
        jac_.set_zero();
      }
      std::fill(f.begin(), f.end(), 0.0);
      assemble(u, t, with_caps, method, h, states, source_scale, gmin, f);

      std::vector<double> rhs(n);
      for (std::size_t i = 0; i < n; ++i) rhs[i] = -f[i];
      std::vector<double> delta;
      try {
        delta = sparse_ ? SparseLu(sjac_).solve(rhs)
                        : LuFactorization(jac_).solve(rhs);
      } catch (const NumericalError&) {
        return -1;
      }

      double max_dv = 0.0;
      for (std::size_t i = 0; i + circuit_.vsources().size() < n; ++i) {
        max_dv = std::max(max_dv, std::abs(delta[i]));
      }
      // Damp: limit the voltage update magnitude per iteration.
      double scale = 1.0;
      if (max_dv > options_.newton_damping) {
        scale = options_.newton_damping / max_dv;
      }
      bool converged = true;
      for (std::size_t i = 0; i < n; ++i) {
        const double step = scale * delta[i];
        u[i] += step;
        if (!std::isfinite(u[i])) return -1;
        const bool is_voltage = i + circuit_.vsources().size() < n;
        const double tol =
            is_voltage
                ? options_.newton_abstol +
                      options_.newton_reltol * std::abs(u[i])
                : 1e-9 + options_.newton_reltol * std::abs(u[i]);
        if (std::abs(step) > tol) converged = false;
      }
      if (converged && scale == 1.0 && iter >= 2) {
        unpack(u, x, branch);
        return iter;
      }
    }
    return -1;
  }

  /// Capacitor voltage from a node-voltage vector.
  static Volts cap_voltage(const Capacitor& c, const std::vector<Volts>& x) {
    return x[c.a] - x[c.b];
  }

 private:
  std::size_t vindex(AnalogNode node) const {
    SLDM_ASSERT(node != kGround);
    return node - 1;
  }

  void pack(const std::vector<Volts>& x, const std::vector<Amperes>& branch,
            std::vector<double>& u) const {
    SLDM_ASSERT(x.size() == n_nodes_);
    for (AnalogNode node = 1; node < n_nodes_; ++node) {
      u[vindex(node)] = x[node];
    }
    for (std::size_t k = 0; k < branch.size(); ++k) {
      u[n_nodes_ - 1 + k] = branch[k];
    }
  }

  void unpack(const std::vector<double>& u, std::vector<Volts>& x,
              std::vector<Amperes>& branch) const {
    x[kGround] = 0.0;
    for (AnalogNode node = 1; node < n_nodes_; ++node) {
      x[node] = u[vindex(node)];
    }
    for (std::size_t k = 0; k < branch.size(); ++k) {
      branch[k] = u[n_nodes_ - 1 + k];
    }
  }

  double voltage_of(const std::vector<double>& u, AnalogNode node) const {
    return node == kGround ? 0.0 : u[vindex(node)];
  }

  /// Adds `g` to the Jacobian entry (row, col), in whichever matrix
  /// representation is active.
  void stamp_rc(std::size_t r, std::size_t c, double g) {
    if (sparse_) {
      sjac_.add(r, c, g);
    } else {
      jac_(r, c) += g;
    }
  }

  /// Adds `g` to the Jacobian entry (row eq of node `at`, column of node
  /// `wrt`), skipping ground rows/columns.
  void stamp_j(AnalogNode at, AnalogNode wrt, double g) {
    if (at == kGround || wrt == kGround) return;
    stamp_rc(vindex(at), vindex(wrt), g);
  }

  void stamp_f(std::vector<double>& f, AnalogNode at, double current) {
    if (at == kGround) return;
    f[vindex(at)] += current;
  }

  void assemble(const std::vector<double>& u, Seconds t, bool with_caps,
                Method method, Seconds h, const std::vector<CapState>& states,
                double source_scale, double gmin, std::vector<double>& f) {
    // Gmin to ground on every node equation.
    for (AnalogNode node = 1; node < n_nodes_; ++node) {
      stamp_j(node, node, gmin);
      stamp_f(f, node, gmin * voltage_of(u, node));
    }

    for (const Resistor& r : circuit_.resistors()) {
      const double g = 1.0 / r.resistance;
      const double i = g * (voltage_of(u, r.a) - voltage_of(u, r.b));
      stamp_f(f, r.a, i);
      stamp_f(f, r.b, -i);
      stamp_j(r.a, r.a, g);
      stamp_j(r.a, r.b, -g);
      stamp_j(r.b, r.a, -g);
      stamp_j(r.b, r.b, g);
    }

    if (with_caps) {
      SLDM_ASSERT(states.size() == circuit_.capacitors().size());
      for (std::size_t k = 0; k < circuit_.capacitors().size(); ++k) {
        const Capacitor& c = circuit_.capacitors()[k];
        const CapState& s = states[k];
        const double geq = (method == Method::kTrapezoidal ? 2.0 : 1.0) *
                           c.capacitance / h;
        const double ieq =
            method == Method::kTrapezoidal
                ? -geq * s.v_prev - s.i_prev
                : -geq * s.v_prev;
        const double vc = voltage_of(u, c.a) - voltage_of(u, c.b);
        const double i = geq * vc + ieq;
        stamp_f(f, c.a, i);
        stamp_f(f, c.b, -i);
        stamp_j(c.a, c.a, geq);
        stamp_j(c.a, c.b, -geq);
        stamp_j(c.b, c.a, -geq);
        stamp_j(c.b, c.b, geq);
      }
    }

    for (const Mosfet& m : circuit_.mosfets()) {
      const MosfetOp op = eval_mosfet(m, voltage_of(u, m.drain),
                                      voltage_of(u, m.gate),
                                      voltage_of(u, m.source));
      // op.id leaves the drain node and enters the source node.
      stamp_f(f, m.drain, op.id);
      stamp_f(f, m.source, -op.id);
      stamp_j(m.drain, m.drain, op.d_vd);
      stamp_j(m.drain, m.gate, op.d_vg);
      stamp_j(m.drain, m.source, op.d_vs);
      stamp_j(m.source, m.drain, -op.d_vd);
      stamp_j(m.source, m.gate, -op.d_vg);
      stamp_j(m.source, m.source, -op.d_vs);
    }

    for (std::size_t k = 0; k < circuit_.vsources().size(); ++k) {
      const VSource& src = circuit_.vsources()[k];
      const std::size_t br = n_nodes_ - 1 + k;
      const double ib = u[br];
      // Branch current leaves `pos`, enters `neg`.
      stamp_f(f, src.pos, ib);
      stamp_f(f, src.neg, -ib);
      if (src.pos != kGround) {
        stamp_rc(vindex(src.pos), br, 1.0);
      }
      if (src.neg != kGround) {
        stamp_rc(vindex(src.neg), br, -1.0);
      }
      // Branch equation: v_pos - v_neg = V(t).
      f[br] = voltage_of(u, src.pos) - voltage_of(u, src.neg) -
              source_scale * src.value.at(t);
      if (src.pos != kGround) stamp_rc(br, vindex(src.pos), 1.0);
      if (src.neg != kGround) stamp_rc(br, vindex(src.neg), -1.0);
    }
  }

  const Circuit& circuit_;
  const TransientOptions& options_;
  std::size_t n_nodes_;
  std::size_t n_unknowns_;
  bool sparse_;
  Matrix jac_;        // used when !sparse_ (1x1 placeholder otherwise)
  SparseMatrix sjac_;  // used when sparse_ (1x1 placeholder otherwise)
};

std::vector<Seconds> collect_breakpoints(const Circuit& circuit,
                                         Seconds t_stop) {
  std::set<Seconds> points;
  for (const VSource& src : circuit.vsources()) {
    for (Seconds b : src.value.breakpoints()) {
      if (b > 0.0 && b < t_stop) points.insert(b);
    }
  }
  return {points.begin(), points.end()};
}

}  // namespace

const Waveform& TransientResult::at(AnalogNode n) const {
  SLDM_EXPECTS(n < waveforms.size());
  return waveforms[n];
}

std::vector<Volts> dc_operating_point(const Circuit& circuit,
                                      const TransientOptions& options) {
  Solver solver(circuit, options);
  std::vector<Volts> x(circuit.node_count(), 0.0);
  std::vector<Amperes> branch(circuit.vsources().size(), 0.0);
  const std::vector<CapState> no_caps;

  // Direct attempt from a flat-zero guess.
  if (solver.newton(x, branch, 0.0, /*with_caps=*/false,
                    Method::kBackwardEuler, 1.0, no_caps,
                    /*source_scale=*/1.0) > 0) {
    return x;
  }

  // Gmin stepping: solve with a strong leak to ground (which makes the
  // system strongly diagonally dominant), then relax the leak decade by
  // decade, reusing each solution as the next starting point.  This is
  // the classic SPICE fallback and converges on the bistable-prone CMOS
  // stacks where plain Newton oscillates.
  std::fill(x.begin(), x.end(), 0.0);
  std::fill(branch.begin(), branch.end(), 0.0);
  bool ok = true;
  for (double gmin = 1e-3; gmin >= kGmin; gmin /= 10.0) {
    if (solver.newton(x, branch, 0.0, false, Method::kBackwardEuler, 1.0,
                      no_caps, 1.0, gmin) < 0) {
      ok = false;
      break;
    }
  }
  if (ok && solver.newton(x, branch, 0.0, false, Method::kBackwardEuler, 1.0,
                          no_caps, 1.0) > 0) {
    return x;
  }

  // Source-stepping continuation as the last resort.
  std::fill(x.begin(), x.end(), 0.0);
  std::fill(branch.begin(), branch.end(), 0.0);
  for (int pct = 2; pct <= 100; pct += 2) {
    const double scale = static_cast<double>(pct) / 100.0;
    if (solver.newton(x, branch, 0.0, false, Method::kBackwardEuler, 1.0,
                      no_caps, scale) < 0) {
      throw NumericalError(
          "DC operating point failed at source continuation step " +
          std::to_string(pct) + "%");
    }
  }
  return x;
}

TransientResult simulate(const Circuit& circuit,
                         const TransientOptions& options) {
  SLDM_EXPECTS(options.t_stop > 0.0);
  SLDM_EXPECTS(options.dt_init > 0.0);

  Solver solver(circuit, options);
  const Seconds dt_max =
      options.dt_max > 0.0 ? options.dt_max : options.t_stop / 200.0;

  // Initial state.
  std::vector<Volts> x(circuit.node_count(), 0.0);
  if (options.start_from_dc) {
    x = dc_operating_point(circuit, options);
  }
  for (const auto& [node, v] : options.initial_conditions) {
    SLDM_EXPECTS(node < circuit.node_count());
    x[node] = v;
  }
  x[kGround] = 0.0;
  std::vector<Amperes> branch(circuit.vsources().size(), 0.0);

  std::vector<CapState> states(circuit.capacitors().size());
  for (std::size_t k = 0; k < states.size(); ++k) {
    states[k].v_prev = Solver::cap_voltage(circuit.capacitors()[k], x);
    states[k].i_prev = 0.0;
  }

  TransientResult result;
  result.waveforms.resize(circuit.node_count());
  auto record = [&](Seconds t) {
    for (AnalogNode n = 0; n < circuit.node_count(); ++n) {
      result.waveforms[n].append(t, x[n]);
    }
  };
  // t = 0 sample uses a tiny negative epsilon-free convention: record the
  // initial state directly.
  for (AnalogNode n = 0; n < circuit.node_count(); ++n) {
    result.waveforms[n].append(0.0, x[n]);
  }

  const std::vector<Seconds> breakpoints =
      collect_breakpoints(circuit, options.t_stop);
  std::size_t next_bp = 0;

  Seconds t = 0.0;
  Seconds h = options.dt_init;
  bool first_step = true;
  const Seconds t_eps = options.t_stop * 1e-12;

  while (t < options.t_stop - t_eps) {
    while (next_bp < breakpoints.size() && breakpoints[next_bp] <= t + t_eps) {
      ++next_bp;
    }
    Seconds h_try = std::min({h, dt_max, options.t_stop - t});
    if (next_bp < breakpoints.size() &&
        t + h_try > breakpoints[next_bp] - t_eps) {
      h_try = breakpoints[next_bp] - t;
      first_step = true;  // restart integration method at the corner
    }
    SLDM_ASSERT(h_try > 0.0);

    std::vector<Volts> x_new = x;
    std::vector<Amperes> branch_new = branch;
    const Method method =
        first_step ? Method::kBackwardEuler : Method::kTrapezoidal;
    const int iters = solver.newton(x_new, branch_new, t + h_try,
                                    /*with_caps=*/true, method, h_try, states,
                                    /*source_scale=*/1.0);

    double max_dv = 0.0;
    if (iters > 0) {
      for (AnalogNode n = 1; n < circuit.node_count(); ++n) {
        max_dv = std::max(max_dv, std::abs(x_new[n] - x[n]));
      }
    }
    const bool too_big = iters > 0 && max_dv > options.dv_max;
    if (iters < 0 || (too_big && h_try > 4.0 * options.dt_min)) {
      ++result.rejected_steps;
      h = h_try / 2.0;
      if (h < options.dt_min) {
        throw NumericalError("transient step size underflow at t = " +
                             std::to_string(t));
      }
      continue;
    }

    // Accept the step: update capacitor histories.
    result.newton_iterations += static_cast<std::size_t>(iters);
    for (std::size_t k = 0; k < states.size(); ++k) {
      const Capacitor& c = circuit.capacitors()[k];
      const double v_new = Solver::cap_voltage(c, x_new);
      const double geq =
          (method == Method::kTrapezoidal ? 2.0 : 1.0) * c.capacitance /
          h_try;
      const double i_new =
          method == Method::kTrapezoidal
              ? geq * (v_new - states[k].v_prev) - states[k].i_prev
              : geq * (v_new - states[k].v_prev);
      states[k].v_prev = v_new;
      states[k].i_prev = i_new;
    }
    x = std::move(x_new);
    branch = std::move(branch_new);
    t += h_try;
    first_step = false;
    ++result.accepted_steps;
    record(t);

    // Grow the step when the solution is moving slowly.
    h = h_try;
    if (max_dv < 0.3 * options.dv_max) {
      h = std::min(h * 1.5, dt_max);
    }
  }
  return result;
}

}  // namespace sldm
