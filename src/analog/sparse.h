// Sparse LU factorization for the MNA system.
//
// Circuit Jacobians are extremely sparse (a handful of entries per
// row); above a modest size the dense kernel wastes almost all of its
// work on zeros.  This is a map-per-row Gaussian elimination with
// partial pivoting -- not a supernodal powerhouse, but asymptotically
// far better than dense on circuit matrices and exactly equivalent in
// results (tests enforce agreement with the dense solver).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace sldm {

/// A sparse square matrix assembled by coordinate updates.
class SparseMatrix {
 public:
  explicit SparseMatrix(std::size_t n);

  std::size_t dimension() const { return rows_.size(); }

  /// Adds `v` to entry (r, c).
  void add(std::size_t r, std::size_t c, double v);

  /// Reads entry (r, c) (0 if absent).
  double at(std::size_t r, std::size_t c) const;

  /// Drops all stored values but keeps nothing else (fresh assembly).
  void set_zero();

  /// Number of stored entries.
  std::size_t nonzeros() const;

  const std::map<std::size_t, double>& row(std::size_t r) const;

 private:
  std::vector<std::map<std::size_t, double>> rows_;
};

/// LU factorization with partial pivoting of a SparseMatrix.
/// Throws NumericalError if singular to working precision.
class SparseLu {
 public:
  explicit SparseLu(const SparseMatrix& a);

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  std::size_t dimension() const { return lower_.size(); }
  /// Fill-in diagnostic: stored entries in L + U.
  std::size_t factor_nonzeros() const;

 private:
  // Row-major factors; lower_ rows exclude the unit diagonal.
  std::vector<std::map<std::size_t, double>> lower_;
  std::vector<std::map<std::size_t, double>> upper_;
  std::vector<std::size_t> perm_;  // row permutation
};

}  // namespace sldm
