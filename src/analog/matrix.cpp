#include "analog/matrix.h"

#include <cmath>

#include "util/contracts.h"
#include "util/error.h"

namespace sldm {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  SLDM_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  SLDM_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Matrix::set_zero() {
  for (double& v : data_) v = 0.0;
}

LuFactorization::LuFactorization(const Matrix& a) : lu_(a) {
  SLDM_EXPECTS(a.rows() == a.cols());
  SLDM_EXPECTS(a.rows() > 0);
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  double max_pivot = 0.0;
  double min_pivot = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot_row = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot_row = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw NumericalError("singular matrix in LU factorization (column " +
                           std::to_string(k) + ")");
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
    }
    if (k == 0) {
      max_pivot = min_pivot = best;
    } else {
      max_pivot = std::max(max_pivot, best);
      min_pivot = std::min(min_pivot, best);
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
  min_pivot_ratio_ = max_pivot > 0.0 ? min_pivot / max_pivot : 0.0;
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  SLDM_EXPECTS(b.size() == n);
  std::vector<double> x(n);
  // Apply the permutation, then forward substitution (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      x[i] -= lu_(i, j) * x[j];
    }
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) {
      x[ii] -= lu_(ii, j) * x[j];
    }
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

std::vector<double> solve_dense(const Matrix& a, const std::vector<double>& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace sldm
