// Elaboration of a switch-level netlist into an analog circuit.
//
// Every transistor becomes a level-1 MOSFET; every node's lumped
// capacitance (explicit + gate + diffusion, exactly the "C" the delay
// models use) becomes a grounded capacitor; rails become DC sources and
// chip inputs become piecewise-linear sources.  Using the same lumped
// capacitances on both sides keeps the model-vs-simulation comparison
// about the *delay models*, not about parasitic extraction.
#pragma once

#include <unordered_map>
#include <vector>

#include "analog/circuit.h"
#include "analog/transient.h"
#include "netlist/netlist.h"
#include "tech/tech.h"

namespace sldm {

/// A waveform to drive one chip input with.
struct Stimulus {
  NodeId node;
  PwlSource source;
};

/// The elaborated circuit plus the netlist-to-analog node mapping.
class Elaboration {
 public:
  Elaboration(Circuit circuit, std::vector<AnalogNode> node_map)
      : circuit_(std::move(circuit)), node_map_(std::move(node_map)) {}

  const Circuit& circuit() const { return circuit_; }

  /// Analog node corresponding to a netlist node.
  AnalogNode analog(NodeId n) const;

  /// Initial-condition map entry helper: precharged nodes start at
  /// `v`.  Adds ICs for every netlist node marked precharged.
  void apply_precharge(const Netlist& nl, Volts v,
                       TransientOptions& options) const;

 private:
  Circuit circuit_;
  std::vector<AnalogNode> node_map_;
};

/// Elaborates `nl` under `tech`.
///
/// `stimuli` drives input nodes; inputs without a stimulus are held at
/// 0 V.  Preconditions: the netlist passes structural checks well enough
/// to simulate (at least one rail if it has transistors); every stimulus
/// node is marked is_input.
Elaboration elaborate(const Netlist& nl, const Tech& tech,
                      const std::vector<Stimulus>& stimuli);

}  // namespace sldm
