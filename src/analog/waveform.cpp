#include "analog/waveform.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace sldm {

void Waveform::append(Seconds t, Volts v) {
  SLDM_EXPECTS(times_.empty() || t > times_.back());
  times_.push_back(t);
  values_.push_back(v);
}

Seconds Waveform::time(std::size_t i) const {
  SLDM_EXPECTS(i < times_.size());
  return times_[i];
}

Volts Waveform::value(std::size_t i) const {
  SLDM_EXPECTS(i < values_.size());
  return values_[i];
}

Seconds Waveform::t_begin() const {
  SLDM_EXPECTS(!times_.empty());
  return times_.front();
}

Seconds Waveform::t_end() const {
  SLDM_EXPECTS(!times_.empty());
  return times_.back();
}

Volts Waveform::at(Seconds t) const {
  SLDM_EXPECTS(!times_.empty());
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

Volts Waveform::min_value() const {
  SLDM_EXPECTS(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

Volts Waveform::max_value() const {
  SLDM_EXPECTS(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

std::optional<Seconds> Waveform::cross(Volts threshold, Transition dir,
                                       Seconds after) const {
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] < after) continue;
    const Volts v0 = values_[i - 1];
    const Volts v1 = values_[i];
    const bool crossed = dir == Transition::kRise
                             ? (v0 < threshold && v1 >= threshold)
                             : (v0 > threshold && v1 <= threshold);
    if (!crossed) continue;
    const double frac = (threshold - v0) / (v1 - v0);
    const Seconds t =
        times_[i - 1] + frac * (times_[i] - times_[i - 1]);
    if (t >= after) return t;
  }
  return std::nullopt;
}

std::optional<Seconds> Waveform::transition_time(Volts v_lo, Volts v_hi,
                                                 Transition dir,
                                                 Seconds after) const {
  SLDM_EXPECTS(v_hi > v_lo);
  const Volts swing = v_hi - v_lo;
  const Volts v10 = v_lo + 0.1 * swing;
  const Volts v90 = v_lo + 0.9 * swing;
  if (dir == Transition::kRise) {
    const auto t10 = cross(v10, Transition::kRise, after);
    if (!t10) return std::nullopt;
    const auto t90 = cross(v90, Transition::kRise, *t10);
    if (!t90) return std::nullopt;
    return (*t90 - *t10) / 0.8;
  }
  const auto t90 = cross(v90, Transition::kFall, after);
  if (!t90) return std::nullopt;
  const auto t10 = cross(v10, Transition::kFall, *t90);
  if (!t10) return std::nullopt;
  return (*t10 - *t90) / 0.8;
}

std::optional<Seconds> measure_delay(const Waveform& input,
                                     Transition input_dir,
                                     const Waveform& output,
                                     Transition output_dir, Volts v_mid,
                                     Seconds after) {
  const auto t_in = input.cross(v_mid, input_dir, after);
  if (!t_in) return std::nullopt;
  const auto t_out = output.cross(v_mid, output_dir, *t_in);
  if (!t_out) return std::nullopt;
  return *t_out - *t_in;
}

std::optional<Seconds> measure_delay_signed(const Waveform& input,
                                            Transition input_dir,
                                            const Waveform& output,
                                            Transition output_dir,
                                            Volts v_mid, Seconds after) {
  const auto t_in = input.cross(v_mid, input_dir, after);
  if (!t_in) return std::nullopt;
  const auto t_out = output.cross(v_mid, output_dir, after);
  if (!t_out) return std::nullopt;
  return *t_out - *t_in;
}

}  // namespace sldm
