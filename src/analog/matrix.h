// Dense linear algebra for the modified-nodal-analysis solver.
//
// Circuits in this reproduction are small (tens to a few thousand
// unknowns), so a dense LU with partial pivoting is simple, robust, and
// fast enough; the speedup numbers in Table 5 compare the *timing
// analyzer* against this simulator, and a dense kernel only makes that
// comparison conservative.
#pragma once

#include <cstddef>
#include <vector>

namespace sldm {

/// A dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Sets every entry to zero without changing the shape.
  void set_zero();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
///
/// Usage: LuFactorization lu(a); x = lu.solve(b);
/// Throws NumericalError if the matrix is singular to working precision.
class LuFactorization {
 public:
  /// Factors `a` (copied; `a` itself is not modified).
  /// Precondition: a.rows() == a.cols() > 0.
  explicit LuFactorization(const Matrix& a);

  /// Solves A x = b.  Precondition: b.size() == dimension.
  std::vector<double> solve(const std::vector<double>& b) const;

  std::size_t dimension() const { return lu_.rows(); }

  /// An estimate of the smallest pivot magnitude relative to the largest;
  /// useful for conditioning diagnostics in tests.
  double min_pivot_ratio() const { return min_pivot_ratio_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  double min_pivot_ratio_ = 0.0;
};

/// Convenience: solves A x = b in one call.
std::vector<double> solve_dense(const Matrix& a, const std::vector<double>& b);

}  // namespace sldm
