#include "analog/sparse.h"

#include <cmath>

#include "util/contracts.h"
#include "util/error.h"

namespace sldm {

SparseMatrix::SparseMatrix(std::size_t n) : rows_(n) {
  SLDM_EXPECTS(n > 0);
}

void SparseMatrix::add(std::size_t r, std::size_t c, double v) {
  SLDM_EXPECTS(r < rows_.size() && c < rows_.size());
  if (v == 0.0) return;
  rows_[r][c] += v;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  SLDM_EXPECTS(r < rows_.size() && c < rows_.size());
  const auto it = rows_[r].find(c);
  return it == rows_[r].end() ? 0.0 : it->second;
}

void SparseMatrix::set_zero() {
  for (auto& row : rows_) row.clear();
}

std::size_t SparseMatrix::nonzeros() const {
  std::size_t total = 0;
  for (const auto& row : rows_) total += row.size();
  return total;
}

const std::map<std::size_t, double>& SparseMatrix::row(std::size_t r) const {
  SLDM_EXPECTS(r < rows_.size());
  return rows_[r];
}

SparseLu::SparseLu(const SparseMatrix& a) {
  const std::size_t n = a.dimension();
  // Working copy of the active rows.
  std::vector<std::map<std::size_t, double>> work(n);
  for (std::size_t r = 0; r < n; ++r) work[r] = a.row(r);

  lower_.resize(n);
  upper_.resize(n);
  perm_.resize(n);
  // row_of[i]: which working row currently sits at elimination slot i.
  std::vector<std::size_t> row_of(n);
  for (std::size_t i = 0; i < n; ++i) row_of[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: among not-yet-eliminated rows, take the largest
    // magnitude in column k.
    std::size_t best_slot = k;
    double best = 0.0;
    for (std::size_t s = k; s < n; ++s) {
      const auto& row = work[row_of[s]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double mag = std::abs(it->second);
      if (mag > best) {
        best = mag;
        best_slot = s;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw NumericalError("singular sparse matrix (column " +
                           std::to_string(k) + ")");
    }
    std::swap(row_of[k], row_of[best_slot]);
    const std::size_t prow = row_of[k];
    const double pivot = work[prow].at(k);

    for (std::size_t s = k + 1; s < n; ++s) {
      auto& row = work[row_of[s]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double factor = it->second / pivot;
      row.erase(it);
      lower_[s][k] = factor;
      if (factor == 0.0) continue;
      // row -= factor * pivot_row (columns > k).
      for (const auto& [c, v] : work[prow]) {
        if (c <= k) continue;
        auto [pos, inserted] = row.try_emplace(c, 0.0);
        pos->second -= factor * v;
        if (pos->second == 0.0) row.erase(pos);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    perm_[i] = row_of[i];
    // Move the eliminated row into U (entries >= i only remain).
    upper_[i] = std::move(work[row_of[i]]);
  }
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
  const std::size_t n = upper_.size();
  SLDM_EXPECTS(b.size() == n);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 0; i < n; ++i) {
    double v = x[i];
    for (const auto& [c, f] : lower_[i]) v -= f * x[c];
    x[i] = v;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = x[ii];
    double diag = 0.0;
    for (const auto& [c, u] : upper_[ii]) {
      if (c == ii) {
        diag = u;
      } else if (c > ii) {
        v -= u * x[c];
      }
    }
    SLDM_ASSERT(diag != 0.0);
    x[ii] = v / diag;
  }
  return x;
}

std::size_t SparseLu::factor_nonzeros() const {
  std::size_t total = 0;
  for (const auto& row : lower_) total += row.size();
  for (const auto& row : upper_) total += row.size();
  return total;
}

}  // namespace sldm
