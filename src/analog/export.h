// Waveform export for offline inspection/plotting.
//
// CSV: one time column plus one column per selected node, resampled
// onto the union of sample times so external tools get a rectangular
// table.  VCD-style dumps are intentionally out of scope (analog
// values), but the CSV covers the plotting workflow.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analog/transient.h"

namespace sldm {

/// One exported column.
struct WaveformColumn {
  std::string label;
  const Waveform* waveform = nullptr;  ///< non-owning; must outlive export
};

/// Writes a CSV with header "time_ns,<labels...>"; times are the sorted
/// union of all columns' sample times, values linearly interpolated.
/// Precondition: at least one column; all waveforms non-empty.
void write_waveforms_csv(const std::vector<WaveformColumn>& columns,
                         std::ostream& out);

/// File convenience; throws Error if the file cannot be created.
void write_waveforms_csv_file(const std::vector<WaveformColumn>& columns,
                              const std::string& path);

/// Convenience: export selected analog nodes of a transient result.
/// Precondition: nodes/labels parallel and non-empty; nodes in range.
void write_transient_csv(const TransientResult& result,
                         const std::vector<AnalogNode>& nodes,
                         const std::vector<std::string>& labels,
                         std::ostream& out);

/// Digitizing VCD export: each analog waveform becomes a 1-bit VCD
/// signal that is '1' above 70% of `vdd`, '0' below 30%, and 'x' in
/// between -- enough to eyeball switching order in any VCD viewer.
/// Timescale is 1 ps.  Same preconditions as write_waveforms_csv.
void write_waveforms_vcd(const std::vector<WaveformColumn>& columns,
                         Volts vdd, std::ostream& out);

void write_waveforms_vcd_file(const std::vector<WaveformColumn>& columns,
                              Volts vdd, const std::string& path);

}  // namespace sldm
