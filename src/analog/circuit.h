// Analog circuit representation for the mini-SPICE substrate.
//
// This is the circuit-level model the paper's delay estimates are judged
// against.  Elements: linear resistors and grounded/floating capacitors,
// independent (piecewise-linear) voltage sources, and level-1
// (Shichman-Hodges) MOSFETs.  Node 0 is ground.
#pragma once

#include <string>
#include <vector>

#include "tech/tech.h"
#include "util/units.h"

namespace sldm {

/// Index of an analog node.  0 is always ground.
using AnalogNode = std::size_t;
inline constexpr AnalogNode kGround = 0;

/// An independent voltage source value as a piecewise-linear function of
/// time, held constant before the first and after the last breakpoint.
class PwlSource {
 public:
  /// DC source.
  static PwlSource dc(Volts v);
  /// A single edge: holds v0 until t_start, ramps linearly to v1 over
  /// `ramp` (ramp > 0), then holds v1.
  static PwlSource edge(Volts v0, Volts v1, Seconds t_start, Seconds ramp);
  /// Arbitrary breakpoints.  Precondition: non-empty, strictly
  /// increasing times.
  static PwlSource points(std::vector<std::pair<Seconds, Volts>> pts);

  Volts at(Seconds t) const;
  /// Times at which the slope changes; the integrator never steps across
  /// one of these.
  const std::vector<Seconds>& breakpoints() const { return breaks_; }

 private:
  std::vector<Seconds> breaks_;
  std::vector<Volts> values_;
};

struct Resistor {
  AnalogNode a = kGround;
  AnalogNode b = kGround;
  Ohms resistance = 0.0;
};

struct Capacitor {
  AnalogNode a = kGround;
  AnalogNode b = kGround;
  Farads capacitance = 0.0;
};

struct VSource {
  AnalogNode pos = kGround;
  AnalogNode neg = kGround;
  PwlSource value;
};

struct Mosfet {
  /// Electrical parameters (threshold sign distinguishes dep from enh).
  DeviceParams params;
  bool is_p = false;
  AnalogNode drain = kGround;
  AnalogNode gate = kGround;
  AnalogNode source = kGround;
  Meters width = 0.0;
  Meters length = 0.0;
};

/// Operating-point evaluation of a MOSFET: drain current and its partial
/// derivatives with respect to the three terminal voltages.
struct MosfetOp {
  Amperes id = 0.0;  ///< current into the drain terminal
  double d_vg = 0.0;
  double d_vd = 0.0;
  double d_vs = 0.0;
};

/// Level-1 I/V evaluation at terminal voltages (vd, vg, vs).
/// Handles source/drain symmetry and p-type mirroring.
MosfetOp eval_mosfet(const Mosfet& m, Volts vd, Volts vg, Volts vs);

/// The circuit under simulation.
class Circuit {
 public:
  Circuit();

  /// Creates a node.  Names are for diagnostics only and need not be
  /// unique (elaborate() keeps the netlist mapping).
  AnalogNode add_node(std::string name = {});

  std::size_t node_count() const { return names_.size(); }
  const std::string& node_name(AnalogNode n) const;

  void add_resistor(AnalogNode a, AnalogNode b, Ohms r);
  void add_capacitor(AnalogNode a, AnalogNode b, Farads c);
  /// Returns the source's index (used to look up branch current).
  std::size_t add_vsource(AnalogNode pos, AnalogNode neg, PwlSource v);
  void add_mosfet(Mosfet m);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }

 private:
  void check_node(AnalogNode n) const;

  std::vector<std::string> names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace sldm
