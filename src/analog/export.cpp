#include "analog/export.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>

#include "util/contracts.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {

void write_waveforms_csv(const std::vector<WaveformColumn>& columns,
                         std::ostream& out) {
  SLDM_EXPECTS(!columns.empty());
  for (const WaveformColumn& c : columns) {
    SLDM_EXPECTS(c.waveform != nullptr && !c.waveform->empty());
  }

  std::set<Seconds> times;
  for (const WaveformColumn& c : columns) {
    for (std::size_t i = 0; i < c.waveform->size(); ++i) {
      times.insert(c.waveform->time(i));
    }
  }

  out << "time_ns";
  for (const WaveformColumn& c : columns) out << ',' << c.label;
  out << '\n';
  for (Seconds t : times) {
    out << format("%.6f", to_ns(t));
    for (const WaveformColumn& c : columns) {
      out << format(",%.6f", c.waveform->at(t));
    }
    out << '\n';
  }
}

void write_waveforms_csv_file(const std::vector<WaveformColumn>& columns,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot create waveform CSV: " + path);
  write_waveforms_csv(columns, out);
}

namespace {

char digitize(Volts v, Volts vdd) {
  if (v >= 0.7 * vdd) return '1';
  if (v <= 0.3 * vdd) return '0';
  return 'x';
}

}  // namespace

void write_waveforms_vcd(const std::vector<WaveformColumn>& columns,
                         Volts vdd, std::ostream& out) {
  SLDM_EXPECTS(!columns.empty());
  SLDM_EXPECTS(columns.size() <= 90);  // one printable VCD code each
  SLDM_EXPECTS(vdd > 0.0);
  for (const WaveformColumn& c : columns) {
    SLDM_EXPECTS(c.waveform != nullptr && !c.waveform->empty());
  }

  out << "$timescale 1ps $end\n$scope module sldm $end\n";
  // VCD identifier codes: printable chars from '!'.
  std::vector<char> codes;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const char code = static_cast<char>('!' + i);
    codes.push_back(code);
    out << "$var wire 1 " << code << ' ' << columns[i].label << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  std::set<Seconds> times;
  for (const WaveformColumn& c : columns) {
    for (std::size_t i = 0; i < c.waveform->size(); ++i) {
      times.insert(c.waveform->time(i));
    }
  }
  std::vector<char> last(columns.size(), '?');
  for (Seconds t : times) {
    bool stamped = false;
    for (std::size_t i = 0; i < columns.size(); ++i) {
      const char bit = digitize(columns[i].waveform->at(t), vdd);
      if (bit == last[i]) continue;
      if (!stamped) {
        out << '#' << static_cast<long long>(t / 1e-12) << '\n';
        stamped = true;
      }
      out << bit << codes[i] << '\n';
      last[i] = bit;
    }
  }
}

void write_waveforms_vcd_file(const std::vector<WaveformColumn>& columns,
                              Volts vdd, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot create VCD file: " + path);
  write_waveforms_vcd(columns, vdd, out);
}

void write_transient_csv(const TransientResult& result,
                         const std::vector<AnalogNode>& nodes,
                         const std::vector<std::string>& labels,
                         std::ostream& out) {
  SLDM_EXPECTS(!nodes.empty());
  SLDM_EXPECTS(nodes.size() == labels.size());
  std::vector<WaveformColumn> columns;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    SLDM_EXPECTS(nodes[i] < result.waveforms.size());
    columns.push_back({labels[i], &result.waveforms[nodes[i]]});
  }
  write_waveforms_csv(columns, out);
}

}  // namespace sldm
