#include "analog/circuit.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace sldm {

PwlSource PwlSource::dc(Volts v) {
  PwlSource s;
  s.breaks_ = {0.0};
  s.values_ = {v};
  return s;
}

PwlSource PwlSource::edge(Volts v0, Volts v1, Seconds t_start, Seconds ramp) {
  SLDM_EXPECTS(ramp > 0.0);
  SLDM_EXPECTS(t_start >= 0.0);
  PwlSource s;
  s.breaks_ = {t_start, t_start + ramp};
  s.values_ = {v0, v1};
  return s;
}

PwlSource PwlSource::points(std::vector<std::pair<Seconds, Volts>> pts) {
  SLDM_EXPECTS(!pts.empty());
  PwlSource s;
  s.breaks_.reserve(pts.size());
  s.values_.reserve(pts.size());
  for (const auto& [t, v] : pts) {
    SLDM_EXPECTS(s.breaks_.empty() || t > s.breaks_.back());
    s.breaks_.push_back(t);
    s.values_.push_back(v);
  }
  return s;
}

Volts PwlSource::at(Seconds t) const {
  SLDM_ASSERT(!breaks_.empty());
  if (t <= breaks_.front()) return values_.front();
  if (t >= breaks_.back()) return values_.back();
  const auto it = std::upper_bound(breaks_.begin(), breaks_.end(), t);
  const auto hi = static_cast<std::size_t>(it - breaks_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (t - breaks_[lo]) / (breaks_[hi] - breaks_[lo]);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

namespace {

/// Level-1 drain current for an n-type device in normal orientation
/// (vds >= 0).  Returns current and derivatives w.r.t. vgs and vds.
struct NOp {
  double id = 0.0;
  double gm = 0.0;   // dId/dVgs
  double gds = 0.0;  // dId/dVds
};

NOp eval_n(const DeviceParams& p, double aspect, double vgs, double vds) {
  SLDM_ASSERT(vds >= 0.0);
  NOp op;
  const double vov = vgs - p.vt;
  if (vov <= 0.0) {
    return op;  // cutoff
  }
  const double beta = p.kp * aspect;
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    // Triode region.
    const double core = vov * vds - 0.5 * vds * vds;
    op.id = beta * core * clm;
    op.gm = beta * vds * clm;
    op.gds = beta * ((vov - vds) * clm + p.lambda * core);
  } else {
    // Saturation.
    const double core = 0.5 * vov * vov;
    op.id = beta * core * clm;
    op.gm = beta * vov * clm;
    op.gds = beta * p.lambda * core;
  }
  return op;
}

}  // namespace

MosfetOp eval_mosfet(const Mosfet& m, Volts vd, Volts vg, Volts vs) {
  SLDM_EXPECTS(m.width > 0.0 && m.length > 0.0);
  const double aspect = m.width / m.length;

  // Mirror p-type devices into n-type space: negate every terminal
  // voltage and the threshold.  The resulting current is the negative of
  // the physical drain current, while the derivatives carry over.
  double xd = vd;
  double xg = vg;
  double xs = vs;
  DeviceParams p = m.params;
  if (m.is_p) {
    xd = -vd;
    xg = -vg;
    xs = -vs;
    p.vt = -p.vt;
  }

  // Source/drain symmetry: conduct with the lower-potential channel
  // terminal as source.
  const bool swapped = xd < xs;
  const double vhi = swapped ? xs : xd;
  const double vlo = swapped ? xd : xs;
  const NOp n = eval_n(p, aspect, xg - vlo, vhi - vlo);

  // Mirrored-space current into xd and derivatives w.r.t. xd, xg, xs.
  double im;     // current into the mirrored drain terminal
  double d_g;    // dIm/dxg
  double d_d;    // dIm/dxd
  double d_s;    // dIm/dxs
  if (!swapped) {
    im = n.id;
    d_g = n.gm;
    d_d = n.gds;
    d_s = -(n.gm + n.gds);
  } else {
    // eval_n computed the current into xs (acting as drain); the current
    // into xd is its negative.
    im = -n.id;
    d_g = -n.gm;
    d_s = -n.gds;
    d_d = n.gm + n.gds;
  }

  // For p devices I_phys(v) = -I_mirror(-v), so the current flips sign
  // while dI_phys/dv = +dI_mirror/dx (two sign flips cancel).
  MosfetOp op;
  op.id = m.is_p ? -im : im;
  op.d_vg = d_g;
  op.d_vd = d_d;
  op.d_vs = d_s;
  return op;
}

Circuit::Circuit() { names_.push_back("0"); }

AnalogNode Circuit::add_node(std::string name) {
  if (name.empty()) name = "n" + std::to_string(names_.size());
  names_.push_back(std::move(name));
  return names_.size() - 1;
}

const std::string& Circuit::node_name(AnalogNode n) const {
  check_node(n);
  return names_[n];
}

void Circuit::add_resistor(AnalogNode a, AnalogNode b, Ohms r) {
  check_node(a);
  check_node(b);
  SLDM_EXPECTS(a != b);
  SLDM_EXPECTS(r > 0.0);
  resistors_.push_back({a, b, r});
}

void Circuit::add_capacitor(AnalogNode a, AnalogNode b, Farads c) {
  check_node(a);
  check_node(b);
  SLDM_EXPECTS(a != b);
  SLDM_EXPECTS(c > 0.0);
  capacitors_.push_back({a, b, c});
}

std::size_t Circuit::add_vsource(AnalogNode pos, AnalogNode neg,
                                 PwlSource v) {
  check_node(pos);
  check_node(neg);
  SLDM_EXPECTS(pos != neg);
  vsources_.push_back({pos, neg, std::move(v)});
  return vsources_.size() - 1;
}

void Circuit::add_mosfet(Mosfet m) {
  check_node(m.drain);
  check_node(m.gate);
  check_node(m.source);
  SLDM_EXPECTS(m.drain != m.source);
  SLDM_EXPECTS(m.width > 0.0 && m.length > 0.0);
  SLDM_EXPECTS(m.params.kp > 0.0);
  mosfets_.push_back(std::move(m));
}

void Circuit::check_node(AnalogNode n) const {
  SLDM_EXPECTS(n < names_.size());
}

}  // namespace sldm
