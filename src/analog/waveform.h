// Time-series voltage waveforms and the measurements the experiments use:
// threshold-crossing times, 50%-to-50% delays, and transition-time (slope)
// extraction.
#pragma once

#include <optional>
#include <vector>

#include "netlist/types.h"
#include "util/units.h"

namespace sldm {

/// A sampled waveform: strictly increasing times with one value each.
class Waveform {
 public:
  Waveform() = default;

  /// Appends a sample.  Precondition: t strictly greater than the last
  /// sample's time (or the waveform is empty).
  void append(Seconds t, Volts v);

  bool empty() const { return times_.empty(); }
  std::size_t size() const { return times_.size(); }
  Seconds time(std::size_t i) const;
  Volts value(std::size_t i) const;
  Seconds t_begin() const;
  Seconds t_end() const;

  /// Linear interpolation; clamps outside the sampled range.
  Volts at(Seconds t) const;

  Volts min_value() const;
  Volts max_value() const;

  /// First time >= `after` at which the waveform crosses `threshold`
  /// moving in direction `dir` (kRise: from below to >=; kFall: from
  /// above to <=).  Linear interpolation between samples.
  std::optional<Seconds> cross(Volts threshold, Transition dir,
                               Seconds after = 0.0) const;

  /// The transition containing the crossing of `threshold` in direction
  /// `dir` after `after`: measures the 10%..90% traversal of [v_lo, v_hi]
  /// around that edge and returns it scaled to a full-swing equivalent
  /// ramp time (t_10_90 / 0.8).  This is the library's "slope" metric.
  std::optional<Seconds> transition_time(Volts v_lo, Volts v_hi,
                                         Transition dir, Seconds after = 0.0)
      const;

 private:
  std::vector<Seconds> times_;
  std::vector<Volts> values_;
};

/// 50%-crossing delay from an input edge to an output edge.  The output
/// crossing is searched from the input crossing, so the result is
/// non-negative.  Returns nullopt if either waveform never crosses.
std::optional<Seconds> measure_delay(const Waveform& input,
                                     Transition input_dir,
                                     const Waveform& output,
                                     Transition output_dir, Volts v_mid,
                                     Seconds after = 0.0);

/// Signed 50%-crossing delay: both crossings are searched independently
/// from `after`, so a slow input whose receiver switches early yields a
/// negative delay (a real effect the slope model's tables must clamp).
std::optional<Seconds> measure_delay_signed(const Waveform& input,
                                            Transition input_dir,
                                            const Waveform& output,
                                            Transition output_dir,
                                            Volts v_mid, Seconds after = 0.0);

}  // namespace sldm
