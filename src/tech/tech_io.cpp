#include "tech/tech_io.h"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "util/contracts.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {
namespace {

TransistorType type_from_letter(const std::string& s, const std::string& origin,
                                int lineno) {
  if (s == "e" || s == "n") return TransistorType::kNEnhancement;
  if (s == "d") return TransistorType::kNDepletion;
  if (s == "p") return TransistorType::kPEnhancement;
  throw ParseError(origin, lineno, "unknown device type '" + s + "'");
}

}  // namespace

void write_tech(const Tech& tech, std::ostream& out) {
  out << "# sldm technology description\n";
  out << "tech " << tech.name() << " vdd " << format("%.6g", tech.vdd())
      << '\n';
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    if (!tech.has(type)) continue;
    const DeviceParams& p = tech.params(type);
    out << "device " << to_letter(type)
        << format(
               " vt %.6g kp %.6g lambda %.6g cox %.6g cov_w %.6g cj_w %.6g"
               " r_up_sq %.6g r_down_sq %.6g",
               p.vt, p.kp, p.lambda, p.cox, p.cov_w, p.cj_w, p.r_up_sq,
               p.r_down_sq)
        << '\n';
  }
}

void write_tech_file(const Tech& tech, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot create tech file: " + path);
  write_tech(tech, out);
}

Tech read_tech(std::istream& in, const std::string& origin) {
  Tech tech;
  bool have_header = false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto tokens = split_ws(stripped);
    SLDM_ASSERT(!tokens.empty());

    if (tokens[0] == "tech") {
      if (tokens.size() != 4 || tokens[2] != "vdd") {
        throw ParseError(origin, lineno, "expected: tech <name> vdd <volts>");
      }
      const auto vdd = parse_finite_double(tokens[3]);
      if (!vdd || *vdd <= 0.0) throw ParseError(origin, lineno, "bad vdd");
      tech = Tech(tokens[1], *vdd);
      have_header = true;
      continue;
    }

    if (tokens[0] == "device") {
      if (!have_header) {
        throw ParseError(origin, lineno, "device record before tech header");
      }
      if (tokens.size() < 2 || tokens.size() % 2 != 0) {
        throw ParseError(origin, lineno,
                         "device record needs a type and key/value pairs");
      }
      const TransistorType type = type_from_letter(tokens[1], origin, lineno);
      DeviceParams& p = tech.params(type);
      for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
        const auto v = parse_finite_double(tokens[i + 1]);
        if (!v) {
          throw ParseError(origin, lineno, "bad value for " + tokens[i]);
        }
        const std::string& key = tokens[i];
        if (key == "vt") {
          p.vt = *v;
        } else if (key == "kp") {
          p.kp = *v;
        } else if (key == "lambda") {
          p.lambda = *v;
        } else if (key == "cox") {
          p.cox = *v;
        } else if (key == "cov_w") {
          p.cov_w = *v;
        } else if (key == "cj_w") {
          p.cj_w = *v;
        } else if (key == "r_up_sq") {
          p.r_up_sq = *v;
        } else if (key == "r_down_sq") {
          p.r_down_sq = *v;
        } else {
          throw ParseError(origin, lineno, "unknown device field " + key);
        }
      }
      continue;
    }

    throw ParseError(origin, lineno, "unknown record '" + tokens[0] + "'");
  }
  if (!have_header) throw ParseError(origin, lineno, "missing tech header");
  return tech;
}

Tech read_tech_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open tech file: " + path);
  return read_tech(in, path);
}

}  // namespace sldm
