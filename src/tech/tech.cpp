#include "tech/tech.h"

#include <cmath>

#include "util/contracts.h"

namespace sldm {
namespace {

std::size_t type_index(TransistorType t) {
  return static_cast<std::size_t>(t);
}

}  // namespace

Tech::Tech(std::string name, Volts vdd) : name_(std::move(name)), vdd_(vdd) {
  SLDM_EXPECTS(vdd > 0.0);
}

DeviceParams& Tech::params(TransistorType t) { return params_[type_index(t)]; }

const DeviceParams& Tech::params(TransistorType t) const {
  return params_[type_index(t)];
}

Farads Tech::gate_cap(const Transistor& t) const {
  const DeviceParams& p = params(t.type);
  return p.cox * t.width * t.length + 2.0 * p.cov_w * t.width;
}

Farads Tech::diffusion_cap(const Transistor& t) const {
  const DeviceParams& p = params(t.type);
  return p.cj_w * t.width;
}

Farads Tech::node_capacitance(const Netlist& nl, NodeId n) const {
  Farads total = nl.node(n).cap;
  for (DeviceId d : nl.gated_by(n)) {
    total += gate_cap(nl.device(d));
  }
  for (DeviceId d : nl.channels_at(n)) {
    total += diffusion_cap(nl.device(d));
  }
  return total;
}

Ohms Tech::resistance(const Transistor& t, Transition dir) const {
  return resistance_sq(t.type, dir) * (t.length / t.width);
}

Ohms Tech::resistance_sq(TransistorType type, Transition dir) const {
  const DeviceParams& p = params(type);
  const Ohms r = dir == Transition::kRise ? p.r_up_sq : p.r_down_sq;
  SLDM_EXPECTS(r > 0.0);
  return r;
}

void Tech::set_resistance_sq(TransistorType type, Transition dir, Ohms r_sq) {
  SLDM_EXPECTS(r_sq > 0.0);
  DeviceParams& p = params(type);
  if (dir == Transition::kRise) {
    p.r_up_sq = r_sq;
  } else {
    p.r_down_sq = r_sq;
  }
}

Ohms analytic_resistance_sq(const Tech& tech, TransistorType type,
                            Transition dir) {
  const DeviceParams& p = tech.params(type);
  SLDM_EXPECTS(p.kp > 0.0);
  const Volts vdd = tech.vdd();

  // Gate overdrive available for the transition, for a unit W/L device.
  double overdrive = 0.0;
  switch (type) {
    case TransistorType::kNEnhancement:
      // Full drive when discharging; when passing a high the source
      // follows the output, so by the 50% point only Vdd/2 - Vt remains.
      overdrive = (dir == Transition::kFall) ? vdd - p.vt : vdd / 2.0 - p.vt;
      break;
    case TransistorType::kNDepletion:
      // Gate tied to source: constant overdrive |Vt| in both directions.
      overdrive = -p.vt;
      break;
    case TransistorType::kPEnhancement:
      overdrive =
          (dir == Transition::kRise) ? vdd + p.vt : vdd / 2.0 + p.vt;
      break;
  }
  SLDM_EXPECTS(overdrive > 0.0);
  const Amperes idsat = 0.5 * p.kp * overdrive * overdrive;
  // Average resistance over the first half-swing: ~3/4 * Vdd / Idsat
  // (the classic saturation-current estimate).
  return 0.75 * vdd / idsat;
}

void seed_analytic_resistances(Tech& tech) {
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    if (!tech.has(type)) continue;
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      // Depletion loads only pull up in practice, but the analytic value
      // is well-defined both ways, so seed both.
      tech.set_resistance_sq(type, dir,
                             analytic_resistance_sq(tech, type, dir));
    }
  }
}

Tech nmos4() {
  Tech t("nmos4", 5.0);
  // 4-micron E/D nMOS, 1984-era MOSIS-like values.  tox ~ 80 nm.
  const double cox = 3.9 * 8.854e-12 / 80e-9;  // ~4.3e-4 F/m^2
  DeviceParams& enh = t.params(TransistorType::kNEnhancement);
  enh.vt = 1.0;
  enh.kp = 25e-6;
  enh.lambda = 0.02;
  enh.cox = cox;
  enh.cov_w = 3e-10;  // 0.3 fF/um
  enh.cj_w = 4e-10;   // 0.4 fF/um
  DeviceParams& dep = t.params(TransistorType::kNDepletion);
  dep = enh;
  dep.vt = -3.0;
  seed_analytic_resistances(t);
  return t;
}

Tech cmos3() {
  Tech t("cmos3", 5.0);
  const double cox = 3.9 * 8.854e-12 / 50e-9;  // ~6.9e-4 F/m^2
  DeviceParams& n = t.params(TransistorType::kNEnhancement);
  n.vt = 0.8;
  n.kp = 40e-6;
  n.lambda = 0.02;
  n.cox = cox;
  n.cov_w = 2.5e-10;
  n.cj_w = 3.5e-10;
  DeviceParams& p = t.params(TransistorType::kPEnhancement);
  p = n;
  p.vt = -0.8;
  p.kp = 15e-6;
  seed_analytic_resistances(t);
  return t;
}

}  // namespace sldm
