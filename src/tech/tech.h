// Technology description: the electrical parameters that turn a
// dimensionless switch-level netlist into resistances, capacitances, and
// analog device models.
//
// A Tech carries, per transistor type:
//  * level-1 model parameters for the analog simulator (threshold,
//    transconductance, channel-length modulation, gate-oxide and parasitic
//    capacitances), and
//  * effective switch resistances for the delay models, expressed per
//    square (multiply by drawn L/W), one per output transition direction.
//
// Effective resistances start from an analytic estimate
// (see analytic_resistance) and are normally replaced by calibration
// against the analog simulator (src/calib), mirroring how Crystal's
// values were fit from SPICE runs.
#pragma once

#include <array>
#include <string>

#include "netlist/netlist.h"
#include "util/units.h"

namespace sldm {

/// Per-transistor-type electrical parameters.
struct DeviceParams {
  Volts vt = 0.0;        ///< threshold voltage (negative for dep / PMOS)
  double kp = 0.0;       ///< transconductance KP = mu*Cox  [A/V^2]
  double lambda = 0.0;   ///< channel-length modulation  [1/V]
  double cox = 0.0;      ///< gate-oxide capacitance per area  [F/m^2]
  double cov_w = 0.0;    ///< gate-source/drain overlap cap per width  [F/m]
  double cj_w = 0.0;     ///< source/drain junction cap per width  [F/m]
  /// Effective switch resistance per square when the device pulls its
  /// output high / low.  Multiply by L/W for a specific device.
  Ohms r_up_sq = 0.0;
  Ohms r_down_sq = 0.0;
};

/// A named process.
class Tech {
 public:
  /// Constructs with all-zero parameters; use the factory functions
  /// nmos4()/cmos3() or tech_io to obtain a usable process.
  Tech() = default;
  Tech(std::string name, Volts vdd);

  const std::string& name() const { return name_; }
  Volts vdd() const { return vdd_; }
  /// The logic switching threshold used for delay measurement (50% of
  /// swing by convention).
  Volts v_switch() const { return vdd_ / 2.0; }

  DeviceParams& params(TransistorType t);
  const DeviceParams& params(TransistorType t) const;

  /// True if this process has any device of type `t` (kp > 0).
  bool has(TransistorType t) const { return params(t).kp > 0.0; }

  // --- Derived per-device quantities --------------------------------------

  /// Gate capacitance of one transistor: Cox*W*L plus two overlaps.
  Farads gate_cap(const Transistor& t) const;

  /// Diffusion capacitance contributed by one channel terminal.
  Farads diffusion_cap(const Transistor& t) const;

  /// Total lumped capacitance at a node: explicit cap + gate caps of
  /// devices gated by it + diffusion caps of channels touching it.
  /// This is the "C" the paper's models operate on.
  Farads node_capacitance(const Netlist& nl, NodeId n) const;

  /// Effective switch resistance of `t` when its output makes `dir`:
  /// r_sq(type, dir) * L/W.
  Ohms resistance(const Transistor& t, Transition dir) const;

  /// Per-square resistance for a type/direction.
  Ohms resistance_sq(TransistorType type, Transition dir) const;
  void set_resistance_sq(TransistorType type, Transition dir, Ohms r_sq);

 private:
  std::string name_;
  Volts vdd_ = 0.0;
  std::array<DeviceParams, 3> params_{};
};

/// Analytic seed for an effective resistance per square: the average
/// resistance seen while the output traverses half the supply swing,
/// approximated as R = 3/4 * Vdd / Idsat(full gate drive) for a unit
/// (W/L = 1) device.  Returns +inf-free positive value; throws via
/// contract if the device cannot conduct in that direction.
Ohms analytic_resistance_sq(const Tech& tech, TransistorType type,
                            Transition dir);

/// Installs analytic seeds for every device type present in `tech`.
void seed_analytic_resistances(Tech& tech);

/// A 4-micron E/D nMOS process with 1984-era MOSIS-like parameters.
/// Types present: n-enhancement, n-depletion.
Tech nmos4();

/// A 3-micron CMOS process.  Types present: n-enhancement, p-enhancement.
Tech cmos3();

}  // namespace sldm
