// Save/load of technology descriptions as a line-oriented text format, so
// calibrated processes can be persisted next to a design.
//
// Format:
//   tech <name> vdd <volts>
//   device <e|d|p> vt <v> kp <a_per_v2> lambda <per_v> cox <f_per_m2>
//          cov_w <f_per_m> cj_w <f_per_m> r_up_sq <ohm> r_down_sq <ohm>
//   (a device record is one physical line)
// ('#' introduces comments; fields are keyword/value pairs and may appear
// in any order after the leading record keyword.)
#pragma once

#include <iosfwd>
#include <string>

#include "tech/tech.h"

namespace sldm {

/// Writes `tech` in the format above.
void write_tech(const Tech& tech, std::ostream& out);
void write_tech_file(const Tech& tech, const std::string& path);

/// Parses a technology description.  Throws ParseError on malformed input.
Tech read_tech(std::istream& in, const std::string& origin = "<stream>");
Tech read_tech_file(const std::string& path);

}  // namespace sldm
