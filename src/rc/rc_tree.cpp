#include "rc/rc_tree.h"

#include "util/contracts.h"

namespace sldm {

RcTree::RcTree(Farads root_cap) {
  SLDM_EXPECTS(root_cap >= 0.0);
  parent_.push_back(0);
  r_up_.push_back(0.0);
  cap_.push_back(root_cap);
}

std::size_t RcTree::add_node(std::size_t parent, Ohms r, Farads c) {
  check_node(parent);
  SLDM_EXPECTS(r > 0.0);
  SLDM_EXPECTS(c >= 0.0);
  parent_.push_back(parent);
  r_up_.push_back(r);
  cap_.push_back(c);
  return parent_.size() - 1;
}

void RcTree::add_cap(std::size_t node, Farads c) {
  check_node(node);
  SLDM_EXPECTS(c >= 0.0);
  cap_[node] += c;
}

Farads RcTree::subtree_cap(std::size_t node) const {
  check_node(node);
  // Children always have larger indices, so one reverse sweep
  // accumulates subtree sums; here we only need one subtree, so walk
  // descendants directly (indices > node whose ancestor chain passes
  // through node).
  Farads total = 0.0;
  for (std::size_t k = node; k < parent_.size(); ++k) {
    std::size_t a = k;
    while (a > node) a = parent_[a];
    if (a == node) total += cap_[k];
  }
  return total;
}

Farads RcTree::total_cap() const {
  Farads total = 0.0;
  for (Farads c : cap_) total += c;
  return total;
}

Ohms RcTree::path_resistance(std::size_t node) const {
  check_node(node);
  Ohms r = 0.0;
  for (std::size_t a = node; a != 0; a = parent_[a]) r += r_up_[a];
  return r;
}

Ohms RcTree::common_resistance(std::size_t a, std::size_t b) const {
  check_node(a);
  check_node(b);
  // Collect a's ancestor chain, then walk b upward until we hit it; the
  // common resistance is the root->LCA path resistance.
  std::vector<bool> on_a_path(parent_.size(), false);
  for (std::size_t x = a;; x = parent_[x]) {
    on_a_path[x] = true;
    if (x == 0) break;
  }
  std::size_t lca = b;
  while (!on_a_path[lca]) lca = parent_[lca];
  return path_resistance(lca);
}

Seconds RcTree::elmore(std::size_t node) const {
  check_node(node);
  Seconds t = 0.0;
  for (std::size_t k = 0; k < parent_.size(); ++k) {
    if (cap_[k] == 0.0) continue;
    t += common_resistance(node, k) * cap_[k];
  }
  return t;
}

Seconds RcTree::total_time_constant() const {
  Seconds t = 0.0;
  for (std::size_t k = 0; k < parent_.size(); ++k) {
    t += path_resistance(k) * cap_[k];
  }
  return t;
}

RcTree::Bounds RcTree::rph_bounds(std::size_t node, double v) const {
  check_node(node);
  SLDM_EXPECTS(v > 0.0 && v < 1.0);
  const Seconds td = elmore(node);
  const Seconds tp = total_time_constant();
  Bounds b;
  b.lower = td - (1.0 - v) * tp;
  if (b.lower < 0.0) b.lower = 0.0;
  b.upper = td / (1.0 - v);
  SLDM_ENSURES(b.upper >= b.lower);
  return b;
}

Seconds RcTree::delay_50(std::size_t node) const {
  return kLn2 * elmore(node);
}

Seconds RcTree::slope(std::size_t node) const {
  return kSlopeFactor * elmore(node);
}

void RcTree::check_node(std::size_t node) const {
  SLDM_EXPECTS(node < parent_.size());
}

}  // namespace sldm
