// RC tree analysis: Elmore delay and Rubinstein-Penfield-Horowitz bounds.
//
// A stage extracted by the timing analyzer is an RC tree rooted at the
// value source (rail/input/precharged node): tree edges carry the
// effective resistances of the conducting transistors and tree nodes
// carry the lumped node capacitances.  The paper's "distributed RC"
// model evaluates the Elmore delay of this tree; the RPH bounds brace it
// from both sides (Ablation B measures their tightness).
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace sldm {

/// An RC tree.  Node 0 is the root (the driving source); every other
/// node is added with its parent, the resistance of the edge to the
/// parent, and its grounded capacitance.
class RcTree {
 public:
  /// Creates a tree whose root has capacitance `root_cap` (normally 0:
  /// the root is an ideal source).
  explicit RcTree(Farads root_cap = 0.0);

  /// Adds a node under `parent`.  Preconditions: parent already exists;
  /// r > 0; c >= 0.  Returns the new node's index.
  std::size_t add_node(std::size_t parent, Ohms r, Farads c);

  std::size_t node_count() const { return parent_.size(); }

  /// Adds extra capacitance to an existing node (side loads).
  void add_cap(std::size_t node, Farads c);

  /// Total capacitance in the subtree rooted at `node` (inclusive).
  Farads subtree_cap(std::size_t node) const;

  /// Total capacitance of the whole tree.
  Farads total_cap() const;

  /// Path resistance from the root to `node`.
  Ohms path_resistance(std::size_t node) const;

  /// Resistance of the common portion of the root->a and root->b paths
  /// (the classic R_ab of the RPH analysis).
  Ohms common_resistance(std::size_t a, std::size_t b) const;

  /// Elmore delay (first moment of the impulse response) at `node`:
  /// T_D = sum_k R_common(node, k) * C_k.
  Seconds elmore(std::size_t node) const;

  /// T_P = sum_k R_k * C_k  (the RPH "total" time constant; an upper
  /// envelope shared by all nodes).
  Seconds total_time_constant() const;

  /// Bounds on the time for the (normalized, monotone) step response at
  /// `node` to reach fraction `v` of its final value, from Rubinstein,
  /// Penfield & Horowitz, "Signal delay in RC tree networks" (1983):
  ///   1 - x(t) >= (T_D - t) / T_P   =>  t_lower = T_D - (1-v) T_P
  ///   1 - x(t) <= T_D / t           =>  t_upper = T_D / (1-v)
  /// Precondition: 0 < v < 1.
  struct Bounds {
    Seconds lower = 0.0;
    Seconds upper = 0.0;
  };
  Bounds rph_bounds(std::size_t node, double v) const;

  /// The conventional point estimate of 50%-crossing delay derived from
  /// the Elmore time constant: ln(2) * T_D.
  Seconds delay_50(std::size_t node) const;

  /// Full-swing-equivalent transition time of the exponential with time
  /// constant T_D: (t90 - t10)/0.8 = ln(9)/0.8 * T_D.
  Seconds slope(std::size_t node) const;

 private:
  void check_node(std::size_t node) const;

  std::vector<std::size_t> parent_;  // parent_[0] == 0
  std::vector<Ohms> r_up_;           // resistance to parent (0 for root)
  std::vector<Farads> cap_;
};

/// ln(2): time-constant -> 50% delay conversion for an exponential.
inline constexpr double kLn2 = 0.6931471805599453;
/// ln(9)/0.8: time-constant -> full-swing-equivalent transition time.
inline constexpr double kSlopeFactor = 2.746530721670274;

}  // namespace sldm
