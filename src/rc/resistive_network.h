// General resistive networks and effective-resistance computation.
//
// Stages with reconvergent (parallel) conduction paths are not trees;
// their driving-point resistance is computed here from the network
// Laplacian.  Also provides explicit series/parallel combinators used by
// tests as an independent oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace sldm {

/// An undirected network of resistors between integer-indexed terminals.
class ResistiveNetwork {
 public:
  ResistiveNetwork() = default;

  /// Creates a terminal; returns its index.
  std::size_t add_terminal();

  /// Connects two distinct terminals with `r` > 0.
  void add_resistor(std::size_t a, std::size_t b, Ohms r);

  std::size_t terminal_count() const { return terminals_; }
  std::size_t resistor_count() const { return edges_.size(); }

  /// Effective (driving-point) resistance between `a` and `b`: injects a
  /// unit current at `a`, extracts it at `b`, and solves the Laplacian.
  /// Throws NumericalError if a and b are not connected.
  /// Precondition: a != b.
  Ohms effective_resistance(std::size_t a, std::size_t b) const;

 private:
  struct Edge {
    std::size_t a;
    std::size_t b;
    Ohms r;
  };
  std::size_t terminals_ = 0;
  std::vector<Edge> edges_;
};

/// r1 + r2 (series combination).
inline Ohms series(Ohms r1, Ohms r2) { return r1 + r2; }
/// r1 || r2 (parallel combination).
inline Ohms parallel(Ohms r1, Ohms r2) { return r1 * r2 / (r1 + r2); }

}  // namespace sldm
