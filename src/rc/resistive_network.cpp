#include "rc/resistive_network.h"

#include <cmath>

#include "analog/matrix.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {

std::size_t ResistiveNetwork::add_terminal() { return terminals_++; }

void ResistiveNetwork::add_resistor(std::size_t a, std::size_t b, Ohms r) {
  SLDM_EXPECTS(a < terminals_ && b < terminals_);
  SLDM_EXPECTS(a != b);
  SLDM_EXPECTS(r > 0.0);
  edges_.push_back({a, b, r});
}

Ohms ResistiveNetwork::effective_resistance(std::size_t a,
                                            std::size_t b) const {
  SLDM_EXPECTS(a < terminals_ && b < terminals_);
  SLDM_EXPECTS(a != b);
  SLDM_EXPECTS(terminals_ >= 2);

  // Ground terminal b; solve L v = e_a for the remaining terminals; the
  // effective resistance is v_a.  A tiny leak keeps disconnected
  // components nonsingular and detectable (their voltage explodes).
  const std::size_t n = terminals_ - 1;
  auto row_of = [&](std::size_t t) -> std::size_t {
    SLDM_ASSERT(t != b);
    return t < b ? t : t - 1;
  };
  Matrix lap(n, n);
  constexpr double kLeak = 1e-15;
  for (std::size_t i = 0; i < n; ++i) lap(i, i) = kLeak;
  for (const Edge& e : edges_) {
    const double g = 1.0 / e.r;
    if (e.a != b) lap(row_of(e.a), row_of(e.a)) += g;
    if (e.b != b) lap(row_of(e.b), row_of(e.b)) += g;
    if (e.a != b && e.b != b) {
      lap(row_of(e.a), row_of(e.b)) -= g;
      lap(row_of(e.b), row_of(e.a)) -= g;
    }
  }
  std::vector<double> rhs(n, 0.0);
  rhs[row_of(a)] = 1.0;
  const std::vector<double> v = solve_dense(lap, rhs);
  const double r_eff = v[row_of(a)];
  if (!std::isfinite(r_eff) || r_eff > 1e12) {
    throw NumericalError("terminals are not connected");
  }
  SLDM_ENSURES(r_eff > 0.0);
  return r_eff;
}

}  // namespace sldm
