// Calibration of the delay models against the analog simulator -- the
// reproduction of how Crystal's effective resistances and slope tables
// were fit from SPICE runs.
//
// For every (device type, output transition) the library exercises, a
// canonical one-stage circuit is built, simulated, and measured:
//  1. with a near-step input, the effective resistance per square is
//     adjusted so the RC-tree model's 50% delay matches the simulator;
//  2. the input ramp is then swept over a grid of slope ratios and the
//     measured delay / output-slope, normalized by the stage's Elmore
//     time constant, become the slope model's multiplier tables.
#pragma once

#include <vector>

#include "delay/slope_table.h"
#include "gen/builder.h"
#include "tech/tech.h"

namespace sldm {

/// Calibration controls.
struct CalibrationOptions {
  /// Slope-ratio grid for the tables (must be increasing, > 0).  The
  /// top of the grid bounds how slow an input the model can follow
  /// before the table clamps.
  std::vector<double> ratios = {0.05, 0.1,  0.2,  0.5,  1.0, 2.0,
                                4.0,  8.0,  16.0, 32.0, 64.0};
  /// Input edge start time (settling margin before the edge).
  Seconds t_edge = 2e-9;
  /// Lower clamp on measured multipliers (slow inputs can make the
  /// 50%-to-50% delay arbitrarily small or negative; the tables stay
  /// positive).
  double min_multiplier = 0.05;
};

/// One measured calibration curve (feeds the Fig. 1 bench).
struct CalibrationCurve {
  TransistorType type = TransistorType::kNEnhancement;
  Transition dir = Transition::kRise;
  struct Point {
    double rho = 0.0;         ///< input slope / stage Elmore constant
    double delay_mult = 0.0;  ///< measured delay / (ln2 * Elmore)
    double slope_mult = 0.0;  ///< measured out slope / (ln9/.8 * Elmore)
  };
  std::vector<Point> points;
};

/// Everything calibration produces.
struct CalibrationResult {
  Tech tech;          ///< input tech with calibrated effective resistances
  SlopeTables tables;  ///< calibrated (unit entries for unexercised combos)
  std::vector<CalibrationCurve> curves;
};

/// Calibrates `tech` for circuits in logic style `style`.
/// Which entries are calibrated depends on the style:
///  * nMOS: (e, fall), (e, rise: pass-high), (d, rise: load pull-up);
///  * CMOS: (e, fall), (e, rise: pass-high), (p, rise).
/// Throws Error / NumericalError if a canonical measurement fails.
CalibrationResult calibrate(const Tech& tech, Style style,
                            const CalibrationOptions& options = {});

}  // namespace sldm
