#include "calib/calibrate.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analog/elaborate.h"
#include "analog/transient.h"
#include "rc/rc_tree.h"
#include "timing/stage_extract.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

/// A canonical one-stage measurement setup.
struct Canonical {
  Netlist nl;
  NodeId in;          ///< the trigger's gate (a chip input)
  Transition in_dir;  ///< gate transition that fires the stage
  NodeId observe;     ///< stage destination
  Transition out_dir;
  TimingStage ts;
};

/// Finds the unique stage at (observe, out_dir) triggered by `in`.
TimingStage find_stage(const Netlist& nl, NodeId observe, Transition out_dir,
                       NodeId in) {
  const auto stages = stages_to(nl, observe, out_dir);
  std::optional<TimingStage> found;
  for (const TimingStage& ts : stages) {
    if (nl.device(ts.trigger).gate != in) continue;
    if (found) throw Error("canonical stage is not unique");
    found = ts;
  }
  if (!found) throw Error("canonical stage not found");
  return *found;
}

/// The inverter cell: covers (e, fall), (d, rise) for nMOS and
/// (e, fall), (p, rise) for CMOS.
Canonical make_inverter_case(Style style, Transition out_dir) {
  CircuitBuilder b(style);
  Canonical c;
  c.in = b.input("in");
  const NodeId out = b.inverter(c.in, "out");
  b.inverter(out, "obs");  // realistic observation load
  b.netlist().mark_output("out");
  c.observe = out;
  c.out_dir = out_dir;
  c.in_dir = opposite(out_dir);  // inverter: input and output oppose
  c.nl = std::move(b.netlist());
  c.ts = find_stage(c.nl, c.observe, c.out_dir, c.in);
  return c;
}

/// The pass-high cell: an n-enhancement device pulling its source
/// terminal toward Vdd when its gate rises -- covers (e, rise).
Canonical make_pass_high_case(Style style) {
  CircuitBuilder b(style);
  Canonical c;
  c.in = b.input("in");
  const NodeId out = b.node("out");
  const Sizing s = Sizing::standard(style);
  b.netlist().add_transistor(TransistorType::kNEnhancement, c.in, out,
                             b.vdd(), s.pass_w, s.pass_l);
  b.inverter(out, "obs");
  b.netlist().mark_output("out");
  c.observe = out;
  c.out_dir = Transition::kRise;
  c.in_dir = Transition::kRise;
  c.nl = std::move(b.netlist());
  c.ts = find_stage(c.nl, c.observe, c.out_dir, c.in);
  return c;
}

struct Measurement {
  Seconds delay = 0.0;
  Seconds out_slope = 0.0;
};

/// Simulates the canonical cell with an input edge of duration `ramp`
/// and measures the stage delay (50%-to-50%) and the output transition
/// time.  Retries with a longer run if the output never crosses.
Measurement measure(const Canonical& c, const Tech& tech, Seconds ramp,
                    const CalibrationOptions& options, Seconds t_d_guess) {
  SLDM_EXPECTS(ramp > 0.0);
  const Volts vdd = tech.vdd();
  const Volts v0 = c.in_dir == Transition::kRise ? 0.0 : vdd;
  const Volts v1 = vdd - v0;

  Seconds t_stop =
      options.t_edge + ramp + std::max(30.0 * t_d_guess, 10e-9);
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<Stimulus> stimuli;
    stimuli.push_back(
        {c.in, PwlSource::edge(v0, v1, options.t_edge, ramp)});
    const Elaboration elab = elaborate(c.nl, tech, stimuli);
    TransientOptions topt;
    topt.t_stop = t_stop;
    const TransientResult result = simulate(elab.circuit(), topt);

    const Waveform& w_in = result.at(elab.analog(c.in));
    const Waveform& w_out = result.at(elab.analog(c.observe));
    const auto delay = measure_delay_signed(w_in, c.in_dir, w_out, c.out_dir,
                                            vdd / 2.0, options.t_edge / 2.0);
    if (delay) {
      const Volts lo = w_out.min_value();
      const Volts hi = w_out.max_value();
      const auto slope =
          w_out.transition_time(lo, hi, c.out_dir, options.t_edge / 2.0);
      if (slope) {
        return {.delay = *delay, .out_slope = *slope};
      }
    }
    t_stop *= 3.0;
  }
  throw Error("calibration measurement failed: output never crossed");
}

/// Which (type, dir) pairs a style exercises, with their canonical cell.
struct Case {
  TransistorType type;
  Transition dir;
  Canonical canonical;
};

std::vector<Case> canonical_cases(Style style) {
  std::vector<Case> cases;
  cases.push_back({TransistorType::kNEnhancement, Transition::kFall,
                   make_inverter_case(style, Transition::kFall)});
  cases.push_back({TransistorType::kNEnhancement, Transition::kRise,
                   make_pass_high_case(style)});
  if (style == Style::kNmos) {
    cases.push_back({TransistorType::kNDepletion, Transition::kRise,
                     make_inverter_case(style, Transition::kRise)});
  } else {
    cases.push_back({TransistorType::kPEnhancement, Transition::kRise,
                     make_inverter_case(style, Transition::kRise)});
  }
  return cases;
}

}  // namespace

CalibrationResult calibrate(const Tech& tech, Style style,
                            const CalibrationOptions& options) {
  SLDM_EXPECTS(!options.ratios.empty());
  SLDM_EXPECTS(std::is_sorted(options.ratios.begin(), options.ratios.end()));
  SLDM_EXPECTS(options.ratios.front() > 0.0);

  CalibrationResult result;
  result.tech = tech;
  result.tables = SlopeTables::unit();

  for (Case& c : canonical_cases(style)) {
    // --- 1. Effective resistance from a near-step input. ---------------
    Stage stage0 = make_stage(c.canonical.nl, result.tech, c.canonical.ts,
                              /*input_slope=*/0.0);
    Seconds t_d = stage_elmore(stage0);
    const Measurement step =
        measure(c.canonical, result.tech, std::max(1e-12, 0.01 * t_d),
                options, t_d);
    const double r_correction = step.delay / (kLn2 * t_d);
    SLDM_ASSERT(r_correction > 0.0);
    result.tech.set_resistance_sq(
        c.type, c.dir,
        result.tech.resistance_sq(c.type, c.dir) * r_correction);

    // Recompute the stage with the calibrated resistance.
    stage0 = make_stage(c.canonical.nl, result.tech, c.canonical.ts, 0.0);
    t_d = stage_elmore(stage0);

    // --- 2. Slope-ratio sweep -> multiplier tables. ---------------------
    CalibrationCurve curve;
    curve.type = c.type;
    curve.dir = c.dir;
    std::vector<double> xs;
    std::vector<double> dm;
    std::vector<double> sm;
    for (double rho : options.ratios) {
      const Seconds ramp = rho * t_d;
      const Measurement m =
          measure(c.canonical, result.tech, ramp, options, t_d);
      const double delay_mult =
          std::max(options.min_multiplier, m.delay / (kLn2 * t_d));
      const double slope_mult = std::max(
          options.min_multiplier, m.out_slope / (kSlopeFactor * t_d));
      curve.points.push_back({rho, delay_mult, slope_mult});
      xs.push_back(rho);
      dm.push_back(delay_mult);
      sm.push_back(slope_mult);
    }
    result.curves.push_back(curve);
    result.tables.set(c.type, c.dir,
                      SlopeEntry{PiecewiseLinear(xs, dm),
                                 PiecewiseLinear(std::move(xs), sm)});
  }
  return result;
}

}  // namespace sldm
