// Tests for the address decoder and PLA generators, including timing
// propagation through them.
#include <gtest/gtest.h>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "netlist/checks.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/contracts.h"

namespace sldm {
namespace {

TEST(Decoder, StructureScalesExponentially) {
  const GeneratedCircuit d2 = address_decoder(Style::kNmos, 2);
  const GeneratedCircuit d4 = address_decoder(Style::kNmos, 4);
  EXPECT_TRUE(all_ok(check(d2.netlist)));
  EXPECT_TRUE(all_ok(check(d4.netlist)));
  // nMOS: 2 inverters per address bit (4 devices) + per row: bits
  // pull-downs + 1 load; + output inverter (2).
  const auto rows = [](int bits) { return 1u << bits; };
  EXPECT_EQ(d2.netlist.device_count(), 2u * 4u + rows(2) * 3u + 2u);
  EXPECT_EQ(d4.netlist.device_count(), 4u * 4u + rows(4) * 5u + 2u);
}

TEST(Decoder, AddressLinesCarryHeavyFanout) {
  const GeneratedCircuit g = address_decoder(Style::kCmos, 4);
  // Each true/complement line gates one row device in half the rows
  // (CMOS: two devices per NOR input).
  const NodeId atrue0 = *g.netlist.find_node("atrue0");
  EXPECT_GE(g.netlist.gated_by(atrue0).size(), 8u);
}

TEST(Decoder, HoldsOtherAddressBitsLow) {
  const GeneratedCircuit g = address_decoder(Style::kNmos, 3);
  EXPECT_EQ(g.low_inputs.size(), 2u);
  EXPECT_TRUE(g.netlist.node(g.input).is_input);
  EXPECT_TRUE(g.netlist.node(g.output).is_output);
}

TEST(Decoder, TimingPropagatesToRowOutput) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = address_decoder(Style::kNmos, 3);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  // a0 rise -> abar0 fall -> row1 rise -> out fall.
  const NodeId row1 = *g.netlist.find_node("row1");
  const auto rise = an.arrival(row1, Transition::kRise);
  ASSERT_TRUE(rise.has_value());
  const auto out = an.arrival(g.output, Transition::kFall);
  ASSERT_TRUE(out.has_value());
  EXPECT_GT(out->time, rise->time);
}

TEST(Decoder, ParameterValidation) {
  EXPECT_THROW(address_decoder(Style::kNmos, 0), ContractViolation);
  EXPECT_THROW(address_decoder(Style::kNmos, 9), ContractViolation);
}

TEST(Pla, DeterministicInSeed) {
  const GeneratedCircuit a = pla(Style::kCmos, 4, 8, 3, 11);
  const GeneratedCircuit b = pla(Style::kCmos, 4, 8, 3, 11);
  EXPECT_EQ(a.netlist.device_count(), b.netlist.device_count());
  EXPECT_TRUE(all_ok(check(a.netlist)));
}

TEST(Pla, OutputZeroAlwaysReachableFromInputZero) {
  // Product 0 is pinned to !a0 and output 0 includes product 0, so the
  // timing event a0-rise must reach output o0 for any seed.
  const Tech tech = nmos4();
  const RcTreeModel model;
  for (std::uint64_t seed : {1u, 2u, 3u, 17u, 99u}) {
    const GeneratedCircuit g = pla(Style::kNmos, 4, 6, 2, seed);
    TimingAnalyzer an(g.netlist, tech, model);
    an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    an.run();
    const bool rise = an.arrival(g.output, Transition::kRise).has_value();
    const bool fall = an.arrival(g.output, Transition::kFall).has_value();
    EXPECT_TRUE(rise || fall) << "seed " << seed;
  }
}

TEST(Pla, EveryProductHasAtLeastOneLiteral) {
  const GeneratedCircuit g = pla(Style::kNmos, 3, 10, 2, 5);
  for (int p = 0; p < 10; ++p) {
    const auto node = g.netlist.find_node("p" + std::to_string(p));
    ASSERT_TRUE(node.has_value());
    // An nMOS NOR row with k literals has k pull-downs + 1 load
    // channel-connected at the row node.
    EXPECT_GE(g.netlist.channels_at(*node).size(), 2u) << "product " << p;
  }
}

TEST(Pla, ParameterValidation) {
  EXPECT_THROW(pla(Style::kNmos, 0, 1, 1, 1), ContractViolation);
  EXPECT_THROW(pla(Style::kNmos, 1, 0, 1, 1), ContractViolation);
  EXPECT_THROW(pla(Style::kNmos, 1, 1, 0, 1), ContractViolation);
}

TEST(SramColumn, StructureAndRoles) {
  const GeneratedCircuit g = sram_read_column(Style::kNmos, 8);
  EXPECT_TRUE(all_ok(check(g.netlist)));
  // 8 access transistors + 1 cell pull-down + 2 output inverter devices.
  EXPECT_EQ(g.netlist.device_count(), 11u);
  const NodeId bit = *g.netlist.find_node("bit");
  EXPECT_TRUE(g.netlist.node(bit).is_precharged);
  EXPECT_EQ(g.netlist.channels_at(bit).size(), 8u);
  EXPECT_EQ(g.low_inputs.size(), 7u);
  EXPECT_THROW(sram_read_column(Style::kNmos, 0), ContractViolation);
}

TEST(SramColumn, BitLineDischargeStageExists) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = sram_read_column(Style::kNmos, 4);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const NodeId bit = *g.netlist.find_node("bit");
  const auto fall = an.arrival(bit, Transition::kFall);
  ASSERT_TRUE(fall.has_value());
  // Discharge path: access transistor + cell pull-down (2 devices).
  const auto path = an.critical_path(bit, Transition::kFall);
  EXPECT_EQ(path.back().node, bit);
  // And the observer output rises after the bit line falls.
  const auto out = an.arrival(g.output, Transition::kRise);
  ASSERT_TRUE(out.has_value());
  EXPECT_GT(out->time, fall->time);
}

TEST(SramColumn, MoreRowsMeansSlowerRead) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  Seconds prev = 0.0;
  for (int rows : {2, 8, 32}) {
    const GeneratedCircuit g = sram_read_column(Style::kNmos, rows);
    TimingAnalyzer an(g.netlist, tech, model);
    an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    an.run();
    const auto out = an.worst_arrival(true);
    ASSERT_TRUE(out.has_value()) << rows;
    EXPECT_GT(out->time, prev) << rows;
    prev = out->time;
  }
}

}  // namespace
}  // namespace sldm
