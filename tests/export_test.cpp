// Tests for waveform CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "analog/export.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/strings.h"

namespace sldm {
namespace {

Waveform make_ramp(Seconds t0, Seconds t1, Volts v0, Volts v1) {
  Waveform w;
  w.append(t0, v0);
  w.append(t1, v1);
  return w;
}

TEST(Export, HeaderAndRowShape) {
  const Waveform a = make_ramp(0.0, 1e-9, 0.0, 1.0);
  const Waveform b = make_ramp(0.0, 1e-9, 5.0, 0.0);
  std::ostringstream os;
  write_waveforms_csv({{"a", &a}, {"b", &b}}, os);
  const auto lines = split(trim(os.str()), '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "time_ns,a,b");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(split(lines[i], ',').size(), 3u) << lines[i];
  }
}

TEST(Export, UnionOfSampleTimes) {
  // a sampled at {0,2}, b at {0,1,2}: rows at 0, 1, 2 ns.
  Waveform a = make_ramp(0.0, 2e-9, 0.0, 2.0);
  Waveform b;
  b.append(0.0, 0.0);
  b.append(1e-9, 1.0);
  b.append(2e-9, 0.0);
  std::ostringstream os;
  write_waveforms_csv({{"a", &a}, {"b", &b}}, os);
  const auto lines = split(trim(os.str()), '\n');
  ASSERT_EQ(lines.size(), 4u);
  // a is interpolated at 1 ns: 1.0.
  const auto row1 = split(lines[2], ',');
  EXPECT_EQ(row1[0], "1.000000");
  EXPECT_EQ(row1[1], "1.000000");
  EXPECT_EQ(row1[2], "1.000000");
}

TEST(Export, PreconditionsEnforced) {
  std::ostringstream os;
  EXPECT_THROW(write_waveforms_csv({}, os), ContractViolation);
  const Waveform empty;
  EXPECT_THROW(write_waveforms_csv({{"x", &empty}}, os), ContractViolation);
  EXPECT_THROW(write_waveforms_csv({{"x", nullptr}}, os), ContractViolation);
}

TEST(Export, TransientConvenienceChecksShapes) {
  TransientResult result;
  result.waveforms.resize(2);
  result.waveforms[0].append(0.0, 0.0);
  result.waveforms[1].append(0.0, 1.0);
  std::ostringstream os;
  write_transient_csv(result, {0, 1}, {"gnd", "x"}, os);
  EXPECT_NE(os.str().find("time_ns,gnd,x"), std::string::npos);
  EXPECT_THROW(write_transient_csv(result, {0}, {"a", "b"}, os),
               ContractViolation);
  EXPECT_THROW(write_transient_csv(result, {5}, {"a"}, os),
               ContractViolation);
  EXPECT_THROW(write_transient_csv(result, {}, {}, os), ContractViolation);
}

TEST(ExportVcd, HeaderDeclaresSignals) {
  const Waveform a = make_ramp(0.0, 1e-9, 0.0, 5.0);
  std::ostringstream os;
  write_waveforms_vcd({{"clk", &a}}, 5.0, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(s.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
}

TEST(ExportVcd, DigitizesWithThresholds) {
  // 0 V -> '0', 5 V -> '1', and the midpoint region -> 'x'.
  Waveform a;
  a.append(0.0, 0.0);
  a.append(1e-9, 2.5);
  a.append(2e-9, 5.0);
  std::ostringstream os;
  write_waveforms_vcd({{"n", &a}}, 5.0, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("0!"), std::string::npos);
  EXPECT_NE(s.find("x!"), std::string::npos);
  EXPECT_NE(s.find("1!"), std::string::npos);
  // Change at 1 ns = timestamp #1000 (1 ps units).
  EXPECT_NE(s.find("#1000"), std::string::npos);
}

TEST(ExportVcd, OnlyChangesAreDumped) {
  // A constant-high waveform dumps exactly one value change.
  Waveform a;
  a.append(0.0, 5.0);
  a.append(1e-9, 5.0);
  a.append(2e-9, 5.0);
  std::ostringstream os;
  write_waveforms_vcd({{"vdd", &a}}, 5.0, os);
  const std::string s = os.str();
  std::size_t count = 0;
  for (std::size_t pos = s.find("1!"); pos != std::string::npos;
       pos = s.find("1!", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(ExportVcd, Preconditions) {
  const Waveform a = make_ramp(0.0, 1e-9, 0.0, 5.0);
  std::ostringstream os;
  EXPECT_THROW(write_waveforms_vcd({}, 5.0, os), ContractViolation);
  EXPECT_THROW(write_waveforms_vcd({{"a", &a}}, 0.0, os), ContractViolation);
  EXPECT_THROW(write_waveforms_vcd_file({{"a", &a}}, 5.0,
                                        "/nonexistent/dir/x.vcd"),
               Error);
}

TEST(Export, FileErrorsSurface) {
  const Waveform a = make_ramp(0.0, 1e-9, 0.0, 1.0);
  EXPECT_THROW(
      write_waveforms_csv_file({{"a", &a}}, "/nonexistent/dir/x.csv"),
      Error);
}

}  // namespace
}  // namespace sldm
