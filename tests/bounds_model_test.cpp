// Tests for the RPH bounds-based delay model.
#include <gtest/gtest.h>

#include "delay/bounds.h"
#include "delay/rctree.h"
#include "rc/rc_tree.h"

namespace sldm {
namespace {

Stage chain_stage(int n, Ohms r = 10e3, Farads c = 50e-15) {
  Stage s;
  s.output_dir = Transition::kFall;
  for (int i = 0; i < n; ++i) {
    s.elements.push_back(
        {.type = TransistorType::kNEnhancement, .resistance = r, .cap = c});
  }
  return s;
}

TEST(BoundsModel, Names) {
  EXPECT_EQ(RphBoundsModel(RphBoundsModel::Mode::kUpper).name(), "rph-upper");
  EXPECT_EQ(RphBoundsModel(RphBoundsModel::Mode::kLower).name(), "rph-lower");
}

TEST(BoundsModel, BracketsTheElmoreEstimate) {
  const RphBoundsModel upper(RphBoundsModel::Mode::kUpper);
  const RphBoundsModel lower(RphBoundsModel::Mode::kLower);
  const RcTreeModel point;
  for (int n : {1, 2, 4, 8}) {
    const Stage s = chain_stage(n);
    EXPECT_LE(lower.estimate(s).delay, point.estimate(s).delay) << n;
    EXPECT_GE(upper.estimate(s).delay, point.estimate(s).delay) << n;
  }
}

TEST(BoundsModel, SingleSectionClassicValues) {
  // One RC section, T_D = T_P = RC: lower(0.5) = RC/2, upper(0.5) = 2RC.
  const Stage s = chain_stage(1, 10e3, 100e-15);
  const Seconds rc = 10e3 * 100e-15;
  EXPECT_NEAR(RphBoundsModel(RphBoundsModel::Mode::kLower).estimate(s).delay,
              0.5 * rc, 1e-15);
  EXPECT_NEAR(RphBoundsModel(RphBoundsModel::Mode::kUpper).estimate(s).delay,
              2.0 * rc, 1e-15);
}

TEST(BoundsModel, OutputSlopesArePositive) {
  for (const auto mode :
       {RphBoundsModel::Mode::kUpper, RphBoundsModel::Mode::kLower}) {
    const RphBoundsModel m(mode);
    for (int n : {1, 3, 6}) {
      EXPECT_GT(m.estimate(chain_stage(n)).output_slope, 0.0);
    }
  }
}

TEST(BoundsModel, UpperScalesLinearlyWithRc) {
  const RphBoundsModel upper(RphBoundsModel::Mode::kUpper);
  const Stage a = chain_stage(3, 10e3, 50e-15);
  const Stage b = chain_stage(3, 20e3, 50e-15);
  EXPECT_NEAR(upper.estimate(b).delay, 2.0 * upper.estimate(a).delay, 1e-15);
}

TEST(BoundsModel, UsableInsideTheAnalyzerConservatively) {
  // As a DelayModel, the upper-bound model must produce arrivals no
  // earlier than the point-estimate model on the same circuit.
  // (Checked at the interface level here; integration covers circuits.)
  const RphBoundsModel upper(RphBoundsModel::Mode::kUpper);
  const RcTreeModel point;
  const Stage s = chain_stage(5);
  EXPECT_GT(upper.estimate(s).delay / point.estimate(s).delay, 1.0);
}

}  // namespace
}  // namespace sldm
