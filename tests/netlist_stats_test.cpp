// Tests for the netlist census and the unit-delay baseline model.
#include <gtest/gtest.h>

#include "delay/unit.h"
#include "gen/generators.h"
#include "netlist/stats.h"
#include "util/contracts.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

TEST(NetlistStats, CountsInverterChain) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 1);
  const NetlistStats s = compute_stats(g.netlist);
  EXPECT_EQ(s.devices, 6u);
  EXPECT_EQ(s.devices_by_type[static_cast<std::size_t>(
                TransistorType::kNEnhancement)],
            3u);
  EXPECT_EQ(s.devices_by_type[static_cast<std::size_t>(
                TransistorType::kNDepletion)],
            3u);
  EXPECT_EQ(s.inputs, 1u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.power_rails, 1u);
  EXPECT_EQ(s.ground_rails, 1u);
  EXPECT_EQ(s.precharged, 0u);
}

TEST(NetlistStats, AspectRangeAndFanout) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 4);
  const NetlistStats s = compute_stats(g.netlist);
  // nMOS sizing: pull-down 8/4 = 2.0, load 4/8 = 0.5.
  EXPECT_DOUBLE_EQ(s.min_aspect, 0.5);
  EXPECT_DOUBLE_EQ(s.max_aspect, 2.0);
  // s1 drives its own load's gate + 3 fanout inverters (each 2 gates in
  // nMOS? load gate is tied to its own output) -> at least 4 gates.
  EXPECT_GE(s.max_gate_fanout, 4u);
}

TEST(NetlistStats, ExplicitCapSummed) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  nl.add_cap(a, 5 * fF);
  nl.add_cap(b, 7 * fF);
  const NetlistStats s = compute_stats(nl);
  EXPECT_NEAR(s.explicit_cap_total, 12 * fF, 1e-21);
  EXPECT_EQ(s.devices, 0u);
  EXPECT_DOUBLE_EQ(s.min_aspect, 0.0);
}

TEST(NetlistStats, RenderingMentionsEverything) {
  const GeneratedCircuit g = precharged_bus(Style::kNmos, 2);
  const std::string text = to_string(compute_stats(g.netlist));
  EXPECT_NE(text.find("nodes:"), std::string::npos);
  EXPECT_NE(text.find("precharged"), std::string::npos);
  EXPECT_NE(text.find("fanout"), std::string::npos);
}

TEST(UnitDelayModel, ConstantRegardlessOfStage) {
  const UnitDelayModel model(2e-9);
  Stage small;
  small.output_dir = Transition::kFall;
  small.elements.push_back(
      {.type = TransistorType::kNEnhancement, .resistance = 1e3,
       .cap = 1e-15});
  Stage big = small;
  for (int i = 0; i < 7; ++i) big.elements.push_back(big.elements[0]);
  big.elements.back().cap = 1e-12;
  EXPECT_DOUBLE_EQ(model.estimate(small).delay, 2e-9);
  EXPECT_DOUBLE_EQ(model.estimate(big).delay, 2e-9);
  EXPECT_DOUBLE_EQ(model.estimate(big).output_slope, 2e-9);
  EXPECT_EQ(model.name(), "unit-delay");
  EXPECT_DOUBLE_EQ(model.unit(), 2e-9);
}

TEST(UnitDelayModel, StillValidatesTheStage) {
  const UnitDelayModel model(1e-9);
  Stage empty;
  EXPECT_THROW(model.estimate(empty), ContractViolation);
  EXPECT_THROW(UnitDelayModel(0.0), ContractViolation);
}

}  // namespace
}  // namespace sldm
