// Cross-validation of the analytic RC machinery against the transient
// simulator on randomly generated *linear* RC trees (no transistors):
// the simulated 50% crossing must land inside the RPH bounds (they are
// provable for exactly this circuit class) and near ln2 * Elmore.
#include <gtest/gtest.h>

#include <random>

#include "analog/transient.h"
#include "rc/rc_tree.h"
#include "util/units.h"

namespace sldm {
namespace {

struct RandomTree {
  RcTree tree;
  Circuit circuit;
  std::vector<AnalogNode> analog_of;  // tree node -> analog node
  AnalogNode source = kGround;
};

/// Builds a random RC tree (as both an RcTree and an analog circuit
/// driven by a step source at the root).
RandomTree build(std::uint64_t seed, int nodes) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> r_dist(1e3, 20e3);
  std::uniform_real_distribution<double> c_dist(10e-15, 200e-15);

  RandomTree out;
  out.source = out.circuit.add_node("src");
  out.circuit.add_vsource(out.source, kGround,
                          PwlSource::edge(0.0, 1.0, 1e-10, 1e-12));
  out.analog_of.push_back(out.source);  // tree root == driven source

  for (int i = 1; i <= nodes; ++i) {
    // Pick a random existing tree node as parent.
    std::uniform_int_distribution<std::size_t> pick(
        0, out.tree.node_count() - 1);
    const std::size_t parent = pick(rng);
    const double r = r_dist(rng);
    const double c = c_dist(rng);
    const std::size_t t = out.tree.add_node(parent, r, c);
    const AnalogNode a = out.circuit.add_node("n" + std::to_string(t));
    out.circuit.add_resistor(out.analog_of[parent], a, r);
    out.circuit.add_capacitor(a, kGround, c);
    out.analog_of.push_back(a);
  }
  return out;
}

class RcTreeValidation : public ::testing::TestWithParam<int> {};

TEST_P(RcTreeValidation, SimulatedCrossingInsideRphBounds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  RandomTree rt = build(seed * 7919u + 3u, 4 + GetParam() % 6);

  TransientOptions opt;
  opt.t_stop = 40.0 * rt.tree.total_time_constant() + 5e-9;
  opt.dv_max = 0.02;
  const TransientResult sim = simulate(rt.circuit, opt);

  for (std::size_t t = 1; t < rt.tree.node_count(); ++t) {
    const Waveform& w = sim.at(rt.analog_of[t]);
    const auto cross = w.cross(0.5, Transition::kRise);
    ASSERT_TRUE(cross.has_value()) << "node " << t << " seed " << seed;
    const Seconds measured = *cross - 1e-10;  // subtract the edge launch

    const auto bounds = rt.tree.rph_bounds(t, 0.5);
    EXPECT_GE(measured, bounds.lower - 0.02 * bounds.upper)
        << "node " << t << " seed " << seed;
    EXPECT_LE(measured, bounds.upper * 1.02)
        << "node " << t << " seed " << seed;

    // Gupta/Boyd: for RC trees under a step, the 50% crossing (median
    // of the impulse response) never exceeds the Elmore constant (its
    // mean).  Check that provable ordering with a small numerical
    // margin.
    EXPECT_LE(measured, rt.tree.elmore(t) * 1.02)
        << "node " << t << " seed " << seed;
  }

  // For the dominant (largest-Elmore) node, the single-pole point
  // estimate ln2*T_D is a good prediction; near-source nodes respond
  // faster than single-pole, so only the dominant node is checked.
  std::size_t dominant = 1;
  for (std::size_t t = 2; t < rt.tree.node_count(); ++t) {
    if (rt.tree.elmore(t) > rt.tree.elmore(dominant)) dominant = t;
  }
  const Waveform& wd = sim.at(rt.analog_of[dominant]);
  const auto cross_d = wd.cross(0.5, Transition::kRise);
  ASSERT_TRUE(cross_d.has_value());
  EXPECT_NEAR((*cross_d - 1e-10) / rt.tree.delay_50(dominant), 1.0, 0.45)
      << "dominant node " << dominant << " seed " << seed;
}

TEST_P(RcTreeValidation, LeafSlopeMatchesSinglePoleEstimate) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  RandomTree rt = build(seed * 104729u + 11u, 3);

  TransientOptions opt;
  opt.t_stop = 40.0 * rt.tree.total_time_constant() + 5e-9;
  opt.dv_max = 0.02;
  const TransientResult sim = simulate(rt.circuit, opt);

  // Deepest node: the single-pole transition-time estimate
  // (ln9/0.8 * Elmore) should be within ~40% of the measured value.
  const std::size_t leaf = rt.tree.node_count() - 1;
  const Waveform& w = sim.at(rt.analog_of[leaf]);
  const auto measured = w.transition_time(0.0, 1.0, Transition::kRise);
  ASSERT_TRUE(measured.has_value());
  EXPECT_NEAR(*measured / rt.tree.slope(leaf), 1.0, 0.4) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcTreeValidation, ::testing::Range(0, 12));

}  // namespace
}  // namespace sldm
