// Tests for the dense LU solver underpinning both the MNA engine and the
// Laplacian-based effective-resistance computation.
#include <gtest/gtest.h>

#include <random>

#include "analog/matrix.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

TEST(Matrix, ShapeAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 4.5;
  EXPECT_DOUBLE_EQ(m(1, 2), 4.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  m.set_zero();
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m(0, 3), ContractViolation);
}

TEST(Lu, SolvesKnown2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto x = solve_dense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolvesIdentity) {
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) a(i, i) = 1.0;
  const auto x = solve_dense(a, {1.0, 2.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
  EXPECT_NEAR(x[2], 3.0, 1e-14);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = solve_dense(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(LuFactorization lu(a), NumericalError);
}

TEST(Lu, ZeroMatrixThrows) {
  Matrix a(3, 3);
  EXPECT_THROW(LuFactorization lu(a), NumericalError);
}

TEST(Lu, NonSquareRejected) {
  Matrix a(2, 3);
  EXPECT_THROW(LuFactorization lu(a), ContractViolation);
}

TEST(Lu, WrongRhsSizeRejected) {
  Matrix a(2, 2);
  a(0, 0) = a(1, 1) = 1.0;
  const LuFactorization lu(a);
  EXPECT_THROW(lu.solve({1.0}), ContractViolation);
}

TEST(Lu, ReusableForMultipleRhs) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(1, 1) = 2.0;
  const LuFactorization lu(a);
  EXPECT_NEAR(lu.solve({4.0, 2.0})[0], 1.0, 1e-14);
  EXPECT_NEAR(lu.solve({8.0, 6.0})[1], 3.0, 1e-14);
}

TEST(Lu, MinPivotRatioReflectsConditioning) {
  Matrix good(2, 2);
  good(0, 0) = good(1, 1) = 1.0;
  EXPECT_NEAR(LuFactorization(good).min_pivot_ratio(), 1.0, 1e-12);
  Matrix skewed(2, 2);
  skewed(0, 0) = 1.0;
  skewed(1, 1) = 1e-9;
  EXPECT_LT(LuFactorization(skewed).min_pivot_ratio(), 1e-8);
}

// Property: random diagonally dominant systems solve to residual ~ 0.
class LuRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomProperty, ResidualIsTiny) {
  const int n = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 7919u + 13u);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
      if (i == j) continue;
      a(i, j) = dist(rng);
      row_sum += std::abs(a(i, j));
    }
    a(i, i) = row_sum + 1.0;  // strict diagonal dominance
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (double& v : b) v = dist(rng);

  const auto x = solve_dense(a, b);
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    double r = -b[i];
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
      r += a(i, j) * x[j];
    }
    EXPECT_NEAR(r, 0.0, 1e-9) << "row " << i << " of n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace sldm
