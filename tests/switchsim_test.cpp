// Tests for the switch-level logic simulator: gate truth tables in both
// logic styles, strength resolution, dynamic charge, unknowns, and the
// bridge into value-aware timing analysis.
#include <gtest/gtest.h>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "switchsim/simulator.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

TEST(Logic, ResolveAndNames) {
  EXPECT_EQ(resolve(Logic::k0, Logic::k0), Logic::k0);
  EXPECT_EQ(resolve(Logic::k1, Logic::k1), Logic::k1);
  EXPECT_EQ(resolve(Logic::k0, Logic::k1), Logic::kX);
  EXPECT_EQ(resolve(Logic::kX, Logic::kX), Logic::kX);
  EXPECT_EQ(to_char(Logic::k0), '0');
  EXPECT_EQ(to_char(Logic::k1), '1');
  EXPECT_EQ(to_char(Logic::kX), 'x');
  EXPECT_EQ(to_string(Strength::kWeak), "weak");
  EXPECT_TRUE(stronger(Strength::kDriven, Strength::kWeak));
  EXPECT_EQ(weaker_of(Strength::kDriven, Strength::kCharged),
            Strength::kCharged);
}

class InverterTruth : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(InverterTruth, BothStyles) {
  const Style style =
      std::get<0>(GetParam()) == 0 ? Style::kNmos : Style::kCmos;
  const bool in_high = std::get<1>(GetParam());
  const GeneratedCircuit g = inverter_chain(style, 1, 1);
  SwitchSimulator sim(g.netlist);
  sim.set_input(g.input, in_high);
  sim.settle();
  EXPECT_EQ(sim.value(g.output), logic_from_bool(!in_high))
      << to_string(style) << " in=" << in_high;
}

INSTANTIATE_TEST_SUITE_P(Styles, InverterTruth,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Bool()));

TEST(SwitchSim, NandTruthTable) {
  for (const Style style : {Style::kNmos, Style::kCmos}) {
    const GeneratedCircuit g = nand_chain(style, 2);
    const NodeId a0 = g.input;
    const NodeId a1 = g.high_inputs[0];
    const NodeId y = *g.netlist.find_node("y");
    for (const bool va : {false, true}) {
      for (const bool vb : {false, true}) {
        SwitchSimulator sim(g.netlist);
        sim.set_input(a0, va);
        sim.set_input(a1, vb);
        sim.settle();
        EXPECT_EQ(sim.value(y), logic_from_bool(!(va && vb)))
            << to_string(style) << ' ' << va << vb;
        // The observer inverter re-inverts.
        EXPECT_EQ(sim.value(g.output), logic_from_bool(va && vb));
      }
    }
  }
}

TEST(SwitchSim, NorTruthTable) {
  for (const Style style : {Style::kNmos, Style::kCmos}) {
    const GeneratedCircuit g = nor_chain(style, 2);
    const NodeId y = *g.netlist.find_node("y");
    for (const bool va : {false, true}) {
      for (const bool vb : {false, true}) {
        SwitchSimulator sim(g.netlist);
        sim.set_input(g.input, va);
        sim.set_input(g.low_inputs[0], vb);
        sim.settle();
        EXPECT_EQ(sim.value(y), logic_from_bool(!(va || vb)))
            << to_string(style) << ' ' << va << vb;
      }
    }
  }
}

TEST(SwitchSim, RatioedFightStrongBeatsWeak) {
  // nMOS inverter with input high: the driven pull-down overrides the
  // weak depletion load.
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  SwitchSimulator sim(g.netlist);
  sim.set_input(g.input, true);
  sim.settle();
  EXPECT_EQ(sim.value(g.output), Logic::k0);
  EXPECT_EQ(sim.strength(g.output), Strength::kDriven);
  // Input low: only the weak load drives.
  SwitchSimulator sim2(g.netlist);
  sim2.set_input(g.input, false);
  sim2.settle();
  EXPECT_EQ(sim2.value(g.output), Logic::k1);
  EXPECT_EQ(sim2.strength(g.output), Strength::kWeak);
}

TEST(SwitchSim, PassGatePassesAndIsolates) {
  const GeneratedCircuit g = pass_chain(Style::kNmos, 2);
  const NodeId sel = g.high_inputs[0];
  const NodeId p2 = *g.netlist.find_node("p2");
  {
    SwitchSimulator sim(g.netlist);
    sim.set_input(g.input, true);  // in=1 -> p0=0, passed along
    sim.set_input(sel, true);
    sim.settle();
    EXPECT_EQ(sim.value(p2), Logic::k0);
    EXPECT_EQ(sim.value(g.output), Logic::k1);
  }
  {
    SwitchSimulator sim(g.netlist);
    sim.set_input(g.input, true);
    sim.set_input(sel, false);  // chain cut: p2 keeps its (unknown) charge
    sim.settle();
    EXPECT_EQ(sim.value(p2), Logic::kX);
    EXPECT_EQ(sim.strength(p2), Strength::kCharged);
  }
}

TEST(SwitchSim, DynamicNodeRetainsPrecharge) {
  const GeneratedCircuit g = precharged_bus(Style::kNmos, 2);
  const NodeId bus = *g.netlist.find_node("bus");
  SwitchSimulator sim(g.netlist);
  for (NodeId n : g.high_inputs) sim.set_input(n, true);
  for (NodeId n : g.low_inputs) sim.set_input(n, false);
  sim.set_input(g.input, false);  // data off: nothing pulls the bus down
  sim.precharge();
  sim.settle();
  EXPECT_EQ(sim.value(bus), Logic::k1);
  EXPECT_EQ(sim.strength(bus), Strength::kCharged);

  // Fire the data input: the bus discharges through the stack.
  sim.set_input(g.input, true);
  sim.settle();
  EXPECT_EQ(sim.value(bus), Logic::k0);
  EXPECT_EQ(sim.strength(bus), Strength::kDriven);
}

TEST(SwitchSim, UnknownGateProducesX) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  SwitchSimulator sim(g.netlist);
  // Input left unset -> X.
  sim.settle();
  EXPECT_EQ(sim.value(g.output), Logic::kX);
}

TEST(SwitchSim, XDoesNotLeakThroughDefiniteGates) {
  // NAND with one input 0 outputs 1 regardless of the other input.
  const GeneratedCircuit g = nand_chain(Style::kCmos, 2);
  const NodeId y = *g.netlist.find_node("y");
  SwitchSimulator sim(g.netlist);
  sim.set_input(g.input, false);
  // g.high_inputs[0] left X.
  sim.settle();
  EXPECT_EQ(sim.value(y), Logic::k1);
}

TEST(SwitchSim, RingOscillatorSettlesToX) {
  // Ternary simulation's classic answer for an oscillator: the loop
  // nodes cannot hold a definite value, so they settle to X (the
  // two-pass unknown handling absorbs the oscillation).
  CircuitBuilder b(Style::kCmos);
  const NodeId start = b.input("start");
  const NodeId n1 = b.inverter(start, "n1");
  const NodeId n2 = b.inverter(n1, "n2");
  const NodeId n3 = b.inverter(n2, "n3");
  const Sizing s = Sizing::standard(Style::kCmos);
  b.netlist().add_transistor(TransistorType::kNEnhancement, n3, b.gnd(), n1,
                             s.driver_w, s.driver_l);
  b.netlist().add_transistor(TransistorType::kPEnhancement, n3, n1, b.vdd(),
                             s.load_w, s.load_l);
  SwitchSimOptions opts;
  opts.max_iterations = 64;
  SwitchSimulator sim(b.netlist(), opts);
  sim.set_input(start, true);
  sim.settle();
  EXPECT_EQ(sim.value(n1), Logic::kX);
  EXPECT_EQ(sim.value(n2), Logic::kX);
  EXPECT_EQ(sim.value(n3), Logic::kX);
}

TEST(SwitchSim, DecoderSelectsExactlyOneRow) {
  const GeneratedCircuit g = address_decoder(Style::kNmos, 3);
  SwitchSimulator sim(g.netlist);
  sim.set_input(g.input, true);  // a0 = 1, others 0 -> address 1
  for (NodeId n : g.low_inputs) sim.set_input(n, false);
  sim.settle();
  for (int r = 0; r < 8; ++r) {
    const NodeId row = *g.netlist.find_node("row" + std::to_string(r));
    EXPECT_EQ(sim.value(row), logic_from_bool(r == 1)) << "row " << r;
  }
}

TEST(SwitchSim, FixedValuesFeedValueAwareTiming) {
  // Simulate the barrel shifter's steady state, then use the settled
  // values to pin the analyzer: stages through deselected passes vanish.
  const GeneratedCircuit g = barrel_shifter(Style::kNmos, 4);
  SwitchSimulator sim(g.netlist);
  sim.set_input(g.input, false);
  for (NodeId n : g.high_inputs) sim.set_input(n, true);
  for (NodeId n : g.low_inputs) sim.set_input(n, false);
  sim.settle();

  AnalyzerOptions opts;
  for (const auto& [node, v] : sim.fixed_values()) {
    // Pin only the select lines (inputs); pinning everything would
    // freeze the data path we are about to analyze.
    if (g.netlist.node(node).is_input && node != g.input) {
      opts.extract.fixed_values[node] = v;
    }
  }
  const Tech tech = nmos4();
  const RcTreeModel model;
  TimingAnalyzer pinned(g.netlist, tech, model, opts);
  pinned.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  pinned.run();

  TimingAnalyzer unpinned(g.netlist, tech, model);
  unpinned.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  unpinned.run();

  // Both find the output arrival, but the pinned analysis sees fewer
  // stages (deselected shift legs are gone).
  EXPECT_TRUE(pinned.arrival(g.output, Transition::kRise).has_value());
  EXPECT_LT(pinned.stages().size(), unpinned.stages().size());
}

TEST(SwitchSim, DumpAndAccessors) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  SwitchSimulator sim(g.netlist);
  sim.set_input(g.input, true);
  sim.settle();
  const std::string d = sim.dump();
  EXPECT_NE(d.find("in=1"), std::string::npos);
  EXPECT_NE(d.find("vdd=1"), std::string::npos);
  EXPECT_NE(d.find("gnd=0"), std::string::npos);
  EXPECT_THROW(sim.set_input(g.output, true), ContractViolation);
  const auto fixed = sim.fixed_values();
  EXPECT_TRUE(fixed.count(g.input));
}

}  // namespace
}  // namespace sldm
