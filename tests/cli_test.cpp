// Tests for the `sldm` command-line tool, driven in-process.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.h"

namespace sldm {
namespace {

/// A scratch file deleted at scope exit.
class TempFile {
 public:
  TempFile(const std::string& name, const std::string& contents)
      : path_("/tmp/sldm_cli_test_" + name) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr const char* kInverterSim =
    "e in gnd out 4 8\n"
    "d out out vdd 8 4\n"
    "@in in\n"
    "@out out\n";

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, NoArgsIsUsageError) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandIsUsageError) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, OptionWithoutValueIsUsageError) {
  const CliRun r = run({"time", "x.sim", "--model"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("needs a value"), std::string::npos);
}

TEST(Cli, CheckCleanNetlist) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run({"check", f.path()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ok"), std::string::npos);
}

TEST(Cli, CheckBrokenNetlistFails) {
  // No rails at all.
  TempFile f("broken.sim", "e a b c 4 8\n@in a\n");
  const CliRun r = run({"check", f.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("errors found"), std::string::npos);
}

TEST(Cli, CheckMissingFileIsAnalysisError) {
  const CliRun r = run({"check", "/nonexistent/x.sim"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, StatsPrintsCensus) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run({"stats", f.path()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("devices: 2"), std::string::npos);
}

TEST(Cli, TimeWithRcTreeModel) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run({"time", f.path(), "--model", "rc-tree"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("model: rc-tree"), std::string::npos);
  EXPECT_NE(r.out.find("out"), std::string::npos);
}

TEST(Cli, TimeWithUnknownModelFails) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run({"time", f.path(), "--model", "psychic"});
  EXPECT_EQ(r.code, 1);
}

TEST(Cli, TimeWithConstraintsAndSlack) {
  TempFile f("inv.sim", kInverterSim);
  TempFile ct("ok.ct", "input in both at 0 slope 1\nrequire 50\n");
  const CliRun r = run({"time", f.path(), "--model", "rc-tree",
                        "--constraints", ct.path()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("slack"), std::string::npos);
}

TEST(Cli, TimeViolatedBudgetReturnsNonzero) {
  TempFile f("inv.sim", kInverterSim);
  TempFile ct("tight.ct", "input in both at 0 slope 1\nrequire 0.0001\n");
  const CliRun r = run({"time", f.path(), "--model", "rc-tree",
                        "--constraints", ct.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("VIOLATION"), std::string::npos);
}

TEST(Cli, TimeWithWorstPaths) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run(
      {"time", f.path(), "--model", "rc-tree", "--paths", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("worst path"), std::string::npos);
  EXPECT_NE(r.out.find("<- input"), std::string::npos);
}

TEST(Cli, ChargeshareReportsDynamicNodes) {
  TempFile f("dyn.sim",
             "e sel bit big 4 8\n"
             "c big 500\n"
             "c bit 10\n"
             "e clk gnd vdd 4 8\n"  // rails present via names
             "@in sel clk\n"
             "@precharged bit\n");
  const CliRun r = run({"chargeshare", f.path()});
  EXPECT_EQ(r.code, 1) << "sharing onto 500 fF must fail the threshold";
  EXPECT_NE(r.out.find("FAILS"), std::string::npos);
}

TEST(Cli, ChargeshareNoDynamicNodes) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run({"chargeshare", f.path()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("no precharged nodes"), std::string::npos);
}

TEST(Cli, SimWritesCsv) {
  TempFile f("inv.sim", kInverterSim);
  const std::string csv = "/tmp/sldm_cli_test_waves.csv";
  const CliRun r = run({"sim", f.path(), "--tstop-ns", "20", "--csv", csv});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("settles at"), std::string::npos);
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("time_ns"), std::string::npos);
  EXPECT_NE(header.find("out"), std::string::npos);
  std::remove(csv.c_str());
}

TEST(Cli, CalibrateWritesFiles) {
  const CliRun r =
      run({"calibrate", "nmos", "--out", "/tmp/sldm_cli_test_cal"});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream tech("/tmp/sldm_cli_test_cal.tech");
  std::ifstream tables("/tmp/sldm_cli_test_cal.slopes");
  EXPECT_TRUE(tech.good());
  EXPECT_TRUE(tables.good());
  std::remove("/tmp/sldm_cli_test_cal.tech");
  std::remove("/tmp/sldm_cli_test_cal.slopes");
}

TEST(Cli, SampleDatapathEndToEnd) {
  // The shipped sample design must check clean, meet its shipped
  // constraints, and pass the charge-sharing audit.
  const std::string sim =
      std::string(SLDM_SOURCE_DIR) + "/testdata/sample_datapath.sim";
  const std::string ct =
      std::string(SLDM_SOURCE_DIR) + "/testdata/sample_datapath.ct";
  {
    const CliRun r = run({"check", sim});
    EXPECT_EQ(r.code, 0) << r.out << r.err;
  }
  {
    const CliRun r =
        run({"time", sim, "--model", "rc-tree", "--constraints", ct,
             "--paths", "2"});
    EXPECT_EQ(r.code, 0) << r.out << r.err;
    EXPECT_NE(r.out.find("slack"), std::string::npos);
    EXPECT_EQ(r.out.find("VIOLATION"), std::string::npos) << r.out;
  }
  {
    const CliRun r = run({"chargeshare", sim});
    EXPECT_EQ(r.code, 0) << r.out << r.err;
    EXPECT_NE(r.out.find("res"), std::string::npos);
  }
}

TEST(Cli, CalibrateUsage) {
  EXPECT_EQ(run({"calibrate", "bipolar", "--out", "/tmp/x"}).code, 2);
  EXPECT_EQ(run({"calibrate", "nmos"}).code, 2);
}

TEST(Cli, TimeStatsJsonEmitsCounters) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run({"time", f.path(), "--model", "rc-tree", "--stats",
                        "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("{\"ccc_count\":"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"stage_count\":"), std::string::npos);
  EXPECT_NE(r.out.find("\"incremental_updates\":0"), std::string::npos);
}

TEST(Cli, EcoAppliesEditsAndVerifies) {
  TempFile f("inv.sim", kInverterSim);
  TempFile e("widen.eco",
             "| widen the pull-down\n"
             "width in gnd out 16\n"
             "cap out 25\n");
  const CliRun r = run({"eco", f.path(), e.path(), "--model", "rc-tree",
                        "--verify", "--stats"});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("baseline:"), std::string::npos);
  EXPECT_NE(r.out.find("applied 2 edit(s)"), std::string::npos);
  EXPECT_NE(r.out.find("bit-identical"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("eco update"), std::string::npos) << r.out;
}

TEST(Cli, EcoWritesEditedNetlist) {
  TempFile f("inv.sim", kInverterSim);
  TempFile e("widen.eco", "width in gnd out 16\n");
  const std::string out_path = "/tmp/sldm_cli_test_eco_out.sim";
  const CliRun r = run({"eco", f.path(), e.path(), "--model", "rc-tree",
                        "--write", out_path});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream in(out_path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("e in gnd out 4 16"), std::string::npos)
      << ss.str();
  std::remove(out_path.c_str());
}

TEST(Cli, EcoBadScriptIsAnalysisError) {
  TempFile f("inv.sim", kInverterSim);
  TempFile e("bad.eco", "width nosuch gnd out 16\n");
  const CliRun r = run({"eco", f.path(), e.path(), "--model", "rc-tree"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST(Cli, EcoUsageErrors) {
  EXPECT_EQ(run({"eco", "only-one-arg.sim"}).code, 2);
}

TEST(Cli, TimeTraceWritesFile) {
  TempFile f("inv.sim", kInverterSim);
  const std::string trace_path = "/tmp/sldm_cli_test_trace.json";
  const CliRun r = run({"time", f.path(), "--model", "rc-tree", "--trace",
                        trace_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote trace"), std::string::npos) << r.out;
  std::ifstream in(trace_path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(ss.str().find("\"propagate\""), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(Cli, ExplainPrintsBreakdown) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run({"explain", f.path(), "out", "--model", "rc-tree"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("explain: out"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("<- input"), std::string::npos);
  EXPECT_NE(r.out.find("sum of stage delays"), std::string::npos);
}

TEST(Cli, ExplainHonorsDirectionFlag) {
  TempFile f("inv.sim", kInverterSim);
  const CliRun r = run({"explain", f.path(), "out", "--model", "rc-tree",
                        "--dir", "rise"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("explain: out rise"), std::string::npos) << r.out;
  EXPECT_EQ(run({"explain", f.path(), "out", "--dir", "sideways"}).code, 2);
}

TEST(Cli, ExplainUsageAndErrors) {
  TempFile f("inv.sim", kInverterSim);
  EXPECT_EQ(run({"explain", f.path()}).code, 2);  // missing node
  const CliRun r = run({"explain", f.path(), "nosuch", "--model",
                        "rc-tree"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST(Cli, VersionReportsEngineAndSnapshotFormat) {
  const CliRun r = run({"version"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("sldm "), std::string::npos);
  EXPECT_NE(r.out.find(".sldc"), std::string::npos);
}

TEST(Cli, UsageListsEveryCommand) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 2);
  for (const char* cmd :
       {"check", "stats", "time", "explain", "eco", "chargeshare", "sim",
        "calibrate", "compile", "fuzz", "version"}) {
    EXPECT_NE(r.err.find(cmd), std::string::npos) << cmd;
  }
}

/// A compiled snapshot deleted at scope exit.
class TempSnapshot {
 public:
  TempSnapshot(const std::string& sim_path,
               std::vector<std::string> extra_args = {})
      : path_("/tmp/sldm_cli_test_design.sldc") {
    std::vector<std::string> args{"compile", sim_path, "-o", path_,
                                  "--model", "rc-tree"};
    for (auto& a : extra_args) args.push_back(std::move(a));
    compile_ = run(args);
  }
  ~TempSnapshot() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  const CliRun& compile_result() const { return compile_; }

 private:
  std::string path_;
  CliRun compile_;
};

TEST(Cli, CompileThenLoadMatchesDirectTiming) {
  TempFile f("inv.sim", kInverterSim);
  TempSnapshot snapshot(f.path());
  ASSERT_EQ(snapshot.compile_result().code, 0)
      << snapshot.compile_result().err;
  EXPECT_NE(snapshot.compile_result().out.find("wrote"),
            std::string::npos);

  const CliRun direct = run({"time", f.path(), "--model", "rc-tree"});
  const CliRun loaded =
      run({"time", "--load", snapshot.path(), "--model", "rc-tree"});
  ASSERT_EQ(direct.code, 0) << direct.err;
  ASSERT_EQ(loaded.code, 0) << loaded.err;
  EXPECT_EQ(direct.out, loaded.out);
}

TEST(Cli, LoadedSlopeTimingSkipsRecalibration) {
  TempFile f("inv.sim", kInverterSim);
  // Default model: compile calibrates once and embeds the tables.
  const std::string path = "/tmp/sldm_cli_test_slope.sldc";
  ASSERT_EQ(run({"compile", f.path(), "-o", path}).code, 0);
  const CliRun direct = run({"time", f.path()});
  const CliRun loaded = run({"time", "--load", path});
  std::remove(path.c_str());
  ASSERT_EQ(direct.code, 0) << direct.err;
  ASSERT_EQ(loaded.code, 0) << loaded.err;
  EXPECT_EQ(direct.out, loaded.out);
  // The direct run calibrates in-process; the loaded one must not.
  EXPECT_NE(direct.err.find("calibrating"), std::string::npos);
  EXPECT_EQ(loaded.err.find("calibrating"), std::string::npos);
}

TEST(Cli, LoadWithMismatchedTechIsError) {
  TempFile f("inv.sim", kInverterSim);
  TempSnapshot snapshot(f.path());  // default tech: nmos
  ASSERT_EQ(snapshot.compile_result().code, 0);
  const CliRun r = run({"time", "--load", snapshot.path(), "--tech",
                        "cmos", "--model", "rc-tree"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("does not match"), std::string::npos);
}

TEST(Cli, EcoOverLoadedSnapshotVerifies) {
  TempFile f("inv.sim", kInverterSim);
  TempFile eco("load.eco", "cap out 0.05\n");
  TempSnapshot snapshot(f.path());
  ASSERT_EQ(snapshot.compile_result().code, 0);
  const CliRun r = run({"eco", "--load", snapshot.path(), eco.path(),
                        "--model", "rc-tree", "--verify"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("bit-identical"), std::string::npos);
}

TEST(Cli, CompileUsageErrors) {
  TempFile f("inv.sim", kInverterSim);
  EXPECT_EQ(run({"compile", f.path()}).code, 2);  // missing -o
  EXPECT_EQ(run({"compile", "-o", "/tmp/x.sldc"}).code, 2);  // no input
}

TEST(Cli, LoadingGarbageIsAnalysisError) {
  TempFile junk("junk.sldc", "this is not a snapshot");
  const CliRun r = run({"time", "--load", junk.path(), "--model",
                        "rc-tree"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("not a .sldc"), std::string::npos);
}

TEST(Cli, LedgerSummarizeCorruptCorpusIsNamedError) {
  // The checked-in corpus carries one good record and one with a
  // non-hex fingerprint; the reader must fail with a located, named
  // error (exit 1), never an uncaught exception (which would exit
  // through std::terminate and fail this whole binary).
  const std::string path =
      std::string(SLDM_SOURCE_DIR) + "/testdata/ledger/corrupt.jsonl";
  const CliRun r = run({"ledger", "summarize", path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("bad fingerprint"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find(":2:"), std::string::npos) << r.err;
}

TEST(Cli, BenchDiffRejectsMalformedRecordsWithLocation) {
  TempFile good("bench_good.jsonl",
                "{\"bench\":\"a\",\"wall_seconds\":1.0}\n");
  TempFile bad("bench_bad.jsonl",
               "{\"bench\":\"a\",\"wall_seconds\":1.0}\n"
               "{\"bench\":42,\"wall_seconds\":1.0}\n");
  const CliRun r = run({"bench", "diff", good.path(), bad.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find(":2:"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("wall_seconds"), std::string::npos) << r.err;
}

}  // namespace
}  // namespace sldm
