// Cross-cutting property tests: every circuit in the accuracy suite, in
// both logic styles, must flow through the entire pipeline with sane
// invariants -- the analyzer finds the simulated transition, the slope
// model stays within a loose accuracy envelope, the RC-tree model never
// exceeds the lumped model, and the RPH bounds bracket the point
// estimate on every extracted stage.
#include <gtest/gtest.h>

#include <cmath>

#include "compare/harness.h"
#include "delay/bounds.h"
#include "delay/lumped.h"
#include "delay/rctree.h"
#include "rc/rc_tree.h"
#include "timing/stage_extract.h"

namespace sldm {
namespace {

struct SuiteCase {
  Style style;
  std::size_t index;
};

class SuitePipeline : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static const std::vector<GeneratedCircuit>& suite(Style style) {
    static std::vector<GeneratedCircuit> nmos = accuracy_suite(Style::kNmos);
    static std::vector<GeneratedCircuit> cmos = accuracy_suite(Style::kCmos);
    return style == Style::kNmos ? nmos : cmos;
  }
  Style style() const {
    return std::get<0>(GetParam()) == 0 ? Style::kNmos : Style::kCmos;
  }
  const GeneratedCircuit& circuit() const {
    return suite(style())[static_cast<std::size_t>(std::get<1>(GetParam()))];
  }
};

TEST_P(SuitePipeline, FullComparisonHoldsInvariants) {
  const CompareContext& ctx = CompareContext::get(style());
  const ComparisonResult r = run_comparison(circuit(), ctx, 2e-9);

  EXPECT_GT(r.reference_delay, 0.0) << r.circuit;
  ASSERT_EQ(r.models.size(), 3u);

  // The RC-tree estimate never exceeds the lumped estimate (Elmore of a
  // tree is bounded by Rtot * Ctot).
  EXPECT_LE(r.model("rc-tree").delay, r.model("lumped-rc").delay + 1e-15)
      << r.circuit;

  // The slope model stays within a generous envelope of the simulator
  // across the whole suite (the per-family benches measure it tightly).
  EXPECT_LT(std::abs(r.model("slope").error_pct), 60.0) << r.circuit;

  // All predictions are positive and within 10x of the reference.
  for (const ModelResult& m : r.models) {
    EXPECT_GT(m.delay, 0.0) << r.circuit << ' ' << m.model;
    EXPECT_LT(m.delay, 10.0 * r.reference_delay) << r.circuit << ' '
                                                 << m.model;
  }
}

TEST_P(SuitePipeline, RphBoundsBracketEveryStage) {
  const Tech tech = style() == Style::kNmos ? nmos4() : cmos3();
  const RcTreeModel point;
  const RphBoundsModel upper(RphBoundsModel::Mode::kUpper);
  const RphBoundsModel lower(RphBoundsModel::Mode::kLower);
  std::size_t checked = 0;
  for (const TimingStage& ts : extract_all_stages(circuit().netlist)) {
    const Stage stage = make_stage(circuit().netlist, tech, ts, 0.0);
    const Seconds p = point.estimate(stage).delay;
    EXPECT_LE(lower.estimate(stage).delay, p + 1e-18);
    EXPECT_GE(upper.estimate(stage).delay, p - 1e-18);
    if (++checked > 200) break;  // plenty per circuit
  }
  EXPECT_GT(checked, 0u) << circuit().name;
}

INSTANTIATE_TEST_SUITE_P(BothStyles, SuitePipeline,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Range(0, 16)));

}  // namespace
}  // namespace sldm
