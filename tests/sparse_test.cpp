// Tests for the sparse LU solver, including equivalence with the dense
// kernel on random systems and inside the transient engine.
#include <gtest/gtest.h>

#include <random>

#include "analog/matrix.h"
#include "analog/sparse.h"
#include "analog/transient.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

TEST(SparseMatrix, AssemblyAndAccess) {
  SparseMatrix m(3);
  EXPECT_EQ(m.dimension(), 3u);
  m.add(0, 0, 2.0);
  m.add(0, 0, 1.0);  // accumulates
  m.add(2, 1, -4.0);
  m.add(1, 1, 0.0);  // explicit zero is not stored
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), -4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_EQ(m.nonzeros(), 2u);
  m.set_zero();
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_THROW(m.add(3, 0, 1.0), ContractViolation);
}

TEST(SparseLu, SolvesKnownSystem) {
  SparseMatrix a(2);
  a.add(0, 0, 2.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 3.0);
  const auto x = SparseLu(a).solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLu, PivotsThroughZeroDiagonal) {
  SparseMatrix a(2);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  const auto x = SparseLu(a).solve({3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLu, SingularThrows) {
  SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 4.0);
  EXPECT_THROW(SparseLu lu(a), NumericalError);
  SparseMatrix empty(3);
  EXPECT_THROW(SparseLu lu2(empty), NumericalError);
}

TEST(SparseLu, FillInReported) {
  SparseMatrix a(3);
  for (std::size_t i = 0; i < 3; ++i) a.add(i, i, 2.0);
  a.add(0, 2, 1.0);
  a.add(2, 0, 1.0);
  const SparseLu lu(a);
  EXPECT_GE(lu.factor_nonzeros(), 5u);
}

// Property: sparse and dense solutions agree on random sparse
// diagonally dominant systems.
class SparseDenseEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SparseDenseEquivalence, SolutionsMatch) {
  const int n = 10 + GetParam() * 13;
  std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 2654435761u);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_int_distribution<std::size_t> col(
      0, static_cast<std::size_t>(n) - 1);

  Matrix dense(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  SparseMatrix sparse(static_cast<std::size_t>(n));
  // ~4 off-diagonal entries per row + dominant diagonal.
  for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r) {
    double row_sum = 0.0;
    for (int k = 0; k < 4; ++k) {
      const std::size_t c = col(rng);
      if (c == r) continue;
      const double v = val(rng);
      dense(r, c) += v;
      sparse.add(r, c, v);
      row_sum += std::abs(v);
    }
    const double d = row_sum + 1.0;
    dense(r, r) += d;
    sparse.add(r, r, d);
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (double& v : b) v = val(rng);

  const auto xd = LuFactorization(dense).solve(b);
  const auto xs = SparseLu(sparse).solve(b);
  for (std::size_t i = 0; i < xd.size(); ++i) {
    EXPECT_NEAR(xs[i], xd[i], 1e-9) << "i=" << i << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseDenseEquivalence,
                         ::testing::Range(0, 8));

TEST(SparseTransient, MatchesDenseWaveforms) {
  // The same RC ladder integrated with both kernels must produce the
  // same waveform to solver tolerance.
  Circuit c;
  const AnalogNode in = c.add_node("in");
  c.add_vsource(in, kGround, PwlSource::edge(0.0, 1.0, 1e-9, 1e-12));
  AnalogNode prev = in;
  std::vector<AnalogNode> nodes;
  for (int i = 0; i < 6; ++i) {
    const AnalogNode n = c.add_node("n" + std::to_string(i));
    c.add_resistor(prev, n, 2e3);
    c.add_capacitor(n, kGround, 50e-15);
    nodes.push_back(n);
    prev = n;
  }
  TransientOptions dense_opt;
  dense_opt.t_stop = 10e-9;
  dense_opt.matrix = MatrixKind::kDense;
  TransientOptions sparse_opt = dense_opt;
  sparse_opt.matrix = MatrixKind::kSparse;

  const TransientResult rd = simulate(c, dense_opt);
  const TransientResult rs = simulate(c, sparse_opt);
  for (AnalogNode n : nodes) {
    for (double t_ns : {1.0, 2.0, 4.0, 8.0}) {
      EXPECT_NEAR(rs.at(n).at(t_ns * 1e-9), rd.at(n).at(t_ns * 1e-9), 1e-4)
          << "node " << n << " t " << t_ns;
    }
  }
}

TEST(SparseTransient, AutoSelectsByProblemSize) {
  // Behavioral check: kAuto must work on both a tiny and a larger
  // circuit (the selection itself is internal; this pins the plumbing).
  Circuit small;
  const AnalogNode a = small.add_node("a");
  small.add_vsource(a, kGround, PwlSource::dc(1.0));
  const AnalogNode b = small.add_node("b");
  small.add_resistor(a, b, 1e3);
  small.add_capacitor(b, kGround, 1e-15);
  TransientOptions opt;
  opt.t_stop = 1e-9;
  EXPECT_NO_THROW(simulate(small, opt));

  Circuit big;
  const AnalogNode src = big.add_node("src");
  big.add_vsource(src, kGround, PwlSource::edge(0.0, 1.0, 1e-10, 1e-12));
  AnalogNode prev = src;
  for (int i = 0; i < 150; ++i) {  // > auto threshold unknowns
    const AnalogNode n = big.add_node();
    big.add_resistor(prev, n, 1e3);
    big.add_capacitor(n, kGround, 5e-15);
    prev = n;
  }
  TransientOptions opt2;
  opt2.t_stop = 2e-9;
  const TransientResult r = simulate(big, opt2);
  EXPECT_GT(r.at(prev).value(r.at(prev).size() - 1), -0.01);
}

}  // namespace
}  // namespace sldm
