// Tests for the `sldm serve` layer: protocol error envelopes (including
// the "deadline" and "too-large" goldens), the design cache's lease /
// single-writer-eco discipline, bounded admission in the pipe loop,
// client-disconnect survival on the TCP front end, and the headline
// concurrency guarantee -- mixed-model request streams answered
// concurrently are bit-identical to cold single-shot CLI runs (run
// under tsan by scripts/check.sh).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/json.h"
#include "util/telemetry.h"

namespace sldm {
namespace {

/// TimingService enables the process hub; leave it as a fresh process
/// would have it so suites sharing the binary see no leaked snapshots.
class HubGuard {
 public:
  HubGuard() { reset(); }
  ~HubGuard() { reset(); }

 private:
  static void reset() {
    TelemetryHub::instance().disable();
    TelemetryHub::instance().clear();
  }
};

class TempFile {
 public:
  TempFile(const std::string& name, const std::string& contents)
      : path_(::testing::TempDir() + "sldm_serve_test_" + name) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr const char* kInverterSim =
    "e in gnd out 4 8\n"
    "d out out vdd 8 4\n"
    "@in in\n"
    "@out out\n";

constexpr const char* kChainSim =
    "e in gnd s1 4 8\n"
    "d s1 s1 vdd 8 4\n"
    "e s1 gnd out 4 8\n"
    "d out out vdd 8 4\n"
    "@in in\n"
    "@out out\n";

/// Issues a load and returns the 16-hex fingerprint from the response.
std::string load_design(TimingService& service, const std::string& path,
                        const std::string& model) {
  const std::string response = service.handle_line(
      "{\"kind\":\"load\",\"path\":\"" + json_escape(path) +
      "\",\"model\":\"" + model + "\"}");
  const std::string key = "\"design\":\"";
  const auto pos = response.find(key);
  EXPECT_NE(pos, std::string::npos) << response;
  if (pos == std::string::npos) return "";
  return response.substr(pos + key.size(), 16);
}

/// Everything before the ",\"stats\":" member: the response fields that
/// must be bit-identical across runs (the stats object carries
/// wall-clock timings, which legitimately vary).
std::string deterministic_prefix(const std::string& response) {
  const auto pos = response.find(",\"stats\":");
  return pos == std::string::npos ? response : response.substr(0, pos);
}

std::string cold_cli(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli(args, out, err), 0) << err.str();
  return out.str();
}

// --- protocol error envelopes --------------------------------------------

TEST(ServeProtocol, MalformedJsonIsParseError) {
  HubGuard guard;
  TimingService service;
  const std::string r = service.handle_line("{definitely not json");
  EXPECT_NE(r.find("\"error\":\"parse\""), std::string::npos) << r;
  EXPECT_EQ(service.errors_returned(), 1u);
  EXPECT_EQ(service.requests_handled(), 1u);
}

TEST(ServeProtocol, NonObjectAndBadIdAreStructuredErrors) {
  HubGuard guard;
  TimingService service;
  EXPECT_NE(service.handle_line("[1,2]").find("\"error\":\"parse\""),
            std::string::npos);
  EXPECT_NE(service.handle_line("{\"id\":[1],\"kind\":\"stats\"}")
                .find("\"error\":\"bad-request\""),
            std::string::npos);
}

TEST(ServeProtocol, UnknownKindEchoesTheRequestId) {
  HubGuard guard;
  TimingService service;
  const std::string r =
      service.handle_line("{\"id\":7,\"kind\":\"frobnicate\"}");
  EXPECT_NE(r.find("\"id\":7,"), std::string::npos) << r;
  EXPECT_NE(r.find("\"error\":\"unknown-kind\""), std::string::npos) << r;
}

TEST(ServeProtocol, MissingOrBadFieldsAreBadRequest) {
  HubGuard guard;
  TimingService service;
  for (const char* line : {
           "{\"kind\":\"load\"}",                          // no path
           "{\"kind\":\"time\"}",                          // no design
           "{\"kind\":\"explain\",\"design\":\"0\"}",      // no node
           "{\"kind\":\"time\",\"design\":\"0\",\"threads\":0}",
           "{\"kind\":\"time\",\"design\":\"0\",\"slope_ns\":-1}",
           "{\"kind\":\"eco\",\"design\":\"0\"}",          // script xor path
           "{\"kind\":\"eco\",\"design\":\"0\",\"script\":\"x\","
           "\"path\":\"y\"}",
       }) {
    const std::string r = service.handle_line(line);
    EXPECT_NE(r.find("\"error\":\"bad-request\""), std::string::npos)
        << line << " -> " << r;
  }
}

TEST(ServeService, UnloadedFingerprintIsUnknownDesign) {
  HubGuard guard;
  TimingService service;
  const std::string r = service.handle_line(
      "{\"id\":\"q1\",\"kind\":\"time\",\"design\":\"00000000000000aa\","
      "\"model\":\"lumped\"}");
  EXPECT_NE(r.find("\"id\":\"q1\","), std::string::npos) << r;
  EXPECT_NE(r.find("\"error\":\"unknown-design\""), std::string::npos) << r;
}

TEST(ServeService, AnalysisFailuresAreNamedNotThrown) {
  HubGuard guard;
  TimingService service;
  // Unreadable netlist path: the compile throws inside the handler and
  // must come back as a "failed" envelope.
  const std::string r = service.handle_line(
      "{\"kind\":\"load\",\"path\":\"/nonexistent/x.sim\"}");
  EXPECT_NE(r.find("\"error\":\"failed\""), std::string::npos) << r;
  // Unknown model name is a bad request, pre-dispatch.
  TempFile sim("inv_badmodel.sim", kInverterSim);
  const std::string r2 = service.handle_line(
      "{\"kind\":\"load\",\"path\":\"" + json_escape(sim.path()) +
      "\",\"model\":\"quantum\"}");
  EXPECT_NE(r2.find("\"error\":\"bad-request\""), std::string::npos) << r2;
}

// --- deadline + too-large goldens ----------------------------------------

TEST(ServeDeadline, ExpiredDeadlineIsTheNamedEnvelope) {
  HubGuard guard;
  TimingService service;
  TempFile sim("deadline_inv.sim", kInverterSim);
  const std::string fp = load_design(service, sim.path(), "lumped");
  ASSERT_EQ(fp.size(), 16u);
  // A sub-microsecond deadline has expired by the first wavefront
  // check, so the envelope is fully deterministic -- pin it whole.
  const std::string r = service.handle_line(
      "{\"id\":9,\"kind\":\"time\",\"design\":\"" + fp +
      "\",\"model\":\"lumped\",\"deadline_ms\":1e-6}");
  EXPECT_EQ(r,
            "{\"id\":9,\"error\":\"deadline\",\"detail\":\"deadline "
            "expired during propagate\"}");
  // The partial run was discarded and the lease released: the same
  // design still answers an undeadlined request, and an eco (which
  // needs zero outstanding leases) is not blocked.
  const std::string ok = service.handle_line(
      "{\"kind\":\"time\",\"design\":\"" + fp + "\",\"model\":\"lumped\"}");
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
  const std::string eco = service.handle_line(
      "{\"kind\":\"eco\",\"design\":\"" + fp +
      "\",\"model\":\"lumped\",\"script\":\"addcap out 5\\n\"}");
  EXPECT_NE(eco.find("\"kind\":\"eco\",\"ok\":true"), std::string::npos)
      << eco;
}

TEST(ServeDeadline, CompletedRunIsByteIdenticalToUndeadlinedRun) {
  HubGuard guard;
  TimingService service;
  TempFile sim("deadline_chain.sim", kChainSim);
  const std::string fp = load_design(service, sim.path(), "lumped");
  const std::string without = service.handle_line(
      "{\"id\":1,\"kind\":\"time\",\"design\":\"" + fp +
      "\",\"model\":\"lumped\"}");
  // A generous deadline never fires mid-run; the cooperative check is
  // between wavefronts only, so completion implies bit-identity.
  const std::string with = service.handle_line(
      "{\"id\":1,\"kind\":\"time\",\"design\":\"" + fp +
      "\",\"model\":\"lumped\",\"deadline_ms\":60000}");
  ASSERT_NE(without.find("\"ok\":true"), std::string::npos) << without;
  EXPECT_EQ(deterministic_prefix(with), deterministic_prefix(without));
}

TEST(ServeDeadline, ServerDefaultAppliesAndRequestsOverrideIt) {
  HubGuard guard;
  ServeOptions options;
  options.default_deadline_ms = 1e-6;  // every request expires instantly
  TimingService service(options);
  TempFile sim("deadline_default.sim", kInverterSim);
  const std::string fp = load_design(service, sim.path(), "lumped");
  const std::string r = service.handle_line(
      "{\"kind\":\"time\",\"design\":\"" + fp + "\",\"model\":\"lumped\"}");
  EXPECT_NE(r.find("\"error\":\"deadline\""), std::string::npos) << r;
  // A request-level deadline wins over the server default.
  const std::string wide = service.handle_line(
      "{\"kind\":\"time\",\"design\":\"" + fp +
      "\",\"model\":\"lumped\",\"deadline_ms\":60000}");
  EXPECT_NE(wide.find("\"ok\":true"), std::string::npos) << wide;
}

TEST(ServePipe, OversizedLineGetsTheTooLargeGolden) {
  HubGuard guard;
  TimingService service;
  std::string big = "{\"kind\":\"stats\",\"pad\":\"";
  big.append(200, 'x');
  big += "\"}";
  std::istringstream in(big + "\n{\"id\":2,\"kind\":\"shutdown\"}\n");
  std::ostringstream out;
  ServeLoopOptions options;
  options.workers = 1;
  options.max_line_bytes = 64;
  EXPECT_EQ(serve_pipe(service, in, out, options), 0);
  const std::string text = out.str();
  // The oversized line's id is unrecoverable from a 64-byte prefix of
  // truncated JSON, so the golden envelope has no id member.
  EXPECT_NE(text.find("{\"error\":\"too-large\",\"detail\":\"request line "
                      "exceeds --max-line-bytes (64); split the request or "
                      "raise the limit\"}"),
            std::string::npos)
      << text;
  // Exactly one envelope per line: the oversized line and the shutdown.
  EXPECT_NE(text.find("\"id\":2,\"kind\":\"shutdown\",\"ok\":true"),
            std::string::npos)
      << text;
}

TEST(ServePipe, OversizedLineEchoesAnIdRecoverableFromItsPrefix) {
  HubGuard guard;
  TimingService service;
  std::string big = "{\"id\":41,\"kind\":\"stats\",\"pad\":\"";
  big.append(200, 'x');
  big += "\"}";
  std::istringstream in(big + "\n{\"id\":2,\"kind\":\"shutdown\"}\n");
  std::ostringstream out;
  ServeLoopOptions options;
  options.workers = 1;
  options.max_line_bytes = 64;
  EXPECT_EQ(serve_pipe(service, in, out, options), 0);
  // The id member fits inside the 64-byte prefix, so the envelope
  // echoes it even though the full line never parsed.
  EXPECT_NE(out.str().find("{\"id\":41,\"error\":\"too-large\","),
            std::string::npos)
      << out.str();
}

TEST(ServeProtocol, PrefixIdRecoveryRefusesAnythingPossiblyTruncated) {
  // Complete scalar ids are recovered from truncated prefixes...
  EXPECT_EQ(request_id_token_prefix("{\"id\":41,\"kind\":\"st"), "41");
  EXPECT_EQ(request_id_token_prefix("{\"id\" : -2.5e3 ,\"pad"), "-2.5e3");
  EXPECT_EQ(request_id_token_prefix("{\"id\":\"r-7\",\"pad\":\"xx"),
            "\"r-7\"");
  // ...but a value that may itself be cut off yields no id at all.
  EXPECT_EQ(request_id_token_prefix("{\"id\":41"), "");
  EXPECT_EQ(request_id_token_prefix("{\"id\":\"r-7"), "");
  EXPECT_EQ(request_id_token_prefix("{\"id\":\"a\\"), "");
  EXPECT_EQ(request_id_token_prefix("{\"pad\":\"x\",\"i"), "");
  // A prefix that happens to parse whole still goes through the full
  // parser (object ids and such are rejected there, not echoed).
  EXPECT_EQ(request_id_token_prefix("{\"id\":7}"), "7");
}

// --- TCP: client disconnect mid-request ----------------------------------

namespace {

int connect_localhost(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

TEST(ServeTcp, ClientDisconnectMidRequestDoesNotKillTheServer) {
  HubGuard guard;
  TimingService service;
  ServeLoopOptions options;
  options.workers = 2;
  TcpServer server(service, options, 0);
  const int port = server.port();
  std::thread server_thread([&server] { EXPECT_EQ(server.run(), 0); });

  // Client 1 fires a request and slams the connection before the
  // response can be written: the worker's send hits EPIPE/ECONNRESET
  // (MSG_NOSIGNAL, so no SIGPIPE) and must simply drop the response.
  {
    const int fd = connect_localhost(port);
    send_all(fd, "{\"id\":1,\"kind\":\"stats\"}\n");
    struct linger hard = {1, 0};  // RST on close: the rudest disconnect
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
  }

  // Client 2 proves the server is still alive and orderly, then shuts
  // it down; run() returning 0 is the survival assertion.
  {
    const int fd = connect_localhost(port);
    send_all(fd, "{\"id\":2,\"kind\":\"shutdown\"}\n");
    std::string response;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n') response += c;
    EXPECT_NE(response.find("\"kind\":\"shutdown\",\"ok\":true"),
              std::string::npos)
        << response;
    ::close(fd);
  }
  server_thread.join();
}

// --- cache + single-writer eco -------------------------------------------

TEST(ServeService, LoadCachesByFingerprintAndStatsSeeIt) {
  HubGuard guard;
  TimingService service;
  TempFile sim("inv_cache.sim", kInverterSim);
  const std::string fp = load_design(service, sim.path(), "lumped");
  ASSERT_EQ(fp.size(), 16u);
  // Re-loading the identical design hits the cache.
  const std::string again = service.handle_line(
      "{\"kind\":\"load\",\"path\":\"" + json_escape(sim.path()) +
      "\",\"model\":\"lumped\"}");
  EXPECT_NE(again.find("\"design\":\"" + fp + "\""), std::string::npos);
  EXPECT_NE(again.find("\"cached\":true"), std::string::npos) << again;
  EXPECT_EQ(service.design_count(), 1u);

  const std::string stats = service.handle_line("{\"kind\":\"stats\"}");
  EXPECT_NE(stats.find("\"designs\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"telemetry\":{"), std::string::npos) << stats;
}

TEST(ServeService, EcoRefusedWhileLeasedThenRehashesTheDesign) {
  HubGuard guard;
  TimingService service;
  TempFile sim("chain_eco.sim", kChainSim);
  const std::string fp = load_design(service, sim.path(), "lumped");
  ASSERT_EQ(fp.size(), 16u);

  const std::string eco_line =
      "{\"kind\":\"eco\",\"design\":\"" + fp +
      "\",\"model\":\"lumped\",\"script\":\"addcap out 5\\n\"}";
  {
    // A held lease is exactly an in-flight reader: eco must refuse.
    TimingService::Lease lease = service.lease(fp);
    const std::string r = service.handle_line(eco_line);
    EXPECT_NE(r.find("\"error\":\"eco-shared\""), std::string::npos) << r;
  }
  // Lease released: the eco applies and re-keys the design.
  const std::string r = service.handle_line(eco_line);
  EXPECT_NE(r.find("\"kind\":\"eco\",\"ok\":true"), std::string::npos) << r;
  EXPECT_NE(r.find("\"applied\":1"), std::string::npos) << r;
  EXPECT_NE(r.find("\"was\":\"" + fp + "\""), std::string::npos) << r;
  const std::string key = "\"design\":\"";
  const std::string new_fp = r.substr(r.find(key) + key.size(), 16);
  EXPECT_NE(new_fp, fp);

  // The old identity is gone; the new one serves timing requests.
  const std::string stale = service.handle_line(
      "{\"kind\":\"time\",\"design\":\"" + fp + "\",\"model\":\"lumped\"}");
  EXPECT_NE(stale.find("\"error\":\"unknown-design\""), std::string::npos);
  const std::string fresh = service.handle_line(
      "{\"kind\":\"time\",\"design\":\"" + new_fp +
      "\",\"model\":\"lumped\"}");
  EXPECT_NE(fresh.find("\"kind\":\"time\",\"ok\":true"), std::string::npos);
}

TEST(ServeService, FailedEcoScriptSalvagesThePristineDesign) {
  HubGuard guard;
  TimingService service;
  TempFile sim("chain_badeco.sim", kChainSim);
  const std::string fp = load_design(service, sim.path(), "lumped");
  const std::string r = service.handle_line(
      "{\"kind\":\"eco\",\"design\":\"" + fp +
      "\",\"model\":\"lumped\",\"script\":\"cap nosuchnode 5\\n\"}");
  EXPECT_NE(r.find("\"error\":\"failed\""), std::string::npos) << r;
  // The script failed before mutating anything, so the design is still
  // cached under its old fingerprint.
  const std::string again = service.handle_line(
      "{\"kind\":\"time\",\"design\":\"" + fp + "\",\"model\":\"lumped\"}");
  EXPECT_NE(again.find("\"ok\":true"), std::string::npos) << again;
}

TEST(ServeService, LruEvictionSkipsLeasedDesigns) {
  HubGuard guard;
  ServeOptions options;
  options.cache_capacity = 1;
  TimingService service(options);
  TempFile a("lru_a.sim", kInverterSim);
  TempFile b("lru_b.sim", kChainSim);
  const std::string fp_a = load_design(service, a.path(), "lumped");
  {
    // While a is leased, loading b must not evict it.
    TimingService::Lease lease = service.lease(fp_a);
    const std::string fp_b = load_design(service, b.path(), "lumped");
    EXPECT_EQ(service.design_count(), 2u);
    EXPECT_NE(fp_a, fp_b);
  }
  // Unleased now: the next *insert* (a third, distinct design) evicts
  // back down to capacity.  A repeat load of a cached design is a hit
  // and triggers no eviction.
  TempFile c("lru_c.sim",
             "e in gnd out 6 8\nd out out vdd 8 4\n@in in\n@out out\n");
  const std::string fp_c = load_design(service, c.path(), "lumped");
  EXPECT_EQ(service.design_count(), 1u);
  const std::string r = service.handle_line(
      "{\"kind\":\"time\",\"design\":\"" + fp_c +
      "\",\"model\":\"lumped\"}");
  EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
  const std::string evicted = service.handle_line(
      "{\"kind\":\"time\",\"design\":\"" + fp_a + "\",\"model\":\"lumped\"}");
  EXPECT_NE(evicted.find("\"error\":\"unknown-design\""), std::string::npos);
}

// --- pipe loop: admission + shutdown -------------------------------------

TEST(ServePipe, ShutdownStopsTheLoopBeforeRemainingLines) {
  HubGuard guard;
  TimingService service;
  std::istringstream in(
      "{\"id\":1,\"kind\":\"stats\"}\n"
      "{\"id\":2,\"kind\":\"shutdown\"}\n"
      "{\"id\":3,\"kind\":\"stats\"}\n");
  std::ostringstream out;
  ServeLoopOptions options;
  options.workers = 1;  // inline execution: deterministic ordering
  EXPECT_EQ(serve_pipe(service, in, out, options), 0);
  EXPECT_TRUE(service.shutdown_requested());
  const std::string text = out.str();
  EXPECT_NE(text.find("\"id\":1,\"kind\":\"stats\""), std::string::npos);
  EXPECT_NE(text.find("\"id\":2,\"kind\":\"shutdown\",\"ok\":true"),
            std::string::npos);
  // The loop exited on the flag; request 3 was never admitted.
  EXPECT_EQ(text.find("\"id\":3"), std::string::npos) << text;
  EXPECT_EQ(service.requests_handled(), 2u);
}

TEST(ServePipe, OverloadedLinesGetStructuredRejections) {
  HubGuard guard;
  TimingService service;
  // A FIFO makes the overload deterministic: the first request's load
  // blocks opening it until this test writes the other end, and the
  // reader thread bumps the in-flight count *before* dispatching, so
  // the second line must see the service saturated.
  const std::string fifo =
      ::testing::TempDir() + "sldm_serve_test_overload.fifo";
  std::remove(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  std::istringstream in(
      "{\"id\":1,\"kind\":\"load\",\"path\":\"" + json_escape(fifo) +
      "\"}\n"
      "{\"id\":2,\"kind\":\"stats\"}\n");
  std::ostringstream out;
  ServeLoopOptions options;
  options.workers = 2;
  options.max_inflight = 1;
  std::thread unblock([&fifo] {
    // Opens block until the loader opens the read side; an immediate
    // EOF then fails its parse, which is fine -- envelope, not crash.
    std::ofstream writer(fifo);
  });
  EXPECT_EQ(serve_pipe(service, in, out, options), 0);
  unblock.join();
  std::remove(fifo.c_str());

  const std::string text = out.str();
  EXPECT_NE(text.find("\"id\":2,\"error\":\"overloaded\""),
            std::string::npos)
      << text;
  EXPECT_EQ(service.overloads_rejected(), 1u);
  // The blocked load eventually completed (with an in-band envelope or
  // a load failure, never a crash) and was counted.
  EXPECT_EQ(service.requests_handled(), 1u);
}

// --- the concurrency guarantee -------------------------------------------

TEST(ServeConcurrency, MixedModelStreamsMatchColdCliRunsBitIdentically) {
  HubGuard guard;
  TimingService service;
  TempFile inv("conc_inv.sim", kInverterSim);
  TempFile chain("conc_chain.sim", kChainSim);
  const std::string fp_inv = load_design(service, inv.path(), "lumped");
  const std::string fp_chain = load_design(service, chain.path(), "lumped");
  ASSERT_EQ(service.design_count(), 2u);

  // Mixed-model request stream: 2 designs x 4 models, time + explain.
  struct Case {
    std::string line;
    std::string expected;  ///< deterministic prefix, precomputed serially
  };
  std::vector<Case> cases;
  const std::vector<std::pair<std::string, std::string>> designs = {
      {fp_inv, inv.path()}, {fp_chain, chain.path()}};
  const std::vector<std::string> models = {"lumped", "rc-tree", "rph-upper",
                                           "unit"};
  int id = 0;
  for (const auto& [fp, sim_path] : designs) {
    for (const std::string& model : models) {
      cases.push_back({"{\"id\":" + std::to_string(++id) +
                           ",\"kind\":\"time\",\"design\":\"" + fp +
                           "\",\"model\":\"" + model + "\",\"threads\":2}",
                       ""});
      cases.push_back({"{\"id\":" + std::to_string(++id) +
                           ",\"kind\":\"explain\",\"design\":\"" + fp +
                           "\",\"model\":\"" + model +
                           "\",\"node\":\"out\"}",
                       ""});
    }
  }

  // Serial pass fixes the expected responses; a fresh Session per
  // request makes them independent of service history.
  for (Case& c : cases) {
    c.expected = deterministic_prefix(service.handle_line(c.line));
    ASSERT_NE(c.expected.find("\"ok\":true"), std::string::npos)
        << c.line << " -> " << c.expected;
  }

  // The serve-side report must be byte-identical to the cold CLI's
  // stdout, and the embedded explain object to `explain --json`.
  for (const auto& [fp, sim_path] : designs) {
    for (const std::string& model : models) {
      const std::string cold =
          cold_cli({"time", sim_path, "--model", model});
      const std::string want = "\"report\":\"" + json_escape(cold) + "\"";
      bool found = false;
      for (const Case& c : cases) {
        found = found || c.expected.find(want) != std::string::npos;
      }
      EXPECT_TRUE(found) << "no serve response carried the cold report "
                         << "for " << model << " over " << sim_path;
      std::string cold_explain = cold_cli(
          {"explain", sim_path, "out", "--model", model, "--json"});
      if (!cold_explain.empty() && cold_explain.back() == '\n') {
        cold_explain.pop_back();
      }
      const std::string want_explain = "\"explain\":" + cold_explain;
      found = false;
      for (const Case& c : cases) {
        found = found || c.expected.find(want_explain) != std::string::npos;
      }
      EXPECT_TRUE(found) << "no serve response embedded the cold explain "
                         << "for " << model << " over " << sim_path;
    }
  }

  // Concurrent pass: every case on its own client thread (16 threads,
  // both designs, all four models in flight at once), plus repeats.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::string> got(cases.size());
    std::vector<std::thread> clients;
    clients.reserve(cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      clients.emplace_back([&service, &cases, &got, i] {
        got[i] = service.handle_line(cases[i].line);
      });
    }
    for (std::thread& t : clients) t.join();
    for (std::size_t i = 0; i < cases.size(); ++i) {
      EXPECT_EQ(deterministic_prefix(got[i]), cases[i].expected)
          << "round " << round << ", case " << cases[i].line;
    }
  }
}

}  // namespace
}  // namespace sldm
